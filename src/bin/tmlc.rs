//! `tmlc` — the Tycoon/TML command line.
//!
//! ```text
//! tmlc run <file.tl> --entry mod.fn [--arg N]... [options]   run a TL program
//! tmlc tml <file.tl> [--fn mod.fn] [options]                 print TML terms
//! tmlc code <file.tl> [options]                              disassemble bytecode
//! tmlc eval '<tml s-expression>'                             run a raw TML program
//! tmlc snapshot <file.tl> -o <image.tys>                     persist a compiled image
//! tmlc info <image.tys>                                      inspect a store image
//!
//! options:
//!   --mode library|direct     operator lowering (default library)
//!   --opt none|local          static optimization (default none)
//!   --dynamic                 whole-world reflective optimization before running
//!   --stats                   print machine counters
//! ```

use std::process::ExitCode;
use tycoon::lang::types::LowerMode;
use tycoon::lang::{OptMode, Session, SessionConfig};
use tycoon::reflect::{optimize_all, ReflectOptions, TermBuilder};
use tycoon::store::{snapshot, SVal};
use tycoon::vm::RVal;

struct Options {
    mode: LowerMode,
    opt: OptMode,
    dynamic: bool,
    stats: bool,
    entry: Option<String>,
    args: Vec<i64>,
    output: Option<String>,
    target_fn: Option<String>,
    positional: Vec<String>,
}

fn parse_args(mut args: std::env::Args) -> Result<(String, Options), String> {
    let _ = args.next(); // program name
    let command = args.next().ok_or("missing command")?;
    let mut o = Options {
        mode: LowerMode::Library,
        opt: OptMode::None,
        dynamic: false,
        stats: false,
        entry: None,
        args: Vec::new(),
        output: None,
        target_fn: None,
        positional: Vec::new(),
    };
    let mut it = args;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--mode" => {
                o.mode = match it.next().as_deref() {
                    Some("library") => LowerMode::Library,
                    Some("direct") => LowerMode::Direct,
                    other => return Err(format!("bad --mode {other:?}")),
                }
            }
            "--opt" => {
                o.opt = match it.next().as_deref() {
                    Some("none") => OptMode::None,
                    Some("local") => OptMode::Local,
                    other => return Err(format!("bad --opt {other:?}")),
                }
            }
            "--dynamic" => o.dynamic = true,
            "--stats" => o.stats = true,
            "--entry" => o.entry = Some(it.next().ok_or("--entry needs a value")?),
            "--fn" => o.target_fn = Some(it.next().ok_or("--fn needs a value")?),
            "-o" | "--output" => o.output = Some(it.next().ok_or("-o needs a value")?),
            "--arg" => {
                let v = it.next().ok_or("--arg needs a value")?;
                o.args
                    .push(v.parse().map_err(|e| format!("bad --arg: {e}"))?);
            }
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            other => o.positional.push(other.to_string()),
        }
    }
    Ok((command, o))
}

fn build_session(o: &Options, src: &str) -> Result<Session, String> {
    let mut s = Session::new(SessionConfig {
        lower: o.mode,
        opt: o.opt,
        ..Default::default()
    })
    .map_err(|e| e.to_string())?;
    s.load_str(src).map_err(|e| e.to_string())?;
    if o.dynamic {
        optimize_all(&mut s, &ReflectOptions::default()).map_err(|e| e.to_string())?;
    }
    Ok(s)
}

fn read_source(o: &Options) -> Result<String, String> {
    let path = o.positional.first().ok_or("missing input file")?;
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

fn guess_entry(s: &Session, o: &Options) -> Result<String, String> {
    if let Some(e) = &o.entry {
        return Ok(e.clone());
    }
    // Default: the last loaded module's `main`.
    let last = s
        .modules
        .iter()
        .rev()
        .find(|m| s.global(&format!("{m}.main")).is_some())
        .ok_or("no entry point; pass --entry mod.fn")?;
    Ok(format!("{last}.main"))
}

fn cmd_run(o: &Options) -> Result<(), String> {
    let src = read_source(o)?;
    let mut s = build_session(o, &src)?;
    let entry = guess_entry(&s, o)?;
    let args: Vec<RVal> = o.args.iter().map(|n| RVal::Int(*n)).collect();
    let out = s.call(&entry, args).map_err(|e| e.to_string())?;
    for line in &out.output {
        println!("{line}");
    }
    println!("{:?}", out.result);
    if o.stats {
        eprintln!(
            "instructions={} calls={} closures={} exceptions={}",
            out.stats.instrs, out.stats.calls, out.stats.closures, out.stats.exceptions
        );
    }
    Ok(())
}

fn cmd_tml(o: &Options) -> Result<(), String> {
    let src = read_source(o)?;
    let mut s = build_session(o, &src)?;
    let mut names: Vec<String> = match &o.target_fn {
        Some(f) => vec![f.clone()],
        None => {
            let mut v: Vec<String> = s
                .globals
                .keys()
                .filter(|n| n.contains('.') && !is_stdlib(n))
                .cloned()
                .collect();
            v.sort();
            v
        }
    };
    if names.is_empty() {
        names = s.globals.keys().cloned().collect();
        names.sort();
    }
    for name in names {
        let Some(SVal::Ref(oid)) = s.globals.get(&name).cloned() else {
            continue;
        };
        let abs = {
            let mut tb = TermBuilder::new(&mut s.ctx, &s.store);
            match tb.build(oid, 0) {
                Ok(a) => a,
                Err(e) => return Err(format!("{name}: {e}")),
            }
        };
        println!("; {name}");
        println!("{}\n", tycoon::core::pretty::print_abs(&s.ctx, &abs));
    }
    Ok(())
}

fn is_stdlib(name: &str) -> bool {
    ["int.", "real.", "array.", "char.", "io."]
        .iter()
        .any(|p| name.starts_with(p))
}

fn cmd_code(o: &Options) -> Result<(), String> {
    let src = read_source(o)?;
    let s = build_session(o, &src)?;
    print!("{}", tycoon::vm::disasm::table(&s.vm.code));
    Ok(())
}

fn cmd_eval(o: &Options) -> Result<(), String> {
    let text = o.positional.first().ok_or("missing TML expression")?;
    let mut ctx = tycoon::core::Ctx::new();
    let parsed = tycoon::core::parse::parse_app(&mut ctx, text).map_err(|e| e.to_string())?;
    let mut app = parsed.app;
    if o.opt == OptMode::Local {
        let (optimized, _) =
            tycoon::opt::optimize(&mut ctx, app, &tycoon::opt::OptOptions::default());
        app = optimized;
    }
    let mut vm = tycoon::vm::Vm::new();
    let block = vm.compile_program(&ctx, &app).map_err(|e| e.to_string())?;
    let mut store = tycoon::store::Store::new();
    let out = vm
        .run_program(&mut store, block, 1_000_000_000)
        .map_err(|e| e.to_string())?;
    for line in &out.output {
        println!("{line}");
    }
    println!("{:?}", out.result);
    if o.stats {
        eprintln!(
            "instructions={} calls={} closures={}",
            out.stats.instrs, out.stats.calls, out.stats.closures
        );
    }
    Ok(())
}

fn cmd_snapshot(o: &Options) -> Result<(), String> {
    let src = read_source(o)?;
    let s = build_session(o, &src)?;
    let path = o.output.clone().ok_or("missing -o <image.tys>")?;
    snapshot::save(&s.store, &path).map_err(|e| e.to_string())?;
    let st = s.store.stats();
    println!(
        "wrote {path}: {} objects, {} bytes ({} bytes PTML, {} closures)",
        st.objects, st.bytes, st.ptml_bytes, st.closures
    );
    Ok(())
}

fn cmd_info(o: &Options) -> Result<(), String> {
    let path = o.positional.first().ok_or("missing image file")?;
    let store = snapshot::load(path).map_err(|e| e.to_string())?;
    let st = store.stats();
    println!(
        "{path}: {} live objects ({} slots), ~{} bytes, {} closures, {} bytes PTML",
        st.objects,
        store.len(),
        st.bytes,
        st.closures,
        st.ptml_bytes
    );
    println!("roots:");
    for (name, oid) in store.roots() {
        let kind = store.get(oid).map(|ob| ob.kind()).unwrap_or("dangling");
        println!("  {name:<20} {oid}  ({kind})");
    }
    let mut kinds: std::collections::BTreeMap<&str, usize> = Default::default();
    for (_, obj) in store.iter() {
        *kinds.entry(obj.kind()).or_default() += 1;
    }
    println!("objects by kind:");
    for (k, n) in kinds {
        println!("  {k:<12} {n}");
    }
    let cache = store.cache();
    let cs = store.cache_stats();
    println!(
        "optimization cache: {} entries (cap {}), ~{} bytes",
        cache.len(),
        cache.cap(),
        cache.byte_size()
    );
    println!(
        "  hits {}  misses {}  invalidations {}  evictions {}  inserts {}",
        cs.hits, cs.misses, cs.invalidations, cs.evictions, cs.inserts
    );
    Ok(())
}

fn main() -> ExitCode {
    let (command, options) = match parse_args(std::env::args()) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("tmlc: {e}\n\nusage: tmlc run|tml|code|eval|snapshot|info ...");
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "run" => cmd_run(&options),
        "tml" => cmd_tml(&options),
        "code" => cmd_code(&options),
        "eval" => cmd_eval(&options),
        "snapshot" => cmd_snapshot(&options),
        "info" => cmd_info(&options),
        other => Err(format!("unknown command {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tmlc: {e}");
            ExitCode::FAILURE
        }
    }
}
