//! `tmlc` — the Tycoon/TML command line.
//!
//! ```text
//! tmlc run <file.tl> --entry mod.fn [--arg N]... [options]   run a TL program
//! tmlc tml <file.tl> [--fn mod.fn] [options]                 print TML terms
//! tmlc code <file.tl> [options]                              disassemble bytecode
//! tmlc eval '<tml s-expression>'                             run a raw TML program
//! tmlc snapshot <file.tl> -o <image.tys>                     persist a compiled image
//! tmlc info <image.tys> [--json]                             inspect a store image
//! tmlc profile <input> <mod.fn> [--arg N]... [--json]        run under the tracer
//! tmlc stats <input> [mod.fn] [--arg N]...                   latency percentiles per subsystem
//! tmlc explain <input> <mod.fn> [--json] [--verify]          optimizer provenance log
//! tmlc opt <input> [--jobs N] [options]                      whole-world optimization report
//! tmlc fsck <image.tys> [--repair -o out.tys]                validate (and repair) an image
//! tmlc serve <image> [--addr host:port] [options]            multi-session transaction server
//! tmlc prims [--json]                                        list the primitive registry
//!
//! `profile` and `explain` accept either a TL source file or a persisted
//! `.tys` image (whose PTML closures are relinked on load). Paged durable
//! images (TYCAT1 catalogs written by `--durable` sessions) are recognised
//! by content and opened through full recovery — catalog, page file and
//! write-ahead-log redo. Damaged images are loaded through the recovery
//! cascade (backup, then object salvage); `fsck` checks magic/CRC/framing,
//! walks every OID reference and decodes every closure's PTML, printing a
//! JSON report (with a `pages` section for paged images). With `--repair`
//! it writes whatever the recovery cascade can save to `-o`.
//!
//! options:
//!   --mode library|direct     operator lowering (default library)
//!   --opt none|local          static optimization (default none)
//!   --dynamic                 whole-world reflective optimization before running
//!   --durable <path>          run/opt/profile/stats: back the session with the
//!                             write-ahead-logged paged store at <path> (created
//!                             on first use); every mutation is logged, and the
//!                             command ends with a commit + checkpoint
//!   --jobs N                  worker threads for whole-world optimization (default 1;
//!                             results are identical for every N)
//!   --stats                   print machine counters
//!   --json                    emit the trace JSON schema instead of text
//!   --top N                   rows per profile table (default 10)
//!   --verify                  explain: replay the provenance log and compare PTML
//!   --repair                  fsck: write the recovered image to -o <out.tys>
//!   --spans                   profile: print the recorded span tree
//!   --hist                    profile: print latency histograms (p50/p90/p99/max)
//!   --chrome <out.json>       profile/stats: write Chrome tracing JSON (chrome://tracing)
//!   --flame <out.folded>      profile/stats: write collapsed stacks (flamegraph.pl input)
//!   --runs N                  stats: entry-point invocations to sample (default 10)
//!   --addr host:port          serve: bind address (default 127.0.0.1:7170; :0 for ephemeral)
//!   --max-conns N             serve: refuse connections beyond N with a typed busy error
//!   --lock-ms N               serve: lock acquisition timeout in milliseconds
//!   --conn-timeout-ms N       serve: per-connection idle read timeout (default 30000)
//!   --tier-threshold N        serve: promote a closure to the hot tier after N calls
//!                             (default 1000)
//!   --tier-interval-ms N      serve: background re-optimizer sampling interval (default 25)
//!   --tier-off                serve: disable background tier re-optimization
//! ```

use std::process::ExitCode;
use tycoon::core::Registry;
use tycoon::lang::types::LowerMode;
use tycoon::lang::{OptMode, Session, SessionConfig};
use tycoon::reflect::{
    optimize_all, optimize_named, relink_image_code, session_from_access_with,
    session_from_store_with, ReflectOptions, TermBuilder,
};
use tycoon::store::ptml::{decode_abs, encode_abs};
use tycoon::store::{gc, paged, snapshot, wal, DurableStore, Object, SVal, StoreAccess};
use tycoon::trace;
use tycoon::trace::Event;
use tycoon::vm::RVal;

struct Options {
    mode: LowerMode,
    opt: OptMode,
    dynamic: bool,
    durable: Option<String>,
    stats: bool,
    json: bool,
    verify: bool,
    repair: bool,
    jobs: u32,
    top: usize,
    spans: bool,
    hist: bool,
    chrome: Option<String>,
    flame: Option<String>,
    runs: u64,
    entry: Option<String>,
    args: Vec<i64>,
    output: Option<String>,
    target_fn: Option<String>,
    addr: Option<String>,
    max_conns: usize,
    lock_ms: Option<u64>,
    conn_timeout_ms: u64,
    tier_threshold: u64,
    tier_interval_ms: u64,
    tier_off: bool,
    positional: Vec<String>,
}

fn parse_args(mut args: std::env::Args) -> Result<(String, Options), String> {
    let _ = args.next(); // program name
    let command = args.next().ok_or("missing command")?;
    let mut o = Options {
        mode: LowerMode::Library,
        opt: OptMode::None,
        dynamic: false,
        durable: None,
        stats: false,
        json: false,
        verify: false,
        repair: false,
        jobs: 1,
        top: 10,
        spans: false,
        hist: false,
        chrome: None,
        flame: None,
        runs: 10,
        entry: None,
        args: Vec::new(),
        output: None,
        target_fn: None,
        addr: None,
        max_conns: 64,
        lock_ms: None,
        conn_timeout_ms: 30_000,
        tier_threshold: 1000,
        tier_interval_ms: 25,
        tier_off: false,
        positional: Vec::new(),
    };
    let mut it = args;
    while let Some(a) = it.next() {
        match a.as_str() {
            "--mode" => {
                o.mode = match it.next().as_deref() {
                    Some("library") => LowerMode::Library,
                    Some("direct") => LowerMode::Direct,
                    other => return Err(format!("bad --mode {other:?}")),
                }
            }
            "--opt" => {
                o.opt = match it.next().as_deref() {
                    Some("none") => OptMode::None,
                    Some("local") => OptMode::Local,
                    other => return Err(format!("bad --opt {other:?}")),
                }
            }
            "--dynamic" => o.dynamic = true,
            "--durable" => o.durable = Some(it.next().ok_or("--durable needs a path")?),
            "--stats" => o.stats = true,
            "--spans" => o.spans = true,
            "--hist" => o.hist = true,
            "--chrome" => o.chrome = Some(it.next().ok_or("--chrome needs a path")?),
            "--flame" => o.flame = Some(it.next().ok_or("--flame needs a path")?),
            "--runs" => {
                let v = it.next().ok_or("--runs needs a value")?;
                o.runs = v.parse().map_err(|e| format!("bad --runs: {e}"))?;
            }
            "--json" => o.json = true,
            "--verify" => o.verify = true,
            "--repair" => o.repair = true,
            "--top" => {
                let v = it.next().ok_or("--top needs a value")?;
                o.top = v.parse().map_err(|e| format!("bad --top: {e}"))?;
            }
            "--jobs" => {
                let v = it.next().ok_or("--jobs needs a value")?;
                o.jobs = v.parse().map_err(|e| format!("bad --jobs: {e}"))?;
            }
            "--entry" => o.entry = Some(it.next().ok_or("--entry needs a value")?),
            "--addr" => o.addr = Some(it.next().ok_or("--addr needs host:port")?),
            "--max-conns" => {
                let v = it.next().ok_or("--max-conns needs a value")?;
                o.max_conns = v.parse().map_err(|e| format!("bad --max-conns: {e}"))?;
            }
            "--lock-ms" => {
                let v = it.next().ok_or("--lock-ms needs a value")?;
                o.lock_ms = Some(v.parse().map_err(|e| format!("bad --lock-ms: {e}"))?);
            }
            "--conn-timeout-ms" => {
                let v = it.next().ok_or("--conn-timeout-ms needs a value")?;
                o.conn_timeout_ms = v
                    .parse()
                    .map_err(|e| format!("bad --conn-timeout-ms: {e}"))?;
            }
            "--tier-threshold" => {
                let v = it.next().ok_or("--tier-threshold needs a value")?;
                o.tier_threshold = v
                    .parse()
                    .map_err(|e| format!("bad --tier-threshold: {e}"))?;
            }
            "--tier-interval-ms" => {
                let v = it.next().ok_or("--tier-interval-ms needs a value")?;
                o.tier_interval_ms = v
                    .parse()
                    .map_err(|e| format!("bad --tier-interval-ms: {e}"))?;
            }
            "--tier-off" => o.tier_off = true,
            "--fn" => o.target_fn = Some(it.next().ok_or("--fn needs a value")?),
            "-o" | "--output" => o.output = Some(it.next().ok_or("-o needs a value")?),
            "--arg" => {
                let v = it.next().ok_or("--arg needs a value")?;
                o.args
                    .push(v.parse().map_err(|e| format!("bad --arg: {e}"))?);
            }
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            other => o.positional.push(other.to_string()),
        }
    }
    Ok((command, o))
}

fn reflect_options(o: &Options) -> ReflectOptions {
    ReflectOptions {
        jobs: o.jobs,
        ..Default::default()
    }
}

fn build_session(o: &Options, src: &str) -> Result<Session, String> {
    let mut s = Session::new(SessionConfig {
        lower: o.mode,
        opt: o.opt,
        ..Default::default()
    })
    .map_err(|e| e.to_string())?;
    s.load_str(src).map_err(|e| e.to_string())?;
    if o.dynamic {
        optimize_all(&mut s, &reflect_options(o)).map_err(|e| e.to_string())?;
    }
    Ok(s)
}

fn read_source(o: &Options) -> Result<String, String> {
    let path = o.positional.first().ok_or("missing input file")?;
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

/// The full primitive world the `tmlc` driver operates in: the standard
/// set plus the query extension, built through the one shared
/// [`Registry`] path.
fn driver_registry() -> Registry {
    Registry::standard().with(tycoon::query::prims::register_prims)
}

/// Narrate what [`DurableStore::open`] had to do to reconstruct the store
/// (shared by `--durable` sessions and read-only loads of paged images).
fn report_open(path: &str, report: &tycoon::store::OpenReport) {
    if report.snapshot.source != snapshot::RecoverySource::Primary {
        eprintln!(
            "tmlc: {path}: image damaged, loaded from {} ({} object(s), {} root(s) dropped)",
            report.snapshot.source.name(),
            report.snapshot.dropped_objects,
            report.snapshot.dropped_roots
        );
    }
    if report.migrated_legacy {
        eprintln!("tmlc: {path}: migrated legacy snapshot to paged storage");
    }
    if report.redo_records > 0 {
        eprintln!(
            "tmlc: {path}: replayed {} logged record(s) across {} commit(s)",
            report.redo_records, report.redo_commits
        );
    }
}

/// Build a runnable session around a recovered image: install the query
/// externs, recompile and relink every closure from its PTML, and run the
/// optional whole-world optimization pass.
fn image_session(o: &Options, path: &str, store: tycoon::store::Store) -> Result<Session, String> {
    let mut s = session_from_store_with(store, SessionConfig::default(), driver_registry());
    tycoon::query::exec::install_externs(&mut s.vm.externs);
    let relink = relink_image_code(&mut s).map_err(|e| e.to_string())?;
    if relink.skipped > 0 {
        eprintln!(
            "tmlc: {path}: {} closure(s) left degraded (unreadable PTML)",
            relink.skipped
        );
    }
    if o.dynamic {
        optimize_all(&mut s, &reflect_options(o)).map_err(|e| e.to_string())?;
    }
    Ok(s)
}

/// Load either a TL source file or a persisted store image into a
/// runnable session. Images carry no executable code (the persistent
/// representation of code is PTML), so every closure is recompiled and
/// relinked in place; the session is built over the driver registry so
/// decoding resolves the query primitives. Paged durable images are
/// recognised by content and opened through full recovery (catalog +
/// write-ahead-log redo), then dropped to a plain in-memory session for
/// these read-only commands — pass `--durable` to keep writing to them.
fn load_input(o: &Options) -> Result<Session, String> {
    let path = o.positional.first().ok_or("missing input file")?;
    if paged::is_catalog_file(path) {
        let (ds, report) =
            DurableStore::open(path, Default::default()).map_err(|e| format!("{path}: {e}"))?;
        report_open(path, &report);
        image_session(o, path, ds.into_store())
    } else if path.ends_with(".tys") {
        let (store, recovery) =
            snapshot::load_with_recovery(path).map_err(|e| format!("{path}: {e}"))?;
        if recovery.source != snapshot::RecoverySource::Primary {
            eprintln!(
                "tmlc: {path}: image damaged, loaded from {} ({} object(s), {} root(s) dropped)",
                recovery.source.name(),
                recovery.dropped_objects,
                recovery.dropped_roots
            );
        }
        image_session(o, path, store)
    } else {
        let src = read_source(o)?;
        build_session(o, &src)
    }
}

/// Open (or create) the write-ahead-logged paged store at `path` and build
/// a session over it: every mutation the command performs — module loads,
/// reflective optimization, VM allocation — goes through the store-access
/// seam and is redo-logged before it is applied. A positional `.tl` source
/// is loaded on top of whatever the image holds (modules the image already
/// carries are skipped); other positionals (the image path itself, entry
/// names) are left to the command.
fn durable_session(o: &Options, path: &str) -> Result<Session<DurableStore>, String> {
    let config = SessionConfig {
        lower: o.mode,
        opt: o.opt,
        ..Default::default()
    };
    let mut s = if std::path::Path::new(path).exists() {
        let (ds, report) =
            DurableStore::open(path, Default::default()).map_err(|e| format!("{path}: {e}"))?;
        report_open(path, &report);
        let mut s = session_from_access_with(ds, config, driver_registry());
        tycoon::query::exec::install_externs(&mut s.vm.externs);
        let relink = relink_image_code(&mut s).map_err(|e| e.to_string())?;
        if relink.skipped > 0 {
            eprintln!(
                "tmlc: {path}: {} closure(s) left degraded (unreadable PTML)",
                relink.skipped
            );
        }
        // An image whose creating command failed before its first commit
        // recovers as an empty store; give it the standard library like a
        // fresh one (logged through the seam, so it persists this time).
        if s.global("int.add").is_none() {
            s.load_str(tycoon::lang::stdlib::STDLIB_SRC)
                .map_err(|e| e.to_string())?;
        }
        s
    } else {
        let ds =
            DurableStore::create(path, Default::default()).map_err(|e| format!("{path}: {e}"))?;
        let mut s = Session::on_store(ds, config, driver_registry()).map_err(|e| e.to_string())?;
        tycoon::query::exec::install_externs(&mut s.vm.externs);
        s
    };
    if let Some(src_path) = o.positional.first().filter(|p| p.ends_with(".tl")) {
        let src = std::fs::read_to_string(src_path).map_err(|e| format!("{src_path}: {e}"))?;
        match s.load_str(&src) {
            Ok(()) => {}
            // Re-running a program against its own image: the modules are
            // already persistent, the relinked closures are current.
            Err(tycoon::lang::LangError::DuplicateModule(_)) => {}
            Err(e) => return Err(e.to_string()),
        }
    }
    if o.dynamic {
        optimize_all(&mut s, &reflect_options(o)).map_err(|e| e.to_string())?;
    }
    Ok(s)
}

/// The durable epilogue for every `--durable` command: make the session's
/// outstanding mutations a committed log prefix, then checkpoint the dirty
/// pages into the catalog.
fn seal_durable(s: &mut Session<DurableStore>) -> Result<(), String> {
    s.store.commit().map_err(|e| format!("commit: {e}"))?;
    s.store
        .checkpoint()
        .map_err(|e| format!("checkpoint: {e}"))?;
    Ok(())
}

fn guess_entry<S: StoreAccess>(s: &Session<S>, o: &Options) -> Result<String, String> {
    if let Some(e) = &o.entry {
        return Ok(e.clone());
    }
    // Default: the last loaded module's `main`.
    let last = s
        .modules
        .iter()
        .rev()
        .find(|m| s.global(&format!("{m}.main")).is_some())
        .ok_or("no entry point; pass --entry mod.fn")?;
    Ok(format!("{last}.main"))
}

/// `tmlc opt <input> [--jobs N]`: run whole-world reflective optimization
/// over a TL source file or a `.tys` image and report what it did. The
/// report is identical for every `--jobs` value; higher values only spread
/// the decode → optimize → encode work over threads.
fn cmd_opt(o: &Options) -> Result<(), String> {
    if let Some(path) = o.durable.clone() {
        let mut s = durable_session(o, &path)?;
        opt_report(&mut s, o)?;
        return seal_durable(&mut s);
    }
    let mut s = load_input(o)?;
    opt_report(&mut s, o)
}

fn opt_report<S: StoreAccess>(s: &mut Session<S>, o: &Options) -> Result<(), String> {
    let report = optimize_all(s, &reflect_options(o)).map_err(|e| e.to_string())?;
    println!(
        "optimized {} function(s) with {} job(s): size {} -> {} nodes, {} call site(s) inlined, {} reduction(s)",
        report.functions,
        o.jobs.max(1),
        report.size_before,
        report.size_after,
        report.inlined,
        report.reductions
    );
    if report.skipped > 0 {
        println!(
            "skipped {} target(s) in degraded mode (see trace for details)",
            report.skipped
        );
    }
    Ok(())
}

fn cmd_run(o: &Options) -> Result<(), String> {
    if let Some(path) = o.durable.clone() {
        let mut s = durable_session(o, &path)?;
        run_entry(&mut s, o)?;
        return seal_durable(&mut s);
    }
    let src = read_source(o)?;
    let mut s = build_session(o, &src)?;
    run_entry(&mut s, o)
}

fn run_entry<S: StoreAccess>(s: &mut Session<S>, o: &Options) -> Result<(), String> {
    let entry = guess_entry(s, o)?;
    let args: Vec<RVal> = o.args.iter().map(|n| RVal::Int(*n)).collect();
    let out = s.call(&entry, args).map_err(|e| e.to_string())?;
    for line in &out.output {
        println!("{line}");
    }
    println!("{:?}", out.result);
    if o.stats {
        eprintln!(
            "instructions={} calls={} closures={} exceptions={}",
            out.stats.instrs, out.stats.calls, out.stats.closures, out.stats.exceptions
        );
    }
    Ok(())
}

fn cmd_tml(o: &Options) -> Result<(), String> {
    let src = read_source(o)?;
    let mut s = build_session(o, &src)?;
    let mut names: Vec<String> = match &o.target_fn {
        Some(f) => vec![f.clone()],
        None => {
            let mut v: Vec<String> = s
                .globals
                .keys()
                .filter(|n| n.contains('.') && !is_stdlib(n))
                .cloned()
                .collect();
            v.sort();
            v
        }
    };
    if names.is_empty() {
        names = s.globals.keys().cloned().collect();
        names.sort();
    }
    for name in names {
        let Some(SVal::Ref(oid)) = s.globals.get(&name).cloned() else {
            continue;
        };
        let abs = {
            let mut tb = TermBuilder::new(&mut s.ctx, &s.store);
            match tb.build(oid, 0) {
                Ok(a) => a,
                Err(e) => return Err(format!("{name}: {e}")),
            }
        };
        println!("; {name}");
        println!("{}\n", tycoon::core::pretty::print_abs(&s.ctx, &abs));
    }
    Ok(())
}

fn is_stdlib(name: &str) -> bool {
    ["int.", "real.", "array.", "char.", "io."]
        .iter()
        .any(|p| name.starts_with(p))
}

fn cmd_code(o: &Options) -> Result<(), String> {
    let src = read_source(o)?;
    let s = build_session(o, &src)?;
    print!("{}", tycoon::vm::disasm::table(&s.vm.code));
    Ok(())
}

fn cmd_eval(o: &Options) -> Result<(), String> {
    let text = o.positional.first().ok_or("missing TML expression")?;
    let mut ctx = tycoon::core::Ctx::new();
    let parsed = tycoon::core::parse::parse_app(&mut ctx, text).map_err(|e| e.to_string())?;
    let mut app = parsed.app;
    if o.opt == OptMode::Local {
        let (optimized, _) =
            tycoon::opt::optimize(&mut ctx, app, &tycoon::opt::OptOptions::default());
        app = optimized;
    }
    let mut vm = tycoon::vm::Vm::new();
    let block = vm.compile_program(&ctx, &app).map_err(|e| e.to_string())?;
    let mut store = tycoon::store::Store::new();
    let out = vm
        .run_program(&mut store, block, 1_000_000_000)
        .map_err(|e| e.to_string())?;
    for line in &out.output {
        println!("{line}");
    }
    println!("{:?}", out.result);
    if o.stats {
        eprintln!(
            "instructions={} calls={} closures={}",
            out.stats.instrs, out.stats.calls, out.stats.closures
        );
    }
    Ok(())
}

fn cmd_snapshot(o: &Options) -> Result<(), String> {
    let src = read_source(o)?;
    let s = build_session(o, &src)?;
    let path = o.output.clone().ok_or("missing -o <image.tys>")?;
    snapshot::save(&s.store, &path).map_err(|e| e.to_string())?;
    let st = s.store.stats();
    println!(
        "wrote {path}: {} objects, {} bytes ({} bytes PTML, {} closures)",
        st.objects, st.bytes, st.ptml_bytes, st.closures
    );
    Ok(())
}

/// Print every registry counter under the given prefixes (all when empty),
/// sorted by name — the single text reporting path shared by `info` and
/// `profile`.
fn print_counters(prefixes: &[&str]) {
    for (name, value) in trace::global().registry().snapshot() {
        if prefixes.is_empty() || prefixes.iter().any(|p| name.starts_with(p)) {
            println!("  {name:<36} {value}");
        }
    }
}

/// Top-`n` counters under a prefix, sorted by value descending; the prefix
/// is stripped from the returned names.
fn top_counters(prefix: &str, n: usize) -> Vec<(String, u64)> {
    let mut rows: Vec<(String, u64)> = trace::global()
        .registry()
        .snapshot_prefix(prefix)
        .into_iter()
        .map(|(name, v)| (name[prefix.len()..].to_string(), v))
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    rows.truncate(n);
    rows
}

fn cmd_info(o: &Options) -> Result<(), String> {
    let path = o.positional.first().ok_or("missing image file")?;
    let rec = trace::global();
    rec.clear();
    let store;
    let identity;
    if paged::is_catalog_file(path) {
        // A paged durable image: decode the catalog and rebuild the store
        // from the page file, without touching the write-ahead log (info
        // is read-only; the log is reported below from its own scan).
        let opened = paged::open_catalog(std::path::Path::new(path))
            .map_err(|e| format!("{path}: {e}"))?
            .ok_or_else(|| {
                format!("{path}: unreadable paged catalog (run `tmlc fsck {path}` for a report)")
            })?;
        if opened.source != snapshot::RecoverySource::Primary {
            eprintln!(
                "tmlc: {path}: catalog damaged, loaded from {}",
                opened.source.name()
            );
        }
        let p = opened.heap.stats();
        let b = opened.heap.buffer_stats();
        rec.counter("store.page.gen").set(p.gen);
        rec.counter("store.page.pages").set(p.pages);
        rec.counter("store.page.records").set(p.dir_entries);
        rec.counter("store.page.chains").set(p.chains);
        rec.counter("store.page.live_bytes").set(p.live_bytes);
        rec.counter("store.page.dead_bytes").set(p.dead_bytes);
        rec.counter("store.buffer.resident").set(p.resident);
        rec.counter("store.buffer.hits").set(b.hits);
        rec.counter("store.buffer.misses").set(b.misses);
        rec.counter("store.buffer.evictions").set(b.evictions);
        rec.counter("store.buffer.writebacks").set(b.writebacks);
        identity = opened.identity;
        store = opened.store;
    } else {
        let (st, recovery) = snapshot::load_with_recovery(path)
            .map_err(|e| format!("{e} (run `tmlc fsck {path}` for a full report)"))?;
        if recovery.source != snapshot::RecoverySource::Primary {
            eprintln!(
                "tmlc: {path}: image damaged, loaded from {} ({} object(s), {} root(s) dropped)",
                recovery.source.name(),
                recovery.dropped_objects,
                recovery.dropped_roots
            );
        }
        identity = snapshot::identity_of_file(path).map_err(|e| e.to_string())?;
        store = st;
    }
    // All reporting goes through the counter registry: footprint and cache
    // totals as gauges, object population per kind.
    store.publish_counters();
    for (_, obj) in store.iter() {
        rec.counter(&format!("store.kind.{}", obj.kind())).inc();
    }
    // Tier section: per-tier closure counts plus the persisted swap/deopt
    // totals (the `tier.stats` root survives checkpoints).
    tycoon::reflect::tier::publish_gauges(&store, None);
    // Log stats, when a write-ahead log sits next to the image. `stale`
    // means the log was written against a different base image and redo
    // would be skipped on open.
    let scan = wal::Wal::scan(wal::wal_path(path)).map_err(|e| format!("{path}.wal: {e}"))?;
    if scan.exists {
        let stale = scan.base != Some(identity);
        rec.counter("store.wal.log_bytes").add(scan.file_bytes);
        rec.counter("store.wal.log_records")
            .add(scan.records.len() as u64);
        rec.counter("store.wal.log_committed")
            .add(scan.committed as u64);
        rec.counter("store.wal.log_commits").add(scan.commits);
        rec.counter("store.wal.log_torn_tail")
            .add(u64::from(scan.torn_tail));
        rec.counter("store.wal.log_stale").add(u64::from(stale));
        // Transaction population of the log: forward ops vs compensation
        // records, terminal markers, and transactions still open at the
        // tail (losers a reopen will roll back).
        let mut ops = 0u64;
        let mut clrs = 0u64;
        let mut commits = 0u64;
        let mut aborts = 0u64;
        let mut open: std::collections::BTreeSet<u64> = Default::default();
        for (_, r) in &scan.records {
            match r {
                wal::WalRecord::TxnOp { txn, clr, .. } => {
                    if *clr {
                        clrs += 1;
                    } else {
                        ops += 1;
                    }
                    open.insert(*txn);
                }
                wal::WalRecord::TxnCommit { txn } => {
                    commits += 1;
                    open.remove(txn);
                }
                wal::WalRecord::TxnAbort { txn } => {
                    aborts += 1;
                    open.remove(txn);
                }
                _ => {}
            }
        }
        rec.counter("txn.log_ops").set(ops);
        rec.counter("txn.log_clrs").set(clrs);
        rec.counter("txn.log_commits").set(commits);
        rec.counter("txn.log_aborts").set(aborts);
        rec.counter("txn.log_open").set(open.len() as u64);
    }
    if o.json {
        println!("{}", rec.to_json());
        return Ok(());
    }
    println!("{path}:");
    println!("roots:");
    for (name, oid) in store.roots() {
        let kind = store.get(oid).map(|ob| ob.kind()).unwrap_or("dangling");
        println!("  {name:<20} {oid}  ({kind})");
    }
    println!("store:");
    print_counters(&["store.", "txn.", "reflect.tier."]);
    Ok(())
}

/// Write the recorded span tree to `--chrome` / `--flame` targets, if any
/// were requested. Shared by `profile` and `stats`.
fn write_exports(o: &Options) -> Result<(), String> {
    let rec = trace::global();
    if o.chrome.is_some() || o.flame.is_some() {
        let samples = rec.events();
        if let Some(path) = &o.chrome {
            std::fs::write(path, trace::export::chrome_json(&samples))
                .map_err(|e| format!("{path}: {e}"))?;
            eprintln!("tmlc: wrote Chrome trace to {path} (load in chrome://tracing)");
        }
        if let Some(path) = &o.flame {
            std::fs::write(path, trace::export::flame_folded(&samples))
                .map_err(|e| format!("{path}: {e}"))?;
            eprintln!("tmlc: wrote collapsed stacks to {path} (feed to flamegraph.pl)");
        }
    }
    Ok(())
}

/// Human scale for a nanosecond duration.
fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}us", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

/// Print the latency-histogram table (every histogram whose name starts
/// with one of `prefixes`; all when empty).
fn print_hist_table(prefixes: &[&str]) {
    let rows = trace::global().hist_snapshot();
    println!(
        "  {:<28} {:>8} {:>9} {:>9} {:>9} {:>9} {:>10}",
        "name", "count", "p50", "p90", "p99", "max", "total"
    );
    for (name, h) in rows {
        if !(prefixes.is_empty() || prefixes.iter().any(|p| name.starts_with(p))) {
            continue;
        }
        println!(
            "  {:<28} {:>8} {:>9} {:>9} {:>9} {:>9} {:>10}",
            name,
            h.count,
            fmt_ns(h.p50),
            fmt_ns(h.p90),
            fmt_ns(h.p99),
            fmt_ns(h.max),
            fmt_ns(h.sum)
        );
    }
}

/// Print the recorded spans as an indented tree (roots in start order).
/// Spans whose parents were lost to ring wraparound print as roots.
fn print_span_tree(samples: &[trace::Sample]) {
    struct Node {
        name: &'static str,
        parent: u64,
        thread: u64,
        start_ns: u64,
        dur_ns: u64,
    }
    let mut nodes: std::collections::BTreeMap<u64, Node> = Default::default();
    let mut kids: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
    for s in samples {
        if let Event::Span {
            name,
            id,
            parent,
            thread,
            start_ns,
            dur_ns,
        } = s.event
        {
            nodes.insert(
                id,
                Node {
                    name,
                    parent,
                    thread,
                    start_ns,
                    dur_ns,
                },
            );
        }
    }
    for (id, n) in &nodes {
        if nodes.contains_key(&n.parent) {
            kids.entry(n.parent).or_default().push(*id);
        }
    }
    let mut roots: Vec<u64> = nodes
        .iter()
        .filter(|(_, n)| !nodes.contains_key(&n.parent))
        .map(|(id, _)| *id)
        .collect();
    roots.sort_by_key(|id| (nodes[id].start_ns, *id));
    for c in kids.values_mut() {
        c.sort_by_key(|id| (nodes[id].start_ns, *id));
    }
    // Iterative DFS (children were pushed in start order, so pop reversed).
    let mut stack: Vec<(u64, usize)> = roots.into_iter().rev().map(|id| (id, 0)).collect();
    while let Some((id, depth)) = stack.pop() {
        let n = &nodes[&id];
        println!(
            "  {:indent$}{} {} [thread {}]",
            "",
            n.name,
            fmt_ns(n.dur_ns),
            n.thread,
            indent = depth * 2
        );
        if let Some(children) = kids.get(&id) {
            for &c in children.iter().rev() {
                stack.push((c, depth + 1));
            }
        }
    }
}

/// The measured body of `profile`: one entry-point call plus a counter
/// publish, over whichever store backend the command selected.
fn profile_call<S: StoreAccess>(
    s: &mut Session<S>,
    fname: &str,
    o: &Options,
) -> Result<tycoon::lang::session::CallResult, String> {
    let args: Vec<RVal> = o.args.iter().map(|n| RVal::Int(*n)).collect();
    let out = s.call(fname, args).map_err(|e| e.to_string())?;
    s.store.base().publish_counters();
    Ok(out)
}

fn cmd_profile(o: &Options) -> Result<(), String> {
    let fname = o
        .positional
        .get(1)
        .cloned()
        .or_else(|| o.entry.clone())
        .ok_or("missing function name: tmlc profile <input> <mod.fn>")?;
    let rec = trace::global();
    rec.clear();
    rec.set_capacity(1 << 16);
    rec.set_enabled(true);
    let out = if let Some(path) = o.durable.clone() {
        let mut s = durable_session(o, &path)?;
        let out = profile_call(&mut s, &fname, o)?;
        s.store.publish_page_counters();
        seal_durable(&mut s)?;
        out
    } else {
        let mut s = load_input(o)?;
        profile_call(&mut s, &fname, o)?
    };
    rec.set_enabled(false);
    write_exports(o)?;
    if o.json {
        println!("{}", rec.to_json());
        return Ok(());
    }
    println!("profile {fname} => {:?}", out.result);
    println!(
        "  instructions {}  calls {}  closures {}  wall {}us",
        rec.counter("vm.instrs").get(),
        rec.counter("vm.calls").get(),
        rec.counter("vm.closures").get(),
        rec.counter("vm.wall_micros").get(),
    );
    println!("opcodes (top {}):", o.top);
    for (name, n) in top_counters("vm.op.", o.top) {
        println!("  {name:<24} {n}");
    }
    let prims = top_counters("vm.prim.", o.top);
    if !prims.is_empty() {
        println!("primitives (top {}):", o.top);
        for (name, n) in prims {
            println!("  {name:<24} {n}");
        }
    }
    println!("hot closures (top {}):", o.top);
    for (name, n) in top_counters("vm.block.", o.top) {
        println!("  {name:<24} {n}");
    }
    println!("store:");
    print_counters(&["store.", "query.", "reflect."]);
    if o.hist {
        println!("latency histograms:");
        print_hist_table(&[]);
    }
    if o.spans {
        println!("spans:");
        print_span_tree(&rec.events());
    }
    Ok(())
}

/// `tmlc stats <input> [mod.fn] [--arg N] [--runs N]`: exercise every
/// instrumented subsystem — whole-world optimization (opt + reflect),
/// repeated entry-point runs (vm), and a WAL commit/checkpoint cycle on a
/// scratch durable store — then report the latency histograms as a
/// per-subsystem time-breakdown table with percentiles.
/// The measured body of `stats`: a cache-bypassing whole-world
/// optimization pass (opt + reflect) followed by repeated entry-point
/// calls (vm), over whichever store backend the command selected.
fn stats_exercise<S: StoreAccess>(
    s: &mut Session<S>,
    o: &Options,
) -> Result<(String, Option<RVal>), String> {
    let fname = match o.positional.get(1) {
        Some(f) => f.clone(),
        None => guess_entry(s, o)?,
    };
    let ropts = ReflectOptions {
        use_cache: false,
        ..reflect_options(o)
    };
    optimize_all(s, &ropts).map_err(|e| e.to_string())?;
    let args: Vec<RVal> = o.args.iter().map(|n| RVal::Int(*n)).collect();
    let mut result = None;
    for _ in 0..o.runs.max(1) {
        let out = s.call(&fname, args.clone()).map_err(|e| e.to_string())?;
        result = Some(out.result);
    }
    Ok((fname, result))
}

fn cmd_stats(o: &Options) -> Result<(), String> {
    let rec = trace::global();
    rec.clear();
    rec.set_capacity(1 << 16);
    rec.set_enabled(true);
    let (fname, result) = if let Some(path) = o.durable.clone() {
        let mut s = durable_session(o, &path)?;
        let r = stats_exercise(&mut s, o)?;
        s.store.publish_page_counters();
        tycoon::reflect::tier::publish_gauges(&s.store, None);
        seal_durable(&mut s)?;
        r
    } else {
        let mut s = load_input(o)?;
        let r = stats_exercise(&mut s, o)?;
        tycoon::reflect::tier::publish_gauges(&s.store, None);
        r
    };
    // Store/WAL path: a commit + checkpoint cycle on a scratch store.
    let dir = std::env::temp_dir().join(format!("tmlc_stats_{}", std::process::id()));
    std::fs::create_dir_all(&dir).map_err(|e| e.to_string())?;
    let image = dir.join("scratch.tys");
    let wal_err = |e: std::io::Error| format!("stats wal workload: {e}");
    {
        let mut ds =
            tycoon::store::DurableStore::create(&image, Default::default()).map_err(wal_err)?;
        for i in 0..16i64 {
            let oid = ds
                .alloc(Object::Tuple(vec![SVal::Int(i), SVal::Int(i * i)]))
                .map_err(wal_err)?;
            ds.set_root(&format!("stats.{i}"), oid).map_err(wal_err)?;
            ds.commit().map_err(wal_err)?;
        }
        ds.checkpoint().map_err(wal_err)?;
        // Transaction path on the same scratch store: a committed writer,
        // an aborted one, and a contended lock handoff, so the `txn.*`
        // counters, `lock.wait` histogram and lock-table gauges report
        // real numbers.
        let txn_err = |e: tycoon::store::StoreError| format!("stats txn workload: {e}");
        let mgr = tycoon::txn::TxnManager::new(Default::default());
        let target = ds
            .alloc(Object::Tuple(vec![SVal::Int(0)]))
            .map_err(wal_err)?;
        ds.commit().map_err(wal_err)?;
        let mut t1 = mgr.begin(&mut ds);
        {
            let locks = std::sync::Arc::clone(mgr.locks());
            let mut view = tycoon::txn::TxnView::new(&mut ds, &mut t1, &locks);
            view.set(target, Object::Tuple(vec![SVal::Int(1)]))
                .map_err(txn_err)?;
        }
        // A second thread waits for the same key while t1 holds it.
        let locks = std::sync::Arc::clone(mgr.locks());
        let key = tycoon::txn::oid_key(target);
        let waiter = std::thread::spawn(move || {
            locks.acquire_with_retry(u64::MAX, key, true, &Default::default())
        });
        std::thread::sleep(std::time::Duration::from_millis(2));
        mgr.commit(&mut ds, t1).map_err(txn_err)?;
        waiter
            .join()
            .expect("stats lock waiter")
            .map_err(|e| format!("stats lock workload: {e}"))?;
        mgr.locks().release_all(u64::MAX);
        let mut t2 = mgr.begin(&mut ds);
        {
            let locks = std::sync::Arc::clone(mgr.locks());
            let mut view = tycoon::txn::TxnView::new(&mut ds, &mut t2, &locks);
            view.set(target, Object::Tuple(vec![SVal::Int(2)]))
                .map_err(txn_err)?;
        }
        mgr.abort(&mut ds, t2).map_err(txn_err)?;
        let s = mgr.locks().stats();
        rec.counter("lock.table.keys").set(s.keys);
        rec.counter("lock.table.holders").set(s.holders);
        rec.counter("lock.table.waiters").set(s.waiters);
    }
    std::fs::remove_dir_all(&dir).ok();
    rec.set_enabled(false);
    write_exports(o)?;
    if o.json {
        println!("{}", rec.to_json());
        return Ok(());
    }
    if let Some(r) = result {
        println!("stats {fname} => {r:?} ({} run(s))", o.runs.max(1));
    }
    // Per-subsystem totals from the top-level name segment.
    let hists = rec.hist_snapshot();
    let mut by_subsystem: std::collections::BTreeMap<String, u64> = Default::default();
    for (name, h) in &hists {
        let subsystem = name.split('.').next().unwrap_or(name).to_string();
        *by_subsystem.entry(subsystem).or_insert(0) += h.sum;
    }
    let grand: u64 = by_subsystem.values().sum();
    println!("time by subsystem:");
    for (subsystem, ns) in &by_subsystem {
        println!(
            "  {:<12} {:>10}  {:>5.1}%",
            subsystem,
            fmt_ns(*ns),
            if grand == 0 {
                0.0
            } else {
                100.0 * *ns as f64 / grand as f64
            }
        );
    }
    println!("latency histograms:");
    print_hist_table(&[]);
    if o.spans {
        println!("spans:");
        print_span_tree(&rec.events());
    }
    Ok(())
}

/// Render one trace event as a provenance log line.
fn explain_line(e: &Event) -> String {
    match e {
        Event::RuleFired {
            rule,
            site,
            node,
            size_delta,
        } => format!("rule {rule:<12} @{site} (node {node}, size {size_delta:+})"),
        Event::ExpandDecision {
            site,
            cost,
            limit,
            taken,
            growth,
        } => {
            let verdict = if *taken { "inline" } else { "reject" };
            format!("expand {verdict:<6} {site} (cost {cost}, limit {limit}, growth {growth})")
        }
        Event::OptRound {
            round,
            reductions,
            inlined,
            penalty,
            size,
        } => format!(
            "round {round}: {reductions} reductions, {inlined} inlined, penalty {penalty}, size {size}"
        ),
        Event::OptStop {
            reason,
            rounds,
            penalty,
            penalty_limit,
        } => format!(
            "stop after {rounds} round(s): {reason} (penalty {penalty}/{penalty_limit})"
        ),
        Event::ReflectConsult {
            function,
            oid,
            outcome,
        } => format!("reflect {function} (oid {oid}): cache {outcome}"),
        Event::QueryRewrite {
            rule,
            relation,
            index,
        } => match (relation, index) {
            (Some(r), Some(ix)) => format!("query rewrite {rule} (relation {r}, index {ix})"),
            _ => format!("query rewrite {rule}"),
        },
        Event::DegradedSkip {
            function,
            oid,
            reason,
            detail,
        } => format!("degraded skip {function} (oid {oid}): {reason}: {detail}"),
        Event::Wal {
            op,
            lsn,
            bytes,
            records,
            micros,
        } => format!("wal {op} (lsn {lsn}, {records} record(s), {bytes} byte(s), {micros}us)"),
        Event::DurabilityRisk { site, detail } => {
            format!("durability risk at {site}: {detail}")
        }
        Event::Recovery {
            source,
            dropped_objects,
            dropped_roots,
            dropped_sections,
            micros,
        } => format!(
            "recovery from {source} in {micros}us: dropped {dropped_objects} object(s), {dropped_roots} root(s){}",
            if *dropped_sections {
                ", tail sections lost"
            } else {
                ""
            }
        ),
        Event::Span {
            name,
            id,
            parent,
            thread,
            dur_ns,
            ..
        } => format!("span {name} ({}) [id {id}, parent {parent}, thread {thread}]", fmt_ns(*dur_ns)),
        other => format!("{} event", other.kind()),
    }
}

fn cmd_explain(o: &Options) -> Result<(), String> {
    let fname = o
        .positional
        .get(1)
        .cloned()
        .or_else(|| o.entry.clone())
        .ok_or("missing function name: tmlc explain <input> <mod.fn>")?;
    let rec = trace::global();
    rec.clear();
    rec.set_capacity(1 << 16);
    rec.set_enabled(true);
    let mut s = load_input(o)?;
    // Bypass the memo cache so the full derivation is re-run and logged.
    let opts = ReflectOptions {
        use_cache: false,
        ..Default::default()
    };
    optimize_named(&mut s, &fname, &opts).map_err(|e| e.to_string())?;
    rec.set_enabled(false);
    if o.json {
        println!("{}", rec.to_json());
    } else {
        let samples = rec.events();
        println!("explain {fname}: {} events", samples.len());
        if rec.dropped() > 0 {
            println!("  (ring overflow: {} events dropped)", rec.dropped());
        }
        for sample in &samples {
            println!("  {}", explain_line(&sample.event));
        }
    }
    if o.verify {
        verify_replay(&mut s, &fname, &opts)?;
    }
    Ok(())
}

/// Replay soundness check: re-derive the optimized term by recording a
/// provenance log and replaying it, then compare the two products'
/// persistent encodings byte for byte.
fn verify_replay(s: &mut Session, fname: &str, opts: &ReflectOptions) -> Result<(), String> {
    let Some(SVal::Ref(oid)) = s.globals.get(fname).cloned() else {
        return Err(format!("verify: {fname} is not a closure-valued global"));
    };
    let abs = {
        let mut tb = TermBuilder::new(&mut s.ctx, &s.store);
        tb.build(oid, opts.inline_depth)
            .map_err(|e| format!("verify: {e}"))?
    };
    let (recorded, _, log) = tycoon::opt::record_abs(&mut s.ctx, abs.clone(), &opts.opt);
    let (replayed, _) = tycoon::opt::replay_abs(&mut s.ctx, abs, &opts.opt, &log)
        .map_err(|e| format!("verify: replay diverged: {e}"))?;
    let a = encode_abs(&s.ctx, &recorded);
    let b = encode_abs(&s.ctx, &replayed);
    if a == b {
        println!(
            "verify: replay of {} logged rules reproduces the optimized term ({} bytes PTML)",
            log.len(),
            a.len()
        );
        Ok(())
    } else {
        Err(format!(
            "verify: replayed PTML differs ({} vs {} bytes)",
            a.len(),
            b.len()
        ))
    }
}

/// Minimal JSON string escaping for the fsck report (quotes, backslashes
/// and control characters; everything else passes through as UTF-8).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `tmlc fsck <image.tys> [--repair -o out.tys]`: offline integrity check
/// of a snapshot image. Validates the envelope (magic, version, CRC-32
/// trailer, per-object framing) by decoding it, then walks every OID edge
/// looking for dangling references and dangling roots, and decodes every
/// closure's PTML attachment. When a write-ahead log sits next to the
/// image it is walked too: record/commit counts, torn tails and stale
/// (wrong-base) logs are reported. Prints a JSON report; exits nonzero
/// when any problem is found. With `--repair`, the recovery cascade
/// (backup, object salvage) is run and whatever it saves is written to
/// `-o`.
fn cmd_fsck(o: &Options) -> Result<(), String> {
    let path = o.positional.first().ok_or("missing image file")?;
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    // Formats: 2/3 are legacy whole-image snapshots, 4 is the paged
    // TYCAT1 catalog + page file written by durable checkpoints.
    let is_paged = bytes.starts_with(b"TYCAT1");
    let format = if is_paged {
        4
    } else if bytes.starts_with(b"TYSTO3") {
        3
    } else if bytes.starts_with(b"TYSTO2") {
        2
    } else {
        0
    };
    let mut pages: Option<String> = None;
    let mut catalog_identity: Option<snapshot::ImageIdentity> = None;
    let mut paged_degraded = false;
    let decoded: Result<tycoon::store::Store, String> = if is_paged {
        match paged::open_catalog(std::path::Path::new(path)) {
            Ok(Some(opened)) => {
                let p = opened.heap.stats();
                pages = Some(format!(
                    "{{\"generation\": {}, \"pages\": {}, \"records\": {}, \"chains\": {}, \
                     \"live_bytes\": {}, \"dead_bytes\": {}, \"source\": {}}}",
                    p.gen,
                    p.pages,
                    p.dir_entries,
                    p.chains,
                    p.live_bytes,
                    p.dead_bytes,
                    json_str(opened.source.name())
                ));
                catalog_identity = Some(opened.identity);
                paged_degraded = opened.source != snapshot::RecoverySource::Primary;
                Ok(opened.store)
            }
            Ok(None) => Err("unreadable paged catalog (no decodable sibling)".to_string()),
            Err(e) => Err(e.to_string()),
        }
    } else {
        snapshot::from_bytes(&bytes).map_err(|e| e.to_string())
    };
    let mut dangling_refs: Vec<(u64, u64)> = Vec::new();
    let mut dangling_roots: Vec<String> = Vec::new();
    let mut corrupt_ptml: Vec<(u64, String)> = Vec::new();
    let (objects, roots) = match &decoded {
        Ok(store) => {
            for (oid, obj) in store.iter() {
                for r in gc::object_refs(obj) {
                    if store.get(r).is_err() {
                        dangling_refs.push((oid.0, r.0));
                    }
                }
            }
            for (name, oid) in store.roots() {
                if store.get(oid).is_err() {
                    dangling_roots.push(name.to_string());
                }
            }
            // PTML well-formedness, closure by closure. Decoding needs the
            // full primitive vocabulary, including the query extension.
            let mut ctx = tycoon::core::Ctx::new();
            let mut vm = tycoon::vm::Vm::new();
            tycoon::query::install(&mut ctx, &mut vm);
            for (oid, obj) in store.iter() {
                let Object::Closure(c) = obj else { continue };
                let Some(ptml_oid) = c.ptml else { continue };
                match store.get(ptml_oid) {
                    Ok(Object::Ptml(b)) => {
                        if let Err(e) = decode_abs(&mut ctx, b) {
                            corrupt_ptml.push((oid.0, e.to_string()));
                        }
                    }
                    Ok(other) => {
                        corrupt_ptml.push((oid.0, format!("ptml slot holds a {}", other.kind())))
                    }
                    Err(e) => corrupt_ptml.push((oid.0, e.to_string())),
                }
            }
            (store.iter().count(), store.roots().count())
        }
        Err(_) => (0, 0),
    };
    // Walk the write-ahead log sitting next to the image, if any. A torn
    // tail or uncommitted suffix is a normal crash artifact (recovery
    // truncates it), so it is reported but does not fail the check; a log
    // whose header no longer matches the image is stale and would be
    // discarded on open.
    let log = wal::Wal::scan(wal::wal_path(path)).map_err(|e| format!("{path}.wal: {e}"))?;
    let image_identity = catalog_identity.unwrap_or_else(|| snapshot::identity_of(&bytes));
    let log_stale = log.exists && log.base != Some(image_identity);

    // A paged catalog that only decoded via its backup/tmp sibling is
    // damaged even though it loaded: the primary needs repair.
    let ok = decoded.is_ok()
        && !paged_degraded
        && dangling_refs.is_empty()
        && dangling_roots.is_empty()
        && corrupt_ptml.is_empty();

    let mut repaired: Option<(snapshot::RecoveryReport, String)> = None;
    if o.repair && !ok {
        let out = o.output.clone().ok_or("fsck --repair needs -o <out.tys>")?;
        // Paged images repair through the durable recovery cascade (catalog
        // siblings + committed WAL prefix); legacy snapshots through the
        // snapshot cascade (backup, object salvage). Either way the result
        // is written as a fresh whole-image snapshot.
        let (store, report) = if is_paged {
            let (ds, rep) = DurableStore::open(path, Default::default())
                .map_err(|e| format!("repair failed: {e}"))?;
            (ds.into_store(), rep.snapshot)
        } else {
            snapshot::load_with_recovery(path).map_err(|e| format!("repair failed: {e}"))?
        };
        snapshot::save(&store, &out).map_err(|e| format!("repair: {out}: {e}"))?;
        repaired = Some((report, out));
    }

    let mut j = String::new();
    j.push_str("{\n");
    j.push_str(&format!("  \"path\": {},\n", json_str(path)));
    j.push_str(&format!("  \"bytes\": {},\n", bytes.len()));
    j.push_str(&format!("  \"format\": {format},\n"));
    match &decoded {
        Ok(_) => j.push_str("  \"decode\": \"ok\",\n"),
        Err(e) => j.push_str(&format!("  \"decode\": {},\n", json_str(&e.to_string()))),
    }
    j.push_str(&format!("  \"objects\": {objects},\n"));
    j.push_str(&format!("  \"roots\": {roots},\n"));
    j.push_str("  \"dangling_refs\": [");
    for (i, (from, to)) in dangling_refs.iter().enumerate() {
        if i > 0 {
            j.push_str(", ");
        }
        j.push_str(&format!("{{\"from\": {from}, \"to\": {to}}}"));
    }
    j.push_str("],\n");
    j.push_str("  \"dangling_roots\": [");
    for (i, name) in dangling_roots.iter().enumerate() {
        if i > 0 {
            j.push_str(", ");
        }
        j.push_str(&json_str(name));
    }
    j.push_str("],\n");
    j.push_str("  \"corrupt_ptml\": [");
    for (i, (oid, err)) in corrupt_ptml.iter().enumerate() {
        if i > 0 {
            j.push_str(", ");
        }
        j.push_str(&format!("{{\"oid\": {oid}, \"error\": {}}}", json_str(err)));
    }
    j.push_str("],\n");
    match &pages {
        Some(p) => j.push_str(&format!("  \"pages\": {p},\n")),
        None => j.push_str("  \"pages\": null,\n"),
    }
    if log.exists {
        j.push_str(&format!(
            "  \"wal\": {{\"bytes\": {}, \"records\": {}, \"committed\": {}, \"commits\": {}, \"uncommitted\": {}, \"torn_tail\": {}, \"stale\": {}}},\n",
            log.file_bytes,
            log.records.len(),
            log.committed,
            log.commits,
            log.records.len() - log.committed,
            log.torn_tail,
            log_stale
        ));
    } else {
        j.push_str("  \"wal\": null,\n");
    }
    match &repaired {
        Some((report, out)) => {
            j.push_str(&format!(
                "  \"repair\": {{\"source\": {}, \"dropped_objects\": {}, \"dropped_roots\": {}, \"dropped_sections\": {}, \"output\": {}}},\n",
                json_str(report.source.name()),
                report.dropped_objects,
                report.dropped_roots,
                report.dropped_sections,
                json_str(out)
            ));
        }
        None => j.push_str("  \"repair\": null,\n"),
    }
    j.push_str(&format!("  \"ok\": {ok}\n"));
    j.push('}');
    println!("{j}");
    if ok || repaired.is_some() {
        Ok(())
    } else {
        Err(format!("{path}: image has integrity problems"))
    }
}

/// `tmlc prims [--json]`: list every primitive in the driver registry —
/// name, value/continuation arity, effect class, cost and which hooks
/// (inline codegen, constant fold) the definition provides. Primitives
/// without a codegen hook compile to the generic `call-prim` dispatch.
fn cmd_prims(o: &Options) -> Result<(), String> {
    use tycoon::core::prim::{Arity, EffectClass, PrimCost};
    let arity = |a: Arity| match a {
        Arity::Exact(n) => format!("{n}"),
        Arity::AtLeast(n) => format!("{n}+"),
    };
    let effects = |e: EffectClass| match e {
        EffectClass::Pure => "pure",
        EffectClass::Reads => "reads",
        EffectClass::Writes => "writes",
    };
    let registry = driver_registry();
    let mut defs: Vec<_> = registry.table().iter().map(|(_, d)| d).collect();
    defs.sort_by(|a, b| a.name.cmp(&b.name));
    if o.json {
        let mut j = String::from("[\n");
        for (i, d) in defs.iter().enumerate() {
            if i > 0 {
                j.push_str(",\n");
            }
            let cost = match d.cost {
                PrimCost::Const(c) => format!("{c}"),
                PrimCost::Fn(_) => "\"dynamic\"".to_string(),
            };
            j.push_str(&format!(
                "  {{\"name\": {}, \"vals\": {}, \"conts\": {}, \"effects\": {}, \
                 \"commutative\": {}, \"cost\": {}, \"codegen\": {}, \"fold\": {}}}",
                json_str(&d.name),
                json_str(&arity(d.signature.vals)),
                json_str(&arity(d.signature.conts)),
                json_str(effects(d.attrs.effects)),
                d.attrs.commutative,
                cost,
                d.codegen.is_some(),
                d.fold.is_some(),
            ));
        }
        j.push_str("\n]");
        println!("{j}");
        return Ok(());
    }
    println!(
        "{:<10} {:>4} {:>5}  {:<6} {:>5}  hooks",
        "name", "vals", "conts", "effect", "cost"
    );
    for d in defs {
        let cost = match d.cost {
            PrimCost::Const(c) => format!("{c}"),
            PrimCost::Fn(_) => "dyn".to_string(),
        };
        let mut hooks = Vec::new();
        if d.codegen.is_some() {
            hooks.push("codegen");
        }
        if d.fold.is_some() {
            hooks.push("fold");
        }
        if hooks.is_empty() {
            hooks.push("call-prim");
        }
        println!(
            "{:<10} {:>4} {:>5}  {:<6} {:>5}  {}",
            d.name,
            arity(d.signature.vals),
            arity(d.signature.conts),
            effects(d.attrs.effects),
            cost,
            hooks.join("+")
        );
    }
    Ok(())
}

/// `tmlc serve <image> [--addr host:port]`: run the multi-session
/// transaction server over a durable image. The image is created on
/// first use; a positional `.tl` source (with the image behind
/// `--durable`) seeds it with modules before the socket opens. Blocks
/// until a client sends `Shutdown`; the drain aborts open transactions,
/// commits and checkpoints, then a final counter report is printed.
fn cmd_serve(o: &Options) -> Result<(), String> {
    let path = match &o.durable {
        Some(p) => p.clone(),
        None => o
            .positional
            .iter()
            .find(|p| !p.ends_with(".tl"))
            .cloned()
            .ok_or("serve needs an image path (positional or --durable <path>)")?,
    };
    let rec = trace::global();
    rec.clear();
    rec.set_capacity(1 << 16);
    rec.set_enabled(true);
    let sess = durable_session(o, &path)?;
    let mut lock = tycoon::txn::LockOptions::default();
    if let Some(ms) = o.lock_ms {
        lock.timeout = std::time::Duration::from_millis(ms);
    }
    // Tiered execution is on by default for served sessions; `--tier-off`
    // pins every closure to the baseline tier.
    let tier = (!o.tier_off).then_some(tycoon::txn::TierSettings {
        threshold: o.tier_threshold,
        interval: std::time::Duration::from_millis(o.tier_interval_ms),
    });
    let server = tycoon::txn::Server::bind(tycoon::txn::ServerOptions {
        addr: o.addr.clone().unwrap_or_else(|| "127.0.0.1:7170".into()),
        max_conns: o.max_conns,
        conn_timeout: std::time::Duration::from_millis(o.conn_timeout_ms),
        lock,
        tier,
    })
    .map_err(|e| format!("bind: {e}"))?;
    // The soak harness (and shell scripts) parse this line for the port.
    println!("tmlc: serving {path} on {}", server.local_addr());
    use std::io::Write as _;
    std::io::stdout().flush().ok();
    server.run(sess).map_err(|e| format!("serve: {e}"))?;
    rec.set_enabled(false);
    if o.json {
        println!("{}", rec.to_json());
    } else {
        println!("tmlc: server stopped");
        print_counters(&["txn.", "lock.", "store.", "reflect.tier."]);
        if o.hist {
            print_hist_table(&["lock.", "serve.", "store."]);
        }
    }
    Ok(())
}

fn main() -> ExitCode {
    let (command, options) = match parse_args(std::env::args()) {
        Ok(x) => x,
        Err(e) => {
            eprintln!(
                "tmlc: {e}\n\nusage: tmlc run|tml|code|eval|snapshot|info|profile|stats|explain|opt|fsck|serve|prims ..."
            );
            return ExitCode::FAILURE;
        }
    };
    let result = match command.as_str() {
        "run" => cmd_run(&options),
        "tml" => cmd_tml(&options),
        "code" => cmd_code(&options),
        "eval" => cmd_eval(&options),
        "snapshot" => cmd_snapshot(&options),
        "info" => cmd_info(&options),
        "profile" => cmd_profile(&options),
        "stats" => cmd_stats(&options),
        "explain" => cmd_explain(&options),
        "opt" => cmd_opt(&options),
        "fsck" => cmd_fsck(&options),
        "serve" => cmd_serve(&options),
        "prims" => cmd_prims(&options),
        other => Err(format!("unknown command {other}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("tmlc: {e}");
            ExitCode::FAILURE
        }
    }
}
