//! # tycoon — umbrella crate for the Tycoon/TML reproduction
//!
//! Re-exports every subsystem of the reproduction of Gawecki & Matthes,
//! *Exploiting Persistent Intermediate Code Representations in Open
//! Database Environments* (EDBT 1996). See `DESIGN.md` for the system
//! inventory and `EXPERIMENTS.md` for the experiment index.

pub use tml_core as core;
pub use tml_lang as lang;
pub use tml_opt as opt;
pub use tml_query as query;
pub use tml_reflect as reflect;
pub use tml_store as store;
pub use tml_trace as trace;
pub use tml_txn as txn;
pub use tml_vm as vm;
