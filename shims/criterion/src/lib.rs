//! Offline stand-in for the subset of the [`criterion`] crate API this
//! workspace uses. The build environment has no access to a crate registry,
//! so this path dependency shadows `criterion = "0.5"` with a small
//! wall-clock harness: each benchmark closure is warmed up, then timed for
//! `sample_size` samples, and the best/median/mean per-iteration times are
//! printed. No statistics, plots or regression analysis.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost (accepted, ignored: the shim
/// always re-runs setup per iteration outside the timed region).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration input.
    SmallInput,
    /// Large per-iteration input.
    LargeInput,
    /// One batch per sample.
    PerIteration,
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// The timing loop driver handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Collected per-iteration times of the last `iter*` call.
    times: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Bencher {
        Bencher {
            samples,
            times: Vec::new(),
        }
    }

    /// Time `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        black_box(routine());
        self.times.clear();
        for _ in 0..self.samples {
            let t = Instant::now();
            black_box(routine());
            self.times.push(t.elapsed());
        }
    }

    /// Time `routine` on fresh inputs from `setup` (setup is untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        self.times.clear();
        for _ in 0..self.samples {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.times.push(t.elapsed());
        }
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

fn report(label: &str, times: &[Duration], throughput: Option<Throughput>) {
    if times.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = times.to_vec();
    sorted.sort();
    let best = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    let rate = match throughput {
        Some(Throughput::Bytes(n)) => {
            let gib = n as f64 / best.as_secs_f64() / (1u64 << 30) as f64;
            format!("  {gib:8.3} GiB/s")
        }
        Some(Throughput::Elements(n)) => {
            let meps = n as f64 / best.as_secs_f64() / 1e6;
            format!("  {meps:8.3} Melem/s")
        }
        None => String::new(),
    };
    println!(
        "{label:<40} best {:>10}  median {:>10}  mean {:>10}{rate}",
        fmt_duration(best),
        fmt_duration(median),
        fmt_duration(mean),
    );
}

/// The benchmark harness entry point.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Set the target measurement time (accepted, ignored).
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            throughput: None,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&id.to_string(), &b.times, None);
        self
    }
}

/// A group of related benchmarks sharing throughput annotations.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.criterion.sample_size);
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b.times, self.throughput);
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

/// Define a benchmark group function, in either criterion macro form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.bench_function("iter", |b| b.iter(|| black_box(2 + 2)));
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
        c.bench_function("plain", |b| b.iter(|| black_box(1)));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = sample_bench
    }

    #[test]
    fn harness_runs() {
        benches();
    }
}
