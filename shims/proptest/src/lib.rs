//! Offline stand-in for the subset of the [`proptest`] crate API this
//! workspace uses. The build environment has no access to a crate registry,
//! so this path dependency shadows `proptest = "1"` with a dependency-free
//! reimplementation of:
//!
//! * the [`Strategy`] trait with `prop_map`, plus strategies for integer /
//!   float ranges, `Just`, `any::<T>()`, tuples, string patterns of the
//!   form `"[a-z.]{m,n}"`, and [`collection::vec`] /
//!   [`collection::btree_map`];
//! * the `proptest!`, `prop_oneof!`, `prop_assert!`, `prop_assert_eq!` and
//!   `prop_assume!` macros;
//! * [`test_runner::ProptestConfig`].
//!
//! Semantics differ from real proptest in two deliberate ways: failing
//! cases are **not shrunk** (the panic message reports the failing case
//! index and the deterministic per-test seed instead), and generation is
//! seeded from the test name, so runs are reproducible without a
//! `proptest-regressions` directory.

pub mod test_runner {
    /// Deterministic SplitMix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary string (the test name).
        pub fn from_name(name: &str) -> TestRng {
            // FNV-1a over the name gives a stable per-test seed.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// 64 raw random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..n` (n > 0).
        pub fn below(&mut self, n: u64) -> u64 {
            assert!(n > 0, "below(0)");
            self.next_u64() % n
        }

        /// Uniform value in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }

    /// Per-`proptest!` block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// A failed (or rejected) test case.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assert*` failure.
        Fail(String),
        /// `prop_assume!` rejection: skip the case.
        Reject,
    }

    impl TestCaseError {
        /// Construct a failure.
        pub fn fail(msg: impl Into<String>) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject => write!(f, "assumption rejected"),
            }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A value generator. Unlike real proptest there is no shrinking: a
    /// strategy is just a function from randomness to values.
    pub trait Strategy {
        /// The generated value type.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Erase the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                gen: std::rc::Rc::new(move |rng| self.generate(rng)),
            }
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        #[allow(clippy::type_complexity)]
        gen: std::rc::Rc<dyn Fn(&mut TestRng) -> T>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Always produce a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among alternatives (the `prop_oneof!` macro).
    pub struct Union<T> {
        #[allow(clippy::type_complexity)]
        alternatives: Vec<Box<dyn Fn(&mut TestRng) -> T>>,
    }

    impl<T> Union<T> {
        /// Build from closures generating each alternative.
        #[allow(clippy::type_complexity)]
        pub fn new(alternatives: Vec<Box<dyn Fn(&mut TestRng) -> T>>) -> Union<T> {
            assert!(!alternatives.is_empty(), "prop_oneof! of nothing");
            Union { alternatives }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let ix = rng.below(self.alternatives.len() as u64) as usize;
            (self.alternatives[ix])(rng)
        }
    }

    // ---- Integer and float ranges ------------------------------------

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as u64).wrapping_sub(start as u64);
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    start.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }

    impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    // ---- String patterns ---------------------------------------------
    //
    // String literals act as strategies generating matching strings. Only
    // the pattern shape the workspace uses is supported:
    // `[<chars-and-ranges>]{m}` or `[<chars-and-ranges>]{m,n}`.

    /// Alphabet and repetition bounds parsed from a `"[a-z]{m,n}"` pattern.
    fn parse_pattern(pat: &str) -> (Vec<char>, usize, usize) {
        fn bad_pattern(pat: &str) -> ! {
            panic!("unsupported string pattern {pat:?} (shim supports \"[chars]{{m,n}}\")")
        }
        let mut chars = pat.chars().peekable();
        if chars.next() != Some('[') {
            bad_pattern(pat);
        }
        let mut alphabet = Vec::new();
        loop {
            let c = chars.next().unwrap_or_else(|| bad_pattern(pat));
            if c == ']' {
                break;
            }
            if chars.peek() == Some(&'-') {
                let mut rest = chars.clone();
                rest.next(); // '-'
                match rest.next() {
                    Some(end) if end != ']' => {
                        chars = rest;
                        for x in c..=end {
                            alphabet.push(x);
                        }
                        continue;
                    }
                    _ => {}
                }
            }
            alphabet.push(c);
        }
        if alphabet.is_empty() {
            bad_pattern(pat);
        }
        let rest: String = chars.collect();
        if rest.is_empty() {
            return (alphabet, 1, 1);
        }
        let inner = rest
            .strip_prefix('{')
            .and_then(|r| r.strip_suffix('}'))
            .unwrap_or_else(|| bad_pattern(pat));
        let (lo, hi) = match inner.split_once(',') {
            Some((a, b)) => (
                a.parse().unwrap_or_else(|_| bad_pattern(pat)),
                b.parse().unwrap_or_else(|_| bad_pattern(pat)),
            ),
            None => {
                let n = inner.parse().unwrap_or_else(|_| bad_pattern(pat));
                (n, n)
            }
        };
        (alphabet, lo, hi)
    }

    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let (alphabet, lo, hi) = parse_pattern(self);
            let len = lo + rng.below((hi - lo + 1) as u64) as usize;
            (0..len)
                .map(|_| alphabet[rng.below(alphabet.len() as u64) as usize])
                .collect()
        }
    }

    // ---- Tuples -------------------------------------------------------

    macro_rules! impl_tuple {
        ($($s:ident/$ix:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$ix.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple!(A / 0);
    impl_tuple!(A / 0, B / 1);
    impl_tuple!(A / 0, B / 1, C / 2);
    impl_tuple!(A / 0, B / 1, C / 2, D / 3);
    impl_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4);
    impl_tuple!(A / 0, B / 1, C / 2, D / 3, E / 4, F / 5);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy, used through [`any`].
    pub trait Arbitrary: Sized {
        /// Generate one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The canonical strategy of an [`Arbitrary`] type.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    /// `any::<T>()` — the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Mix extremes in so boundary values actually occur.
                    match rng.below(8) {
                        0 => <$t>::MIN,
                        1 => <$t>::MAX,
                        2 => 0 as $t,
                        3 => rng.below(16) as $t,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only: NaN would break round-trip equality
            // assertions, which is not what those tests are probing.
            match rng.below(6) {
                0 => 0.0,
                1 => -0.0,
                2 => rng.next_u64() as i32 as f64,
                3 => f64::MAX,
                4 => f64::MIN_POSITIVE,
                _ => (rng.next_u64() as i64 as f64) * 1e-9,
            }
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from_u32(rng.below(0xd800) as u32).unwrap_or('x')
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(elem, m..n)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>` with a size drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        len: Range<usize>,
    }

    /// `proptest::collection::btree_map(key, value, m..n)`.
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        len: Range<usize>,
    ) -> BTreeMapStrategy<K, V> {
        assert!(len.start < len.end, "empty length range");
        BTreeMapStrategy { key, value, len }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        K::Value: Ord,
        V: Strategy,
    {
        type Value = BTreeMap<K::Value, V::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n)
                .map(|_| (self.key.generate(rng), self.value.generate(rng)))
                .collect()
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Run each `#[test] fn name(pat in strategy, ...) { body }` over `cases`
/// randomly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $($(#[$meta:meta])+ fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    match outcome {
                        Ok(()) | Err($crate::test_runner::TestCaseError::Reject) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case {}/{} failed: {}", case + 1, config.cases, msg);
                        }
                    }
                }
            }
        )*
    };
}

/// `prop_assert!(cond)` / `prop_assert!(cond, "fmt", ...)`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert_eq!(a, b)` / with message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `{} == {}` ({:?} vs {:?})",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(*a == *b, $($fmt)*);
    }};
}

/// `prop_assert_ne!(a, b)`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `{} != {}` (both {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Skip the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $({
                let strat = $strat;
                ::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                    $crate::strategy::Strategy::generate(&strat, rng)
                }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>
            }),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_patterns_generate_matching_strings() {
        let mut rng = TestRng::from_name("string_patterns");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()), "{s:?}");
            let t = Strategy::generate(&"[a-z.]{0,12}", &mut rng);
            assert!(t.len() <= 12);
            assert!(
                t.chars().all(|c| c.is_ascii_lowercase() || c == '.'),
                "{t:?}"
            );
        }
    }

    #[test]
    fn oneof_covers_all_alternatives() {
        let strat = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut rng = TestRng::from_name("oneof");
        let mut seen = [false; 4];
        for _ in 0..100 {
            seen[Strategy::generate(&strat, &mut rng) as usize] = true;
        }
        assert_eq!(&seen[1..], &[true, true, true]);
    }

    #[test]
    fn int_extremes_occur() {
        let mut rng = TestRng::from_name("extremes");
        let mut saw_min = false;
        let mut saw_max = false;
        for _ in 0..500 {
            match i64::arbitrary(&mut rng) {
                i64::MIN => saw_min = true,
                i64::MAX => saw_max = true,
                _ => {}
            }
        }
        assert!(saw_min && saw_max);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_generates_and_asserts(x in 0i64..100, v in crate::collection::vec(0u8..10, 0..5)) {
            prop_assert!(x >= 0);
            prop_assert!(v.len() < 5);
            prop_assume!(x != 55);
            prop_assert_ne!(x, 55);
        }
    }
}
