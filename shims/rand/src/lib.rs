//! Offline stand-in for the subset of the [`rand`] crate API this workspace
//! uses. The build environment has no access to a crate registry, so this
//! path dependency shadows `rand = "0.8"` with a deterministic,
//! dependency-free implementation of the same surface:
//!
//! * [`rngs::StdRng`] with [`SeedableRng::seed_from_u64`];
//! * [`Rng::gen_range`] over half-open and inclusive integer ranges;
//! * [`Rng::gen_bool`].
//!
//! The generator is SplitMix64 — statistically fine for test-data
//! generation, deterministic per seed (a property the workspace's tests
//! assert), and obviously not cryptographic.

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Construct a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types from which a uniform sample of `T` can be drawn (integer ranges).
/// Generic over the output type, as in the real crate, so that integer
/// literals in `gen_range(0..5)` unify with the type required at the
/// usage site.
pub trait SampleRange<T> {
    /// Draw one sample, given a source of raw 64-bit randomness.
    fn sample(self, next: &mut dyn FnMut() -> u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((next() % span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u64).wrapping_sub(start as u64);
                if span == u64::MAX {
                    return next() as $t;
                }
                start.wrapping_add((next() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// The user-facing generator interface.
pub trait Rng {
    /// Produce 64 raw random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample uniformly from an integer range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        let mut next = || self.next_u64();
        range.sample(&mut next)
    }

    /// Return `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        // 53 uniform mantissa bits, the conventional u64 → f64 construction.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = r.gen_range(-5i64..55);
            assert!((-5..55).contains(&x));
            let y = r.gen_range(0usize..3);
            assert!(y < 3);
            let z = r.gen_range(-3i64..=3);
            assert!((-3..=3).contains(&z));
        }
    }

    #[test]
    fn full_domain_inclusive_range() {
        let mut r = StdRng::seed_from_u64(2);
        let _ = r.gen_range(i64::MIN..=i64::MAX);
        let _ = r.gen_range(u64::MIN..=u64::MAX);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
