//! Determinism of parallel whole-world optimization: `optimize_all` with
//! `jobs ≥ 2` must be observably identical to a sequential run on the
//! Stanford suite — byte-identical PTML in the store, identical rule
//! statistics, identical checksums. This is the acceptance gate for the
//! work-queue fan-out in `tml-reflect`.

use tycoon::lang::stanford::suite;
use tycoon::lang::{Session, SessionConfig};
use tycoon::reflect::{optimize_all, OptimizeAllReport, ReflectOptions};
use tycoon::store::Object;
use tycoon::vm::RVal;

/// Report, PTML blobs in OID order, per-program checksums.
type World = (OptimizeAllReport, Vec<(u64, Vec<u8>)>, Vec<i64>);

/// Load every Stanford program into one session, optimize the world with
/// `jobs` workers, and return the report, every PTML blob in the store (in
/// OID order) and the per-program checksums.
fn optimized_world(jobs: u32) -> World {
    let mut s = Session::new(SessionConfig::default()).unwrap();
    for p in suite() {
        s.load_str(p.src).unwrap();
    }
    let report = optimize_all(
        &mut s,
        &ReflectOptions {
            jobs,
            ..Default::default()
        },
    )
    .unwrap();
    let mut blobs = Vec::new();
    for (oid, obj) in s.store.iter() {
        if let Object::Ptml(b) = obj {
            blobs.push((oid.0, b.clone()));
        }
    }
    let mut checksums = Vec::new();
    for p in suite() {
        let out = s.call(p.entry, vec![RVal::Int(p.test_n)]).unwrap();
        match out.result {
            RVal::Int(v) => checksums.push(v),
            other => panic!("{}: non-integer checksum {other:?}", p.name),
        }
    }
    (report, blobs, checksums)
}

#[test]
fn parallel_optimize_all_matches_sequential_byte_for_byte() {
    let (seq_report, seq_blobs, seq_sums) = optimized_world(1);
    assert!(seq_report.functions > 1, "suite must exercise the fan-out");
    for jobs in [2, 4] {
        let (report, blobs, sums) = optimized_world(jobs);
        assert_eq!(
            seq_blobs, blobs,
            "jobs={jobs}: PTML store contents diverged from sequential"
        );
        assert_eq!(seq_report.functions, report.functions, "jobs={jobs}");
        assert_eq!(seq_report.size_before, report.size_before, "jobs={jobs}");
        assert_eq!(seq_report.size_after, report.size_after, "jobs={jobs}");
        assert_eq!(seq_report.inlined, report.inlined, "jobs={jobs}");
        assert_eq!(seq_report.reductions, report.reductions, "jobs={jobs}");
        assert_eq!(seq_sums, sums, "jobs={jobs}: checksums diverged");
    }
}

#[test]
fn parallel_optimize_all_preserves_golden_checksums() {
    let (_, _, sums) = optimized_world(4);
    for (p, got) in suite().iter().zip(&sums) {
        // Programs with a -1 sentinel compute their golden value at
        // runtime; those are covered by the sequential-vs-parallel
        // checksum comparison above.
        if p.test_expected >= 0 {
            assert_eq!(*got, p.test_expected, "{} under jobs=4", p.name);
        }
    }
}

#[test]
fn zero_jobs_is_sequential_not_a_hang() {
    // jobs: 0 and 1 both mean "no workers"; the knob is a width, not an
    // on/off switch, and 0 must not spawn an empty scope that deadlocks.
    let (report, _, _) = optimized_world(0);
    assert!(report.functions > 0);
}
