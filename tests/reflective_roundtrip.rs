//! Figure-3 architecture round trip: compile → persist (PTML + bindings)
//! → snapshot to disk → reload → relink from PTML → reflectively optimize
//! → execute — spanning `tml-lang`, `tml-store`, `tml-reflect`, `tml-vm`.

use tycoon::lang::{Session, SessionConfig};
use tycoon::reflect::{optimize_all, optimize_named, ReflectOptions, TermBuilder};
use tycoon::store::{snapshot, Object, SVal};
use tycoon::vm::RVal;

const SRC: &str = "
module math export square, cube, poly
let square(x: Int): Int = x * x
let cube(x: Int): Int = x * square(x)
let poly(x: Int): Int = cube(x) + square(x) + x + 1
end";

#[test]
fn reflective_optimization_preserves_semantics() {
    let mut s = Session::default_session().unwrap();
    s.load_str(SRC).unwrap();
    for x in [-3i64, 0, 2, 11] {
        let before = s.call("math.poly", vec![RVal::Int(x)]).unwrap();
        let optimized = optimize_named(&mut s, "math.poly", &ReflectOptions::default()).unwrap();
        let after = s
            .call_value(RVal::from_sval(&optimized), vec![RVal::Int(x)])
            .unwrap();
        assert_eq!(before.result, after.result, "x={x}");
        assert!(after.stats.instrs < before.stats.instrs, "x={x}");
    }
}

#[test]
fn optimize_all_is_idempotent_in_effect() {
    let mut s = Session::default_session().unwrap();
    s.load_str(SRC).unwrap();
    optimize_all(&mut s, &ReflectOptions::default()).unwrap();
    let first = s.call("math.poly", vec![RVal::Int(7)]).unwrap();
    // A second whole-world optimization must not change results, and the
    // instruction count must not regress.
    optimize_all(&mut s, &ReflectOptions::default()).unwrap();
    let second = s.call("math.poly", vec![RVal::Int(7)]).unwrap();
    assert_eq!(first.result, second.result);
    assert!(second.stats.instrs <= first.stats.instrs);
}

#[test]
fn ptml_of_optimized_code_is_itself_reflectable() {
    // The reflective optimizer attaches fresh PTML to its output; that
    // output must round-trip through the TermBuilder again.
    let mut s = Session::default_session().unwrap();
    s.load_str(SRC).unwrap();
    let optimized = optimize_named(&mut s, "math.cube", &ReflectOptions::default()).unwrap();
    let SVal::Ref(oid) = optimized else { panic!() };
    let mut tb = TermBuilder::new(&mut s.ctx, &s.store);
    let abs = tb.build(oid, 2).expect("optimized code reflects again");
    tycoon::core::wellformed::check_abs(&s.ctx, &abs).unwrap();
}

#[test]
fn snapshot_save_load_preserves_code_and_data() {
    let path = std::env::temp_dir().join(format!("tycoon_roundtrip_{}.tys", std::process::id()));

    // Session 1: load, run, persist.
    let mut s1 = Session::new(SessionConfig::default()).unwrap();
    s1.load_str(SRC).unwrap();
    let r1 = s1.call("math.poly", vec![RVal::Int(5)]).unwrap();
    let data = s1.store.alloc(Object::Array(vec![SVal::Int(123)]));
    s1.store.set_root("data", data);
    snapshot::save(&s1.store, &path).unwrap();
    let stats1 = s1.store.stats();
    drop(s1);

    // Session 2: reload and relink `math.poly` from its PTML.
    let store = snapshot::load(&path).unwrap();
    assert_eq!(store.stats(), stats1, "snapshot must be lossless");
    let mut s2 = Session::new(SessionConfig::default()).unwrap();
    s2.store = store;
    let data = s2.store.root("data").unwrap();
    match s2.store.get(data).unwrap() {
        Object::Array(v) => assert_eq!(v[0], SVal::Int(123)),
        other => panic!("expected array, got {}", other.kind()),
    }

    // Relink every function of module `math` by recompiling from PTML.
    let module_oid = s2.store.root("math").unwrap();
    let exports: Vec<(String, SVal)> = match s2.store.get(module_oid).unwrap() {
        Object::Module(m) => m.exports.clone().into_iter().collect(),
        _ => panic!("missing module record"),
    };
    for (name, val) in exports {
        let SVal::Ref(old) = val else { continue };
        let (abs, residuals) = {
            let mut tb = TermBuilder::new(&mut s2.ctx, &s2.store);
            let abs = tb.build(old, 0).unwrap();
            (abs, tb.residuals)
        };
        let compiled = s2.vm.compile_proc(&s2.ctx, &abs).unwrap();
        let names: std::collections::HashMap<_, _> =
            residuals.iter().map(|(n, v)| (*v, n.clone())).collect();
        let bindings: Vec<(String, SVal)> = match s2.store.get(old).unwrap() {
            Object::Closure(c) => c.bindings.clone(),
            _ => continue,
        };
        let env: Vec<SVal> = compiled
            .captures
            .iter()
            .map(|v| {
                let n = &names[v];
                bindings
                    .iter()
                    .find(|(bn, _)| bn == n)
                    .map(|(_, bv)| bv.clone())
                    .expect("recorded binding")
            })
            .collect();
        if let Object::Closure(c) = s2.store.get_mut(old).unwrap() {
            c.code = compiled.block;
            c.env = env;
        }
        s2.globals.insert(format!("math.{name}"), SVal::Ref(old));
    }

    let r2 = s2.call("math.poly", vec![RVal::Int(5)]).unwrap();
    assert_eq!(r1.result, r2.result);

    std::fs::remove_file(&path).ok();
}

#[test]
fn dynamic_optimization_after_reload() {
    // Relinked code still carries PTML, so the reflective optimizer works
    // on a reloaded image too.
    let mut s = Session::default_session().unwrap();
    s.load_str(SRC).unwrap();
    let bytes = snapshot::to_bytes(&s.store);
    let reloaded = snapshot::from_bytes(&bytes).unwrap();
    drop(s);

    let mut s2 = Session::default_session().unwrap();
    // Graft the reloaded module's closures into the fresh session's store
    // namespace is complex; instead verify the cheap invariant: every
    // closure in the reloaded store still has decodable PTML.
    let mut checked = 0;
    let ptml_oids: Vec<_> = reloaded
        .iter()
        .filter_map(|(_, obj)| match obj {
            Object::Closure(c) => c.ptml,
            _ => None,
        })
        .collect();
    for p in ptml_oids {
        let Object::Ptml(bytes) = reloaded.get(p).unwrap() else {
            panic!("ptml attachment must be a ptml object");
        };
        let (abs, _) = tycoon::store::ptml::decode_abs(&mut s2.ctx, bytes).unwrap();
        tycoon::core::wellformed::check_abs(&s2.ctx, &abs).unwrap();
        checked += 1;
    }
    assert!(
        checked > 30,
        "stdlib + math should persist many functions, got {checked}"
    );
}
