//! End-to-end Stanford suite assertions binding the E1/E2 claims into the
//! test suite (at small problem sizes, instruction-count metric).

use tycoon::lang::stanford::suite;
use tycoon::lang::types::LowerMode;
use tycoon::lang::{OptMode, Session, SessionConfig};
use tycoon::reflect::{optimize_all, ReflectOptions};
use tycoon::vm::RVal;

fn run(
    src: &str,
    entry: &str,
    n: i64,
    lower: LowerMode,
    opt: OptMode,
    dynamic: bool,
) -> (i64, u64) {
    let mut s = Session::new(SessionConfig {
        lower,
        opt,
        ..Default::default()
    })
    .unwrap();
    s.load_str(src).unwrap();
    if dynamic {
        optimize_all(&mut s, &ReflectOptions::default()).unwrap();
    }
    let out = s.call(entry, vec![RVal::Int(n)]).unwrap();
    match out.result {
        RVal::Int(v) => (v, out.stats.instrs),
        other => panic!("non-integer checksum {other:?}"),
    }
}

#[test]
fn all_configurations_compute_identical_checksums() {
    for p in suite() {
        let (golden, _) = run(
            p.src,
            p.entry,
            p.test_n,
            LowerMode::Direct,
            OptMode::None,
            false,
        );
        for lower in [LowerMode::Direct, LowerMode::Library] {
            for opt in [OptMode::None, OptMode::Local] {
                for dynamic in [false, true] {
                    let (got, _) = run(p.src, p.entry, p.test_n, lower, opt, dynamic);
                    assert_eq!(got, golden, "{} {lower:?}/{opt:?}/dyn={dynamic}", p.name);
                }
            }
        }
    }
}

#[test]
fn e1_local_optimization_is_insignificant() {
    // Library mode; local optimization must change instruction counts by
    // less than 25% on every program (the paper: "no significant speedup").
    for p in suite() {
        let (_, base) = run(
            p.src,
            p.entry,
            p.test_n,
            LowerMode::Library,
            OptMode::None,
            false,
        );
        let (_, local) = run(
            p.src,
            p.entry,
            p.test_n,
            LowerMode::Library,
            OptMode::Local,
            false,
        );
        let speedup = base as f64 / local as f64;
        assert!(
            (0.95..1.25).contains(&speedup),
            "{}: local speedup {speedup:.2} outside the 'insignificant' band",
            p.name
        );
    }
}

#[test]
fn e2_dynamic_optimization_reduces_instructions_substantially() {
    // Every program must improve by at least 1.3x in instruction count and
    // the suite by at least 1.7x on average (wall-clock gains are larger;
    // see the e1_e2_stanford bench).
    let mut ratios = Vec::new();
    for p in suite() {
        let (_, base) = run(
            p.src,
            p.entry,
            p.test_n,
            LowerMode::Library,
            OptMode::None,
            false,
        );
        let (_, dynamic) = run(
            p.src,
            p.entry,
            p.test_n,
            LowerMode::Library,
            OptMode::None,
            true,
        );
        let speedup = base as f64 / dynamic as f64;
        assert!(
            speedup > 1.3,
            "{}: dynamic speedup only {speedup:.2}",
            p.name
        );
        ratios.push(speedup.ln());
    }
    let geomean = (ratios.iter().sum::<f64>() / ratios.len() as f64).exp();
    assert!(
        geomean > 1.7,
        "suite-wide dynamic speedup only {geomean:.2} (instructions)"
    );
}

#[test]
fn dynamic_optimization_approaches_direct_prims() {
    // The dynamically optimized library configuration should land close to
    // the direct-primitive lowering (the information-theoretic optimum for
    // this experiment): within 1.35x on every program.
    for p in suite() {
        let (_, direct) = run(
            p.src,
            p.entry,
            p.test_n,
            LowerMode::Direct,
            OptMode::None,
            false,
        );
        let (_, dynamic) = run(
            p.src,
            p.entry,
            p.test_n,
            LowerMode::Library,
            OptMode::None,
            true,
        );
        let gap = dynamic as f64 / direct as f64;
        assert!(
            gap < 1.35,
            "{}: dynamically optimized code is {gap:.2}x the direct-prim lowering",
            p.name
        );
    }
}
