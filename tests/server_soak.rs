//! Server soak: the transaction server survives both exits it can have.
//!
//! - **Graceful**: many short-lived sessions ship and call code, then one
//!   sends `Shutdown`; the drained image must pass `tmlc fsck` and hold
//!   every acknowledged root.
//! - **Killed**: a real `tmlc serve` child process is killed mid-flight
//!   with a transaction still open; recovery must keep every
//!   acknowledged commit, roll the loser back, and leave an image
//!   `tmlc fsck` calls clean.

use std::io::BufRead;
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

use tycoon::core::Registry;
use tycoon::lang::{Session, SessionConfig};
use tycoon::store::{DurableStore, Object, SVal, StoreAccess};
use tycoon::txn::{wire::Value, Client, Server, ServerOptions};

fn tmlc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tmlc"))
}

struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "tml_soak_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("tmpdir");
        TempDir(dir)
    }

    fn image(&self) -> PathBuf {
        self.0.join("soak.img")
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// PTML for a self-contained `soak.inc(x) = x + 1` — its only free
/// identifiers are stdlib functions, which any server resolves.
fn inc_ptml() -> Vec<u8> {
    let client = {
        let mut s = Session::default_session().expect("client session");
        s.load_str("module soak export inc\nlet inc(x: Int): Int = x + 1\nend")
            .expect("inc compiles");
        s
    };
    let SVal::Ref(oid) = *client.global("soak.inc").expect("global") else {
        panic!("expected closure global");
    };
    let Object::Closure(clo) = client.store.get(oid).expect("closure") else {
        panic!("expected closure");
    };
    let Object::Ptml(bytes) = client
        .store
        .get(clo.ptml.expect("ptml attached"))
        .expect("ptml")
    else {
        panic!("expected ptml");
    };
    bytes.clone()
}

fn assert_fsck_clean(image: &Path) {
    let out = tmlc().arg("fsck").arg(image).output().expect("run fsck");
    assert!(
        out.status.success(),
        "fsck must pass: {}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn graceful_soak_is_fsck_clean_with_every_acked_root() {
    const SESSIONS: usize = 6;
    const CALLS: usize = 20;

    let dir = TempDir::new("graceful");
    let image = dir.image();
    let server = Server::bind(ServerOptions::default()).expect("bind");
    let addr = server.local_addr();
    let handle = {
        let image = image.clone();
        std::thread::spawn(move || {
            let ds = DurableStore::create(&image, Default::default()).expect("create");
            let sess = Session::on_store(ds, SessionConfig::default(), Registry::standard())
                .expect("server session");
            server.run(sess)
        })
    };
    // Wait for the accept loop.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        match Client::connect(addr) {
            Ok(mut c) => {
                c.ping().expect("ping");
                c.bye().ok();
                break;
            }
            Err(_) if std::time::Instant::now() < deadline => {
                std::thread::sleep(std::time::Duration::from_millis(10))
            }
            Err(e) => panic!("server never came up: {e}"),
        }
    }

    let ptml = inc_ptml();
    let workers: Vec<_> = (0..SESSIONS)
        .map(|w| {
            let ptml = ptml.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let name = format!("soak.f{w}");
                c.ship(&name, &ptml).expect("ship acked");
                for i in 0..CALLS as i64 {
                    let v = c.call(&name, &[Value::Int(i)]).expect("call");
                    assert_eq!(v, Value::Int(i + 1));
                }
                // One explicit transaction per session too.
                c.transact(8, |c| c.call(&name, &[Value::Int(41)]))
                    .expect("transact");
                c.bye().ok();
            })
        })
        .collect();
    for w in workers {
        w.join().expect("soak session");
    }

    let mut c = Client::connect(addr).expect("connect");
    c.shutdown().expect("graceful shutdown");
    handle.join().expect("server thread").expect("clean exit");

    assert_fsck_clean(&image);
    let (ds, report) = DurableStore::open(&image, Default::default()).expect("reopen");
    assert!(!report.stale_log, "log matches the image");
    assert_eq!(report.losers_undone, 0, "graceful exit leaves no losers");
    for w in 0..SESSIONS {
        let root = StoreAccess::root(&ds, &format!("soak.f{w}")).expect("acked ship survives");
        assert!(
            matches!(ds.get(root), Ok(Object::Closure(_))),
            "shipped root resolves to a closure"
        );
    }
}

/// `tmlc serve --json`'s exit-stats block must carry the opt-cache and
/// tier gauge sections alongside the lock-table ones (the schema CI's
/// jq smokes assert on `tmlc stats`).
#[test]
fn serve_json_exit_stats_report_opt_cache_and_tier_gauges() {
    let dir = TempDir::new("servejson");
    let image = dir.image();
    let mut child = tmlc()
        .arg("serve")
        .arg(&image)
        .args(["--addr", "127.0.0.1:0", "--json", "--tier-threshold", "5"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn tmlc serve");
    let addr: SocketAddr = {
        let stdout = child.stdout.as_mut().expect("piped stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read banner");
        line.rsplit(' ')
            .next()
            .and_then(|a| a.trim().parse().ok())
            .unwrap_or_else(|| panic!("no address in banner {line:?}"))
    };

    let mut c = Client::connect(addr).expect("connect");
    c.ship("soak.inc", &inc_ptml()).expect("ship");
    for i in 0..16 {
        let v = c.call("soak.inc", &[Value::Int(i)]).expect("call succeeds");
        assert_eq!(v, Value::Int(i + 1));
    }
    // A couple of tick intervals so the re-opt thread gets a chance to
    // promote (not asserted — only the gauges' presence is contractual).
    std::thread::sleep(std::time::Duration::from_millis(100));
    c.shutdown().expect("graceful shutdown");
    let out = child.wait_with_output().expect("reap server");
    assert!(out.status.success(), "serve exits clean");

    let stdout = String::from_utf8_lossy(&out.stdout);
    let json = stdout
        .lines()
        .rev()
        .find(|l| l.starts_with('{'))
        .unwrap_or_else(|| panic!("no JSON stats block in {stdout:?}"));
    for key in [
        "\"version\":3",
        "\"lock.table.keys\"",
        "\"store.opt_cache.entries\"",
        "\"store.opt_cache.hits\"",
        "\"store.opt_cache.misses\"",
        "\"reflect.tier.schema\":1",
        "\"reflect.tier.hot\"",
        "\"reflect.tier.baseline\"",
        "\"reflect.tier.swaps\"",
        "\"reflect.tier.deopts\"",
        "\"reflect.tier.threshold\":5",
    ] {
        assert!(json.contains(key), "exit stats must contain {key}: {json}");
    }
}

#[test]
fn killed_server_recovers_acked_commits_and_rolls_back_the_loser() {
    const SHIPS: usize = 8;

    let dir = TempDir::new("killed");
    let image = dir.image();
    let mut child = tmlc()
        .arg("serve")
        .arg(&image)
        .args(["--addr", "127.0.0.1:0"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn tmlc serve");
    // The serve banner carries the ephemeral port.
    let addr: SocketAddr = {
        let stdout = child.stdout.as_mut().expect("piped stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("read banner");
        line.rsplit(' ')
            .next()
            .and_then(|a| a.trim().parse().ok())
            .unwrap_or_else(|| panic!("no address in banner {line:?}"))
    };

    let ptml = inc_ptml();
    let mut c = Client::connect(addr).expect("connect");
    for i in 0..SHIPS {
        c.ship(&format!("soak.k{i}"), &ptml).expect("ship acked");
    }
    // Leave a transaction open: shipped but never committed. A later
    // autocommit pushes its records inside the committed prefix, so
    // recovery must actively roll them back (not just drop a tail).
    let mut loser = Client::connect(addr).expect("connect loser");
    loser.begin().expect("begin");
    loser.ship("soak.loser", &ptml).expect("ship in txn");
    c.ship("soak.after", &ptml).expect("ship acked");

    child.kill().expect("kill server");
    child.wait().expect("reap server");

    assert_fsck_clean(&image);
    let (ds, report) = DurableStore::open(&image, Default::default()).expect("recover");
    assert!(!report.stale_log, "log matches the image");
    assert_eq!(report.losers_undone, 1, "the open transaction is undone");
    for i in 0..SHIPS {
        let root = StoreAccess::root(&ds, &format!("soak.k{i}")).expect("acked commit survives");
        assert!(
            matches!(ds.get(root), Ok(Object::Closure(_))),
            "recovered root resolves to a closure"
        );
    }
    assert!(
        StoreAccess::root(&ds, "soak.loser").is_none(),
        "uncommitted ship is rolled back"
    );
}
