//! Replay soundness of the optimizer provenance log (ISSUE: the logged
//! rule sequence, applied to the unoptimized term, must reproduce the
//! optimized term byte for byte in the persistent encoding).

use tycoon::core::term::Abs;
use tycoon::lang::Session;
use tycoon::opt::{record_abs, replay_abs, OptOptions};
use tycoon::reflect::{relink_image_code, session_from_store, ReflectOptions, TermBuilder};
use tycoon::store::ptml::encode_abs;
use tycoon::store::{snapshot, SVal};
use tycoon::trace::Event;
use tycoon::vm::RVal;

/// The paper's §4.1 complex/geom (E2) example.
const COMPLEX_SRC: &str = "
module complex export new, x, y
let new(a: Real, b: Real): Tuple = tuple(a, b)
let x(c: Tuple): Real = c.0
let y(c: Tuple): Real = c.1
end
module geom export abs
let abs(c: Tuple): Real =
  real.sqrt(complex.x(c) * complex.x(c) + complex.y(c) * complex.y(c))
end";

/// Reconstruct geom.abs as a bindings-wrapped TML term, exactly as the
/// reflective optimizer sees it.
fn geom_abs_term(s: &mut Session) -> Abs {
    let SVal::Ref(oid) = s.globals.get("geom.abs").cloned().unwrap() else {
        panic!("geom.abs is not a closure")
    };
    let mut tb = TermBuilder::new(&mut s.ctx, &s.store);
    tb.build(oid, ReflectOptions::default().inline_depth)
        .unwrap()
}

#[test]
fn replay_reproduces_optimized_term_byte_for_byte() {
    let mut s = Session::default_session().unwrap();
    s.load_str(COMPLEX_SRC).unwrap();
    let abs = geom_abs_term(&mut s);
    let opts = OptOptions::default();

    let (recorded, stats, log) = record_abs(&mut s.ctx, abs.clone(), &opts);
    assert!(stats.inlined > 0, "E2 must inline the accessor calls");
    assert!(
        log.iter().any(|e| matches!(e, Event::RuleFired { .. })),
        "log must contain rule firings"
    );
    assert!(
        log.iter()
            .any(|e| matches!(e, Event::ExpandDecision { .. })),
        "log must contain expand decisions"
    );

    let (replayed, rstats) = replay_abs(&mut s.ctx, abs, &opts, &log).unwrap();
    assert_eq!(stats.total_reductions(), rstats.total_reductions());
    assert_eq!(
        encode_abs(&s.ctx, &recorded),
        encode_abs(&s.ctx, &replayed),
        "replayed PTML must be byte-identical"
    );
}

#[test]
fn tampered_log_is_rejected() {
    let mut s = Session::default_session().unwrap();
    s.load_str(COMPLEX_SRC).unwrap();
    let abs = geom_abs_term(&mut s);
    let opts = OptOptions::default();
    let (_, _, mut log) = record_abs(&mut s.ctx, abs.clone(), &opts);

    // Flip the rule name of the first firing: the lockstep check must
    // report a mismatch rather than silently diverge.
    let ix = log
        .iter()
        .position(|e| matches!(e, Event::RuleFired { .. }))
        .unwrap();
    if let Event::RuleFired { rule, .. } = &mut log[ix] {
        *rule = if *rule == "subst" { "remove" } else { "subst" };
    }
    assert!(replay_abs(&mut s.ctx, abs, &opts, &log).is_err());
}

#[test]
fn truncated_log_is_rejected() {
    let mut s = Session::default_session().unwrap();
    s.load_str(COMPLEX_SRC).unwrap();
    let abs = geom_abs_term(&mut s);
    let opts = OptOptions::default();
    let (_, _, mut log) = record_abs(&mut s.ctx, abs.clone(), &opts);
    log.truncate(log.len() / 2);
    assert!(replay_abs(&mut s.ctx, abs, &opts, &log).is_err());
}

#[test]
fn per_round_stats_track_the_reduce_expand_alternation() {
    let mut s = Session::default_session().unwrap();
    s.load_str(COMPLEX_SRC).unwrap();
    let abs = geom_abs_term(&mut s);
    let (_, stats, _) = record_abs(&mut s.ctx, abs, &OptOptions::default());
    assert_eq!(
        stats.per_round.len(),
        stats.rounds as usize,
        "one RoundStats per driver round"
    );
    // §5 termination argument: every recorded round makes progress
    // (reductions or inlinings), and numbering is 1-based and dense.
    for (i, r) in stats.per_round.iter().enumerate() {
        assert_eq!(r.round, i as u32 + 1);
        assert!(r.reductions > 0 || r.inlined > 0, "idle round {r:?}");
    }
}

#[test]
fn image_relink_restores_a_runnable_session() {
    // The tmlc profile/explain path for .tys inputs: persist a session,
    // reload the store, relink every PTML closure, call through it.
    let mut s = Session::default_session().unwrap();
    s.load_str(COMPLEX_SRC).unwrap();
    let bytes = snapshot::to_bytes(&s.store);
    drop(s);

    let store = snapshot::from_bytes(&bytes).unwrap();
    let mut s2 = session_from_store(store, Default::default());
    let relink = relink_image_code(&mut s2).unwrap();
    assert!(relink.relinked > 0);
    assert_eq!(relink.skipped, 0);
    let c = s2
        .call("complex.new", vec![RVal::Real(3.0), RVal::Real(4.0)])
        .unwrap()
        .result;
    let r = s2.call("geom.abs", vec![c]).unwrap();
    assert_eq!(r.result, RVal::Real(5.0));
}
