//! End-to-end pipeline tests: TL source → type checking → CPS → TML →
//! bytecode → execution, across every compilation configuration.

use tycoon::lang::types::LowerMode;
use tycoon::lang::{OptMode, Session, SessionConfig};
use tycoon::vm::RVal;

fn all_sessions() -> Vec<(&'static str, Session)> {
    let mut out = Vec::new();
    for (name, lower, opt) in [
        ("direct/none", LowerMode::Direct, OptMode::None),
        ("direct/local", LowerMode::Direct, OptMode::Local),
        ("library/none", LowerMode::Library, OptMode::None),
        ("library/local", LowerMode::Library, OptMode::Local),
    ] {
        out.push((
            name,
            Session::new(SessionConfig {
                lower,
                opt,
                ..Default::default()
            })
            .expect("session"),
        ));
    }
    out
}

fn expect_int(s: &mut Session, entry: &str, args: Vec<RVal>) -> i64 {
    match s.call(entry, args).expect("runs").result {
        RVal::Int(n) => n,
        other => panic!("expected int, got {other:?}"),
    }
}

#[test]
fn arithmetic_program_agrees_across_modes() {
    let src = "module m export f\n\
               let f(a: Int, b: Int): Int = (a + b) * (a - b) + a % (b + 1)\n\
               end";
    let mut expected = None;
    for (name, mut s) in all_sessions() {
        s.load_str(src).unwrap();
        let got = expect_int(&mut s, "m.f", vec![RVal::Int(17), RVal::Int(5)]);
        match expected {
            None => expected = Some(got),
            Some(e) => assert_eq!(e, got, "mode {name}"),
        }
    }
    assert_eq!(expected, Some((17 + 5) * (17 - 5) + 17 % 6));
}

#[test]
fn nested_exception_handling_through_the_stack() {
    let src = "module m export run\n\
        let risky(n: Int): Int = if n < 0 then raise 0 - n else n end\n\
        let wrap(n: Int): Int = try risky(n) handle e -> 1000 + e end\n\
        let run(n: Int): Int = try wrap(n) + risky(n) handle e -> 2000 + e end\n\
        end";
    for (name, mut s) in all_sessions() {
        s.load_str(src).unwrap();
        // Positive: no exception at all.
        assert_eq!(
            expect_int(&mut s, "m.run", vec![RVal::Int(5)]),
            10,
            "{name}"
        );
        // Negative: wrap handles the first raise (1000+n), then the second
        // risky raises and the outer handler catches it (2000+n).
        assert_eq!(
            expect_int(&mut s, "m.run", vec![RVal::Int(-7)]),
            2007,
            "{name}"
        );
    }
}

#[test]
fn division_by_zero_exceptions_match_fold_results() {
    // The optimizer's fold of `/` by a constant zero and the machine's
    // runtime behaviour must agree (both reach the handler).
    let src = "module m export s, d\n\
        let s(a: Int): Int = try a / 0 handle e -> 42 end\n\
        let d(a: Int, b: Int): Int = try a / b handle e -> 42 end\n\
        end";
    for (name, mut s) in all_sessions() {
        s.load_str(src).unwrap();
        assert_eq!(expect_int(&mut s, "m.s", vec![RVal::Int(7)]), 42, "{name}");
        assert_eq!(
            expect_int(&mut s, "m.d", vec![RVal::Int(7), RVal::Int(0)]),
            42,
            "{name}"
        );
        assert_eq!(
            expect_int(&mut s, "m.d", vec![RVal::Int(12), RVal::Int(4)]),
            3,
            "{name}"
        );
    }
}

#[test]
fn higher_order_functions_cross_modules() {
    let srcs = [
        "module hof export apply2\n\
         let apply2(f: Fun(Int): Int, x: Int): Int = f(f(x))\n\
         end",
        "module use export go\n\
         let add3(x: Int): Int = x + 3\n\
         let go(x: Int): Int = hof.apply2(add3, x)\n\
         end",
    ];
    for (name, mut s) in all_sessions() {
        for src in srcs {
            s.load_str(src).unwrap();
        }
        assert_eq!(
            expect_int(&mut s, "use.go", vec![RVal::Int(10)]),
            16,
            "{name}"
        );
    }
}

#[test]
fn reals_tuples_and_stdlib() {
    let src = "module geo export dist2\n\
        let dist2(p: Tuple, q: Tuple): Real =\n\
          let dx = real.sub(p.0, q.0) in\n\
          let dy = real.sub(p.1, q.1) in\n\
          real.add(real.mul(dx, dx), real.mul(dy, dy))\n\
        end";
    for (name, mut s) in all_sessions() {
        s.load_str(src).unwrap();
        // Calling with no arguments must error (arity), not panic.
        assert!(s.call("geo.dist2", vec![]).is_err());
        let mk = |s: &mut Session, x: f64, y: f64| -> RVal {
            // Build a tuple via the machine: use a tiny helper module once.
            s.load_str("module mk export t\nlet t(a: Real, b: Real): Tuple = tuple(a, b)\nend")
                .ok();
            s.call("mk.t", vec![RVal::Real(x), RVal::Real(y)])
                .expect("mk runs")
                .result
        };
        let a = mk(&mut s, 1.0, 2.0);
        let b = mk(&mut s, 4.0, 6.0);
        let r = s.call("geo.dist2", vec![a, b]).expect("dist2 runs");
        assert_eq!(r.result, RVal::Real(25.0), "{name}");
    }
}

#[test]
fn output_ordering_preserved() {
    let src = "module m export f\n\
        let f(n: Int): Unit = (io.print(n); io.print(n + 1); io.print(\"done\"))\n\
        end";
    for (name, mut s) in all_sessions() {
        s.load_str(src).unwrap();
        let out = s.call("m.f", vec![RVal::Int(1)]).expect("runs").output;
        assert_eq!(out, vec!["1", "2", "\"done\""], "{name}");
    }
}

#[test]
fn deep_tail_recursion_does_not_overflow() {
    // CPS machine: tail calls reuse no stack; a million iterations must
    // run in constant Rust stack space.
    let src = "module m export count\n\
        let count(n: Int): Int = if n == 0 then 0 else count(n - 1) end\n\
        end";
    let mut s = Session::default_session().unwrap();
    s.load_str(src).unwrap();
    assert_eq!(expect_int(&mut s, "m.count", vec![RVal::Int(1_000_000)]), 0);
}

#[test]
fn fuel_limits_runaway_programs() {
    let src = "module m export spin\n\
        let spin(n: Int): Int = spin(n)\n\
        end";
    let mut s = Session::new(SessionConfig {
        fuel: 50_000,
        ..Default::default()
    })
    .unwrap();
    s.load_str(src).unwrap();
    let err = s.call("m.spin", vec![RVal::Int(1)]);
    assert!(err.is_err(), "runaway program must be stopped by fuel");
}
