//! Query rewrite soundness over randomized relations and predicate chains:
//! every plan produced by the §4.2 rewrites must return the same result as
//! the naive plan.

use proptest::prelude::*;
use tycoon::core::{Ctx, Lit};
use tycoon::opt::OptOptions;
use tycoon::query::{self, integrated_optimize, rewrite_queries, select_chain, Pred};
use tycoon::store::Store;
use tycoon::vm::{Machine, RVal, Vm};

fn run_count(ctx: &Ctx, vm: &mut Vm, store: &mut Store, app: &tycoon::core::App) -> i64 {
    let block = vm.compile_program(ctx, app).expect("closed program");
    let mut machine = Machine::new(&vm.code, &vm.externs, store, 100_000_000);
    match machine
        .run(block, Vec::new(), Vec::new())
        .expect("runs")
        .result
    {
        RVal::Int(n) => n,
        other => panic!("expected count, got {other:?}"),
    }
}

fn pred_strategy() -> impl Strategy<Value = Pred> {
    prop_oneof![
        (0usize..3, -5i64..55).prop_map(|(c, k)| Pred::ColEq(c, Lit::Int(k))),
        (0usize..3, -5i64..105).prop_map(|(c, k)| Pred::ColLt(c, k)),
        Just(Pred::True),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn merged_plans_equal_naive_plans(
        seed in 0u64..1_000,
        rows in 1usize..200,
        preds in proptest::collection::vec(pred_strategy(), 1..4),
    ) {
        let mut ctx = Ctx::new();
        let mut vm = Vm::new();
        query::install(&mut ctx, &mut vm);
        let mut store = Store::new();
        let rel = query::data::random_relation(&mut store, rows, 50, 100, seed);

        let naive = select_chain(&mut ctx, rel, &preds);
        let mut merged = naive.clone();
        rewrite_queries(&mut ctx, None, &mut merged);
        let (fused, _) = integrated_optimize(&mut ctx, None, merged, &OptOptions::default());

        let a = run_count(&ctx, &mut vm, &mut store, &naive);
        let b = run_count(&ctx, &mut vm, &mut store, &fused);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn index_plans_equal_scan_plans(
        seed in 0u64..1_000,
        rows in 1usize..300,
        key in -5i64..55,
    ) {
        let mut ctx = Ctx::new();
        let mut vm = Vm::new();
        query::install(&mut ctx, &mut vm);
        let mut store = Store::new();
        let rel = query::data::random_relation(&mut store, rows, 50, 100, seed);
        query::data::build_index(&mut store, rel, 1).expect("index builds");

        let scan = select_chain(&mut ctx, rel, &[Pred::ColEq(1, Lit::Int(key))]);
        let mut indexed = scan.clone();
        let stats = rewrite_queries(&mut ctx, Some(&store), &mut indexed);
        prop_assert_eq!(stats.index_select, 1);

        let a = run_count(&ctx, &mut vm, &mut store, &scan);
        let b = run_count(&ctx, &mut vm, &mut store, &indexed);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn trivial_exists_equivalent(
        seed in 0u64..1_000,
        rows in 0usize..100,
        verdict in any::<bool>(),
    ) {
        let mut ctx = Ctx::new();
        let mut vm = Vm::new();
        query::install(&mut ctx, &mut vm);
        let mut store = Store::new();
        let rel = query::data::random_relation(&mut store, rows, 10, 10, seed);

        // Predicate ignores the range variable; answers `verdict`.
        let src = format!(
            "(exists proc(x ce cc) (cc {verdict}) <oid {:#x}> cont(e)(halt e) cont(b)(halt b))",
            rel.0
        );
        let parsed = tycoon::core::parse::parse_app(&mut ctx, &src).expect("parses");
        let scan = parsed.app;
        let mut rewritten = scan.clone();
        let stats = rewrite_queries(&mut ctx, None, &mut rewritten);
        prop_assert_eq!(stats.trivial_exists, 1);
        let (rewritten, _) = integrated_optimize(&mut ctx, None, rewritten, &OptOptions::default());

        let run_bool = |ctx: &Ctx, vm: &mut Vm, store: &mut Store, app: &tycoon::core::App| {
            let block = vm.compile_program(ctx, app).expect("compiles");
            let mut m = Machine::new(&vm.code, &vm.externs, store, 100_000_000);
            match m.run(block, Vec::new(), Vec::new()).expect("runs").result {
                RVal::Bool(b) => b,
                other => panic!("expected bool, got {other:?}"),
            }
        };
        let a = run_bool(&ctx, &mut vm, &mut store, &scan);
        let b = run_bool(&ctx, &mut vm, &mut store, &rewritten);
        prop_assert_eq!(a, b);
        // Ground truth: ∃x∈R: verdict ≡ verdict ∧ R ≠ ∅.
        prop_assert_eq!(a, verdict && rows > 0);
    }
}
