//! Property tests tying the optimizer to the abstract machine:
//! optimization must preserve evaluation results, well-formedness and the
//! unique binding rule, never increase the executed instruction count, and
//! commute with the PTML codec.

use proptest::prelude::*;
use tycoon::core::gen::{gen_program, GenConfig};
use tycoon::core::wellformed::check_app;
use tycoon::opt::{optimize, OptOptions, RuleSet};
use tycoon::store::ptml;
use tycoon::store::Store;
use tycoon::vm::{RVal, Vm};

fn run(ctx: &tycoon::core::Ctx, app: &tycoon::core::App) -> RVal {
    let mut vm = Vm::new();
    let block = vm.compile_program(ctx, app).expect("closed program");
    let mut store = Store::new();
    vm.run_program(&mut store, block, 10_000_000)
        .expect("terminates")
        .result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn optimization_preserves_results(seed in 0u64..10_000, steps in 4usize..24) {
        let (mut ctx, app) = gen_program(seed, GenConfig { steps, ..Default::default() });
        let before = run(&ctx, &app);
        let (optimized, _) = optimize(&mut ctx, app, &OptOptions::default());
        check_app(&ctx, &optimized).expect("optimized program well-formed");
        let after = run(&ctx, &optimized);
        prop_assert!(before.identical(&after), "{before:?} vs {after:?}");
    }

    #[test]
    fn optimization_never_slows_programs(seed in 0u64..10_000) {
        let (mut ctx, app) = gen_program(seed, GenConfig::default());
        let mut vm = Vm::new();
        let block = vm.compile_program(&ctx, &app).unwrap();
        let mut store = Store::new();
        let base = vm.run_program(&mut store, block, 10_000_000).unwrap();

        let (optimized, _) = optimize(&mut ctx, app, &OptOptions::default());
        let mut vm2 = Vm::new();
        let block2 = vm2.compile_program(&ctx, &optimized).unwrap();
        let mut store2 = Store::new();
        let opt = vm2.run_program(&mut store2, block2, 10_000_000).unwrap();
        prop_assert!(opt.stats.instrs <= base.stats.instrs);
        prop_assert!(opt.stats.calls <= base.stats.calls);
    }

    #[test]
    fn every_rule_subset_is_sound(seed in 0u64..2_000, disabled in 0usize..9) {
        let rule = [
            "subst", "remove", "reduce", "eta-reduce", "fold",
            "case-subst", "Y-remove", "Y-reduce", "expand",
        ][disabled];
        let (mut ctx, app) = gen_program(seed, GenConfig::default());
        let before = run(&ctx, &app);
        let opts = OptOptions { rules: RuleSet::ALL.without(rule), ..Default::default() };
        let (optimized, _) = optimize(&mut ctx, app, &opts);
        check_app(&ctx, &optimized).expect("well-formed");
        let after = run(&ctx, &optimized);
        prop_assert!(before.identical(&after), "rule {rule}: {before:?} vs {after:?}");
    }

    #[test]
    fn ptml_roundtrips_optimized_code(seed in 0u64..5_000) {
        let (mut ctx, app) = gen_program(seed, GenConfig::default());
        let (optimized, _) = optimize(&mut ctx, app, &OptOptions::default());
        let bytes = ptml::encode_app(&ctx, &optimized);
        let (decoded, _) = ptml::decode_app(&mut ctx, &bytes).expect("decodes");
        prop_assert_eq!(optimized.size(), decoded.size());
        check_app(&ctx, &decoded).expect("decoded well-formed");
        let a = run(&ctx, &optimized);
        let b = run(&ctx, &decoded);
        prop_assert!(a.identical(&b));
    }

    #[test]
    fn optimizer_is_idempotent(seed in 0u64..5_000) {
        let (mut ctx, app) = gen_program(seed, GenConfig::default());
        let (once, _) = optimize(&mut ctx, app, &OptOptions::default());
        let (twice, stats) = optimize(&mut ctx, once.clone(), &OptOptions::default());
        prop_assert_eq!(once, twice);
        prop_assert_eq!(stats.inlined, 0);
    }
}
