//! Degraded-mode whole-world optimization: a panicking, diverging or
//! corrupt target is skipped — recorded on the trace — while the rest of
//! the world commits byte-identically to a healthy run's ordering, for
//! every job count. Image relink likewise survives corrupt PTML.

use tycoon::lang::{Session, SessionConfig};
use tycoon::reflect::{
    optimize_all, optimize_named, relink_image_code, session_from_store, OnError, ReflectError,
    ReflectOptions,
};
use tycoon::store::failpoint::{Action, FailSpec, ScopedFailpoints};
use tycoon::store::{snapshot, Object, SVal};
use tycoon::trace::Event;
use tycoon::vm::RVal;

const SRC: &str = "
module complex export new, x, y
let new(a: Real, b: Real): Tuple = tuple(a, b)
let x(c: Tuple): Real = c.0
let y(c: Tuple): Real = c.1
end
module geom export abs
let abs(c: Tuple): Real =
  real.sqrt(complex.x(c) * complex.x(c) + complex.y(c) * complex.y(c))
end
module m export fib
let fib(n: Int): Int = if n < 2 then n else fib(n - 1) + fib(n - 2) end
end";

fn session() -> Session {
    let mut s = Session::new(SessionConfig::default()).unwrap();
    s.load_str(SRC).unwrap();
    s
}

fn oid_of(s: &Session, name: &str) -> u64 {
    let Some(SVal::Ref(oid)) = s.globals.get(name) else {
        panic!("{name} is not a closure-valued global");
    };
    oid.0
}

fn check_world(s: &mut Session) {
    let c = s
        .call("complex.new", vec![RVal::Real(3.0), RVal::Real(4.0)])
        .unwrap()
        .result;
    assert_eq!(s.call("geom.abs", vec![c]).unwrap().result, RVal::Real(5.0));
    assert_eq!(
        s.call("m.fib", vec![RVal::Int(10)]).unwrap().result,
        RVal::Int(55)
    );
}

#[test]
fn panicking_target_is_skipped_and_the_rest_commits_identically() {
    // Session construction is deterministic, so the target's OID is the
    // same in every run below.
    let target = oid_of(&session(), "geom.abs");
    let _fp = ScopedFailpoints::new(&[(
        "reflect.prepare",
        FailSpec::always(Action::Panic).for_key(target),
    )]);

    let rec = tycoon::trace::global();
    rec.clear();
    rec.set_capacity(1 << 16);
    rec.set_enabled(true);
    let run = |jobs: u32| {
        let mut s = session();
        let report = optimize_all(
            &mut s,
            &ReflectOptions {
                jobs,
                ..Default::default()
            },
        )
        .unwrap();
        (s, report)
    };
    let (mut s1, r1) = run(1);
    let (mut s4, r4) = run(4);
    rec.set_enabled(false);

    assert_eq!(r1.skipped, 1, "{r1:?}");
    assert_eq!(r4.skipped, 1, "{r4:?}");
    assert_eq!(r1.functions, r4.functions);
    assert!(
        r1.functions > 0,
        "other targets must still optimize: {r1:?}"
    );
    assert_eq!(
        snapshot::to_bytes(&s1.store),
        snapshot::to_bytes(&s4.store),
        "degraded commit must be byte-identical across job counts"
    );
    // The skipped function is still its unoptimized self — bound and
    // correct — while others were replaced.
    assert_eq!(oid_of(&s1, "geom.abs"), target);
    check_world(&mut s1);
    check_world(&mut s4);

    // Both runs reported the skip on the trace, attributed to the target.
    // (Filter on the reason: concurrently running tests in this binary may
    // record their own fuel/decode skips on the shared recorder.)
    let skips: Vec<_> = rec
        .events()
        .into_iter()
        .filter_map(|sample| match sample.event {
            Event::DegradedSkip {
                function,
                oid,
                reason: "panic",
                ..
            } => Some((function, oid)),
            _ => None,
        })
        .collect();
    assert_eq!(skips.len(), 2, "{skips:?}");
    for (function, oid) in skips {
        assert_eq!(function, "geom.abs");
        assert_eq!(oid, target);
    }
    assert!(rec.counter("reflect.degraded").get() >= 2);
}

#[test]
fn abort_policy_propagates_injected_failures() {
    let target = oid_of(&session(), "geom.abs");
    let _fp = ScopedFailpoints::new(&[(
        "reflect.prepare",
        FailSpec::always(Action::Io).for_key(target),
    )]);
    let mut s = session();
    let err = optimize_all(
        &mut s,
        &ReflectOptions {
            on_error: OnError::Abort,
            ..Default::default()
        },
    );
    assert!(
        matches!(err, Err(ReflectError::BadPtml(_))),
        "abort mode must surface the failure: {err:?}"
    );
}

#[test]
fn fuel_budget_skips_expensive_targets_but_commits_the_world() {
    let mut s = session();
    let report = optimize_all(
        &mut s,
        &ReflectOptions {
            fuel: Some(0),
            ..Default::default()
        },
    )
    .unwrap();
    assert!(report.skipped > 0, "{report:?}");
    check_world(&mut s);
}

#[test]
fn fuel_exhaustion_surfaces_as_a_typed_error_in_abort_mode() {
    let mut s = session();
    let err = optimize_named(
        &mut s,
        "geom.abs",
        &ReflectOptions {
            fuel: Some(0),
            on_error: OnError::Abort,
            ..Default::default()
        },
    );
    assert!(
        matches!(err, Err(ReflectError::Fuel { budget: 0, .. })),
        "{err:?}"
    );
}

#[test]
fn fuel_participates_in_the_cache_key() {
    let mut s = session();
    let generous = ReflectOptions {
        fuel: Some(1_000_000),
        ..Default::default()
    };
    let _ = optimize_named(&mut s, "geom.abs", &generous).unwrap();
    let unlimited = ReflectOptions::default();
    let _ = optimize_named(&mut s, "geom.abs", &unlimited).unwrap();
    let stats = s.store.cache_stats();
    assert_eq!(stats.hits, 0, "{stats:?}");
    assert_eq!(stats.inserts, 2, "{stats:?}");
}

#[test]
fn relink_skips_closures_with_corrupt_ptml_and_marks_them_degraded() {
    let s = session();
    let bytes = snapshot::to_bytes(&s.store);
    drop(s);

    let store = snapshot::from_bytes(&bytes).unwrap();
    let mut s2 = session_from_store(store, SessionConfig::default());
    let Some(SVal::Ref(victim)) = s2.globals.get("geom.abs").cloned() else {
        panic!()
    };
    let ptml_oid = match s2.store.get(victim) {
        Ok(Object::Closure(c)) => c.ptml.unwrap(),
        other => panic!("{other:?}"),
    };
    match s2.store.get_mut(ptml_oid) {
        Ok(Object::Ptml(b)) => {
            b.clear();
            b.extend_from_slice(b"not ptml at all");
        }
        other => panic!("{other:?}"),
    }

    let report = relink_image_code(&mut s2).unwrap();
    assert_eq!(report.skipped, 1, "{report:?}");
    assert!(report.relinked > 0, "{report:?}");
    assert_eq!(s2.store.attr(victim, "degraded"), Some(1));
    // Everything else relinked and runs.
    let c = s2
        .call("complex.new", vec![RVal::Real(3.0), RVal::Real(4.0)])
        .unwrap()
        .result;
    assert_eq!(
        s2.call("complex.x", vec![c]).unwrap().result,
        RVal::Real(3.0)
    );
    assert_eq!(
        s2.call("m.fib", vec![RVal::Int(10)]).unwrap().result,
        RVal::Int(55)
    );
}

#[test]
fn degraded_image_boots_after_salvage_drops_a_ptml_blob() {
    // End-to-end: salvage tombstones a PTML record, the closure that
    // pointed at it relinks as degraded, and the rest of the image runs.
    let dir = std::env::temp_dir().join(format!("tml_degraded_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("world.tys");

    let s = session();
    let Some(SVal::Ref(victim)) = s.globals.get("geom.abs").cloned() else {
        panic!()
    };
    let ptml_oid = match s.store.get(victim) {
        Ok(Object::Closure(c)) => c.ptml.unwrap(),
        other => panic!("{other:?}"),
    };
    snapshot::save(&s.store, &path).unwrap();
    drop(s);

    // Corrupt exactly the PTML blob's framed record on disk, then remove
    // the CRC trailer's protection by... no — recompute nothing: salvage
    // operates on the raw image, so a flipped byte inside that frame
    // fails the whole-image CRC and the per-record decode, and only that
    // record is dropped.
    let mut image = std::fs::read(&path).unwrap();
    let offset = find_frame(&image, ptml_oid.0);
    image[offset] ^= 0xff;
    std::fs::write(&path, &image).unwrap();
    std::fs::remove_file(snapshot::backup_path(&path)).ok();

    let (store, report) = snapshot::load_with_recovery(&path).unwrap();
    assert!(report.dropped_objects >= 1, "{report:?}");
    let mut s2 = session_from_store(store, SessionConfig::default());
    let relink = relink_image_code(&mut s2).unwrap();
    assert!(relink.skipped >= 1, "{relink:?}");
    assert!(relink.relinked > 0, "{relink:?}");
    let c = s2
        .call("complex.new", vec![RVal::Real(3.0), RVal::Real(4.0)])
        .unwrap()
        .result;
    assert_eq!(
        s2.call("complex.x", vec![c]).unwrap().result,
        RVal::Real(3.0)
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Byte offset of the first payload byte of object `oid`'s framed record
/// in a TYSTO3 image — a tiny re-parse of the envelope, kept in sync with
/// `snapshot.rs` (the format is versioned and CRC-sealed, so drift would
/// fail loudly).
fn find_frame(image: &[u8], oid: u64) -> usize {
    fn varint(image: &[u8], pos: &mut usize) -> u64 {
        let mut shift = 0u32;
        let mut out = 0u64;
        loop {
            let b = image[*pos];
            *pos += 1;
            out |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return out;
            }
            shift += 7;
        }
    }
    assert!(image.starts_with(b"TYSTO3"), "format changed?");
    let mut pos = 6;
    let slots = varint(image, &mut pos);
    // OIDs are 1-based (0 is the null OID); slot records are emitted in
    // OID order, so object `oid` is the (oid - 1)-th record.
    assert!(
        oid >= 1 && oid - 1 < slots,
        "oid {oid} out of range {slots}"
    );
    for _ in 0..oid - 1 {
        let tag = varint(image, &mut pos);
        if tag == 1 {
            let len = varint(image, &mut pos);
            pos += len as usize;
        }
    }
    let tag = varint(image, &mut pos);
    assert_eq!(tag, 1, "victim slot must hold an object");
    let _len = varint(image, &mut pos);
    pos
}
