//! Test twin of `examples/code_shipping.rs`: PTML + named bindings as a
//! wire format between independent sessions (the §6 "code shipping"
//! outlook).

use tycoon::lang::Session;
use tycoon::store::{ptml, ClosureObj, Object, SVal};
use tycoon::vm::RVal;

/// Extract `(ptml bytes, binding names)` for a globally bound function.
fn export_function(s: &Session, name: &str) -> (Vec<u8>, Vec<String>) {
    let SVal::Ref(oid) = *s.global(name).expect("bound") else {
        panic!("{name} is not a closure");
    };
    let Object::Closure(clo) = s.store.get(oid).expect("closure") else {
        panic!("{name} is not a closure object");
    };
    let Object::Ptml(bytes) = s.store.get(clo.ptml.expect("PTML")).expect("ptml") else {
        panic!("broken PTML attachment");
    };
    (
        bytes.clone(),
        clo.bindings.iter().map(|(n, _)| n.clone()).collect(),
    )
}

/// Install shipped bytes into a session under `name`, rebinding against
/// the *receiver's* globals.
fn import_function(s: &mut Session, name: &str, bytes: Vec<u8>) {
    let (abs, free) = ptml::decode_abs(&mut s.ctx, &bytes).expect("wire decodes");
    let compiled = s.vm.compile_proc(&s.ctx, &abs).expect("recompiles");
    let by_var: std::collections::HashMap<_, _> =
        free.iter().map(|(n, v)| (*v, n.clone())).collect();
    let mut env = Vec::new();
    let mut bindings = Vec::new();
    for v in &compiled.captures {
        let n = &by_var[v];
        let val = s
            .globals
            .get(n)
            .cloned()
            .expect("receiver resolves binding");
        env.push(val.clone());
        bindings.push((n.clone(), val));
    }
    let ptml_oid = s.store.alloc(Object::Ptml(bytes));
    let oid = s.store.alloc(Object::Closure(ClosureObj {
        code: compiled.block,
        env,
        bindings,
        ptml: Some(ptml_oid),
    }));
    s.globals.insert(name.to_string(), SVal::Ref(oid));
}

#[test]
fn shipped_code_computes_identically() {
    let mut sender = Session::default_session().unwrap();
    sender
        .load_str(
            "module price export total\n\
             let total(amount: Int, qty: Int): Int =\n\
               let gross = amount * qty in\n\
               if gross > 1000 then gross - gross / 10 else gross end\n\
             end",
        )
        .unwrap();
    let expected: Vec<RVal> = [(5, 3), (200, 7), (1000, 2)]
        .iter()
        .map(|(a, q)| {
            sender
                .call("price.total", vec![RVal::Int(*a), RVal::Int(*q)])
                .unwrap()
                .result
        })
        .collect();
    let (bytes, names) = export_function(&sender, "price.total");
    assert!(names.iter().all(|n| n.starts_with("int.")), "{names:?}");
    drop(sender);

    let mut receiver = Session::default_session().unwrap();
    import_function(&mut receiver, "shipped.total", bytes);
    for ((a, q), want) in [(5i64, 3i64), (200, 7), (1000, 2)].iter().zip(expected) {
        let got = receiver
            .call("shipped.total", vec![RVal::Int(*a), RVal::Int(*q)])
            .unwrap()
            .result;
        assert_eq!(got, want, "({a}, {q})");
    }
}

#[test]
fn shipped_code_can_be_reoptimized_by_the_receiver() {
    let mut sender = Session::default_session().unwrap();
    sender
        .load_str("module m export sq\nlet sq(x: Int): Int = x * x + 1\nend")
        .unwrap();
    let (bytes, _) = export_function(&sender, "m.sq");
    drop(sender);

    let mut receiver = Session::default_session().unwrap();
    import_function(&mut receiver, "shipped.sq", bytes);
    let plain = receiver.call("shipped.sq", vec![RVal::Int(9)]).unwrap();
    let v = receiver.globals.get("shipped.sq").cloned().unwrap();
    let optimized = tycoon::reflect::optimize_value(
        &mut receiver,
        &v,
        &tycoon::reflect::ReflectOptions::default(),
    )
    .unwrap();
    let fast = receiver
        .call_value(RVal::from_sval(&optimized), vec![RVal::Int(9)])
        .unwrap();
    assert_eq!(plain.result, fast.result);
    assert!(fast.stats.instrs < plain.stats.instrs);
}

#[test]
fn wire_format_rejects_tampering() {
    let mut sender = Session::default_session().unwrap();
    sender
        .load_str("module m export f\nlet f(x: Int): Int = x + 1\nend")
        .unwrap();
    let (bytes, _) = export_function(&sender, "m.f");
    let mut receiver = Session::default_session().unwrap();
    // Any truncation must be detected by the codec, never panic.
    for cut in [0, 3, bytes.len() / 2, bytes.len() - 1] {
        assert!(ptml::decode_abs(&mut receiver.ctx, &bytes[..cut]).is_err());
    }
}
