//! The PTML back-reference codec (PTML2): legacy-format acceptance and the
//! size guarantee. The share-aware encoder emits each distinct shared
//! subtree once and back-references it thereafter; the decoder accepts
//! both the legacy flat format and the new one, and both decode to the
//! same term.

use tycoon::core::gen::{gen_program, GenConfig};
use tycoon::core::term::Abs;
use tycoon::core::wellformed::check_abs;
use tycoon::lang::stanford::suite;
use tycoon::lang::{Session, SessionConfig};
use tycoon::reflect::{optimize_all, ReflectOptions};
use tycoon::store::ptml::{decode_abs, encode_abs, encode_abs_flat};
use tycoon::store::Object;

/// Canonical form for structural comparison: the flat encoding is a pure
/// function of the term's structure and base names, independent of `VarId`
/// numbering.
fn canon(ctx: &tycoon::core::Ctx, abs: &Abs) -> Vec<u8> {
    encode_abs_flat(ctx, abs)
}

#[test]
fn legacy_flat_blobs_roundtrip_through_the_new_decoder() {
    for seed in 0..60u64 {
        let (mut ctx, app) = gen_program(seed, GenConfig::default());
        let abs = Abs::new(vec![], app);
        let flat = encode_abs_flat(&ctx, &abs);
        let shared = encode_abs(&ctx, &abs);
        assert!(flat.starts_with(b"PTML1"), "seed {seed}");
        assert!(shared.starts_with(b"PTML2"), "seed {seed}");
        let (from_flat, free_flat) = decode_abs(&mut ctx, &flat).expect("flat decodes");
        let (from_shared, free_shared) = decode_abs(&mut ctx, &shared).expect("shared decodes");
        check_abs(&ctx, &from_flat).unwrap();
        check_abs(&ctx, &from_shared).unwrap();
        // Both decoded terms are structurally the original.
        assert_eq!(canon(&ctx, &from_flat), canon(&ctx, &abs), "seed {seed}");
        assert_eq!(canon(&ctx, &from_shared), canon(&ctx, &abs), "seed {seed}");
        let names = |fs: &[(String, tycoon::core::VarId)]| {
            fs.iter().map(|(n, _)| n.clone()).collect::<Vec<_>>()
        };
        assert_eq!(names(&free_flat), names(&free_shared), "seed {seed}");
    }
}

#[test]
fn share_encoding_is_never_larger_than_flat_on_the_stanford_suite() {
    let mut s = Session::new(SessionConfig::default()).unwrap();
    for p in suite() {
        s.load_str(p.src).unwrap();
    }
    // Optimization substitutes shared handles into multiple call sites, so
    // the optimized world is where physical sharing actually appears.
    optimize_all(&mut s, &ReflectOptions::default()).unwrap();
    let blobs: Vec<Vec<u8>> = s
        .store
        .iter()
        .filter_map(|(_, obj)| match obj {
            Object::Ptml(b) => Some(b.clone()),
            _ => None,
        })
        .collect();
    assert!(!blobs.is_empty());
    let (mut flat_total, mut shared_total) = (0usize, 0usize);
    for b in &blobs {
        let (abs, _) = decode_abs(&mut s.ctx, b).unwrap();
        let flat = encode_abs_flat(&s.ctx, &abs);
        let shared = encode_abs(&s.ctx, &abs);
        assert!(
            shared.len() <= flat.len(),
            "share-encoded blob larger than flat ({} > {})",
            shared.len(),
            flat.len()
        );
        flat_total += flat.len();
        shared_total += shared.len();
        // Equal terms either way.
        let (a1, _) = decode_abs(&mut s.ctx, &flat).unwrap();
        let (a2, _) = decode_abs(&mut s.ctx, &shared).unwrap();
        assert_eq!(canon(&s.ctx, &a1), canon(&s.ctx, &a2));
    }
    assert!(shared_total <= flat_total);
}
