//! Differential check of the optimizer's fold hooks against the machine:
//! for every primitive that registers a fold function, folding a call on
//! constant arguments must be *semantically invisible* — compiling and
//! running the folded term yields exactly what compiling and running the
//! original call yields, including which continuation is taken and the
//! value it receives (exceptions included).

use tycoon::core::prim::Arity;
use tycoon::core::{Abs, App, Ctx, FoldOutcome, Lit, PrimDef, Registry, Value};
use tycoon::store::{Object, SVal, Store};
use tycoon::vm::{Machine, RVal, Vm};

fn full_registry() -> Registry {
    Registry::standard().with(tycoon::query::prims::register_prims)
}

/// Literal pool the candidate argument tuples are drawn from. Chosen to
/// hit both continuations of fallible primitives (zero divisors, negative
/// shifts) and several result types.
fn pool() -> Vec<Lit> {
    vec![
        Lit::Int(6),
        Lit::Int(3),
        Lit::Int(0),
        Lit::Int(-2),
        Lit::real(2.25),
        Lit::Bool(true),
        Lit::Char(b'a'),
    ]
}

/// Compile `app` as a closed program and run it on a fresh machine with a
/// fresh store. Both the original and the folded term go through this, so
/// any divergence is the fold hook's.
fn run_app(ctx: &Ctx, app: &App) -> Result<RVal, String> {
    let mut vm = Vm::new();
    tycoon::query::exec::install_externs(&mut vm.externs);
    let mut store = Store::new();
    store.alloc(Object::Array(vec![SVal::Int(10), SVal::Int(20)]));
    let block = vm
        .compile_program(ctx, app)
        .map_err(|e| format!("compile: {e}"))?;
    let mut m = Machine::new(&vm.code, &vm.externs, &mut store, 10_000_000);
    m.run(block, Vec::new(), Vec::new())
        .map(|r| r.result)
        .map_err(|e| format!("{e:?}"))
}

/// `(prim lits… [ce] cc)` with halting *value* continuations, so the
/// taken continuation and the value it receives surface as the program
/// result.
fn call_value_style(ctx: &mut Ctx, nc: usize, id: tycoon::core::PrimId, lits: &[Lit]) -> App {
    let halt = Value::Prim(ctx.prims.lookup("halt").unwrap());
    let mut args: Vec<Value> = lits.iter().cloned().map(Value::Lit).collect();
    for _ in 0..nc {
        let v = ctx.names.fresh("v");
        args.push(Value::from(Abs::new(
            vec![v],
            App::new(halt.clone(), vec![Value::Var(v)]),
        )));
    }
    App::new(Value::Prim(id), args)
}

/// `(prim lits… c₁ … cₙ)` with nullary *branch* continuations, each
/// halting on a distinct tag, so the taken branch surfaces as the program
/// result (the shape comparison and boolean-test primitives expect).
fn call_branch_style(ctx: &Ctx, nc: usize, id: tycoon::core::PrimId, lits: &[Lit]) -> App {
    let halt = Value::Prim(ctx.prims.lookup("halt").unwrap());
    let mut args: Vec<Value> = lits.iter().cloned().map(Value::Lit).collect();
    for k in 0..nc {
        args.push(Value::from(Abs::new(
            vec![],
            App::new(halt.clone(), vec![Value::int(101 + k as i64)]),
        )));
    }
    App::new(Value::Prim(id), args)
}

#[test]
fn every_fold_hook_agrees_with_the_machine() {
    let mut ctx = Ctx::from_registry(full_registry());
    // Owned snapshot of the table so `ctx` stays mutably borrowable for
    // fresh continuation variables.
    let defs: Vec<(tycoon::core::PrimId, PrimDef)> =
        ctx.prims.iter().map(|(id, d)| (id, d.clone())).collect();

    let pool = pool();
    let mut exercised = Vec::new();
    let mut folds_checked = 0usize;
    for (id, def) in &defs {
        let Some(fold) = def.fold else { continue };
        if def.attrs.no_fold || def.validate.is_some() {
            continue;
        }
        let (Arity::Exact(nv), Arity::Exact(nc)) = (def.signature.vals, def.signature.conts) else {
            continue;
        };
        if nv == 0 || nv > 3 || !(1..=2).contains(&nc) {
            continue;
        }
        let mut hit = false;
        // All |pool|^nv argument tuples.
        let total = pool.len().pow(nv as u32);
        for mut k in 0..total {
            let mut lits = Vec::with_capacity(nv);
            for _ in 0..nv {
                lits.push(pool[k % pool.len()].clone());
                k /= pool.len();
            }
            let mut app = call_value_style(&mut ctx, nc, *id, &lits);
            let mut outcome = fold(&app);
            if matches!(&outcome, FoldOutcome::Replaced(f) if f.args.is_empty()) {
                // The fold dispatched to a continuation with no value:
                // this primitive takes branch continuations. Rebuild the
                // call in branch shape (distinct halt tag per branch) and
                // re-fold, so the taken branch is observable.
                app = call_branch_style(&ctx, nc, *id, &lits);
                outcome = fold(&app);
            }
            let FoldOutcome::Replaced(folded) = outcome else {
                continue;
            };
            hit = true;
            folds_checked += 1;
            let original = run_app(&ctx, &app);
            let reduced = run_app(&ctx, &folded);
            assert_eq!(
                original, reduced,
                "fold of ({} {lits:?}) diverges from the machine",
                def.name
            );
        }
        if hit {
            exercised.push(def.name.clone());
        }
    }
    // The standard world alone carries folds for arithmetic, comparison,
    // bit, conversion and boolean-test primitives; a refactor that drops
    // them from the registry (or stops them firing on constants) must
    // fail here, not silently shrink coverage.
    assert!(
        exercised.len() >= 10,
        "only {} prims exercised: {exercised:?}",
        exercised.len()
    );
    assert!(folds_checked >= 100, "only {folds_checked} folds checked");
}
