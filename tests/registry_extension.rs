//! Extension primitives registered purely through the public [`Registry`]
//! API — no edits inside `tml-vm` or `tml-opt` — behave like built-ins in
//! every layer: compile (inline codegen hook or generic `call-prim`
//! dispatch), optimize (fold hook), persist (PTML by name), reload,
//! relink and execute. Loading the same image under a registry *without*
//! the extension degrades the affected closures to typed skips instead of
//! failing the boot.

use tycoon::core::emit::{ArithOp, EmitCtx, EmitError, MachOp};
use tycoon::core::prim::PrimCost;
use tycoon::core::{
    Abs, App, EffectClass, FoldOutcome, Lit, PrimAttrs, PrimDef, Registry, Signature, Value,
};
use tycoon::lang::{Session, SessionConfig};
use tycoon::reflect::{relink_image_code, session_from_store_with};
use tycoon::store::ptml::encode_abs;
use tycoon::store::{snapshot, ClosureObj, Object, SVal};
use tycoon::vm::RVal;

/// Codegen hook for `ext.dec`: `(ext.dec x ce cc)` lowers to one inline
/// subtraction, exactly as a built-in arithmetic primitive would.
fn cg_dec(e: &mut dyn EmitCtx, app: &App) -> Result<(), EmitError> {
    let [x, ce, cc] = app.args.as_slice() else {
        return Err(EmitError::BadShape(format!(
            "expected 3 args, got {}",
            app.args.len()
        )));
    };
    let a = e.operand(x)?;
    let b = e.operand(&Value::int(1))?;
    let dst = e.fresh_reg();
    let on_ok = e.value_cont(cc, dst)?;
    let on_err = e.value_cont(ce, dst)?;
    e.emit(MachOp::Arith {
        op: ArithOp::Sub,
        dst,
        a,
        b,
        on_err,
        on_ok,
    })
}

/// Fold hook for `ext.dec`: a constant argument reduces the call to an
/// invocation of the success continuation on the decremented literal.
fn fold_dec(app: &App) -> FoldOutcome {
    match app.args.as_slice() {
        [Value::Lit(Lit::Int(n)), _, cc] => FoldOutcome::Replaced(App::new(
            cc.clone(),
            vec![Value::Lit(Lit::Int(n.wrapping_sub(1)))],
        )),
        _ => FoldOutcome::Unchanged,
    }
}

/// The extension package: one primitive with an inline lowering + fold
/// (`ext.dec`) and one with neither, so it compiles to the generic
/// `call-prim` dispatch and executes through the host-function table
/// (`ext.gcd`).
fn register_ext(r: &mut Registry) {
    r.register(PrimDef {
        name: "ext.dec".to_string(),
        signature: Signature::exact(1, 2),
        attrs: PrimAttrs {
            effects: EffectClass::Pure,
            ..Default::default()
        },
        fold: Some(fold_dec),
        validate: None,
        cost: PrimCost::Const(1),
        codegen: Some(cg_dec),
    })
    .unwrap();
    r.register(PrimDef {
        name: "ext.gcd".to_string(),
        signature: Signature::exact(2, 2),
        attrs: PrimAttrs {
            effects: EffectClass::Pure,
            ..Default::default()
        },
        fold: None,
        validate: None,
        cost: PrimCost::Const(8),
        codegen: None,
    })
    .unwrap();
}

fn ext_registry() -> Registry {
    Registry::standard().with(register_ext)
}

fn install_gcd_extern(s: &mut Session) {
    s.vm.externs.register("ext.gcd", |_, args| match args {
        [RVal::Int(a), RVal::Int(b)] => {
            let (mut a, mut b) = (a.abs(), b.abs());
            while b != 0 {
                (a, b) = (b, a % b);
            }
            Ok(RVal::Int(a))
        }
        _ => Err(RVal::Str("ext.gcd: type".into())),
    });
}

fn ext_session() -> Session {
    let mut s = Session::with_registry(SessionConfig::default(), ext_registry()).unwrap();
    install_gcd_extern(&mut s);
    s
}

/// `proc(x ce cc) (ext.dec x ce cont(d)(ext.gcd d 12 ce cc))` — one call
/// through each extension primitive.
fn build_run(s: &mut Session) -> Abs {
    let dec = Value::Prim(s.ctx.prims.lookup("ext.dec").unwrap());
    let gcd = Value::Prim(s.ctx.prims.lookup("ext.gcd").unwrap());
    let x = s.ctx.names.fresh("x");
    let d = s.ctx.names.fresh("d");
    let ce = s.ctx.names.fresh_cont("ce");
    let cc = s.ctx.names.fresh_cont("cc");
    let inner = App::new(
        gcd,
        vec![
            Value::Var(d),
            Value::int(12),
            Value::Var(ce),
            Value::Var(cc),
        ],
    );
    let body = App::new(
        dec,
        vec![
            Value::Var(x),
            Value::Var(ce),
            Value::from(Abs::new(vec![d], inner)),
        ],
    );
    Abs::new(vec![x, ce, cc], body)
}

/// Compile `abs`, attach its PTML, and install it as a closure rooted
/// under `name` — the same persistent shape the language front end
/// produces, built through public APIs only.
fn install_fn(s: &mut Session, name: &str, abs: &Abs) -> tycoon::core::Oid {
    tycoon::core::wellformed::check_abs(&s.ctx, abs).unwrap();
    let bytes = encode_abs(&s.ctx, abs);
    let ptml = s.store.alloc(Object::Ptml(bytes));
    let compiled = s.vm.compile_proc(&s.ctx, abs).unwrap();
    assert!(compiled.captures.is_empty(), "test function must be closed");
    let oid = s.store.alloc(Object::Closure(ClosureObj {
        code: compiled.block,
        env: Vec::new(),
        bindings: Vec::new(),
        ptml: Some(ptml),
    }));
    s.globals.insert(name.to_string(), SVal::Ref(oid));
    s.store.set_root(name.to_string(), oid);
    oid
}

fn call_oid(s: &mut Session, oid: tycoon::core::Oid, args: Vec<RVal>) -> Result<RVal, String> {
    s.call_value(RVal::from_sval(&SVal::Ref(oid)), args)
        .map(|r| r.result)
        .map_err(|e| format!("{e:?}"))
}

#[test]
fn extension_prims_round_trip_through_every_layer() {
    // Session 1: compile and run through both extension primitives.
    let mut s = ext_session();
    let abs = build_run(&mut s);
    let oid = install_fn(&mut s, "ext.run", &abs);
    // gcd(dec 9, 12) = gcd(8, 12) = 4.
    assert_eq!(call_oid(&mut s, oid, vec![RVal::Int(9)]), Ok(RVal::Int(4)));
    assert_eq!(call_oid(&mut s, oid, vec![RVal::Int(31)]), Ok(RVal::Int(6)));

    // Persist, reload under the same registry, relink, re-run: the PTML
    // prim-name section resolves `ext.dec` / `ext.gcd` against the live
    // registry of the loading session.
    let bytes = snapshot::to_bytes(&s.store);
    drop(s);
    let store = snapshot::from_bytes(&bytes).unwrap();
    let mut s2 = session_from_store_with(store, SessionConfig::default(), ext_registry());
    install_gcd_extern(&mut s2);
    let report = relink_image_code(&mut s2).unwrap();
    assert_eq!(report.skipped, 0, "{report:?}");
    assert!(report.relinked > 0, "{report:?}");
    let oid = s2.store.root("ext.run").unwrap();
    assert_eq!(call_oid(&mut s2, oid, vec![RVal::Int(9)]), Ok(RVal::Int(4)));
}

#[test]
fn extension_fold_hook_fires_in_the_optimizer() {
    // `proc(ce cc) (ext.dec 8 ce cc)`: the fold hook must reduce the call
    // to `(cc 7)` — the primitive disappears from the optimized term.
    let mut s = ext_session();
    let dec = Value::Prim(s.ctx.prims.lookup("ext.dec").unwrap());
    let ce = s.ctx.names.fresh_cont("ce");
    let cc = s.ctx.names.fresh_cont("cc");
    let body = App::new(dec, vec![Value::int(8), Value::Var(ce), Value::Var(cc)]);
    let abs = Abs::new(vec![ce, cc], body);
    tycoon::core::wellformed::check_abs(&s.ctx, &abs).unwrap();

    let (opt, stats) =
        tycoon::opt::optimize_abs(&mut s.ctx, abs.clone(), &tycoon::opt::OptOptions::default());
    assert!(stats.fold > 0, "{stats:?}");
    let mut prim_calls = 0;
    opt.body.walk(&mut |a| {
        if a.func.as_prim().is_some() {
            prim_calls += 1;
        }
    });
    assert_eq!(prim_calls, 0, "fold must eliminate the ext.dec call");

    // Both forms execute to 7.
    let before = install_fn(&mut s, "ext.before", &abs);
    let after = install_fn(&mut s, "ext.after", &opt);
    assert_eq!(call_oid(&mut s, before, vec![]), Ok(RVal::Int(7)));
    assert_eq!(call_oid(&mut s, after, vec![]), Ok(RVal::Int(7)));
}

#[test]
fn image_with_unknown_prims_degrades_to_typed_skips() {
    // Persist a world containing extension code, then boot it under a
    // registry that does NOT carry the extension: the affected closure is
    // skipped (degraded = 1, `reflect.relink.unknown_prim` counter), the
    // rest of the image relinks and runs, and nothing panics.
    let mut s = ext_session();
    let abs = build_run(&mut s);
    install_fn(&mut s, "ext.run", &abs);
    let bytes = snapshot::to_bytes(&s.store);
    drop(s);

    let rec = tycoon::trace::global();
    rec.set_enabled(true);
    let unknown_before = rec.counter("reflect.relink.unknown_prim").get();
    let store = snapshot::from_bytes(&bytes).unwrap();
    let mut s2 = session_from_store_with(store, SessionConfig::default(), Registry::standard());
    let report = relink_image_code(&mut s2).unwrap();
    rec.set_enabled(false);

    assert!(report.skipped >= 1, "{report:?}");
    assert!(report.relinked > 0, "stdlib must still relink: {report:?}");
    let oid = s2.store.root("ext.run").unwrap();
    assert_eq!(s2.store.attr(oid, "degraded"), Some(1));
    assert!(
        rec.counter("reflect.relink.unknown_prim").get() > unknown_before,
        "unknown-prim skip must be counted"
    );
    // Calling the degraded closure traps; the rest of the world runs.
    assert!(call_oid(&mut s2, oid, vec![RVal::Int(9)]).is_err());
    let int_abs = s2.globals.get("int.abs").cloned();
    if let Some(SVal::Ref(abs_oid)) = int_abs {
        assert_eq!(
            call_oid(&mut s2, abs_oid, vec![RVal::Int(-3)]),
            Ok(RVal::Int(3))
        );
    }
}
