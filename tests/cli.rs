//! Integration tests for the `tmlc` command line.

use std::path::PathBuf;
use std::process::Command;

fn tmlc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tmlc"))
}

fn demo_file() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tmlc_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("demo.tl");
    std::fs::write(
        &path,
        "module demo export main\n\
         let main(n: Int): Int =\n\
           var s := 0 in\n\
           (for i = 1 upto n do s := s + i * i end; s)\n\
         end\n",
    )
    .unwrap();
    path
}

#[test]
fn run_computes_and_prints_result() {
    let out = tmlc()
        .args(["run"])
        .arg(demo_file())
        .args(["--arg", "10"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "385");
}

#[test]
fn dynamic_flag_reduces_instructions() {
    let count = |dynamic: bool| -> u64 {
        let mut cmd = tmlc();
        cmd.args(["run"])
            .arg(demo_file())
            .args(["--arg", "10", "--stats"]);
        if dynamic {
            cmd.arg("--dynamic");
        }
        let out = cmd.output().unwrap();
        assert!(out.status.success());
        let stderr = String::from_utf8_lossy(&out.stderr);
        stderr
            .split("instructions=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no stats in {stderr:?}"))
    };
    let plain = count(false);
    let dynamic = count(true);
    assert!(dynamic < plain, "{dynamic} vs {plain}");
}

#[test]
fn eval_runs_raw_tml() {
    let out = tmlc()
        .args(["eval", "(* 6 7 cont(e)(halt e) cont(t)(halt t))"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "42");
}

#[test]
fn tml_dump_contains_the_function() {
    let out = tmlc()
        .args(["tml"])
        .arg(demo_file())
        .args(["--fn", "demo.main"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("; demo.main"), "{text}");
    assert!(text.contains("proc("), "{text}");
}

#[test]
fn code_dump_disassembles() {
    let out = tmlc().args(["code"]).arg(demo_file()).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("block #"), "{text}");
    assert!(text.contains("halt") || text.contains("call"), "{text}");
}

#[test]
fn snapshot_and_info_roundtrip() {
    let image = std::env::temp_dir().join(format!("tmlc_img_{}.tys", std::process::id()));
    let out = tmlc()
        .args(["snapshot"])
        .arg(demo_file())
        .args(["-o"])
        .arg(&image)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = tmlc().args(["info"]).arg(&image).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("demo"), "{text}");
    assert!(text.contains("closure"), "{text}");
    std::fs::remove_file(&image).ok();
}

fn geom_file() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tmlc_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("geom.tl");
    std::fs::write(
        &path,
        "module complex export new, x, y\n\
         let new(a: Real, b: Real): Tuple = tuple(a, b)\n\
         let x(c: Tuple): Real = c.0\n\
         let y(c: Tuple): Real = c.1\n\
         end\n\
         module geom export abs\n\
         let abs(c: Tuple): Real =\n\
           real.sqrt(complex.x(c) * complex.x(c) + complex.y(c) * complex.y(c))\n\
         end\n",
    )
    .unwrap();
    path
}

#[test]
fn profile_reports_opcode_histogram_and_counters() {
    let out = tmlc()
        .args(["profile"])
        .arg(demo_file())
        .args(["demo.main", "--arg", "10"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("=> 385"), "{text}");
    assert!(text.contains("opcodes (top"), "{text}");
    assert!(text.contains("instructions "), "{text}");
}

#[test]
fn profile_json_is_a_registry_export() {
    let out = tmlc()
        .args(["profile"])
        .arg(demo_file())
        .args(["demo.main", "--arg", "10", "--json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("{\"version\":3,"), "{text}");
    assert!(text.contains("\"vm.instrs\":"), "{text}");
    assert!(text.contains("\"counters\":{"), "{text}");
}

#[test]
fn explain_prints_provenance_and_verifies_replay() {
    let out = tmlc()
        .args(["explain"])
        .arg(geom_file())
        .args(["geom.abs", "--verify"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("rule subst"), "{text}");
    assert!(text.contains("expand inline"), "{text}");
    assert!(text.contains("stop after"), "{text}");
    assert!(text.contains("verify: replay of"), "{text}");
    assert!(text.contains("reproduces the optimized term"), "{text}");
}

#[test]
fn explain_json_carries_rule_events() {
    let out = tmlc()
        .args(["explain"])
        .arg(geom_file())
        .args(["geom.abs", "--json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"type\":\"rule-fired\""), "{text}");
    assert!(text.contains("\"type\":\"expand-decision\""), "{text}");
    assert!(text.contains("\"type\":\"opt-stop\""), "{text}");
}

#[test]
fn profile_runs_from_a_snapshot_image() {
    let image = std::env::temp_dir().join(format!("tmlc_prof_{}.tys", std::process::id()));
    let out = tmlc()
        .args(["snapshot"])
        .arg(geom_file())
        .args(["-o"])
        .arg(&image)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = tmlc()
        .args(["explain"])
        .arg(&image)
        .args(["geom.abs"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("rule "), "{text}");
    std::fs::remove_file(&image).ok();
}

#[test]
fn info_json_exposes_store_gauges() {
    let image = std::env::temp_dir().join(format!("tmlc_infoj_{}.tys", std::process::id()));
    let out = tmlc()
        .args(["snapshot"])
        .arg(demo_file())
        .args(["-o"])
        .arg(&image)
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = tmlc()
        .args(["info", "--json"])
        .arg(&image)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"store.objects\":"), "{text}");
    assert!(text.contains("\"store.closures\":"), "{text}");
    std::fs::remove_file(&image).ok();
}

/// Minimal JSON validator: recursive descent over value syntax, no
/// construction. Returns true when `s` is exactly one valid JSON value —
/// what `jq` would accept — so tests can assert emitted documents parse
/// without a JSON dependency.
fn json_is_valid(s: &str) -> bool {
    fn skip_ws(b: &[u8], mut i: usize) -> usize {
        while i < b.len() && matches!(b[i], b' ' | b'\t' | b'\n' | b'\r') {
            i += 1;
        }
        i
    }
    fn value(b: &[u8], i: usize) -> Option<usize> {
        let i = skip_ws(b, i);
        match b.get(i)? {
            b'{' => {
                let mut i = skip_ws(b, i + 1);
                if b.get(i) == Some(&b'}') {
                    return Some(i + 1);
                }
                loop {
                    i = string(b, skip_ws(b, i))?;
                    i = skip_ws(b, i);
                    if b.get(i) != Some(&b':') {
                        return None;
                    }
                    i = value(b, i + 1)?;
                    i = skip_ws(b, i);
                    match b.get(i)? {
                        b',' => i += 1,
                        b'}' => return Some(i + 1),
                        _ => return None,
                    }
                }
            }
            b'[' => {
                let mut i = skip_ws(b, i + 1);
                if b.get(i) == Some(&b']') {
                    return Some(i + 1);
                }
                loop {
                    i = value(b, i)?;
                    i = skip_ws(b, i);
                    match b.get(i)? {
                        b',' => i += 1,
                        b']' => return Some(i + 1),
                        _ => return None,
                    }
                }
            }
            b'"' => string(b, i),
            b't' => b[i..].starts_with(b"true").then_some(i + 4),
            b'f' => b[i..].starts_with(b"false").then_some(i + 5),
            b'n' => b[i..].starts_with(b"null").then_some(i + 4),
            _ => number(b, i),
        }
    }
    fn string(b: &[u8], mut i: usize) -> Option<usize> {
        if b.get(i) != Some(&b'"') {
            return None;
        }
        i += 1;
        while let Some(&c) = b.get(i) {
            match c {
                b'"' => return Some(i + 1),
                b'\\' => i += 2,
                _ => i += 1,
            }
        }
        None
    }
    fn number(b: &[u8], mut i: usize) -> Option<usize> {
        let start = i;
        if b.get(i) == Some(&b'-') {
            i += 1;
        }
        while i < b.len()
            && (b[i].is_ascii_digit() || matches!(b[i], b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            i += 1;
        }
        (i > start && b[start..i].iter().any(|c| c.is_ascii_digit())).then_some(i)
    }
    let b = s.as_bytes();
    match value(b, 0) {
        Some(end) => skip_ws(b, end) == b.len(),
        None => false,
    }
}

#[test]
fn profile_chrome_export_is_valid_json_with_span_events() {
    let dir = std::env::temp_dir().join(format!("tmlc_chrome_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let chrome = dir.join("out.json");
    let flame = dir.join("out.folded");
    let out = tmlc()
        .args(["profile"])
        .arg(demo_file())
        .args(["demo.main", "--arg", "10", "--chrome"])
        .arg(&chrome)
        .arg("--flame")
        .arg(&flame)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let json = std::fs::read_to_string(&chrome).unwrap();
    assert!(
        json_is_valid(&json),
        "chrome export is not valid JSON: {json}"
    );
    assert!(json.contains("\"traceEvents\":["), "{json}");
    assert!(json.contains("\"ph\":\"X\""), "{json}");
    assert!(json.contains("\"name\":\"vm.run\""), "{json}");
    // The folded flamegraph holds `stack count` lines for the same spans.
    let folded = std::fs::read_to_string(&flame).unwrap();
    assert!(
        folded.lines().any(|l| {
            let mut parts = l.rsplitn(2, ' ');
            let count_ok = parts.next().is_some_and(|n| n.parse::<u64>().is_ok());
            count_ok && parts.next().is_some_and(|s| s.contains("vm.run"))
        }),
        "{folded}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_reports_percentiles_per_subsystem() {
    let out = tmlc()
        .args(["stats"])
        .arg(demo_file())
        .args(["demo.main", "--arg", "10", "--runs", "3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("=> 385"), "{text}");
    assert!(text.contains("time by subsystem:"), "{text}");
    for subsystem in ["opt", "vm", "store", "reflect"] {
        assert!(
            text.contains(&format!("  {subsystem}")),
            "no {subsystem} row in {text}"
        );
    }
    assert!(text.contains("p50"), "{text}");
    assert!(text.contains("p99"), "{text}");
    // The acceptance paths: optimizer, VM, WAL commit, reflect cache fill.
    assert!(text.contains("opt.optimize_all"), "{text}");
    assert!(text.contains("vm.run"), "{text}");
    assert!(text.contains("store.wal.commit_flush"), "{text}");
    assert!(text.contains("reflect.cache.miss_fill"), "{text}");
}

#[test]
fn info_json_is_deterministic_with_sorted_keys() {
    let image = std::env::temp_dir().join(format!("tmlc_det_{}.tys", std::process::id()));
    let out = tmlc()
        .args(["snapshot"])
        .arg(demo_file())
        .args(["-o"])
        .arg(&image)
        .output()
        .unwrap();
    assert!(out.status.success());
    let run = || {
        let out = tmlc()
            .args(["info", "--json"])
            .arg(&image)
            .output()
            .unwrap();
        assert!(out.status.success());
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "info --json must be byte-identical across runs");
    assert!(json_is_valid(a.trim()), "{a}");
    // Gauge keys inside the counters object are emitted sorted.
    let counters = a
        .split("\"counters\":{")
        .nth(1)
        .and_then(|s| s.split('}').next())
        .unwrap_or_else(|| panic!("no counters object in {a}"));
    let keys: Vec<&str> = counters
        .split(',')
        .filter_map(|kv| kv.split(':').next())
        .collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted, "counter keys not sorted in {a}");
    std::fs::remove_file(&image).ok();
}

/// End-to-end `--durable` round trip: a run against a fresh durable image
/// persists the program; a second run executes straight from the image
/// with no source file; `info --json` on the paged image is deterministic,
/// sorted, and carries the `store.page.*` / `store.buffer.*` gauges; and
/// `fsck` reports a healthy image with a `pages` section.
#[test]
fn durable_run_persists_and_info_reports_page_gauges() {
    let dir = std::env::temp_dir().join(format!("tmlc_durable_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let image = dir.join("db.img");
    let out = tmlc()
        .args(["run"])
        .arg(demo_file())
        .args(["--durable"])
        .arg(&image)
        .args(["--arg", "10"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "385");
    // Second run: no source file — the program lives in the image.
    let out = tmlc()
        .args(["run", "--durable"])
        .arg(&image)
        .args(["--entry", "demo.main", "--arg", "20"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "2870");
    // info --json: deterministic, sorted, with the paged-store gauges.
    let run = || {
        let out = tmlc()
            .args(["info", "--json"])
            .arg(&image)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "info --json must be byte-identical across runs");
    assert!(json_is_valid(a.trim()), "{a}");
    for gauge in [
        "store.page.gen",
        "store.page.pages",
        "store.page.records",
        "store.page.live_bytes",
        "store.buffer.resident",
        "store.buffer.hits",
    ] {
        assert!(a.contains(&format!("\"{gauge}\"")), "no {gauge} in {a}");
    }
    let counters = a
        .split("\"counters\":{")
        .nth(1)
        .and_then(|s| s.split('}').next())
        .unwrap_or_else(|| panic!("no counters object in {a}"));
    let keys: Vec<&str> = counters
        .split(',')
        .filter_map(|kv| kv.split(':').next())
        .collect();
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted, "counter keys not sorted in {a}");
    // fsck: healthy, format 4 (paged), with a pages section.
    let out = tmlc().args(["fsck"]).arg(&image).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = String::from_utf8_lossy(&out.stdout);
    assert!(report.contains("\"format\": 4"), "{report}");
    assert!(report.contains("\"pages\": {"), "{report}");
    assert!(report.contains("\"ok\": true"), "{report}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = tmlc().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn missing_entry_reports_error() {
    let dir = std::env::temp_dir().join(format!("tmlc_noentry_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("lib.tl");
    std::fs::write(&path, "module lib export f\nlet f(a: Int): Int = a\nend\n").unwrap();
    let out = tmlc().args(["run"]).arg(&path).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no entry point"));
}

#[test]
fn fsck_passes_a_healthy_image() {
    let image = std::env::temp_dir().join(format!("tmlc_fsck_ok_{}.tys", std::process::id()));
    let out = tmlc()
        .args(["snapshot"])
        .arg(geom_file())
        .args(["-o"])
        .arg(&image)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = tmlc().args(["fsck"]).arg(&image).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"ok\": true"), "{text}");
    assert!(text.contains("\"format\": 3"), "{text}");
    assert!(text.contains("\"dangling_roots\": []"), "{text}");
    std::fs::remove_file(&image).ok();
}

#[test]
fn fsck_flags_a_corrupt_image_and_repair_restores_it() {
    let dir = std::env::temp_dir().join(format!("tmlc_fsck_bad_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let image = dir.join("world.tys");
    // Save twice so a good .bak sits next to the primary.
    for _ in 0..2 {
        let out = tmlc()
            .args(["snapshot"])
            .arg(geom_file())
            .args(["-o"])
            .arg(&image)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // Flip a byte in the middle of the primary: the CRC catches it.
    let mut bytes = std::fs::read(&image).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&image, &bytes).unwrap();

    let out = tmlc().args(["fsck"]).arg(&image).output().unwrap();
    assert!(!out.status.success(), "corrupt image must fail fsck");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"ok\": false"), "{text}");

    // --repair recovers from the backup into a fresh image...
    let repaired = dir.join("repaired.tys");
    let out = tmlc()
        .args(["fsck"])
        .arg(&image)
        .args(["--repair", "-o"])
        .arg(&repaired)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"repair\": {"), "{text}");
    assert!(text.contains("\"source\": \"backup\""), "{text}");

    // ...and the repaired image passes a clean fsck.
    let out = tmlc().args(["fsck"]).arg(&repaired).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"ok\": true"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn opt_reports_identical_work_for_any_jobs() {
    let run = |jobs: &str| -> String {
        let out = tmlc()
            .args(["opt"])
            .arg(demo_file())
            .args(["--jobs", jobs])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).trim().to_string()
    };
    let seq = run("1");
    assert!(seq.contains("optimized"), "{seq}");
    // Everything after the job count must agree between widths.
    let tail = |s: &str| s.split("job(s):").nth(1).unwrap().to_string();
    assert_eq!(tail(&seq), tail(&run("4")), "parallel report diverged");
}
