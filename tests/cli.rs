//! Integration tests for the `tmlc` command line.

use std::path::PathBuf;
use std::process::Command;

fn tmlc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tmlc"))
}

fn demo_file() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tmlc_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("demo.tl");
    std::fs::write(
        &path,
        "module demo export main\n\
         let main(n: Int): Int =\n\
           var s := 0 in\n\
           (for i = 1 upto n do s := s + i * i end; s)\n\
         end\n",
    )
    .unwrap();
    path
}

#[test]
fn run_computes_and_prints_result() {
    let out = tmlc()
        .args(["run"])
        .arg(demo_file())
        .args(["--arg", "10"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "385");
}

#[test]
fn dynamic_flag_reduces_instructions() {
    let count = |dynamic: bool| -> u64 {
        let mut cmd = tmlc();
        cmd.args(["run"])
            .arg(demo_file())
            .args(["--arg", "10", "--stats"]);
        if dynamic {
            cmd.arg("--dynamic");
        }
        let out = cmd.output().unwrap();
        assert!(out.status.success());
        let stderr = String::from_utf8_lossy(&out.stderr);
        stderr
            .split("instructions=")
            .nth(1)
            .and_then(|s| s.split_whitespace().next())
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("no stats in {stderr:?}"))
    };
    let plain = count(false);
    let dynamic = count(true);
    assert!(dynamic < plain, "{dynamic} vs {plain}");
}

#[test]
fn eval_runs_raw_tml() {
    let out = tmlc()
        .args(["eval", "(* 6 7 cont(e)(halt e) cont(t)(halt t))"])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "42");
}

#[test]
fn tml_dump_contains_the_function() {
    let out = tmlc()
        .args(["tml"])
        .arg(demo_file())
        .args(["--fn", "demo.main"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("; demo.main"), "{text}");
    assert!(text.contains("proc("), "{text}");
}

#[test]
fn code_dump_disassembles() {
    let out = tmlc().args(["code"]).arg(demo_file()).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("block #"), "{text}");
    assert!(text.contains("halt") || text.contains("call"), "{text}");
}

#[test]
fn snapshot_and_info_roundtrip() {
    let image = std::env::temp_dir().join(format!("tmlc_img_{}.tys", std::process::id()));
    let out = tmlc()
        .args(["snapshot"])
        .arg(demo_file())
        .args(["-o"])
        .arg(&image)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = tmlc().args(["info"]).arg(&image).output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("demo"), "{text}");
    assert!(text.contains("closure"), "{text}");
    std::fs::remove_file(&image).ok();
}

fn geom_file() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tmlc_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("geom.tl");
    std::fs::write(
        &path,
        "module complex export new, x, y\n\
         let new(a: Real, b: Real): Tuple = tuple(a, b)\n\
         let x(c: Tuple): Real = c.0\n\
         let y(c: Tuple): Real = c.1\n\
         end\n\
         module geom export abs\n\
         let abs(c: Tuple): Real =\n\
           real.sqrt(complex.x(c) * complex.x(c) + complex.y(c) * complex.y(c))\n\
         end\n",
    )
    .unwrap();
    path
}

#[test]
fn profile_reports_opcode_histogram_and_counters() {
    let out = tmlc()
        .args(["profile"])
        .arg(demo_file())
        .args(["demo.main", "--arg", "10"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("=> 385"), "{text}");
    assert!(text.contains("opcodes (top"), "{text}");
    assert!(text.contains("instructions "), "{text}");
}

#[test]
fn profile_json_is_a_registry_export() {
    let out = tmlc()
        .args(["profile"])
        .arg(demo_file())
        .args(["demo.main", "--arg", "10", "--json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("{\"version\":1,"), "{text}");
    assert!(text.contains("\"vm.instrs\":"), "{text}");
    assert!(text.contains("\"counters\":{"), "{text}");
}

#[test]
fn explain_prints_provenance_and_verifies_replay() {
    let out = tmlc()
        .args(["explain"])
        .arg(geom_file())
        .args(["geom.abs", "--verify"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("rule subst"), "{text}");
    assert!(text.contains("expand inline"), "{text}");
    assert!(text.contains("stop after"), "{text}");
    assert!(text.contains("verify: replay of"), "{text}");
    assert!(text.contains("reproduces the optimized term"), "{text}");
}

#[test]
fn explain_json_carries_rule_events() {
    let out = tmlc()
        .args(["explain"])
        .arg(geom_file())
        .args(["geom.abs", "--json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"type\":\"rule-fired\""), "{text}");
    assert!(text.contains("\"type\":\"expand-decision\""), "{text}");
    assert!(text.contains("\"type\":\"opt-stop\""), "{text}");
}

#[test]
fn profile_runs_from_a_snapshot_image() {
    let image = std::env::temp_dir().join(format!("tmlc_prof_{}.tys", std::process::id()));
    let out = tmlc()
        .args(["snapshot"])
        .arg(geom_file())
        .args(["-o"])
        .arg(&image)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = tmlc()
        .args(["explain"])
        .arg(&image)
        .args(["geom.abs"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("rule "), "{text}");
    std::fs::remove_file(&image).ok();
}

#[test]
fn info_json_exposes_store_gauges() {
    let image = std::env::temp_dir().join(format!("tmlc_infoj_{}.tys", std::process::id()));
    let out = tmlc()
        .args(["snapshot"])
        .arg(demo_file())
        .args(["-o"])
        .arg(&image)
        .output()
        .unwrap();
    assert!(out.status.success());
    let out = tmlc()
        .args(["info", "--json"])
        .arg(&image)
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"store.objects\":"), "{text}");
    assert!(text.contains("\"store.closures\":"), "{text}");
    std::fs::remove_file(&image).ok();
}

#[test]
fn unknown_command_fails_cleanly() {
    let out = tmlc().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn missing_entry_reports_error() {
    let dir = std::env::temp_dir().join(format!("tmlc_noentry_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("lib.tl");
    std::fs::write(&path, "module lib export f\nlet f(a: Int): Int = a\nend\n").unwrap();
    let out = tmlc().args(["run"]).arg(&path).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("no entry point"));
}

#[test]
fn fsck_passes_a_healthy_image() {
    let image = std::env::temp_dir().join(format!("tmlc_fsck_ok_{}.tys", std::process::id()));
    let out = tmlc()
        .args(["snapshot"])
        .arg(geom_file())
        .args(["-o"])
        .arg(&image)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = tmlc().args(["fsck"]).arg(&image).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"ok\": true"), "{text}");
    assert!(text.contains("\"format\": 3"), "{text}");
    assert!(text.contains("\"dangling_roots\": []"), "{text}");
    std::fs::remove_file(&image).ok();
}

#[test]
fn fsck_flags_a_corrupt_image_and_repair_restores_it() {
    let dir = std::env::temp_dir().join(format!("tmlc_fsck_bad_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let image = dir.join("world.tys");
    // Save twice so a good .bak sits next to the primary.
    for _ in 0..2 {
        let out = tmlc()
            .args(["snapshot"])
            .arg(geom_file())
            .args(["-o"])
            .arg(&image)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
    }

    // Flip a byte in the middle of the primary: the CRC catches it.
    let mut bytes = std::fs::read(&image).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&image, &bytes).unwrap();

    let out = tmlc().args(["fsck"]).arg(&image).output().unwrap();
    assert!(!out.status.success(), "corrupt image must fail fsck");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"ok\": false"), "{text}");

    // --repair recovers from the backup into a fresh image...
    let repaired = dir.join("repaired.tys");
    let out = tmlc()
        .args(["fsck"])
        .arg(&image)
        .args(["--repair", "-o"])
        .arg(&repaired)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"repair\": {"), "{text}");
    assert!(text.contains("\"source\": \"backup\""), "{text}");

    // ...and the repaired image passes a clean fsck.
    let out = tmlc().args(["fsck"]).arg(&repaired).output().unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"ok\": true"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn opt_reports_identical_work_for_any_jobs() {
    let run = |jobs: &str| -> String {
        let out = tmlc()
            .args(["opt"])
            .arg(demo_file())
            .args(["--jobs", jobs])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).trim().to_string()
    };
    let seq = run("1");
    assert!(seq.contains("optimized"), "{seq}");
    // Everything after the job count must agree between widths.
    let tail = |s: &str| s.split("job(s):").nth(1).unwrap().to_string();
    assert_eq!(tail(&seq), tail(&run("4")), "parallel report diverged");
}
