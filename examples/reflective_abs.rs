//! The paper's §4.1 worked example: `reflect.optimize(abs)`.
//!
//! A module `complex` exports a hidden tuple representation with accessor
//! functions; `geom.abs` uses them through the module's abstraction
//! barrier. Statically, the bindings are unknown. At runtime the closure
//! record of `abs` holds the R-value bindings, and its PTML attachment
//! holds the code — `reflect.optimize` re-establishes the bindings as
//! λ-bindings, inlines the accessors and `real.*` library functions across
//! the barrier, and folds what remains.
//!
//! ```sh
//! cargo run --example reflective_abs
//! ```

use tycoon::lang::Session;
use tycoon::reflect::{optimize_named, ReflectOptions, TermBuilder};
use tycoon::store::SVal;
use tycoon::vm::RVal;

const SRC: &str = "
module complex export new, x, y
let new(a: Real, b: Real): Tuple = tuple(a, b)
let x(c: Tuple): Real = c.0
let y(c: Tuple): Real = c.1
end
module geom export abs
let abs(c: Tuple): Real =
  real.sqrt(complex.x(c) * complex.x(c) + complex.y(c) * complex.y(c))
end";

fn main() {
    let mut session = Session::default_session().expect("stdlib loads");
    session.load_str(SRC).expect("modules load");

    // complex.new(3, 4)
    let c = session
        .call("complex.new", vec![RVal::Real(3.0), RVal::Real(4.0)])
        .expect("new runs")
        .result;

    // The original: every accessor and operator is a dynamically bound
    // library call.
    let plain = session.call("geom.abs", vec![c.clone()]).expect("abs runs");
    println!(
        "abs(3+4i)          = {:?}   [{} instructions, {} calls]",
        plain.result, plain.stats.instrs, plain.stats.calls
    );

    // Show the §4.1 listing: the TML term with R-value bindings
    // re-established (depth 0 keeps callees as residual bindings).
    let SVal::Ref(abs_oid) = *session.global("geom.abs").expect("bound") else {
        panic!("geom.abs should be a closure reference");
    };
    {
        let mut tb = TermBuilder::new(&mut session.ctx, &session.store);
        let term = tb.build(abs_oid, 3).expect("ptml decodes");
        println!(
            "\n== geom.abs with runtime bindings re-established ==\n{}\n",
            tycoon::core::pretty::print_abs(&session.ctx, &term)
        );
    }

    // let optimizedAbs = reflect.optimize(abs)
    let optimized = optimize_named(&mut session, "geom.abs", &ReflectOptions::default())
        .expect("reflective optimization");

    // optimizedAbs(complex.new(3 4))
    let fast = session
        .call_value(RVal::from_sval(&optimized), vec![c])
        .expect("optimizedAbs runs");
    println!(
        "optimizedAbs(3+4i) = {:?}   [{} instructions, {} calls]",
        fast.result, fast.stats.instrs, fast.stats.calls
    );
    println!(
        "\nspeedup: {:.2}x fewer instructions, {} -> {} calls",
        plain.stats.instrs as f64 / fast.stats.instrs as f64,
        plain.stats.calls,
        fast.stats.calls
    );

    // The derived attributes the optimizer attached to the new code.
    if let SVal::Ref(oid) = optimized {
        print!("derived attributes:");
        for (key, value) in session.store.attrs_of(oid) {
            print!("  {key}={value}");
        }
        println!();
    }
}
