//! Code shipping (the paper's §6 outlook: "we are also very interested in
//! exploiting TML for other tasks in data-intensive applications, like
//! code shipping in distributed systems [Mathiske et al. 1995]").
//!
//! A "client" session compiles a query predicate, extracts its portable
//! representation — PTML bytes plus named R-value bindings — and ships it
//! to a "server" session (a separate store, separate code table, separate
//! name/prim context), which rebinds the names against *its own* globals,
//! recompiles, and runs the function against its own data. The server
//! runs on a `DurableStore`: installing the shipped function is
//! write-ahead-logged through the store-access seam, so after a commit,
//! a checkpoint and a full server restart the shipped code is still
//! there, relinked from its persistent PTML.
//!
//! ```sh
//! cargo run --example code_shipping
//! ```

use tycoon::core::Registry;
use tycoon::lang::{Session, SessionConfig};
use tycoon::reflect::{relink_image_code, session_from_access_with, TermBuilder};
use tycoon::store::{DurableOptions, DurableStore, Object, SVal};
use tycoon::vm::RVal;

fn main() {
    let dir = std::env::temp_dir().join(format!("tycoon_ship_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let image = dir.join("server.img");

    // --- Client: author and compile the function to ship. -----------------
    // The client is transient; a plain in-memory session is all it needs.
    let mut client = Session::default_session().expect("client session");
    client
        .load_str(
            "module score export rate\n\
             let rate(x: Int): Int =\n\
               if x > 100 then x * 2 else\n\
                 if x > 10 then x + 50 else x end\n\
               end\n\
             end",
        )
        .expect("client module loads");
    let check = client
        .call("score.rate", vec![RVal::Int(42)])
        .expect("client runs")
        .result;
    println!("client: score.rate(42) = {check:?}");

    // Extract the wire format: PTML bytes + binding names.
    let SVal::Ref(oid) = *client.global("score.rate").expect("bound") else {
        panic!("expected closure");
    };
    let Object::Closure(clo) = client.store.get(oid).expect("closure") else {
        panic!("expected closure object");
    };
    let ptml_oid = clo.ptml.expect("PTML attached");
    let Object::Ptml(wire_bytes) = client.store.get(ptml_oid).expect("ptml") else {
        panic!("expected ptml object");
    };
    let wire_bytes = wire_bytes.clone();
    let binding_names: Vec<String> = clo.bindings.iter().map(|(n, _)| n.clone()).collect();
    println!(
        "client: shipping {} bytes of PTML, {} named bindings: {:?}",
        wire_bytes.len(),
        binding_names.len(),
        binding_names
    );
    drop(client); // the client's store, code table and context are gone

    // --- Server: receive, rebind, recompile, run — durably. ----------------
    let store = DurableStore::create(&image, DurableOptions::default()).expect("server store");
    let mut server = Session::on_store(store, SessionConfig::default(), Registry::standard())
        .expect("server session");
    let (abs, free) =
        tycoon::store::ptml::decode_abs(&mut server.ctx, &wire_bytes).expect("wire format decodes");
    println!(
        "server: decoded function with {} free identifier(s)",
        free.len()
    );

    // Rebind free identifiers against the *server's* globals.
    let compiled = server
        .vm
        .compile_proc(&server.ctx, &abs)
        .expect("recompiles");
    let by_var: std::collections::HashMap<_, _> =
        free.iter().map(|(n, v)| (*v, n.clone())).collect();
    let mut env = Vec::new();
    let mut bindings = Vec::new();
    for v in &compiled.captures {
        let name = &by_var[v];
        let val = server
            .globals
            .get(name)
            .cloned()
            .unwrap_or_else(|| panic!("server cannot resolve {name}"));
        env.push(val.clone());
        bindings.push((name.clone(), val));
    }
    // Installation goes through the logged interface: the PTML blob, the
    // closure and the root naming it are all redo records.
    let shipped_ptml = server.store.alloc(Object::Ptml(wire_bytes)).expect("alloc");
    let shipped = server
        .store
        .alloc(Object::Closure(tycoon::store::ClosureObj {
            code: compiled.block,
            env,
            bindings,
            ptml: Some(shipped_ptml),
        }))
        .expect("alloc");
    server
        .store
        .set_root("shipped.rate", shipped)
        .expect("root");
    server
        .globals
        .insert("shipped.rate".into(), SVal::Ref(shipped));

    for x in [5i64, 42, 1000] {
        let r = server
            .call("shipped.rate", vec![RVal::Int(x)])
            .expect("shipped code runs");
        println!("server: shipped.rate({x}) = {:?}", r.result);
    }

    // The shipped code is a first-class citizen: it can even be
    // reflectively optimized on the server against server-side bindings —
    // through the same seam, so the optimized product is durable too.
    let optimized = tycoon::reflect::optimize_value(
        &mut server,
        &SVal::Ref(shipped),
        &tycoon::reflect::ReflectOptions::default(),
    )
    .expect("server-side reflective optimization");
    let fast = server
        .call_value(RVal::from_sval(&optimized), vec![RVal::Int(42)])
        .expect("optimized shipped code runs");
    println!(
        "server: optimized shipped code: rate(42) = {:?} ({} instructions)",
        fast.result, fast.stats.instrs
    );

    // Make it durable and restart the server process image.
    server.store.commit().expect("commit");
    server.store.checkpoint().expect("checkpoint");
    drop(server);

    let (store, report) = DurableStore::open(&image, DurableOptions::default()).expect("reopen");
    assert_eq!(report.redo_records, 0, "checkpoint consolidated the log");
    let mut restarted =
        session_from_access_with(store, SessionConfig::default(), Registry::standard());
    let relink = relink_image_code(&mut restarted).expect("relink");
    let shipped = restarted
        .store
        .store()
        .root("shipped.rate")
        .expect("shipped root survives the restart");
    let r = restarted
        .call_value(RVal::Ref(shipped), vec![RVal::Int(42)])
        .expect("shipped code runs after restart");
    println!(
        "server (restarted): relinked {} closure(s); shipped.rate(42) = {:?}",
        relink.relinked, r.result
    );
    assert_eq!(r.result, check);

    // Round-trip sanity: the restarted server can re-ship it too.
    let mut tb = TermBuilder::new(&mut restarted.ctx, restarted.store.store());
    let reship = tb.build(shipped, 0).expect("re-shippable");
    println!(
        "server: re-shippable — persistent function has {} TML nodes",
        reship.body.size()
    );

    std::fs::remove_dir_all(&dir).ok();
}
