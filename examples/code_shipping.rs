//! Code shipping (the paper's §6 outlook: "we are also very interested in
//! exploiting TML for other tasks in data-intensive applications, like
//! code shipping in distributed systems [Mathiske et al. 1995]").
//!
//! A "client" session compiles a query predicate, extracts its portable
//! representation — PTML bytes plus named R-value bindings — and ships it
//! to a "server" session (a separate store, separate code table, separate
//! name/prim context), which rebinds the names against *its own* globals,
//! recompiles, and runs the function against its own data.
//!
//! ```sh
//! cargo run --example code_shipping
//! ```

use tycoon::lang::Session;
use tycoon::reflect::TermBuilder;
use tycoon::store::{Object, SVal};
use tycoon::vm::RVal;

fn main() {
    // --- Client: author and compile the function to ship. -----------------
    let mut client = Session::default_session().expect("client session");
    client
        .load_str(
            "module score export rate\n\
             let rate(x: Int): Int =\n\
               if x > 100 then x * 2 else\n\
                 if x > 10 then x + 50 else x end\n\
               end\n\
             end",
        )
        .expect("client module loads");
    let check = client
        .call("score.rate", vec![RVal::Int(42)])
        .expect("client runs")
        .result;
    println!("client: score.rate(42) = {check:?}");

    // Extract the wire format: PTML bytes + binding names.
    let SVal::Ref(oid) = *client.global("score.rate").expect("bound") else {
        panic!("expected closure");
    };
    let Object::Closure(clo) = client.store.get(oid).expect("closure") else {
        panic!("expected closure object");
    };
    let ptml_oid = clo.ptml.expect("PTML attached");
    let Object::Ptml(wire_bytes) = client.store.get(ptml_oid).expect("ptml") else {
        panic!("expected ptml object");
    };
    let wire_bytes = wire_bytes.clone();
    let binding_names: Vec<String> = clo.bindings.iter().map(|(n, _)| n.clone()).collect();
    println!(
        "client: shipping {} bytes of PTML, {} named bindings: {:?}",
        wire_bytes.len(),
        binding_names.len(),
        binding_names
    );
    drop(client); // the client's store, code table and context are gone

    // --- Server: receive, rebind, recompile, run. --------------------------
    let mut server = Session::default_session().expect("server session");
    let (abs, free) =
        tycoon::store::ptml::decode_abs(&mut server.ctx, &wire_bytes).expect("wire format decodes");
    println!(
        "server: decoded function with {} free identifier(s)",
        free.len()
    );

    // Rebind free identifiers against the *server's* globals.
    let compiled = server
        .vm
        .compile_proc(&server.ctx, &abs)
        .expect("recompiles");
    let by_var: std::collections::HashMap<_, _> =
        free.iter().map(|(n, v)| (*v, n.clone())).collect();
    let mut env = Vec::new();
    let mut bindings = Vec::new();
    for v in &compiled.captures {
        let name = &by_var[v];
        let val = server
            .globals
            .get(name)
            .cloned()
            .unwrap_or_else(|| panic!("server cannot resolve {name}"));
        env.push(val.clone());
        bindings.push((name.clone(), val));
    }
    let shipped_ptml = server.store.alloc(Object::Ptml(wire_bytes));
    let shipped = server
        .store
        .alloc(Object::Closure(tycoon::store::ClosureObj {
            code: compiled.block,
            env,
            bindings,
            ptml: Some(shipped_ptml),
        }));
    server
        .globals
        .insert("shipped.rate".into(), SVal::Ref(shipped));

    for x in [5i64, 42, 1000] {
        let r = server
            .call("shipped.rate", vec![RVal::Int(x)])
            .expect("shipped code runs");
        println!("server: shipped.rate({x}) = {:?}", r.result);
    }

    // The shipped code is a first-class citizen: it can even be
    // reflectively optimized on the server against server-side bindings.
    let optimized = tycoon::reflect::optimize_value(
        &mut server,
        &SVal::Ref(shipped),
        &tycoon::reflect::ReflectOptions::default(),
    )
    .expect("server-side reflective optimization");
    let fast = server
        .call_value(RVal::from_sval(&optimized), vec![RVal::Int(42)])
        .expect("optimized shipped code runs");
    println!(
        "server: optimized shipped code: rate(42) = {:?} ({} instructions)",
        fast.result, fast.stats.instrs
    );

    // Round-trip sanity: the server can re-ship it (PTML attached again).
    let SVal::Ref(opt_oid) = optimized else {
        panic!()
    };
    let mut tb = TermBuilder::new(&mut server.ctx, &server.store);
    let reship = tb.build(opt_oid, 0).expect("re-shippable");
    println!(
        "server: re-shippable — optimized function has {} TML nodes",
        reship.body.size()
    );
}
