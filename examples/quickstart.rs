//! Quickstart: build a TML term, optimize it, compile it, run it.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tycoon::core::pretty::print_app;
use tycoon::core::{Builder, Ctx, Value};
use tycoon::opt::{optimize, OptOptions};
use tycoon::store::Store;
use tycoon::vm::Vm;

fn main() {
    // 1. A TML context: name table + the standard primitive set (fig. 2).
    let mut ctx = Ctx::new();

    // 2. Build a CPS term with the builder: define a procedure
    //    inc = proc(x ce cc)(+ x 1 ce cc), call it twice, halt with the
    //    result. In concrete syntax:
    //    (cont(inc) (inc 40 ce cont(t) (inc t ce2 cont(u) (halt u))) proc…)
    let mut b = Builder::new(&mut ctx);
    let x = b.var("x");
    let inc = b.proc_abs(vec![x], |b, ce, cc| {
        b.primapp(
            "+",
            vec![Value::Var(x), b.int(1), Value::Var(ce), Value::Var(cc)],
        )
    });
    let f = b.var("inc");
    let ce1 = b.halt_on_error();
    let body = b.call(Value::Var(f), vec![b.int(40)], ce1, |b, t| {
        let ce2 = b.halt_on_error();
        b.call(Value::Var(f), vec![Value::Var(t)], ce2, |b, u| {
            b.halt(Value::Var(u))
        })
    });
    let program = b.let_(f, inc, body);

    println!(
        "== TML before optimization ==\n{}\n",
        print_app(&ctx, &program)
    );

    // 3. Optimize: the expansion pass inlines `inc` at both call sites, the
    //    reduction pass folds both additions (subst/remove/fold — paper §3).
    let (optimized, stats) = optimize(&mut ctx, program.clone(), &OptOptions::default());
    println!(
        "== TML after optimization ==\n{}\n",
        print_app(&ctx, &optimized)
    );
    println!(
        "rules: {} reductions, {} inlines, size {} -> {}\n",
        stats.total_reductions(),
        stats.inlined,
        stats.size_before,
        stats.size_after
    );

    // 4. Compile both versions to abstract machine code and run them.
    let mut store = Store::new();
    for (label, app) in [("unoptimized", &program), ("optimized", &optimized)] {
        let mut vm = Vm::new();
        let block = vm.compile_program(&ctx, app).expect("closed program");
        let out = vm
            .run_program(&mut store, block, 1_000_000)
            .expect("program runs");
        println!(
            "{label:>12}: result={:?}  instructions={}  calls={}  closures={}",
            out.result, out.stats.instrs, out.stats.calls, out.stats.closures
        );
    }
}
