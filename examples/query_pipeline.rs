//! §4.2: embedded queries as TML terms, algebraic rewriting, and runtime
//! index exploitation.
//!
//! The SQL statement `select * from Rel x where x.a = 3 and x.b < 40`
//! translates 1:1 into nested `select` operators; merge-select fuses them;
//! with an index on column `a` the runtime rewriter replaces the scan with
//! an index lookup.
//!
//! ```sh
//! cargo run --example query_pipeline
//! ```

use tycoon::core::pretty::print_app;
use tycoon::core::{Ctx, Lit};
use tycoon::opt::OptOptions;
use tycoon::query::{self, integrated_optimize, select_chain, Pred};
use tycoon::store::Store;
use tycoon::vm::{Machine, Vm};

fn run(ctx: &Ctx, vm: &mut Vm, store: &mut Store, app: &tycoon::core::App) -> (i64, u64) {
    let block = vm.compile_program(ctx, app).expect("closed query program");
    let mut machine = Machine::new(&vm.code, &vm.externs, store, 100_000_000);
    let out = machine
        .run(block, Vec::new(), Vec::new())
        .expect("query runs");
    match out.result {
        tycoon::vm::RVal::Int(n) => (n, out.stats.instrs + out.stats.calls * 3),
        other => panic!("expected count, got {other:?}"),
    }
}

fn main() {
    let mut ctx = Ctx::new();
    let mut vm = Vm::new();
    query::install(&mut ctx, &mut vm);

    let mut store = Store::new();
    let rel = query::data::random_relation(&mut store, 5_000, 10, 100, 42);
    println!("relation: 5000 rows, schema (id, a, b)\n");

    // The naive front-end translation: one select per conjunct.
    let naive = select_chain(
        &mut ctx,
        rel,
        &[Pred::ColEq(1, Lit::Int(3)), Pred::ColLt(2, 40)],
    );
    println!(
        "== naive nested selections ==\n{}\n",
        print_app(&ctx, &naive)
    );

    let (count, work) = run(&ctx, &mut vm, &mut store, &naive);
    println!("naive:            count={count}  work≈{work}");

    // Compile-time algebraic optimization: merge-select fuses the scans.
    let (merged, stats) =
        integrated_optimize(&mut ctx, None, naive.clone(), &OptOptions::default());
    println!(
        "\n== after merge-select (σp(σq(R)) ≡ σp∧q(R)) ==\n{}\n",
        print_app(&ctx, &merged)
    );
    println!(
        "rewrites: merge-select={} trivial-exists={} index-select={}",
        stats.query.merge_select, stats.query.trivial_exists, stats.query.index_select
    );
    let (count2, work2) = run(&ctx, &mut vm, &mut store, &merged);
    println!("merged:           count={count2}  work≈{work2}");
    assert_eq!(count, count2);

    // Runtime optimization: with an index on column a, the equality
    // selection becomes an index lookup — knowledge only available at
    // runtime, which is why Tycoon delays query optimization (paper §4.2).
    query::data::build_index(&mut store, rel, 1).expect("relation indexes");
    let (indexed, stats) =
        integrated_optimize(&mut ctx, Some(&store), naive, &OptOptions::default());
    println!(
        "\n== after runtime index-select ==\n{}\n",
        print_app(&ctx, &indexed)
    );
    assert_eq!(stats.query.index_select, 1);
    let (count3, work3) = run(&ctx, &mut vm, &mut store, &indexed);
    println!("index + residual: count={count3}  work≈{work3}");
    assert_eq!(count, count3);

    println!(
        "\nwork ratio naive/merged = {:.2},  naive/indexed = {:.2}",
        work as f64 / work2 as f64,
        work as f64 / work3 as f64
    );
}
