//! Persistence round trip (figure 3), on the durable mutation path:
//! compile → mutate through the store-access seam (every change
//! write-ahead-logged) → commit → reopen in a new process image → relink
//! (recompile from PTML) → execute → checkpoint into paged storage.
//!
//! The executable code table is transient; the *persistent* representation
//! of code is PTML plus the recorded R-value bindings, exactly as in the
//! paper's architecture. Durability comes from the seam: the session, the
//! VM and the reflective optimizer all mutate the store through
//! `StoreAccess`, so a `DurableStore` backend logs everything — the first
//! reopen below recovers from the log alone, before any checkpoint wrote
//! a page.
//!
//! ```sh
//! cargo run --example persistent_store
//! ```

use tycoon::core::Registry;
use tycoon::lang::{Session, SessionConfig};
use tycoon::reflect::{optimize_all, relink_image_code, session_from_access_with, ReflectOptions};
use tycoon::store::{DurableOptions, DurableStore, Object, SVal};
use tycoon::vm::RVal;

fn main() {
    let dir = std::env::temp_dir().join(format!("tycoon_demo_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("tmpdir");
    let path = dir.join("accounts.img");

    // --- Session 1: build state on a durable store, commit, "crash". ------
    let store = DurableStore::create(&path, DurableOptions::default()).expect("create");
    let mut s1 =
        Session::on_store(store, SessionConfig::default(), Registry::standard()).expect("session");
    s1.load_str(
        "
module acct export balance, deposit
let balance(a: Array): Dyn = array.get(a, 0)
let deposit(a: Array, n: Int): Dyn =
  (array.set(a, 0, array.get(a, 0) + n); array.get(a, 0))
end",
    )
    .expect("module loads");
    // Persistent data: an account array, registered as a store root. The
    // allocation and the root binding are redo-logged like everything else.
    let account = s1
        .store
        .alloc(Object::Array(vec![SVal::Int(100)]))
        .expect("alloc");
    s1.store.set_root("the-account", account).expect("root");

    let r = s1
        .call("acct.deposit", vec![RVal::Ref(account), RVal::Int(42)])
        .expect("deposit runs");
    println!("session 1: deposit(42) -> {:?}", r.result);

    optimize_all(&mut s1, &ReflectOptions::default()).expect("dynamic optimization");
    let stats = s1.store.stats();
    println!(
        "session 1: store holds {} objects, {} bytes ({} bytes PTML, {} closures)",
        stats.objects, stats.bytes, stats.ptml_bytes, stats.closures
    );
    // Commit only — no checkpoint. The paged image on disk is still empty;
    // the write-ahead log is the sole record of this session.
    s1.store.commit().expect("commit");
    println!(
        "session 1: committed; {} record(s) dirty, image at {}",
        s1.store.dirty_records(),
        path.display()
    );
    drop(s1); // crash: no checkpoint, no close

    // --- Session 2: recover from the log, relink from PTML, compute. ------
    let (store, report) = DurableStore::open(&path, DurableOptions::default()).expect("open");
    println!(
        "\nsession 2: recovered {} logged record(s) across {} commit(s)",
        report.redo_records, report.redo_commits
    );
    let mut s2 = session_from_access_with(store, SessionConfig::default(), Registry::standard());
    // The image's code-table indices are stale; rebuild every function
    // from its persistent TML representation, in place.
    let relink = relink_image_code(&mut s2).expect("relink");
    println!(
        "session 2: relinked {} closure(s) from PTML ({} skipped)",
        relink.relinked, relink.skipped
    );
    let account = s2.store.store().root("the-account").expect("root survives");

    let r = s2
        .call("acct.deposit", vec![RVal::Ref(account), RVal::Int(8)])
        .expect("deposit runs after recovery");
    println!("session 2: deposit(8) -> {:?} (expected 150)", r.result);
    assert_eq!(r.result, RVal::Int(150));

    // Consolidate: commit the new deposit, checkpoint the dirty records
    // into paged storage, truncating the log.
    s2.store.commit().expect("commit");
    s2.store.checkpoint().expect("checkpoint");
    let pages = s2.store.page_stats();
    println!(
        "session 2: checkpointed generation {} — {} page(s), {} record(s), {} chained",
        pages.gen, pages.pages, pages.dir_entries, pages.chains
    );
    drop(s2);

    // --- Session 3: the checkpointed image alone carries the state. -------
    let (store, report) = DurableStore::open(&path, DurableOptions::default()).expect("reopen");
    assert_eq!(report.redo_records, 0, "checkpoint consolidated the log");
    let balance = match store
        .store()
        .get(store.store().root("the-account").expect("root"))
        .expect("account object")
    {
        Object::Array(items) => items[0].clone(),
        other => panic!("expected array, found {}", other.kind()),
    };
    println!("session 3: balance read from paged image: {balance:?}");
    assert_eq!(balance, SVal::Int(150));

    std::fs::remove_dir_all(&dir).ok();
    println!("\nround trip complete: code and data recovered from the durable image.");
}
