//! Persistence round trip (figure 3): compile → snapshot the store with
//! PTML-carrying closures → reload in a new process image → relink
//! (recompile from PTML) → execute.
//!
//! The executable code table is transient; the *persistent* representation
//! of code is PTML plus the recorded R-value bindings, exactly as in the
//! paper's architecture.
//!
//! ```sh
//! cargo run --example persistent_store
//! ```

use tycoon::lang::{Session, SessionConfig};
use tycoon::reflect::{optimize_all, ReflectOptions, TermBuilder};
use tycoon::store::{snapshot, Object, SVal};
use tycoon::vm::RVal;

const SRC: &str = "
module acct export balance, deposit
let balance(a: Array): Dyn = array.get(a, 0)
let deposit(a: Array, n: Int): Dyn =
  (array.set(a, 0, array.get(a, 0) + n); array.get(a, 0))
end";

fn main() {
    let path = std::env::temp_dir().join("tycoon_demo.tys");

    // --- Session 1: build state, snapshot it. -----------------------------
    let mut s1 = Session::new(SessionConfig::default()).expect("session");
    s1.load_str(SRC).expect("module loads");
    // Persistent data: an account array, registered as a store root.
    let account = s1.store.alloc(Object::Array(vec![SVal::Int(100)]));
    s1.store.set_root("the-account", account);

    let r = s1
        .call("acct.deposit", vec![RVal::Ref(account), RVal::Int(42)])
        .expect("deposit runs");
    println!("session 1: deposit(42) -> {:?}", r.result);

    optimize_all(&mut s1, &ReflectOptions::default()).expect("dynamic optimization");
    let stats = s1.store.stats();
    println!(
        "session 1: store holds {} objects, {} bytes ({} bytes PTML, {} closures)",
        stats.objects, stats.bytes, stats.ptml_bytes, stats.closures
    );
    snapshot::save(&s1.store, &path).expect("snapshot saves");
    println!("session 1: snapshot written to {}", path.display());
    drop(s1);

    // --- Session 2: reload, relink from PTML, keep computing. -------------
    let store = snapshot::load(&path).expect("snapshot loads");
    let mut s2 = Session::new(SessionConfig::default()).expect("fresh session");
    // The snapshot's code-table indices are stale; rebuild every function
    // from its persistent TML representation.
    s2.store = store;
    let account = s2.store.root("the-account").expect("root survives");
    println!(
        "\nsession 2: loaded {} objects; account balance object {account}",
        s2.store.len()
    );

    // Relink: find the acct functions in the loaded store by their module
    // record and recompile them from PTML.
    let module_oid = s2.store.root("acct").expect("module record survives");
    let exports: Vec<(String, SVal)> = match s2.store.get(module_oid).expect("module") {
        Object::Module(m) => m
            .exports
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect(),
        other => panic!("expected module record, found {}", other.kind()),
    };
    for (name, val) in exports {
        let SVal::Ref(old) = val else { continue };
        // Decode PTML, recompile against this session's code table, and
        // swap the closure's code pointer in place.
        let (abs, residuals) = {
            let mut tb = TermBuilder::new(&mut s2.ctx, &s2.store);
            let abs = tb.build(old, 0).expect("ptml decodes");
            (abs, tb.residuals)
        };
        let compiled = s2.vm.compile_proc(&s2.ctx, &abs).expect("recompile");
        let lookup: std::collections::HashMap<_, _> =
            residuals.iter().map(|(n, v)| (*v, n.clone())).collect();
        let old_bindings: Vec<(String, SVal)> = match s2.store.get(old).expect("closure") {
            Object::Closure(c) => c.bindings.clone(),
            _ => continue,
        };
        let env: Vec<SVal> = compiled
            .captures
            .iter()
            .map(|v| {
                let n = &lookup[v];
                old_bindings
                    .iter()
                    .find(|(bn, _)| bn == n)
                    .map(|(_, bv)| bv.clone())
                    .expect("binding recorded")
            })
            .collect();
        if let Object::Closure(c) = s2.store.get_mut(old).expect("closure") {
            c.code = compiled.block;
            c.env = env;
        }
        s2.globals.insert(format!("acct.{name}"), SVal::Ref(old));
        println!("session 2: relinked acct.{name} from PTML");
    }

    let r = s2
        .call("acct.deposit", vec![RVal::Ref(account), RVal::Int(8)])
        .expect("deposit runs after reload");
    println!("session 2: deposit(8) -> {:?} (expected 150)", r.result);
    assert_eq!(r.result, RVal::Int(150));

    std::fs::remove_file(&path).ok();
    println!("\nround trip complete: code executed from a reloaded persistent image.");
}
