//! The paper's §6 evaluation harness: the Stanford suite at three
//! optimization levels (experiments E1 and E2) plus code-size accounting
//! (experiment E3).
//!
//! * **baseline** — library lowering (the Tycoon configuration: every
//!   operator is a dynamically bound library call), no optimization;
//! * **local** — the same, plus compile-time local optimization of each
//!   function in isolation (paper: "do not yield a significant speedup");
//! * **dynamic** — whole-world reflective optimization at runtime
//!   (paper: "more than doubles the execution speed").
//!
//! ```sh
//! cargo run --release --example stanford_suite [n-scale]
//! ```

use tycoon::lang::stanford::suite;
use tycoon::lang::types::LowerMode;
use tycoon::lang::{OptMode, Session, SessionConfig};
use tycoon::reflect::{optimize_all, ReflectOptions};
use tycoon::vm::RVal;

struct Row {
    baseline: u64,
    local: u64,
    dynamic: u64,
    checksum: i64,
}

fn run_mode(
    src: &str,
    entry: &str,
    n: i64,
    opt: OptMode,
    dynamic: bool,
) -> (i64, u64, usize, usize) {
    let mut s = Session::new(SessionConfig {
        lower: LowerMode::Library,
        opt,
        ..Default::default()
    })
    .expect("session");
    s.load_str(src).expect("program loads");
    if dynamic {
        optimize_all(&mut s, &ReflectOptions::default()).expect("dynamic optimization");
    }
    let out = s.call(entry, vec![RVal::Int(n)]).expect("program runs");
    let result = match out.result {
        RVal::Int(v) => v,
        other => panic!("non-integer checksum {other:?}"),
    };
    (result, out.stats.instrs, s.code_bytes(), s.ptml_bytes())
}

fn main() {
    let scale: i64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0);

    println!("Stanford suite, abstract machine instructions per program");
    println!("(library lowering; smaller is better)\n");
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>9} {:>9}",
        "program", "baseline", "local-opt", "dynamic-opt", "local x", "dyn x"
    );

    let mut rows = Vec::new();
    for p in suite() {
        let n = p.test_n + scale;
        let (c0, base, _, _) = run_mode(p.src, p.entry, n, OptMode::None, false);
        let (c1, local, _, _) = run_mode(p.src, p.entry, n, OptMode::Local, false);
        let (c2, dynamic, _, _) = run_mode(p.src, p.entry, n, OptMode::None, true);
        assert_eq!(c0, c1, "{}: local optimization changed the result", p.name);
        assert_eq!(
            c0, c2,
            "{}: dynamic optimization changed the result",
            p.name
        );
        println!(
            "{:<8} {:>14} {:>14} {:>14} {:>8.2}x {:>8.2}x",
            p.name,
            base,
            local,
            dynamic,
            base as f64 / local as f64,
            base as f64 / dynamic as f64,
        );
        rows.push(Row {
            baseline: base,
            local,
            dynamic,
            checksum: c0,
        });
    }

    let geo = |f: fn(&Row) -> f64| -> f64 {
        (rows.iter().map(|r| f(r).ln()).sum::<f64>() / rows.len() as f64).exp()
    };
    let local_speedup = geo(|r| r.baseline as f64 / r.local as f64);
    let dynamic_speedup = geo(|r| r.baseline as f64 / r.dynamic as f64);
    println!(
        "\ngeometric-mean speedup: local {:.2}x (paper: 'no significant speedup'),",
        local_speedup
    );
    println!(
        "                        dynamic {:.2}x (paper: 'more than doubles the execution speed')",
        dynamic_speedup
    );

    // E3: persistent code size with and without PTML attachments.
    let mut with_ptml = 0usize;
    let mut without_ptml = 0usize;
    let mut ptml_total = 0usize;
    for p in suite() {
        let mut s = Session::new(SessionConfig::default()).expect("session");
        s.load_str(p.src).expect("loads");
        with_ptml += s.code_bytes() + s.ptml_bytes();
        ptml_total += s.ptml_bytes();
        let mut s2 = Session::new(SessionConfig {
            attach_ptml: false,
            ..Default::default()
        })
        .expect("session");
        s2.load_str(p.src).expect("loads");
        without_ptml += s2.code_bytes();
    }
    println!(
        "\npersistent code size across the suite: {} bytes without PTML, {} with \
         ({} bytes of PTML) — ratio {:.2}x (paper: 'the code size doubles', 1.2MB vs 600kB)",
        without_ptml,
        with_ptml,
        ptml_total,
        with_ptml as f64 / without_ptml as f64
    );

    let _ = rows.iter().map(|r| r.checksum).sum::<i64>();
}
