//! Embedded queries in the source language (the paper's §4.2 vision,
//! end-to-end): TL functions contain `select … from … where` expressions;
//! views are ordinary functions returning relations; reflective runtime
//! optimization expands the views and merges the selections — the
//! integrated program and query optimizer of figure 4.
//!
//! ```sh
//! cargo run --release --example tl_queries
//! ```

use tycoon::lang::Session;
use tycoon::query::integrated::reflect_options_with_queries;
use tycoon::query::QuerySession;
use tycoon::reflect::optimize_named;
use tycoon::vm::RVal;

const SRC: &str = "
module shop export setup, discounted, cheap_discounted, names
-- schema: (id, price, discounted)
let setup(n: Int): Rel =
  let r = rel.make(3) in
  (for i = 0 upto n - 1 do
     rel.insert(r, tuple(i, i * 7 % 200, i % 3 == 0))
   end;
   r)

-- A view: the discounted items.
let discounted(r: Rel): Rel = select x from x in r where x.2 == true

-- A query over the view: cheap discounted items. Statically this is a
-- call through an abstraction barrier; after reflective optimization it
-- is a single merged scan.
let cheap_discounted(r: Rel): Rel =
  select y from y in discounted(r) where y.1 < 50

-- Projection through the same view.
let names(r: Rel): Rel = select y.0 from y in discounted(r)
end";

fn main() {
    let mut s = Session::default_session().expect("session");
    s.enable_queries().expect("query subsystem");
    s.load_str(SRC).expect("module loads");

    let r = s
        .call("shop.setup", vec![RVal::Int(3000)])
        .expect("setup")
        .result;

    let count = |s: &mut Session, rel: RVal| -> i64 {
        match s.call("rel.count", vec![rel]).expect("count").result {
            RVal::Int(n) => n,
            other => panic!("expected int, got {other:?}"),
        }
    };

    // Unoptimized: view call + re-scan of the intermediate relation.
    let plain = s
        .call("shop.cheap_discounted", vec![r.clone()])
        .expect("runs");
    let plain_n = count(&mut s, plain.result.clone());
    println!(
        "naive view query : {plain_n} rows   [{} instructions, {} transfers]",
        plain.stats.instrs, plain.stats.calls
    );

    // Reflective optimization with the integrated query rewriter (fig. 4).
    let optimized = optimize_named(
        &mut s,
        "shop.cheap_discounted",
        &reflect_options_with_queries(),
    )
    .expect("reflect.optimize with query rules");
    let fast = s
        .call_value(RVal::from_sval(&optimized), vec![r.clone()])
        .expect("optimized runs");
    let fast_n = count(&mut s, fast.result.clone());
    println!(
        "merged view query: {fast_n} rows   [{} instructions, {} transfers]",
        fast.stats.instrs, fast.stats.calls
    );
    assert_eq!(plain_n, fast_n);
    println!(
        "\nview expanded + selections merged: {:.2}x fewer transfers, {:.2}x fewer instructions",
        plain.stats.calls as f64 / fast.stats.calls as f64,
        plain.stats.instrs as f64 / fast.stats.instrs as f64,
    );

    // Projection through the view works the same way.
    let names = s.call("shop.names", vec![r]).expect("projection runs");
    println!(
        "\nprojection through the view: {} ids",
        count(&mut s, names.result)
    );
}
