//! Front-end errors with source positions.

use std::fmt;

/// A position in TL source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Pos {
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Errors produced by the TL front end and session.
#[derive(Debug, Clone)]
pub enum LangError {
    /// Lexical error.
    Lex {
        /// Where.
        pos: Pos,
        /// What.
        message: String,
    },
    /// Syntax error.
    Parse {
        /// Where.
        pos: Pos,
        /// What.
        message: String,
    },
    /// Type error.
    Type {
        /// Where.
        pos: Pos,
        /// What.
        message: String,
    },
    /// A global identifier could not be resolved at link time.
    Unresolved(String),
    /// A module with this name is already loaded.
    DuplicateModule(String),
    /// TML → bytecode compilation failed (front-end bug if it happens).
    Compile(String),
    /// Execution failed.
    Vm(String),
    /// A TML-level exception escaped to the session caller.
    Exception(String),
    /// A store mutation failed (IO on a durable backend, or a typed
    /// store error reaching the session layer).
    Store(tml_store::StoreError),
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LangError::Lex { pos, message } => write!(f, "lex error at {pos}: {message}"),
            LangError::Parse { pos, message } => write!(f, "parse error at {pos}: {message}"),
            LangError::Type { pos, message } => write!(f, "type error at {pos}: {message}"),
            LangError::Unresolved(n) => write!(f, "unresolved global {n}"),
            LangError::DuplicateModule(n) => write!(f, "module {n} already loaded"),
            LangError::Compile(m) => write!(f, "code generation error: {m}"),
            LangError::Vm(m) => write!(f, "machine error: {m}"),
            LangError::Exception(m) => write!(f, "uncaught TL exception: {m}"),
            LangError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for LangError {}

impl From<tml_store::StoreError> for LangError {
    fn from(e: tml_store::StoreError) -> LangError {
        LangError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_positions() {
        let e = LangError::Parse {
            pos: Pos { line: 3, col: 7 },
            message: "expected end".into(),
        };
        assert_eq!(e.to_string(), "parse error at 3:7: expected end");
    }
}
