//! Type checking and lowering.
//!
//! The checker validates a module against the global binding environment
//! and *lowers* it at the same time: operator syntax is resolved either to
//! calls through the dynamically bound standard library (`a + b` →
//! `int.add(a, b)`, the Tycoon configuration the paper measures) or
//! directly to primitives (`prim "+"(a, b)`, the ablation baseline);
//! `and`/`or`/`not` lower to conditionals, unary minus to subtraction from
//! zero. CPS conversion (see [`crate::cps`]) then only deals with a small
//! core AST.

use crate::ast::{BinOp, Expr, FunDef, Module, Type};
use crate::error::{LangError, Pos};
use std::collections::HashMap;

/// Operator lowering mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LowerMode {
    /// Operators become calls through the dynamically bound library
    /// modules (`int.add`, `real.mul`, …) — the paper's Tycoon behaviour.
    Library,
    /// Operators compile directly to TML primitives (ablation baseline).
    Direct,
}

/// The global type environment (fully qualified name → type).
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    globals: HashMap<String, Type>,
}

impl TypeEnv {
    /// Create an empty environment.
    pub fn new() -> TypeEnv {
        TypeEnv::default()
    }

    /// Register a global binding (e.g. after loading a module).
    pub fn insert(&mut self, name: impl Into<String>, ty: Type) {
        self.globals.insert(name.into(), ty);
    }

    /// Look up a global.
    pub fn get(&self, name: &str) -> Option<&Type> {
        self.globals.get(name)
    }
}

/// Check and lower a module. On success returns the lowered module and the
/// types of its exports (fully qualified).
pub fn check_module(
    env: &TypeEnv,
    module: &Module,
    mode: LowerMode,
) -> Result<(Module, Vec<(String, Type)>), LangError> {
    // Collect the module's own signatures first (forward references and
    // recursion within a module are resolved at link time).
    let mut own = HashMap::new();
    for f in &module.funs {
        let ty = Type::Fun(
            f.params.iter().map(|p| p.ty.clone()).collect(),
            Box::new(f.ret.clone()),
        );
        own.insert(f.name.clone(), ty);
    }
    for e in &module.exports {
        if !own.contains_key(e) {
            return Err(LangError::Type {
                pos: module.pos,
                message: format!("module {} exports undefined function {e}", module.name),
            });
        }
    }

    let mut ck = Checker {
        env,
        own: &own,
        module: &module.name,
        mode,
        locals: Vec::new(),
    };
    let mut lowered_funs = Vec::with_capacity(module.funs.len());
    for f in &module.funs {
        ck.locals.clear();
        for p in &f.params {
            ck.locals.push(Local {
                name: p.name.clone(),
                ty: p.ty.clone(),
                mutable: false,
            });
        }
        let (body, ty) = ck.infer(&f.body)?;
        if !ty.flows_to(&f.ret) {
            return Err(LangError::Type {
                pos: f.pos,
                message: format!(
                    "function {}.{} declares result {}, body has {}",
                    module.name, f.name, f.ret, ty
                ),
            });
        }
        lowered_funs.push(FunDef {
            name: f.name.clone(),
            params: f.params.clone(),
            ret: f.ret.clone(),
            body,
            pos: f.pos,
        });
    }

    let exports = module
        .exports
        .iter()
        .map(|e| {
            (
                format!("{}.{e}", module.name),
                own.get(e).expect("checked above").clone(),
            )
        })
        .collect();
    Ok((
        Module {
            name: module.name.clone(),
            exports: module.exports.clone(),
            funs: lowered_funs,
            pos: module.pos,
        },
        exports,
    ))
}

struct Local {
    name: String,
    ty: Type,
    mutable: bool,
}

struct Checker<'a> {
    env: &'a TypeEnv,
    own: &'a HashMap<String, Type>,
    module: &'a str,
    mode: LowerMode,
    locals: Vec<Local>,
}

fn unify(a: &Type, b: &Type) -> Type {
    if a == b {
        a.clone()
    } else if *a == Type::Dyn || *b == Type::Dyn {
        Type::Dyn
    } else {
        // Incompatible branches degrade to Dyn rather than erroring: TL is
        // permissive where the paper's TL is polymorphic.
        Type::Dyn
    }
}

impl Checker<'_> {
    fn err(&self, pos: Pos, message: impl Into<String>) -> LangError {
        LangError::Type {
            pos,
            message: message.into(),
        }
    }

    fn lookup_var(&self, name: &str, pos: Pos) -> Result<(Expr, Type, bool), LangError> {
        // Innermost local first.
        if let Some(l) = self.locals.iter().rev().find(|l| l.name == name) {
            return Ok((Expr::Var(name.to_string(), pos), l.ty.clone(), l.mutable));
        }
        // Unqualified reference to a same-module function.
        if let Some(ty) = self.own.get(name) {
            let full = format!("{}.{name}", self.module);
            return Ok((Expr::Var(full, pos), ty.clone(), false));
        }
        // Qualified global.
        if let Some(ty) = self.env.get(name) {
            return Ok((Expr::Var(name.to_string(), pos), ty.clone(), false));
        }
        Err(self.err(pos, format!("unbound identifier {name}")))
    }

    /// Lower an arithmetic/comparison operator at a numeric type.
    fn lower_op(&self, op: BinOp, ty: &Type, a: Expr, b: Expr, pos: Pos) -> (Expr, Type) {
        let is_real = *ty == Type::Real;
        let result = if op.is_cmp() { Type::Bool } else { ty.clone() };
        match self.mode {
            LowerMode::Direct => {
                let prim = match (op, is_real) {
                    (BinOp::Add, false) => "+",
                    (BinOp::Sub, false) => "-",
                    (BinOp::Mul, false) => "*",
                    (BinOp::Div, false) => "/",
                    (BinOp::Mod, false) => "%",
                    (BinOp::Lt, false) => "<",
                    (BinOp::Gt, false) => ">",
                    (BinOp::Le, false) => "<=",
                    (BinOp::Ge, false) => ">=",
                    (BinOp::Eq, false) => "=",
                    (BinOp::Ne, false) => "<>",
                    (BinOp::Add, true) => "f+",
                    (BinOp::Sub, true) => "f-",
                    (BinOp::Mul, true) => "f*",
                    (BinOp::Div, true) => "f/",
                    (BinOp::Lt, true) => "f<",
                    (BinOp::Le, true) => "f<=",
                    (BinOp::Eq, true) => "f=",
                    (BinOp::Gt, true) => {
                        // a > b ≡ b < a
                        return (Expr::Prim("f<".into(), vec![b, a], pos), result);
                    }
                    (BinOp::Ge, true) => {
                        return (Expr::Prim("f<=".into(), vec![b, a], pos), result);
                    }
                    (BinOp::Ne, true) => {
                        // not (a = b)
                        let eq = Expr::Prim("f=".into(), vec![a, b], pos);
                        return (
                            Expr::If(
                                Box::new(eq),
                                Box::new(Expr::Bool(false)),
                                Box::new(Expr::Bool(true)),
                                pos,
                            ),
                            result,
                        );
                    }
                    (BinOp::Mod, true) | (BinOp::And | BinOp::Or, _) => {
                        unreachable!("handled elsewhere")
                    }
                };
                (Expr::Prim(prim.into(), vec![a, b], pos), result)
            }
            LowerMode::Library => {
                let lib = if is_real { "real" } else { "int" };
                let f = match op {
                    BinOp::Add => "add",
                    BinOp::Sub => "sub",
                    BinOp::Mul => "mul",
                    BinOp::Div => "div",
                    BinOp::Mod => "mod",
                    BinOp::Lt => "lt",
                    BinOp::Gt => "gt",
                    BinOp::Le => "le",
                    BinOp::Ge => "ge",
                    BinOp::Eq => "eq",
                    BinOp::Ne => "ne",
                    BinOp::And | BinOp::Or => unreachable!("handled elsewhere"),
                };
                (
                    Expr::Call(
                        Box::new(Expr::Var(format!("{lib}.{f}"), pos)),
                        vec![a, b],
                        pos,
                    ),
                    result,
                )
            }
        }
    }

    fn infer(&mut self, e: &Expr) -> Result<(Expr, Type), LangError> {
        Ok(match e {
            Expr::Int(n) => (Expr::Int(*n), Type::Int),
            Expr::Real(x) => (Expr::Real(*x), Type::Real),
            Expr::Char(c) => (Expr::Char(*c), Type::Char),
            Expr::Str(s) => (Expr::Str(s.clone()), Type::Str),
            Expr::Bool(b) => (Expr::Bool(*b), Type::Bool),
            Expr::Nil => (Expr::Nil, Type::Unit),
            Expr::Var(name, pos) => {
                let (ex, ty, _) = self.lookup_var(name, *pos)?;
                (ex, ty)
            }
            Expr::Call(f, args, pos) => {
                let (f_l, f_ty) = self.infer(f)?;
                let mut lowered = Vec::with_capacity(args.len());
                let mut arg_tys = Vec::with_capacity(args.len());
                for a in args {
                    let (al, ty) = self.infer(a)?;
                    lowered.push(al);
                    arg_tys.push(ty);
                }
                let ret = match &f_ty {
                    Type::Fun(ps, r) => {
                        if ps.len() != args.len() {
                            return Err(self.err(
                                *pos,
                                format!(
                                    "call expects {} argument(s), got {}",
                                    ps.len(),
                                    args.len()
                                ),
                            ));
                        }
                        for (i, (got, want)) in arg_tys.iter().zip(ps).enumerate() {
                            if !got.flows_to(want) {
                                return Err(self.err(
                                    *pos,
                                    format!("argument {i} has type {got}, expected {want}"),
                                ));
                            }
                        }
                        (**r).clone()
                    }
                    Type::Dyn => Type::Dyn,
                    other => {
                        return Err(self.err(*pos, format!("call of non-function type {other}")))
                    }
                };
                (Expr::Call(Box::new(f_l), lowered, *pos), ret)
            }
            Expr::Bin(op, a, b, pos) => {
                if op.is_logic() {
                    let (al, aty) = self.infer(a)?;
                    let (bl, bty) = self.infer(b)?;
                    for t in [&aty, &bty] {
                        if !t.flows_to(&Type::Bool) {
                            return Err(self.err(*pos, format!("logical operand has type {t}")));
                        }
                    }
                    // a and b → if a then b else false; a or b → if a then true else b
                    let lowered = if *op == BinOp::And {
                        Expr::If(
                            Box::new(al),
                            Box::new(bl),
                            Box::new(Expr::Bool(false)),
                            *pos,
                        )
                    } else {
                        Expr::If(Box::new(al), Box::new(Expr::Bool(true)), Box::new(bl), *pos)
                    };
                    return Ok((lowered, Type::Bool));
                }
                let (al, aty) = self.infer(a)?;
                let (bl, bty) = self.infer(b)?;
                // Identity comparison on non-numeric operands.
                let numeric = |t: &Type| matches!(t, Type::Int | Type::Real | Type::Dyn);
                if matches!(op, BinOp::Eq | BinOp::Ne) && (!numeric(&aty) || !numeric(&bty)) {
                    let prim = if *op == BinOp::Eq { "=" } else { "<>" };
                    return Ok((Expr::Prim(prim.into(), vec![al, bl], *pos), Type::Bool));
                }
                let ty = match (&aty, &bty) {
                    (Type::Int, Type::Int) => Type::Int,
                    (Type::Real, Type::Real) => Type::Real,
                    (Type::Dyn, Type::Int) | (Type::Int, Type::Dyn) => Type::Int,
                    (Type::Dyn, Type::Real) | (Type::Real, Type::Dyn) => Type::Real,
                    (Type::Dyn, Type::Dyn) => Type::Int, // documented default
                    _ => {
                        return Err(self.err(
                            *pos,
                            format!("operator on incompatible types {aty} and {bty}"),
                        ))
                    }
                };
                if *op == BinOp::Mod && ty == Type::Real {
                    return Err(self.err(*pos, "% is not defined on reals"));
                }
                self.lower_op(*op, &ty, al, bl, *pos)
            }
            Expr::Neg(inner, pos) => {
                let (il, ity) = self.infer(inner)?;
                match ity {
                    Type::Real => {
                        let zero = Expr::Real(0.0);
                        Ok::<_, LangError>(self.lower_op(BinOp::Sub, &Type::Real, zero, il, *pos))
                    }
                    Type::Int | Type::Dyn => {
                        Ok(self.lower_op(BinOp::Sub, &Type::Int, Expr::Int(0), il, *pos))
                    }
                    other => Err(self.err(*pos, format!("negation of type {other}"))),
                }?
            }
            Expr::Not(inner, pos) => {
                let (il, ity) = self.infer(inner)?;
                if !ity.flows_to(&Type::Bool) {
                    return Err(self.err(*pos, format!("not of type {ity}")));
                }
                (
                    Expr::If(
                        Box::new(il),
                        Box::new(Expr::Bool(false)),
                        Box::new(Expr::Bool(true)),
                        *pos,
                    ),
                    Type::Bool,
                )
            }
            Expr::If(c, t, e2, pos) => {
                let (cl, cty) = self.infer(c)?;
                if !cty.flows_to(&Type::Bool) {
                    return Err(self.err(*pos, format!("condition has type {cty}")));
                }
                let (tl, tty) = self.infer(t)?;
                let (el, ety) = self.infer(e2)?;
                (
                    Expr::If(Box::new(cl), Box::new(tl), Box::new(el), *pos),
                    unify(&tty, &ety),
                )
            }
            Expr::While(c, body, pos) => {
                let (cl, cty) = self.infer(c)?;
                if !cty.flows_to(&Type::Bool) {
                    return Err(self.err(*pos, format!("while condition has type {cty}")));
                }
                let (bl, _) = self.infer(body)?;
                (Expr::While(Box::new(cl), Box::new(bl), *pos), Type::Unit)
            }
            Expr::For(v, lo, hi, body, pos) => {
                let (lol, loty) = self.infer(lo)?;
                let (hil, hity) = self.infer(hi)?;
                for t in [&loty, &hity] {
                    if !t.flows_to(&Type::Int) {
                        return Err(self.err(*pos, format!("for bound has type {t}")));
                    }
                }
                self.locals.push(Local {
                    name: v.clone(),
                    ty: Type::Int,
                    mutable: false,
                });
                let body_l = self.infer(body).map(|(b, _)| b);
                self.locals.pop();
                (
                    Expr::For(
                        v.clone(),
                        Box::new(lol),
                        Box::new(hil),
                        Box::new(body_l?),
                        *pos,
                    ),
                    Type::Unit,
                )
            }
            Expr::Let(x, init, body, pos) => {
                let (il, ity) = self.infer(init)?;
                self.locals.push(Local {
                    name: x.clone(),
                    ty: ity,
                    mutable: false,
                });
                let body_l = self.infer(body);
                self.locals.pop();
                let (bl, bty) = body_l?;
                (Expr::Let(x.clone(), Box::new(il), Box::new(bl), *pos), bty)
            }
            Expr::VarDecl(x, init, body, pos) => {
                let (il, ity) = self.infer(init)?;
                self.locals.push(Local {
                    name: x.clone(),
                    ty: ity,
                    mutable: true,
                });
                let body_l = self.infer(body);
                self.locals.pop();
                let (bl, bty) = body_l?;
                (
                    Expr::VarDecl(x.clone(), Box::new(il), Box::new(bl), *pos),
                    bty,
                )
            }
            Expr::Assign(x, rhs, pos) => {
                let (rl, rty) = self.infer(rhs)?;
                let Some(local) = self.locals.iter().rev().find(|l| l.name == *x) else {
                    return Err(self.err(*pos, format!("assignment to unbound {x}")));
                };
                if !local.mutable {
                    return Err(self.err(*pos, format!("assignment to immutable binding {x}")));
                }
                if !rty.flows_to(&local.ty) {
                    return Err(self.err(
                        *pos,
                        format!("assigning {rty} to variable of type {}", local.ty),
                    ));
                }
                (Expr::Assign(x.clone(), Box::new(rl), *pos), Type::Unit)
            }
            Expr::Seq(a, b) => {
                let (al, _) = self.infer(a)?;
                let (bl, bty) = self.infer(b)?;
                (Expr::Seq(Box::new(al), Box::new(bl)), bty)
            }
            Expr::Tuple(items, pos) => {
                let lowered = items
                    .iter()
                    .map(|i| self.infer(i).map(|(l, _)| l))
                    .collect::<Result<Vec<_>, _>>()?;
                (Expr::Tuple(lowered, *pos), Type::Tuple)
            }
            Expr::Proj(inner, n, pos) => {
                let (il, ity) = self.infer(inner)?;
                if !ity.flows_to(&Type::Tuple) {
                    return Err(self.err(*pos, format!("projection from type {ity}")));
                }
                (Expr::Proj(Box::new(il), *n, *pos), Type::Dyn)
            }
            Expr::Raise(inner, pos) => {
                let (il, _) = self.infer(inner)?;
                (Expr::Raise(Box::new(il), *pos), Type::Dyn)
            }
            Expr::Try(body, x, handler, pos) => {
                let (bl, bty) = self.infer(body)?;
                self.locals.push(Local {
                    name: x.clone(),
                    ty: Type::Dyn,
                    mutable: false,
                });
                let handler_l = self.infer(handler);
                self.locals.pop();
                let (hl, hty) = handler_l?;
                (
                    Expr::Try(Box::new(bl), x.clone(), Box::new(hl), *pos),
                    unify(&bty, &hty),
                )
            }
            Expr::Prim(name, args, pos) => {
                let lowered = args
                    .iter()
                    .map(|a| self.infer(a).map(|(l, _)| l))
                    .collect::<Result<Vec<_>, _>>()?;
                (Expr::Prim(name.clone(), lowered, *pos), Type::Dyn)
            }
            Expr::Select {
                target,
                var,
                range,
                pred,
                pos,
            } => {
                let (rl, rty) = self.infer(range)?;
                if !rty.flows_to(&Type::Rel) {
                    return Err(self.err(*pos, format!("select range has type {rty}")));
                }
                self.locals.push(Local {
                    name: var.clone(),
                    ty: Type::Tuple,
                    mutable: false,
                });
                let inner = (|| {
                    let pred_l = match pred {
                        Some(p) => {
                            let (pl, pty) = self.infer(p)?;
                            if !pty.flows_to(&Type::Bool) {
                                return Err(self.err(*pos, format!("where clause has type {pty}")));
                            }
                            Some(Box::new(pl))
                        }
                        None => None,
                    };
                    let (tl, _) = self.infer(target)?;
                    Ok((tl, pred_l))
                })();
                self.locals.pop();
                let (tl, pred_l) = inner?;
                (
                    Expr::Select {
                        target: Box::new(tl),
                        var: var.clone(),
                        range: Box::new(rl),
                        pred: pred_l,
                        pos: *pos,
                    },
                    Type::Rel,
                )
            }
            Expr::Exists {
                var,
                range,
                pred,
                pos,
            } => {
                let (rl, rty) = self.infer(range)?;
                if !rty.flows_to(&Type::Rel) {
                    return Err(self.err(*pos, format!("exists range has type {rty}")));
                }
                self.locals.push(Local {
                    name: var.clone(),
                    ty: Type::Tuple,
                    mutable: false,
                });
                let pred_l = self.infer(pred);
                self.locals.pop();
                let (pl, pty) = pred_l?;
                if !pty.flows_to(&Type::Bool) {
                    return Err(self.err(*pos, format!("exists predicate has type {pty}")));
                }
                (
                    Expr::Exists {
                        var: var.clone(),
                        range: Box::new(rl),
                        pred: Box::new(pl),
                        pos: *pos,
                    },
                    Type::Bool,
                )
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check(src: &str, mode: LowerMode) -> Result<(Module, Vec<(String, Type)>), LangError> {
        let mods = parse_program(src).unwrap();
        let mut env = TypeEnv::new();
        // Minimal stdlib signatures for tests.
        for f in ["add", "sub", "mul", "div", "mod"] {
            env.insert(
                format!("int.{f}"),
                Type::Fun(vec![Type::Int, Type::Int], Box::new(Type::Int)),
            );
        }
        for f in ["lt", "gt", "le", "ge", "eq", "ne"] {
            env.insert(
                format!("int.{f}"),
                Type::Fun(vec![Type::Int, Type::Int], Box::new(Type::Bool)),
            );
        }
        check_module(&env, &mods[0], mode)
    }

    #[test]
    fn library_mode_lowers_operators_to_calls() {
        let src = "module m export f\nlet f(a: Int): Int = a + 1\nend";
        let (m, _) = check(src, LowerMode::Library).unwrap();
        match &m.funs[0].body {
            Expr::Call(f, args, _) => {
                assert_eq!(**f, Expr::Var("int.add".into(), f.pos()));
                assert_eq!(args.len(), 2);
            }
            other => panic!("expected call, got {other:?}"),
        }
    }

    #[test]
    fn direct_mode_lowers_operators_to_prims() {
        let src = "module m export f\nlet f(a: Int): Int = a + 1\nend";
        let (m, _) = check(src, LowerMode::Direct).unwrap();
        assert!(matches!(&m.funs[0].body, Expr::Prim(p, _, _) if p == "+"));
    }

    #[test]
    fn real_ops_pick_real_library() {
        let src = "module m export f\nlet f(a: Real): Real = a * a\nend";
        let mods = parse_program(src).unwrap();
        let mut env = TypeEnv::new();
        env.insert(
            "real.mul",
            Type::Fun(vec![Type::Real, Type::Real], Box::new(Type::Real)),
        );
        let (m, _) = check_module(&env, &mods[0], LowerMode::Library).unwrap();
        match &m.funs[0].body {
            Expr::Call(f, _, _) => assert_eq!(**f, Expr::Var("real.mul".into(), f.pos())),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn mixed_arithmetic_rejected() {
        let src = "module m export f\nlet f(a: Int, b: Real): Int = a + b\nend";
        assert!(matches!(
            check(src, LowerMode::Direct),
            Err(LangError::Type { .. })
        ));
    }

    #[test]
    fn result_type_mismatch_rejected() {
        let src = "module m export f\nlet f(a: Int): Bool = a + 1\nend";
        assert!(matches!(
            check(src, LowerMode::Direct),
            Err(LangError::Type { .. })
        ));
    }

    #[test]
    fn assignment_rules() {
        let ok = "module m export f\nlet f(a: Int): Int = var s := 0 in s := a; s\nend";
        check(ok, LowerMode::Direct).unwrap();
        let bad = "module m export f\nlet f(a: Int): Int = let s = 0 in (s := a; s)\nend";
        assert!(check(bad, LowerMode::Direct).is_err());
    }

    #[test]
    fn unbound_identifier_rejected() {
        let src = "module m export f\nlet f(a: Int): Int = nowhere\nend";
        assert!(check(src, LowerMode::Direct).is_err());
    }

    #[test]
    fn export_of_missing_function_rejected() {
        let src = "module m export g\nlet f(a: Int): Int = a\nend";
        assert!(check(src, LowerMode::Direct).is_err());
    }

    #[test]
    fn same_module_recursion_resolves() {
        let src = "module m export fib\n\
                   let fib(n: Int): Int = if n < 2 then n else fib(n - 1) + fib(n - 2) end\n\
                   end";
        let (m, exports) = check(src, LowerMode::Direct).unwrap();
        assert_eq!(exports[0].0, "m.fib");
        // Recursive reference lowered to the fully qualified name.
        let body = format!("{:?}", m.funs[0].body);
        assert!(body.contains("m.fib"), "{body}");
    }

    #[test]
    fn logic_lowered_to_if() {
        let src = "module m export f\nlet f(a: Int): Bool = a < 1 and a > 0\nend";
        let (m, _) = check(src, LowerMode::Direct).unwrap();
        assert!(matches!(&m.funs[0].body, Expr::If(_, _, _, _)));
    }

    #[test]
    fn identity_comparison_on_tuples() {
        let src = "module m export f\nlet f(a: Tuple, b: Tuple): Bool = a == b\nend";
        let (m, _) = check(src, LowerMode::Library).unwrap();
        assert!(matches!(&m.funs[0].body, Expr::Prim(p, _, _) if p == "="));
    }

    #[test]
    fn condition_must_be_boolean() {
        let src = "module m export f\nlet f(a: Int): Int = if a then 1 else 2 end\nend";
        assert!(check(src, LowerMode::Direct).is_err());
    }

    #[test]
    fn while_condition_must_be_boolean() {
        let src = "module m export f\nlet f(a: Int): Unit = while a do nil end\nend";
        assert!(check(src, LowerMode::Direct).is_err());
    }

    #[test]
    fn for_bounds_must_be_integers() {
        let src = "module m export f\nlet f(a: Real): Unit = for i = a upto 3 do nil end\nend";
        assert!(check(src, LowerMode::Direct).is_err());
    }

    #[test]
    fn projection_requires_tuple() {
        let src = "module m export f\nlet f(a: Int): Dyn = a.0\nend";
        assert!(check(src, LowerMode::Direct).is_err());
    }

    #[test]
    fn call_of_non_function_rejected() {
        let src = "module m export f\nlet f(a: Int): Int = a(1)\nend";
        assert!(check(src, LowerMode::Direct).is_err());
    }

    #[test]
    fn mod_on_reals_rejected() {
        let src = "module m export f\nlet f(a: Real): Real = a % a\nend";
        assert!(check(src, LowerMode::Direct).is_err());
    }

    #[test]
    fn not_requires_boolean() {
        let src = "module m export f\nlet f(a: Int): Bool = not a\nend";
        assert!(check(src, LowerMode::Direct).is_err());
    }

    #[test]
    fn shadowing_uses_innermost_binding() {
        let src = "module m export f\n\
                   let f(a: Int): Int = let a = a + 1 in a * 2\n\
                   end";
        let (m, _) = check(src, LowerMode::Direct).unwrap();
        // Type checks with the inner (Int) binding.
        assert!(matches!(&m.funs[0].body, Expr::Let(_, _, _, _)));
    }

    #[test]
    fn real_gt_lowers_via_swapped_flt() {
        let src = "module m export f\nlet f(a: Real, b: Real): Bool = a > b\nend";
        let (m, _) = check(src, LowerMode::Direct).unwrap();
        // a > b becomes f<(b, a).
        let Expr::Prim(p, args, _) = &m.funs[0].body else {
            panic!()
        };
        assert_eq!(p, "f<");
        assert!(matches!(&args[0], Expr::Var(n, _) if n == "b"));
    }

    #[test]
    fn real_ne_lowers_via_negated_feq() {
        let src = "module m export f\nlet f(a: Real, b: Real): Bool = a != b\nend";
        let (m, _) = check(src, LowerMode::Direct).unwrap();
        assert!(matches!(&m.funs[0].body, Expr::If(_, _, _, _)));
    }

    #[test]
    fn call_arity_checked() {
        let src = "module m export f, g\n\
                   let f(a: Int): Int = a\n\
                   let g(x: Int): Int = f(x, x)\n\
                   end";
        assert!(check(src, LowerMode::Direct).is_err());
    }
}
