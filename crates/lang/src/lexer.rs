//! The TL lexer.

use crate::error::{LangError, Pos};

/// A token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// Character literal.
    Char(u8),
    /// String literal.
    Str(String),
    /// Identifier (possibly qualified later by the parser).
    Ident(String),
    /// Keyword.
    Kw(&'static str),
    /// Punctuation / operator.
    Punct(&'static str),
    /// End of input.
    Eof,
}

/// A token with its position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Kind and payload.
    pub tok: Tok,
    /// Source position.
    pub pos: Pos,
}

const KEYWORDS: &[&str] = &[
    "module", "export", "let", "var", "in", "if", "then", "else", "end", "while", "do", "for",
    "upto", "true", "false", "nil", "and", "or", "not", "raise", "try", "handle", "prim", "tuple",
    "select", "from", "where", "exists",
];

/// Tokenize TL source.
pub fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    let bytes = src.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0;
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! bump {
        () => {{
            if bytes[i] == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let pos = Pos { line, col };
        match c {
            b' ' | b'\t' | b'\r' | b'\n' => {
                bump!();
            }
            b'-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                // Comment to end of line.
                while i < bytes.len() && bytes[i] != b'\n' {
                    bump!();
                }
            }
            b'0'..=b'9' => {
                let start = i;
                let mut is_real = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || (bytes[i] == b'.'
                            && !is_real
                            && i + 1 < bytes.len()
                            && bytes[i + 1].is_ascii_digit()))
                {
                    if bytes[i] == b'.' {
                        is_real = true;
                    }
                    bump!();
                }
                let text = &src[start..i];
                let tok = if is_real {
                    Tok::Real(text.parse().map_err(|e| LangError::Lex {
                        pos,
                        message: format!("bad real literal: {e}"),
                    })?)
                } else {
                    Tok::Int(text.parse().map_err(|e| LangError::Lex {
                        pos,
                        message: format!("bad integer literal: {e}"),
                    })?)
                };
                toks.push(Token { tok, pos });
            }
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    bump!();
                }
                let word = &src[start..i];
                let tok = match KEYWORDS.iter().find(|k| **k == word) {
                    Some(k) => Tok::Kw(k),
                    None => Tok::Ident(word.to_string()),
                };
                toks.push(Token { tok, pos });
            }
            b'\'' => {
                bump!();
                if i >= bytes.len() {
                    return Err(LangError::Lex {
                        pos,
                        message: "unterminated char literal".into(),
                    });
                }
                let ch = if bytes[i] == b'\\' {
                    bump!();
                    let e = bytes.get(i).copied().ok_or(LangError::Lex {
                        pos,
                        message: "unterminated escape".into(),
                    })?;
                    bump!();
                    match e {
                        b'n' => b'\n',
                        b't' => b'\t',
                        b'\\' => b'\\',
                        b'\'' => b'\'',
                        b'0' => 0,
                        other => {
                            return Err(LangError::Lex {
                                pos,
                                message: format!("bad escape '\\{}'", char::from(other)),
                            })
                        }
                    }
                } else {
                    let c = bytes[i];
                    bump!();
                    c
                };
                if i >= bytes.len() || bytes[i] != b'\'' {
                    return Err(LangError::Lex {
                        pos,
                        message: "unterminated char literal".into(),
                    });
                }
                bump!();
                toks.push(Token {
                    tok: Tok::Char(ch),
                    pos,
                });
            }
            b'"' => {
                bump!();
                let mut s = String::new();
                loop {
                    if i >= bytes.len() {
                        return Err(LangError::Lex {
                            pos,
                            message: "unterminated string literal".into(),
                        });
                    }
                    match bytes[i] {
                        b'"' => {
                            bump!();
                            break;
                        }
                        b'\\' => {
                            bump!();
                            let e = bytes.get(i).copied().ok_or(LangError::Lex {
                                pos,
                                message: "unterminated escape".into(),
                            })?;
                            bump!();
                            s.push(match e {
                                b'n' => '\n',
                                b't' => '\t',
                                b'\\' => '\\',
                                b'"' => '"',
                                other => {
                                    return Err(LangError::Lex {
                                        pos,
                                        message: format!("bad escape '\\{}'", char::from(other)),
                                    })
                                }
                            });
                        }
                        c => {
                            s.push(char::from(c));
                            bump!();
                        }
                    }
                }
                toks.push(Token {
                    tok: Tok::Str(s),
                    pos,
                });
            }
            _ => {
                // Multi-char punctuation first.
                let rest = &src[i..];
                let two: Option<&'static str> = [":=", "<=", ">=", "==", "!=", "->"]
                    .iter()
                    .find(|p| rest.starts_with(**p))
                    .copied();
                if let Some(p) = two {
                    bump!();
                    bump!();
                    toks.push(Token {
                        tok: Tok::Punct(p),
                        pos,
                    });
                    continue;
                }
                let one: Option<&'static str> = [
                    "(", ")", ",", ":", ";", ".", "+", "-", "*", "/", "%", "<", ">", "=",
                ]
                .iter()
                .find(|p| rest.starts_with(**p))
                .copied();
                match one {
                    Some(p) => {
                        bump!();
                        toks.push(Token {
                            tok: Tok::Punct(p),
                            pos,
                        });
                    }
                    None => {
                        return Err(LangError::Lex {
                            pos,
                            message: format!("unexpected character {:?}", char::from(c)),
                        })
                    }
                }
            }
        }
    }
    toks.push(Token {
        tok: Tok::Eof,
        pos: Pos { line, col },
    });
    Ok(toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_vs_identifiers() {
        let ts = kinds("let letx modulemod module");
        assert_eq!(ts[0], Tok::Kw("let"));
        assert_eq!(ts[1], Tok::Ident("letx".into()));
        assert_eq!(ts[2], Tok::Ident("modulemod".into()));
        assert_eq!(ts[3], Tok::Kw("module"));
    }

    #[test]
    fn numbers() {
        let ts = kinds("42 3.5 7");
        assert_eq!(ts[0], Tok::Int(42));
        assert_eq!(ts[1], Tok::Real(3.5));
        assert_eq!(ts[2], Tok::Int(7));
    }

    #[test]
    fn projection_dots_are_not_reals() {
        // e.0 must lex as Ident/Punct(.)/Int.
        let ts = kinds("c.0");
        assert_eq!(ts[0], Tok::Ident("c".into()));
        assert_eq!(ts[1], Tok::Punct("."));
        assert_eq!(ts[2], Tok::Int(0));
    }

    #[test]
    fn strings_and_chars() {
        let ts = kinds(r#" "hi\n" 'x' '\t' "#);
        assert_eq!(ts[0], Tok::Str("hi\n".into()));
        assert_eq!(ts[1], Tok::Char(b'x'));
        assert_eq!(ts[2], Tok::Char(b'\t'));
    }

    #[test]
    fn comments_skipped() {
        let ts = kinds("1 -- a comment\n2");
        assert_eq!(ts[0], Tok::Int(1));
        assert_eq!(ts[1], Tok::Int(2));
    }

    #[test]
    fn multichar_puncts() {
        let ts = kinds(":= <= >= == != -> < = -");
        assert_eq!(ts[0], Tok::Punct(":="));
        assert_eq!(ts[1], Tok::Punct("<="));
        assert_eq!(ts[2], Tok::Punct(">="));
        assert_eq!(ts[3], Tok::Punct("=="));
        assert_eq!(ts[4], Tok::Punct("!="));
        assert_eq!(ts[5], Tok::Punct("->"));
        assert_eq!(ts[6], Tok::Punct("<"));
        assert_eq!(ts[7], Tok::Punct("="));
        assert_eq!(ts[8], Tok::Punct("-"));
    }

    #[test]
    fn positions_tracked() {
        let ts = lex("a\n  b").unwrap();
        assert_eq!(ts[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(ts[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn bad_char_reported() {
        assert!(matches!(lex("@"), Err(LangError::Lex { .. })));
    }
}
