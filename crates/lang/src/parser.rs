//! The TL parser (recursive descent).
//!
//! ```text
//! program := module*
//! module  := "module" IDENT "export" IDENT ("," IDENT)* fundef* "end"
//! fundef  := "let" IDENT "(" [param ("," param)*] ")" ":" type "=" expr
//! expr    := seq; see the precedence ladder in the code
//! ```

use crate::ast::{BinOp, Expr, FunDef, Module, Param, Type};
use crate::error::{LangError, Pos};
use crate::lexer::{lex, Tok, Token};

/// Parse a whole TL source file into modules.
pub fn parse_program(src: &str) -> Result<Vec<Module>, LangError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, at: 0 };
    let mut modules = Vec::new();
    while !p.at_eof() {
        modules.push(p.module()?);
    }
    Ok(modules)
}

/// Parse a single expression (for tests and the interactive evaluator).
pub fn parse_expr(src: &str) -> Result<Expr, LangError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, at: 0 };
    let e = p.expr()?;
    if !p.at_eof() {
        return Err(p.err("trailing input after expression"));
    }
    Ok(e)
}

struct Parser {
    toks: Vec<Token>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.at].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.at + 1).min(self.toks.len() - 1)].tok
    }

    fn pos(&self) -> Pos {
        self.toks[self.at].pos
    }

    fn at_eof(&self) -> bool {
        matches!(self.peek(), Tok::Eof)
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.at].tok.clone();
        if self.at + 1 < self.toks.len() {
            self.at += 1;
        }
        t
    }

    fn err(&self, msg: impl Into<String>) -> LangError {
        LangError::Parse {
            pos: self.pos(),
            message: msg.into(),
        }
    }

    fn eat_kw(&mut self, kw: &str) -> Result<(), LangError> {
        match self.peek() {
            Tok::Kw(k) if *k == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected '{kw}', found {other:?}"))),
        }
    }

    fn eat_punct(&mut self, p: &str) -> Result<(), LangError> {
        match self.peek() {
            Tok::Punct(q) if *q == p => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected '{p}', found {other:?}"))),
        }
    }

    fn is_punct(&self, p: &str) -> bool {
        matches!(self.peek(), Tok::Punct(q) if *q == p)
    }

    fn is_kw(&self, k: &str) -> bool {
        matches!(self.peek(), Tok::Kw(q) if *q == k)
    }

    fn ident(&mut self) -> Result<String, LangError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    // -- Modules --------------------------------------------------------

    fn module(&mut self) -> Result<Module, LangError> {
        let pos = self.pos();
        self.eat_kw("module")?;
        let name = self.ident()?;
        self.eat_kw("export")?;
        let mut exports = vec![self.ident()?];
        while self.is_punct(",") {
            self.bump();
            exports.push(self.ident()?);
        }
        let mut funs = Vec::new();
        while self.is_kw("let") {
            funs.push(self.fundef()?);
        }
        self.eat_kw("end")?;
        Ok(Module {
            name,
            exports,
            funs,
            pos,
        })
    }

    fn fundef(&mut self) -> Result<FunDef, LangError> {
        let pos = self.pos();
        self.eat_kw("let")?;
        let name = self.ident()?;
        self.eat_punct("(")?;
        let mut params = Vec::new();
        if !self.is_punct(")") {
            loop {
                let pname = self.ident()?;
                self.eat_punct(":")?;
                let ty = self.ty()?;
                params.push(Param { name: pname, ty });
                if self.is_punct(",") {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat_punct(")")?;
        self.eat_punct(":")?;
        let ret = self.ty()?;
        self.eat_punct("=")?;
        let body = self.expr()?;
        Ok(FunDef {
            name,
            params,
            ret,
            body,
            pos,
        })
    }

    fn ty(&mut self) -> Result<Type, LangError> {
        let name = self.ident()?;
        Ok(match name.as_str() {
            "Int" => Type::Int,
            "Real" => Type::Real,
            "Bool" => Type::Bool,
            "Char" => Type::Char,
            "Str" => Type::Str,
            "Unit" => Type::Unit,
            "Dyn" => Type::Dyn,
            "Tuple" => Type::Tuple,
            "Array" => Type::Array,
            "Rel" => Type::Rel,
            "Fun" => {
                self.eat_punct("(")?;
                let mut params = Vec::new();
                if !self.is_punct(")") {
                    loop {
                        params.push(self.ty()?);
                        if self.is_punct(",") {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.eat_punct(")")?;
                self.eat_punct(":")?;
                let ret = self.ty()?;
                Type::Fun(params, Box::new(ret))
            }
            other => return Err(self.err(format!("unknown type {other}"))),
        })
    }

    // -- Expressions ------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, LangError> {
        let first = self.ctrl()?;
        if self.is_punct(";") {
            self.bump();
            let rest = self.expr()?;
            Ok(Expr::Seq(Box::new(first), Box::new(rest)))
        } else {
            Ok(first)
        }
    }

    fn ctrl(&mut self) -> Result<Expr, LangError> {
        let pos = self.pos();
        match self.peek() {
            Tok::Kw("let") => {
                self.bump();
                let name = self.ident()?;
                self.eat_punct("=")?;
                let init = self.ctrl()?;
                self.eat_kw("in")?;
                let body = self.expr()?;
                Ok(Expr::Let(name, Box::new(init), Box::new(body), pos))
            }
            Tok::Kw("var") => {
                self.bump();
                let name = self.ident()?;
                self.eat_punct(":=")?;
                let init = self.ctrl()?;
                self.eat_kw("in")?;
                let body = self.expr()?;
                Ok(Expr::VarDecl(name, Box::new(init), Box::new(body), pos))
            }
            Tok::Kw("if") => {
                self.bump();
                let cond = self.expr()?;
                self.eat_kw("then")?;
                let t = self.expr()?;
                self.eat_kw("else")?;
                let e = self.expr()?;
                self.eat_kw("end")?;
                Ok(Expr::If(Box::new(cond), Box::new(t), Box::new(e), pos))
            }
            Tok::Kw("while") => {
                self.bump();
                let cond = self.expr()?;
                self.eat_kw("do")?;
                let body = self.expr()?;
                self.eat_kw("end")?;
                Ok(Expr::While(Box::new(cond), Box::new(body), pos))
            }
            Tok::Kw("for") => {
                self.bump();
                let v = self.ident()?;
                self.eat_punct("=")?;
                let lo = self.expr()?;
                self.eat_kw("upto")?;
                let hi = self.expr()?;
                self.eat_kw("do")?;
                let body = self.expr()?;
                self.eat_kw("end")?;
                Ok(Expr::For(
                    v,
                    Box::new(lo),
                    Box::new(hi),
                    Box::new(body),
                    pos,
                ))
            }
            Tok::Kw("raise") => {
                self.bump();
                let e = self.orex()?;
                Ok(Expr::Raise(Box::new(e), pos))
            }
            Tok::Kw("try") => {
                self.bump();
                let e = self.expr()?;
                self.eat_kw("handle")?;
                let x = self.ident()?;
                self.eat_punct("->")?;
                let h = self.expr()?;
                self.eat_kw("end")?;
                Ok(Expr::Try(Box::new(e), x, Box::new(h), pos))
            }
            Tok::Kw("select") => {
                // select <target> from <var> in <range> [where <pred>]
                self.bump();
                let target = self.orex()?;
                self.eat_kw("from")?;
                let var = self.ident()?;
                self.eat_kw("in")?;
                let range = self.orex()?;
                let pred = if self.is_kw("where") {
                    self.bump();
                    Some(Box::new(self.orex()?))
                } else {
                    None
                };
                Ok(Expr::Select {
                    target: Box::new(target),
                    var,
                    range: Box::new(range),
                    pred,
                    pos,
                })
            }
            Tok::Kw("exists") => {
                // exists <var> in <range> where <pred>
                self.bump();
                let var = self.ident()?;
                self.eat_kw("in")?;
                let range = self.orex()?;
                self.eat_kw("where")?;
                let pred = self.orex()?;
                Ok(Expr::Exists {
                    var,
                    range: Box::new(range),
                    pred: Box::new(pred),
                    pos,
                })
            }
            Tok::Ident(_) if matches!(self.peek2(), Tok::Punct(":=")) => {
                let name = self.ident()?;
                self.eat_punct(":=")?;
                let rhs = self.ctrl()?;
                Ok(Expr::Assign(name, Box::new(rhs), pos))
            }
            _ => self.orex(),
        }
    }

    fn orex(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.andex()?;
        while self.is_kw("or") {
            let pos = self.pos();
            self.bump();
            let rhs = self.andex()?;
            lhs = Expr::Bin(BinOp::Or, Box::new(lhs), Box::new(rhs), pos);
        }
        Ok(lhs)
    }

    fn andex(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.cmp()?;
        while self.is_kw("and") {
            let pos = self.pos();
            self.bump();
            let rhs = self.cmp()?;
            lhs = Expr::Bin(BinOp::And, Box::new(lhs), Box::new(rhs), pos);
        }
        Ok(lhs)
    }

    fn cmp(&mut self) -> Result<Expr, LangError> {
        let lhs = self.add()?;
        let op = match self.peek() {
            Tok::Punct("<") => Some(BinOp::Lt),
            Tok::Punct(">") => Some(BinOp::Gt),
            Tok::Punct("<=") => Some(BinOp::Le),
            Tok::Punct(">=") => Some(BinOp::Ge),
            Tok::Punct("==") => Some(BinOp::Eq),
            Tok::Punct("!=") => Some(BinOp::Ne),
            _ => None,
        };
        match op {
            Some(op) => {
                let pos = self.pos();
                self.bump();
                let rhs = self.add()?;
                Ok(Expr::Bin(op, Box::new(lhs), Box::new(rhs), pos))
            }
            None => Ok(lhs),
        }
    }

    fn add(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.mul()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("+") => BinOp::Add,
                Tok::Punct("-") => BinOp::Sub,
                _ => break,
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.mul()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs), pos);
        }
        Ok(lhs)
    }

    fn mul(&mut self) -> Result<Expr, LangError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek() {
                Tok::Punct("*") => BinOp::Mul,
                Tok::Punct("/") => BinOp::Div,
                Tok::Punct("%") => BinOp::Mod,
                _ => break,
            };
            let pos = self.pos();
            self.bump();
            let rhs = self.unary()?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs), pos);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, LangError> {
        let pos = self.pos();
        match self.peek() {
            Tok::Punct("-") => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Neg(Box::new(e), pos))
            }
            Tok::Kw("not") => {
                self.bump();
                let e = self.unary()?;
                Ok(Expr::Not(Box::new(e), pos))
            }
            _ => self.postfix(),
        }
    }

    fn postfix(&mut self) -> Result<Expr, LangError> {
        let mut e = self.atom()?;
        loop {
            if self.is_punct("(") {
                let pos = self.pos();
                self.bump();
                let args = self.args_until_rparen()?;
                e = Expr::Call(Box::new(e), args, pos);
            } else if self.is_punct(".") && matches!(self.peek2(), Tok::Int(_)) {
                let pos = self.pos();
                self.bump();
                let Tok::Int(n) = self.bump() else {
                    unreachable!("peeked");
                };
                let n = usize::try_from(n).map_err(|_| self.err("negative tuple projection"))?;
                e = Expr::Proj(Box::new(e), n, pos);
            } else {
                break;
            }
        }
        Ok(e)
    }

    fn args_until_rparen(&mut self) -> Result<Vec<Expr>, LangError> {
        let mut args = Vec::new();
        if !self.is_punct(")") {
            loop {
                args.push(self.expr()?);
                if self.is_punct(",") {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat_punct(")")?;
        Ok(args)
    }

    fn atom(&mut self) -> Result<Expr, LangError> {
        let pos = self.pos();
        match self.bump() {
            Tok::Int(n) => Ok(Expr::Int(n)),
            Tok::Real(x) => Ok(Expr::Real(x)),
            Tok::Char(c) => Ok(Expr::Char(c)),
            Tok::Str(s) => Ok(Expr::Str(s)),
            Tok::Kw("true") => Ok(Expr::Bool(true)),
            Tok::Kw("false") => Ok(Expr::Bool(false)),
            Tok::Kw("nil") => Ok(Expr::Nil),
            Tok::Kw("tuple") => {
                self.eat_punct("(")?;
                let args = self.args_until_rparen()?;
                Ok(Expr::Tuple(args, pos))
            }
            Tok::Kw("prim") => {
                let name = match self.bump() {
                    Tok::Str(s) => s,
                    other => {
                        return Err(
                            self.err(format!("expected primitive name string, found {other:?}"))
                        )
                    }
                };
                self.eat_punct("(")?;
                let args = self.args_until_rparen()?;
                Ok(Expr::Prim(name, args, pos))
            }
            Tok::Ident(name) => {
                // One level of qualification: mod.name (dot + identifier).
                if self.is_punct(".") && matches!(self.peek2(), Tok::Ident(_)) {
                    self.bump();
                    let field = self.ident()?;
                    Ok(Expr::Var(format!("{name}.{field}"), pos))
                } else {
                    Ok(Expr::Var(name, pos))
                }
            }
            Tok::Punct("(") => {
                let e = self.expr()?;
                self.eat_punct(")")?;
                Ok(e)
            }
            other => Err(LangError::Parse {
                pos,
                message: format!("unexpected token {other:?}"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_module_with_exports() {
        let src = "module int export add, sub\n\
                   let add(a: Int, b: Int): Int = prim \"+\"(a, b)\n\
                   let sub(a: Int, b: Int): Int = prim \"-\"(a, b)\n\
                   end";
        let mods = parse_program(src).unwrap();
        assert_eq!(mods.len(), 1);
        assert_eq!(mods[0].name, "int");
        assert_eq!(mods[0].exports, vec!["add", "sub"]);
        assert_eq!(mods[0].funs.len(), 2);
        assert_eq!(mods[0].funs[0].params.len(), 2);
    }

    #[test]
    fn precedence_ladder() {
        let e = parse_expr("1 + 2 * 3 < 4 and true or false").unwrap();
        // ((1 + (2*3)) < 4) and true, or false
        let Expr::Bin(BinOp::Or, lhs, _, _) = e else {
            panic!("expected or at top");
        };
        let Expr::Bin(BinOp::And, cmp, _, _) = *lhs else {
            panic!("expected and under or");
        };
        assert!(matches!(*cmp, Expr::Bin(BinOp::Lt, _, _, _)));
    }

    #[test]
    fn qualified_names_and_projection() {
        let e = parse_expr("complex.x(c).0").unwrap();
        let Expr::Proj(inner, 0, _) = e else {
            panic!("expected projection");
        };
        let Expr::Call(f, args, _) = *inner else {
            panic!("expected call");
        };
        assert_eq!(*f, Expr::Var("complex.x".into(), f.pos()));
        assert_eq!(args.len(), 1);
    }

    #[test]
    fn control_forms() {
        parse_expr("if a < b then 1 else 2 end").unwrap();
        parse_expr("while i < n do i := i + 1 end").unwrap();
        parse_expr("for i = 1 upto 10 do io.print(i) end").unwrap();
        parse_expr("let x = 3 in x * x").unwrap();
        parse_expr("var s := 0 in s := s + 1; s").unwrap();
        parse_expr("try risky() handle e -> 0 end").unwrap();
        parse_expr("raise 42").unwrap();
    }

    #[test]
    fn sequencing_is_right_nested() {
        let e = parse_expr("a(); b(); c()").unwrap();
        let Expr::Seq(_, rest) = e else { panic!() };
        assert!(matches!(*rest, Expr::Seq(_, _)));
    }

    #[test]
    fn assignment_vs_variable() {
        let a = parse_expr("x := 1").unwrap();
        assert!(matches!(a, Expr::Assign(_, _, _)));
        let v = parse_expr("x + 1").unwrap();
        assert!(matches!(v, Expr::Bin(BinOp::Add, _, _, _)));
    }

    #[test]
    fn fun_types_parse() {
        let src = "module m export apply\n\
                   let apply(f: Fun(Int): Int, x: Int): Int = f(x)\n\
                   end";
        let mods = parse_program(src).unwrap();
        let p = &mods[0].funs[0].params[0];
        assert_eq!(p.ty, Type::Fun(vec![Type::Int], Box::new(Type::Int)));
    }

    #[test]
    fn tuple_syntax() {
        let e = parse_expr("tuple(1.5, 2.5).1").unwrap();
        assert!(matches!(e, Expr::Proj(_, 1, _)));
    }

    #[test]
    fn errors_have_positions() {
        let err = parse_expr("if x then").unwrap_err();
        match err {
            LangError::Parse { pos, .. } => assert_eq!(pos.line, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn embedded_query_syntax() {
        let e = parse_expr("select x from x in r where x.1 > 20").unwrap();
        let Expr::Select {
            target, var, pred, ..
        } = e
        else {
            panic!("expected select");
        };
        assert_eq!(*target, Expr::Var("x".into(), target.pos()));
        assert_eq!(var, "x");
        assert!(pred.is_some());

        let e = parse_expr("select x.0 from x in r").unwrap();
        let Expr::Select { target, pred, .. } = e else {
            panic!("expected select");
        };
        assert!(matches!(*target, Expr::Proj(_, 0, _)));
        assert!(pred.is_none());

        let e = parse_expr("exists x in r where x.2 == true").unwrap();
        assert!(matches!(e, Expr::Exists { .. }));
    }

    #[test]
    fn query_syntax_nests_in_expressions() {
        parse_expr("let a = select x from x in r where p(x) in rel.count(a)").unwrap();
        parse_expr("if exists x in r where true then 1 else 0 end").unwrap();
    }

    #[test]
    fn unary_forms() {
        parse_expr("-x + -(3)").unwrap();
        parse_expr("not (a and not b)").unwrap();
    }
}
