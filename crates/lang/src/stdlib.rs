//! The TL standard library.
//!
//! Written in TL itself, bottoming out in `prim` expressions. This mirrors
//! the Tycoon configuration the paper measures: "even operations on
//! integers and arrays are factored out into dynamically bound libraries".
//! Application code says `a + b`; the checker lowers that to
//! `int.add(a, b)`; `int.add` is an ordinary module function living in the
//! store as a closure — only its *body* applies the `+` primitive.

/// TL source of the standard library modules (`int`, `real`, `array`,
/// `char`, `io`).
pub const STDLIB_SRC: &str = r#"
module int export add, sub, mul, div, mod, neg, lt, gt, le, ge, eq, ne, min, max, abs
let add(a: Int, b: Int): Int = prim "+"(a, b)
let sub(a: Int, b: Int): Int = prim "-"(a, b)
let mul(a: Int, b: Int): Int = prim "*"(a, b)
let div(a: Int, b: Int): Int = prim "/"(a, b)
let mod(a: Int, b: Int): Int = prim "%"(a, b)
let neg(a: Int): Int = prim "-"(0, a)
let lt(a: Int, b: Int): Bool = prim "<"(a, b)
let gt(a: Int, b: Int): Bool = prim ">"(a, b)
let le(a: Int, b: Int): Bool = prim "<="(a, b)
let ge(a: Int, b: Int): Bool = prim ">="(a, b)
let eq(a: Int, b: Int): Bool = prim "="(a, b)
let ne(a: Int, b: Int): Bool = prim "<>"(a, b)
let min(a: Int, b: Int): Int = if lt(a, b) then a else b end
let max(a: Int, b: Int): Int = if lt(a, b) then b else a end
let abs(a: Int): Int = if lt(a, 0) then neg(a) else a end
end

module real export add, sub, mul, div, lt, le, eq, gt, ge, ne, sqrt, ofint, toint
let add(a: Real, b: Real): Real = prim "f+"(a, b)
let sub(a: Real, b: Real): Real = prim "f-"(a, b)
let mul(a: Real, b: Real): Real = prim "f*"(a, b)
let div(a: Real, b: Real): Real = prim "f/"(a, b)
let lt(a: Real, b: Real): Bool = prim "f<"(a, b)
let le(a: Real, b: Real): Bool = prim "f<="(a, b)
let eq(a: Real, b: Real): Bool = prim "f="(a, b)
let gt(a: Real, b: Real): Bool = prim "f<"(b, a)
let ge(a: Real, b: Real): Bool = prim "f<="(b, a)
let ne(a: Real, b: Real): Bool = if eq(a, b) then false else true end
let sqrt(a: Real): Real = prim "fsqrt"(a)
let ofint(a: Int): Real = prim "i2r"(a)
let toint(a: Real): Int = prim "r2i"(a)
end

module array export make, get, set, size, copy
let make(n: Int, init: Dyn): Array = prim "new"(n, init)
let get(a: Array, i: Int): Dyn = prim "[]"(a, i)
let set(a: Array, i: Int, v: Dyn): Unit = prim "[:=]"(a, i, v)
let size(a: Array): Int = prim "size"(a)
let copy(dst: Array, doff: Int, src: Array, soff: Int, n: Int): Unit =
  prim "move"(dst, doff, src, soff, n)
end

module char export toint, ofint
let toint(c: Char): Int = prim "char2int"(c)
let ofint(n: Int): Char = prim "int2char"(n)
end

module io export print
let print(v: Dyn): Unit = prim "print"(v)
end
"#;

/// Fully qualified names of every stdlib function, with arity — used by
/// tests to assert complete linkage.
pub fn stdlib_exports() -> Vec<(&'static str, usize)> {
    vec![
        ("int.add", 2),
        ("int.sub", 2),
        ("int.mul", 2),
        ("int.div", 2),
        ("int.mod", 2),
        ("int.neg", 1),
        ("int.lt", 2),
        ("int.gt", 2),
        ("int.le", 2),
        ("int.ge", 2),
        ("int.eq", 2),
        ("int.ne", 2),
        ("int.min", 2),
        ("int.max", 2),
        ("int.abs", 1),
        ("real.add", 2),
        ("real.sub", 2),
        ("real.mul", 2),
        ("real.div", 2),
        ("real.lt", 2),
        ("real.le", 2),
        ("real.eq", 2),
        ("real.gt", 2),
        ("real.ge", 2),
        ("real.ne", 2),
        ("real.sqrt", 1),
        ("real.ofint", 1),
        ("real.toint", 1),
        ("array.make", 2),
        ("array.get", 2),
        ("array.set", 3),
        ("array.size", 1),
        ("array.copy", 5),
        ("char.toint", 1),
        ("char.ofint", 1),
        ("io.print", 1),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn stdlib_parses() {
        let mods = parse_program(STDLIB_SRC).unwrap();
        assert_eq!(mods.len(), 5);
        let names: Vec<&str> = mods.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names, vec!["int", "real", "array", "char", "io"]);
    }

    #[test]
    fn export_list_matches_source() {
        let mods = parse_program(STDLIB_SRC).unwrap();
        let mut from_src: Vec<String> = mods
            .iter()
            .flat_map(|m| m.exports.iter().map(move |e| format!("{}.{e}", m.name)))
            .collect();
        from_src.sort();
        let mut listed: Vec<String> = stdlib_exports()
            .iter()
            .map(|(n, _)| n.to_string())
            .collect();
        listed.sort();
        assert_eq!(from_src, listed);
    }
}
