//! CPS conversion: lowered TL core AST → TML.
//!
//! Every TL function becomes a TML procedure `proc(params… cₑ c꜀)`; the
//! exception continuation is threaded through every call, so `try/handle`
//! is compiled by *passing a different continuation* (paper §2.3: "To
//! install a new exception handler, … a new continuation function which
//! handles exceptions in the callee's body is passed"). Loops compile to
//! the `Y` fixpoint combinator exactly as in the paper's `for` example.
//!
//! References to globals (qualified names such as `int.add`, `complex.x`)
//! become *free variables* of the generated procedure; the linker binds
//! them to store values (R-value bindings), and the reflective optimizer
//! later re-binds them as λ-bindings to optimize across the module
//! barrier.

use crate::ast::{Expr, FunDef};
use crate::error::LangError;
use std::collections::HashMap;
use tml_core::term::{Abs, App, Value};
use tml_core::{Ctx, Lit, VarId};

/// The result of converting one function.
#[derive(Debug, Clone)]
pub struct CpsResult {
    /// `proc(params… cₑ c꜀)` with the function body in CPS.
    pub abs: Abs,
    /// Global (free) references: `(qualified name, variable)` in first-use
    /// order. These are exactly the R-value bindings of the closure.
    pub globals: Vec<(String, VarId)>,
}

/// Convert a lowered function definition to TML.
pub fn convert_fun(ctx: &mut Ctx, fun: &FunDef) -> Result<CpsResult, LangError> {
    let mut cps = Cps {
        ctx,
        scope: Vec::new(),
        globals: Vec::new(),
        global_ix: HashMap::new(),
        ce: VarId(u32::MAX),
    };
    let mut params = Vec::with_capacity(fun.params.len() + 2);
    for p in &fun.params {
        let v = cps.ctx.names.fresh(p.name.clone());
        cps.scope.push((p.name.clone(), Binding::Val(v)));
        params.push(v);
    }
    let ce = cps.ctx.names.fresh_cont("ce");
    let cc = cps.ctx.names.fresh_cont("cc");
    params.push(ce);
    params.push(cc);
    cps.ce = ce;
    let body = cps.convert(&fun.body, K::Var(cc))?;
    Ok(CpsResult {
        abs: Abs::new(params, body),
        globals: cps.globals,
    })
}

enum Binding {
    /// An immutable binding holding a value.
    Val(VarId),
    /// A mutable binding: the variable holds a 1-slot cell reference.
    Cell(VarId),
}

type KFn<'e> = Box<dyn FnOnce(&mut Cps<'_>, Value) -> Result<App, LangError> + 'e>;
type DoneFn<'e> = Box<dyn FnOnce(&mut Cps<'_>, Vec<Value>) -> Result<App, LangError> + 'e>;

/// The (meta-)continuation of a conversion step.
enum K<'e> {
    /// A continuation variable: apply it to the result.
    Var(VarId),
    /// Generate code consuming the result value.
    Fn(KFn<'e>),
}

impl<'e> K<'e> {
    fn apply(self, cps: &mut Cps<'_>, v: Value) -> Result<App, LangError> {
        match self {
            K::Var(k) => Ok(App::new(Value::Var(k), vec![v])),
            K::Fn(f) => f(cps, v),
        }
    }
}

struct Cps<'a> {
    ctx: &'a mut Ctx,
    scope: Vec<(String, Binding)>,
    globals: Vec<(String, VarId)>,
    global_ix: HashMap<String, VarId>,
    /// The current exception continuation variable.
    ce: VarId,
}

impl Cps<'_> {
    fn bug(msg: impl Into<String>) -> LangError {
        LangError::Compile(msg.into())
    }

    fn prim(&self, name: &str) -> Result<Value, LangError> {
        self.ctx
            .prims
            .lookup(name)
            .map(Value::Prim)
            .ok_or_else(|| Self::bug(format!("unknown primitive {name}")))
    }

    fn prim_conts(&self, name: &str) -> Result<usize, LangError> {
        let id = self
            .ctx
            .prims
            .lookup(name)
            .ok_or_else(|| Self::bug(format!("unknown primitive {name}")))?;
        match self.ctx.prims.def(id).signature.conts {
            tml_core::prim::Arity::Exact(n) => Ok(n),
            tml_core::prim::Arity::AtLeast(n) => Ok(n),
        }
    }

    fn is_branch_prim(name: &str) -> bool {
        matches!(
            name,
            "<" | ">" | "<=" | ">=" | "=" | "<>" | "f<" | "f<=" | "f=" | "btest"
        )
    }

    fn global(&mut self, name: &str) -> VarId {
        if let Some(&v) = self.global_ix.get(name) {
            return v;
        }
        // The base name is the qualified global name itself: the PTML free
        // list is keyed by base names and must line up with the closure's
        // R-value binding names for the reflective optimizer.
        let v = self.ctx.names.fresh(name);
        self.global_ix.insert(name.to_string(), v);
        self.globals.push((name.to_string(), v));
        v
    }

    /// Ensure the continuation is a variable, reifying a meta-continuation
    /// as a join point bound through a direct application.
    fn with_k_var<'e>(
        &mut self,
        k: K<'e>,
        f: impl FnOnce(&mut Self, VarId) -> Result<App, LangError>,
    ) -> Result<App, LangError> {
        match k {
            K::Var(j) => f(self, j),
            K::Fn(kf) => {
                let j = self.ctx.names.fresh_cont("j");
                let t = self.ctx.names.fresh("t");
                let k_body = kf(self, Value::Var(t))?;
                let inner = f(self, j)?;
                Ok(App::new(
                    Value::from(Abs::new(vec![j], inner)),
                    vec![Value::from(Abs::new(vec![t], k_body))],
                ))
            }
        }
    }

    /// Convert a list of expressions left to right, collecting their values.
    fn convert_list<'e>(
        &mut self,
        exprs: &'e [Expr],
        mut acc: Vec<Value>,
        done: DoneFn<'e>,
    ) -> Result<App, LangError> {
        match exprs.split_first() {
            None => done(self, acc),
            Some((first, rest)) => self.convert(
                first,
                K::Fn(Box::new(move |cps, v| {
                    acc.push(v);
                    cps.convert_list(rest, acc, done)
                })),
            ),
        }
    }

    fn convert<'e>(&mut self, e: &'e Expr, k: K<'e>) -> Result<App, LangError> {
        match e {
            Expr::Int(n) => k.apply(self, Value::Lit(Lit::Int(*n))),
            Expr::Real(x) => k.apply(self, Value::Lit(Lit::real(*x))),
            Expr::Char(c) => k.apply(self, Value::Lit(Lit::Char(*c))),
            Expr::Str(s) => k.apply(self, Value::Lit(Lit::str(s))),
            Expr::Bool(b) => k.apply(self, Value::Lit(Lit::Bool(*b))),
            Expr::Nil => k.apply(self, Value::Lit(Lit::Unit)),
            Expr::Var(name, _) => {
                match self.scope.iter().rev().find(|(n, _)| n == name) {
                    Some((_, Binding::Val(v))) => {
                        let v = *v;
                        k.apply(self, Value::Var(v))
                    }
                    Some((_, Binding::Cell(cell))) => {
                        // Cell read: ([] cell 0 ce cc).
                        let cell = *cell;
                        let ce = Value::Var(self.ce);
                        let sub = self.prim("[]")?;
                        self.with_value_cont(k, |_, cc| {
                            Ok(App::new(sub, vec![Value::Var(cell), Value::int(0), ce, cc]))
                        })
                    }
                    None => {
                        let g = self.global(name);
                        k.apply(self, Value::Var(g))
                    }
                }
            }
            Expr::Call(f, args, _) => self.convert(
                f,
                K::Fn(Box::new(move |cps, fv| {
                    cps.convert_list(
                        args,
                        Vec::new(),
                        Box::new(move |cps, mut vals| {
                            let ce = Value::Var(cps.ce);
                            cps.with_value_cont(k, move |_, cc| {
                                vals.push(ce);
                                vals.push(cc);
                                Ok(App::new(fv, vals))
                            })
                        }),
                    )
                })),
            ),
            Expr::Prim(name, args, _) => self.convert_list(
                args,
                Vec::new(),
                Box::new(move |cps, vals| cps.prim_app(name, vals, k)),
            ),
            Expr::If(c, t, e2, _) => self.with_k_var(k, |cps, j| {
                let then_app = cps.convert(t, K::Var(j))?;
                let else_app = cps.convert(e2, K::Var(j))?;
                cps.convert_test(c, then_app, else_app)
            }),
            Expr::While(c, body, _) => self.with_k_var(k, |cps, j| {
                // (Y proc(c0 loop ret)(ret cont()(loop) cont() test))
                let c0 = cps.ctx.names.fresh_cont("c0");
                let loop_v = cps.ctx.names.fresh_cont("loop");
                let ret = cps.ctx.names.fresh_cont("c");
                let entry = Abs::new(vec![], App::new(Value::Var(loop_v), vec![]));
                let continue_app = App::new(Value::Var(loop_v), vec![]);
                let body_app =
                    cps.convert(body, K::Fn(Box::new(move |_cps, _v| Ok(continue_app))))?;
                let exit_app = App::new(Value::Var(j), vec![Value::Lit(Lit::Unit)]);
                let test = cps.convert_test(c, body_app, exit_app)?;
                let head = Abs::new(vec![], test);
                let y_abs = Abs::new(
                    vec![c0, loop_v, ret],
                    App::new(Value::Var(ret), vec![Value::from(entry), Value::from(head)]),
                );
                let y = cps.prim("Y")?;
                Ok(App::new(y, vec![Value::from(y_abs)]))
            }),
            Expr::For(v, lo, hi, body, _) => self.with_k_var(k, |cps, j| {
                cps.convert(
                    lo,
                    K::Fn(Box::new(move |cps, lov| {
                        cps.convert(
                            hi,
                            K::Fn(Box::new(move |cps, hiv| {
                                cps.build_for(v, lov, hiv, body, j)
                            })),
                        )
                    })),
                )
            }),
            Expr::Let(x, init, body, _) => self.convert(
                init,
                K::Fn(Box::new(move |cps, v| {
                    let xv = cps.ctx.names.fresh(x.clone());
                    cps.scope.push((x.clone(), Binding::Val(xv)));
                    let body_app = cps.convert(body, k);
                    cps.scope.pop();
                    Ok(App::new(
                        Value::from(Abs::new(vec![xv], body_app?)),
                        vec![v],
                    ))
                })),
            ),
            Expr::VarDecl(x, init, body, _) => self.convert(
                init,
                K::Fn(Box::new(move |cps, v| {
                    // (new 1 v cont(cell) body)
                    let cell = cps.ctx.names.fresh(format!("{x}_cell"));
                    cps.scope.push((x.clone(), Binding::Cell(cell)));
                    let body_app = cps.convert(body, k);
                    cps.scope.pop();
                    let new = cps.prim("new")?;
                    Ok(App::new(
                        new,
                        vec![
                            Value::int(1),
                            v,
                            Value::from(Abs::new(vec![cell], body_app?)),
                        ],
                    ))
                })),
            ),
            Expr::Assign(x, rhs, pos) => {
                let cell = match self.scope.iter().rev().find(|(n, _)| n == x) {
                    Some((_, Binding::Cell(c))) => *c,
                    _ => {
                        return Err(LangError::Type {
                            pos: *pos,
                            message: format!("assignment to non-variable {x}"),
                        })
                    }
                };
                self.convert(
                    rhs,
                    K::Fn(Box::new(move |cps, v| {
                        let ce = Value::Var(cps.ce);
                        let set = cps.prim("[:=]")?;
                        cps.with_value_cont(k, move |_, cc| {
                            Ok(App::new(
                                set,
                                vec![Value::Var(cell), Value::int(0), v, ce, cc],
                            ))
                        })
                    })),
                )
            }
            Expr::Seq(a, b) => self.convert(a, K::Fn(Box::new(move |cps, _| cps.convert(b, k)))),
            Expr::Tuple(items, _) => self.convert_list(
                items,
                Vec::new(),
                Box::new(move |cps, vals| {
                    let vector = cps.prim("vector")?;
                    cps.with_value_cont(k, move |_, cc| {
                        let mut args = vals;
                        args.push(cc);
                        Ok(App::new(vector, args))
                    })
                }),
            ),
            Expr::Proj(inner, n, _) => {
                let n = *n as i64;
                self.convert(
                    inner,
                    K::Fn(Box::new(move |cps, v| {
                        let ce = Value::Var(cps.ce);
                        let sub = cps.prim("[]")?;
                        cps.with_value_cont(k, move |_, cc| {
                            Ok(App::new(sub, vec![v, Value::int(n), ce, cc]))
                        })
                    })),
                )
            }
            Expr::Raise(inner, _) => self.convert(
                inner,
                K::Fn(Box::new(move |cps, v| {
                    Ok(App::new(Value::Var(cps.ce), vec![v]))
                })),
            ),
            Expr::Try(body, x, handler, _) => self.with_k_var(k, |cps, j| {
                // Bind the handler continuation, then convert the body with
                // it as the current exception continuation.
                let h = cps.ctx.names.fresh_cont("h");
                let xv = cps.ctx.names.fresh(x.clone());
                cps.scope.push((x.clone(), Binding::Val(xv)));
                let handler_app = cps.convert(handler, K::Var(j));
                cps.scope.pop();
                let handler_abs = Abs::new(vec![xv], handler_app?);
                let saved_ce = cps.ce;
                cps.ce = h;
                let body_app = cps.convert(body, K::Var(j));
                cps.ce = saved_ce;
                Ok(App::new(
                    Value::from(Abs::new(vec![h], body_app?)),
                    vec![Value::from(handler_abs)],
                ))
            }),
            Expr::Select {
                target,
                var,
                range,
                pred,
                ..
            } => self.convert(
                range,
                K::Fn(Box::new(move |cps, rv| {
                    // Selection first (if any), then projection (unless the
                    // target is the bare range variable) — the paper's 1:1
                    // mapping of `select Target(x) from Rel x where Pred(x)`
                    // into `(select pred Rel ce cont(tempRel)(project …))`.
                    let is_identity = matches!(&**target, Expr::Var(n, _) if n == var);
                    match pred {
                        Some(p) => {
                            let pred_abs = cps.query_lambda(var, p)?;
                            let sel = cps.prim("select")?;
                            let ce = Value::Var(cps.ce);
                            if is_identity {
                                cps.with_value_cont(k, move |_, cc| {
                                    Ok(App::new(sel, vec![Value::from(pred_abs), rv, ce, cc]))
                                })
                            } else {
                                let temp = cps.ctx.names.fresh("tempRel");
                                let proj_app = cps.projection(var, target, Value::Var(temp), k)?;
                                Ok(App::new(
                                    sel,
                                    vec![
                                        Value::from(pred_abs),
                                        rv,
                                        ce,
                                        Value::from(Abs::new(vec![temp], proj_app)),
                                    ],
                                ))
                            }
                        }
                        None if is_identity => k.apply(cps, rv),
                        None => cps.projection(var, target, rv, k),
                    }
                })),
            ),
            Expr::Exists {
                var, range, pred, ..
            } => self.convert(
                range,
                K::Fn(Box::new(move |cps, rv| {
                    let pred_abs = cps.query_lambda(var, pred)?;
                    let exists = cps.prim("exists")?;
                    let ce = Value::Var(cps.ce);
                    cps.with_value_cont(k, move |_, cc| {
                        Ok(App::new(exists, vec![Value::from(pred_abs), rv, ce, cc]))
                    })
                })),
            ),
            other => Err(Self::bug(format!(
                "expression not lowered before CPS conversion: {other:?}"
            ))),
        }
    }

    /// Build the query λ `proc(x cex ccx) body` for a predicate or target
    /// expression with the range variable in scope.
    fn query_lambda(&mut self, var: &str, body: &Expr) -> Result<Abs, LangError> {
        let x = self.ctx.names.fresh(var.to_string());
        let cex = self.ctx.names.fresh_cont("cex");
        let ccx = self.ctx.names.fresh_cont("ccx");
        self.scope.push((var.to_string(), Binding::Val(x)));
        let saved_ce = self.ce;
        self.ce = cex;
        let converted = self.convert(body, K::Var(ccx));
        self.ce = saved_ce;
        self.scope.pop();
        Ok(Abs::new(vec![x, cex, ccx], converted?))
    }

    /// `(project targetλ rel ce cc)`.
    fn projection<'e>(
        &mut self,
        var: &str,
        target: &'e Expr,
        rel: Value,
        k: K<'e>,
    ) -> Result<App, LangError> {
        let target_abs = self.query_lambda(var, target)?;
        let project = self.prim("project")?;
        let ce = Value::Var(self.ce);
        self.with_value_cont(k, move |_, cc| {
            Ok(App::new(
                project,
                vec![Value::from(target_abs), rel, ce, cc],
            ))
        })
    }

    /// `for v = lo upto hi do body end`, following the paper's encoding.
    fn build_for(
        &mut self,
        v: &str,
        lov: Value,
        hiv: Value,
        body: &Expr,
        j: VarId,
    ) -> Result<App, LangError> {
        let c0 = self.ctx.names.fresh_cont("c0");
        let for_v = self.ctx.names.fresh_cont("for");
        let ret = self.ctx.names.fresh_cont("c");
        let i = self.ctx.names.fresh(v.to_string());

        // Recursion: (+ i 1 ce cont(t2) (for t2))
        let t2 = self.ctx.names.fresh("t2");
        let recurse = Abs::new(vec![t2], App::new(Value::Var(for_v), vec![Value::Var(t2)]));
        let plus = self.prim("+")?;
        let step = App::new(
            plus,
            vec![
                Value::Var(i),
                Value::int(1),
                Value::Var(self.ce),
                Value::from(recurse),
            ],
        );
        // Body, then step.
        self.scope.push((v.to_string(), Binding::Val(i)));
        let body_app = self.convert(body, K::Fn(Box::new(move |_cps, _| Ok(step))));
        self.scope.pop();
        // Head: (> i hi cont() exit cont() body)
        let gt = self.prim(">")?;
        let exit = Abs::new(vec![], App::new(Value::Var(j), vec![Value::Lit(Lit::Unit)]));
        let head_body = App::new(
            gt,
            vec![
                Value::Var(i),
                hiv,
                Value::from(exit),
                Value::from(Abs::new(vec![], body_app?)),
            ],
        );
        let head = Abs::new(vec![i], head_body);
        let entry = Abs::new(vec![], App::new(Value::Var(for_v), vec![lov]));
        let y_abs = Abs::new(
            vec![c0, for_v, ret],
            App::new(Value::Var(ret), vec![Value::from(entry), Value::from(head)]),
        );
        let y = self.prim("Y")?;
        Ok(App::new(y, vec![Value::from(y_abs)]))
    }

    /// Supply a value continuation for a call/primitive: a plain variable
    /// when the continuation already is one (tail position), otherwise an
    /// inline `cont(t) …`.
    fn with_value_cont<'e>(
        &mut self,
        k: K<'e>,
        f: impl FnOnce(&mut Self, Value) -> Result<App, LangError>,
    ) -> Result<App, LangError> {
        match k {
            K::Var(cc) => f(self, Value::Var(cc)),
            K::Fn(kf) => {
                let t = self.ctx.names.fresh("t");
                let body = kf(self, Value::Var(t))?;
                f(self, Value::from(Abs::new(vec![t], body)))
            }
        }
    }

    /// Compile a primitive application in value context.
    fn prim_app<'e>(&mut self, name: &str, vals: Vec<Value>, k: K<'e>) -> Result<App, LangError> {
        if Self::is_branch_prim(name) {
            // Boolean-producing: join the two branches.
            return self.with_k_var(k, |cps, j| {
                let p = cps.prim(name)?;
                let mut args = vals;
                args.push(Value::from(Abs::new(
                    vec![],
                    App::new(Value::Var(j), vec![Value::Lit(Lit::Bool(true))]),
                )));
                args.push(Value::from(Abs::new(
                    vec![],
                    App::new(Value::Var(j), vec![Value::Lit(Lit::Bool(false))]),
                )));
                Ok(App::new(p, args))
            });
        }
        let conts = self.prim_conts(name)?;
        let p = self.prim(name)?;
        match conts {
            1 => self.with_value_cont(k, move |_, cc| {
                let mut args = vals;
                args.push(cc);
                Ok(App::new(p, args))
            }),
            2 => {
                let ce = Value::Var(self.ce);
                self.with_value_cont(k, move |_, cc| {
                    let mut args = vals;
                    args.push(ce);
                    args.push(cc);
                    Ok(App::new(p, args))
                })
            }
            n => Err(Self::bug(format!(
                "primitive {name} with {n} continuations not usable from TL"
            ))),
        }
    }

    /// Compile a boolean test with prepared branch code.
    fn convert_test(
        &mut self,
        cond: &Expr,
        then_app: App,
        else_app: App,
    ) -> Result<App, LangError> {
        match cond {
            Expr::Bool(true) => Ok(then_app),
            Expr::Bool(false) => Ok(else_app),
            Expr::Prim(name, args, _) if Self::is_branch_prim(name) => {
                let name = name.clone();
                self.convert_list(
                    args,
                    Vec::new(),
                    Box::new(move |cps, mut vals| {
                        let p = cps.prim(&name)?;
                        vals.push(Value::from(Abs::new(vec![], then_app)));
                        vals.push(Value::from(Abs::new(vec![], else_app)));
                        Ok(App::new(p, vals))
                    }),
                )
            }
            Expr::If(c2, t2, e2, _) => {
                // From and/or lowering: share the branch targets through
                // 0-ary join continuations.
                let jt = self.ctx.names.fresh_cont("jt");
                let je = self.ctx.names.fresh_cont("je");
                let inner_then = self.convert_test(
                    t2,
                    App::new(Value::Var(jt), vec![]),
                    App::new(Value::Var(je), vec![]),
                )?;
                let inner_else = self.convert_test(
                    e2,
                    App::new(Value::Var(jt), vec![]),
                    App::new(Value::Var(je), vec![]),
                )?;
                let outer = self.convert_test(c2, inner_then, inner_else)?;
                Ok(App::new(
                    Value::from(Abs::new(vec![jt, je], outer)),
                    vec![
                        Value::from(Abs::new(vec![], then_app)),
                        Value::from(Abs::new(vec![], else_app)),
                    ],
                ))
            }
            other => {
                let btest = self.prim("btest")?;
                self.convert(
                    other,
                    K::Fn(Box::new(move |_cps, v| {
                        Ok(App::new(
                            btest,
                            vec![
                                v,
                                Value::from(Abs::new(vec![], then_app)),
                                Value::from(Abs::new(vec![], else_app)),
                            ],
                        ))
                    })),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::types::{check_module, LowerMode, TypeEnv};
    use tml_core::wellformed::check_abs;

    fn convert(src: &str, mode: LowerMode) -> (Ctx, Vec<CpsResult>) {
        let mods = parse_program(src).unwrap();
        let mut env = TypeEnv::new();
        for f in ["add", "sub", "mul", "div", "mod"] {
            env.insert(
                format!("int.{f}"),
                crate::ast::Type::Fun(
                    vec![crate::ast::Type::Int, crate::ast::Type::Int],
                    Box::new(crate::ast::Type::Int),
                ),
            );
        }
        for f in ["lt", "gt", "le", "ge", "eq", "ne"] {
            env.insert(
                format!("int.{f}"),
                crate::ast::Type::Fun(
                    vec![crate::ast::Type::Int, crate::ast::Type::Int],
                    Box::new(crate::ast::Type::Bool),
                ),
            );
        }
        let (lowered, _) = check_module(&env, &mods[0], mode).unwrap();
        let mut ctx = Ctx::new();
        let results = lowered
            .funs
            .iter()
            .map(|f| convert_fun(&mut ctx, f).unwrap())
            .collect();
        (ctx, results)
    }

    #[test]
    fn simple_function_is_well_formed() {
        let (ctx, rs) = convert(
            "module m export f\nlet f(a: Int): Int = a + 1\nend",
            LowerMode::Direct,
        );
        check_abs(&ctx, &rs[0].abs).unwrap();
        assert!(rs[0].globals.is_empty());
    }

    #[test]
    fn library_mode_produces_global_references() {
        let (ctx, rs) = convert(
            "module m export f\nlet f(a: Int): Int = a + 1 * 2\nend",
            LowerMode::Library,
        );
        check_abs(&ctx, &rs[0].abs).unwrap();
        let names: Vec<&str> = rs[0].globals.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"int.add"), "{names:?}");
        assert!(names.contains(&"int.mul"), "{names:?}");
    }

    #[test]
    fn globals_deduplicated() {
        let (_, rs) = convert(
            "module m export f\nlet f(a: Int): Int = a + a + a\nend",
            LowerMode::Library,
        );
        let adds = rs[0].globals.iter().filter(|(n, _)| n == "int.add").count();
        assert_eq!(adds, 1);
    }

    #[test]
    fn loops_use_y() {
        let (ctx, rs) = convert(
            "module m export f\n\
             let f(n: Int): Int = var s := 0 in \
               (for i = 1 upto n do s := s + i end; s)\n\
             end",
            LowerMode::Direct,
        );
        check_abs(&ctx, &rs[0].abs).unwrap();
        let printed = tml_core::pretty::print_abs(&ctx, &rs[0].abs);
        assert!(printed.contains("(Y"), "{printed}");
    }

    #[test]
    fn while_loops_are_well_formed() {
        let (ctx, rs) = convert(
            "module m export f\n\
             let f(n: Int): Int = var i := 0 in \
               (while i < n do i := i + 1 end; i)\n\
             end",
            LowerMode::Direct,
        );
        check_abs(&ctx, &rs[0].abs).unwrap();
    }

    #[test]
    fn try_swaps_exception_continuation() {
        let (ctx, rs) = convert(
            "module m export f\n\
             let f(a: Int): Int = try (if a < 0 then raise 7 else a end) handle e -> 0 end\n\
             end",
            LowerMode::Direct,
        );
        check_abs(&ctx, &rs[0].abs).unwrap();
    }

    #[test]
    fn tuples_and_projections() {
        let (ctx, rs) = convert(
            "module m export f\nlet f(a: Real, b: Real): Dyn = tuple(a, b).1\nend",
            LowerMode::Direct,
        );
        check_abs(&ctx, &rs[0].abs).unwrap();
        let printed = tml_core::pretty::print_abs(&ctx, &rs[0].abs);
        assert!(printed.contains("vector"), "{printed}");
    }

    #[test]
    fn tail_calls_pass_cc_directly() {
        let (ctx, rs) = convert(
            "module m export f\nlet f(n: Int): Int = f(n)\nend",
            LowerMode::Direct,
        );
        check_abs(&ctx, &rs[0].abs).unwrap();
        // The recursive call must end in (... ce cc), no wrapper cont.
        let printed = tml_core::pretty::print_abs(&ctx, &rs[0].abs);
        assert!(printed.contains("ce_1 cc_2)"), "{printed}");
    }

    #[test]
    fn comparisons_in_value_position_join() {
        let (ctx, rs) = convert(
            "module m export f\nlet f(a: Int): Bool = a < 3\nend",
            LowerMode::Direct,
        );
        check_abs(&ctx, &rs[0].abs).unwrap();
        let printed = tml_core::pretty::print_abs(&ctx, &rs[0].abs);
        assert!(printed.contains("true"), "{printed}");
        assert!(printed.contains("false"), "{printed}");
    }

    #[test]
    fn all_functions_pass_wf_in_both_modes() {
        let src = "module m export fib, sum, abs2\n\
            let fib(n: Int): Int = if n < 2 then n else fib(n - 1) + fib(n - 2) end\n\
            let sum(n: Int): Int = var s := 0 in (for i = 1 upto n do s := s + i end; s)\n\
            let abs2(a: Int): Int = if a < 0 then 0 - a else a end\n\
            end";
        for mode in [LowerMode::Direct, LowerMode::Library] {
            let (ctx, rs) = convert(src, mode);
            for r in &rs {
                check_abs(&ctx, &r.abs).unwrap();
            }
        }
    }
}
