//! The Stanford benchmark suite, re-written in TL.
//!
//! "Performing local program optimizations on standard benchmarks for
//! imperative programs (the Stanford Suite) do not yield a significant
//! speedup … However, a move to dynamic (link-time or runtime) optimization
//! more than doubles the execution speed of the standard benchmarks" —
//! paper §6. These programs are the workload for experiments E1–E3.
//!
//! Each program is a module exporting `main(n: Int): Int` returning a
//! checksum, so correctness is asserted across all compilation modes.

/// One benchmark program.
#[derive(Debug, Clone, Copy)]
pub struct StanfordProgram {
    /// Short name (also the module name).
    pub name: &'static str,
    /// TL source.
    pub src: &'static str,
    /// The qualified entry point.
    pub entry: &'static str,
    /// A small problem size for tests.
    pub test_n: i64,
    /// Expected checksum at `test_n` (golden value, asserted identical in
    /// every compilation mode).
    pub test_expected: i64,
    /// A larger problem size for benchmarking.
    pub bench_n: i64,
}

/// Fibonacci: recursion-heavy, no arrays.
pub const FIB: &str = "
module fib export main
let fib(n: Int): Int = if n < 2 then n else fib(n - 1) + fib(n - 2) end
let main(n: Int): Int = fib(n)
end";

/// Sieve of Eratosthenes: loop- and array-heavy.
pub const SIEVE: &str = "
module sieve export main
let main(n: Int): Int =
  let flags = array.make(n, true) in
  var count := 0 in
  (for i = 2 upto n - 1 do
    if array.get(flags, i) then
      (count := count + 1;
       var j := i + i in
       while j < n do
         (array.set(flags, j, false); j := j + i)
       end)
    else nil end
  end;
  count)
end";

/// Towers of Hanoi: recursion + array side effects.
pub const TOWERS: &str = "
module towers export main
let hanoi(n: Int, src: Int, dst: Int, via: Int, moves: Array): Unit =
  if n == 0 then nil
  else
    (hanoi(n - 1, src, via, dst, moves);
     array.set(moves, 0, array.get(moves, 0) + 1);
     hanoi(n - 1, via, dst, src, moves))
  end
let main(n: Int): Int =
  let moves = array.make(1, 0) in
  (hanoi(n, 1, 3, 2, moves); array.get(moves, 0))
end";

/// Bubble sort over a pseudo-random array.
pub const BUBBLE: &str = "
module bubble export main
let lcg(x: Int): Int = (x * 1103515245 + 12345) % 2147483648
let main(n: Int): Int =
  let a = array.make(n, 0) in
  var seed := 74755 in
  (for i = 0 upto n - 1 do
     (seed := lcg(seed); array.set(a, i, seed % 1000))
   end;
   for i = 0 upto n - 2 do
     for j = 0 upto n - 2 - i do
       if array.get(a, j) > array.get(a, j + 1) then
         let t = array.get(a, j) in
         (array.set(a, j, array.get(a, j + 1)); array.set(a, j + 1, t))
       else nil end
     end
   end;
   array.get(a, 0) + array.get(a, n - 1) * 1000)
end";

/// Quicksort over a pseudo-random array.
pub const QUICK: &str = "
module quick export main
let lcg(x: Int): Int = (x * 1103515245 + 12345) % 2147483648
let qsort(a: Array, lo: Int, hi: Int): Unit =
  if lo < hi then
    let pivot = array.get(a, (lo + hi) / 2) in
    var i := lo in
    var j := hi in
    (while i <= j do
       ((while array.get(a, i) < pivot do i := i + 1 end);
        (while pivot < array.get(a, j) do j := j - 1 end);
        if i <= j then
          let t = array.get(a, i) in
          (array.set(a, i, array.get(a, j));
           array.set(a, j, t);
           i := i + 1;
           j := j - 1)
        else nil end)
     end;
     qsort(a, lo, j);
     qsort(a, i, hi))
  else nil end
let main(n: Int): Int =
  let a = array.make(n, 0) in
  var seed := 74755 in
  (for i = 0 upto n - 1 do
     (seed := lcg(seed); array.set(a, i, seed % 100000))
   end;
   qsort(a, 0, n - 1);
   array.get(a, 0) + array.get(a, n / 2) + array.get(a, n - 1))
end";

/// N-queens solution count: branchy recursion over boolean arrays.
pub const QUEENS: &str = "
module queens export main
let solve(n: Int, row: Int, cols: Array, d1: Array, d2: Array): Int =
  if row == n then 1
  else
    var count := 0 in
    (for c = 0 upto n - 1 do
       if array.get(cols, c) then nil else
         if array.get(d1, row + c) then nil else
           if array.get(d2, row - c + n - 1) then nil else
             (array.set(cols, c, true);
              array.set(d1, row + c, true);
              array.set(d2, row - c + n - 1, true);
              count := count + solve(n, row + 1, cols, d1, d2);
              array.set(cols, c, false);
              array.set(d1, row + c, false);
              array.set(d2, row - c + n - 1, false))
           end
         end
       end
     end;
     count)
  end
let main(n: Int): Int =
  solve(n, 0, array.make(n, false), array.make(2 * n, false), array.make(2 * n, false))
end";

/// Integer matrix multiplication: tight arithmetic loops.
pub const INTMM: &str = "
module intmm export main
let main(n: Int): Int =
  let a = array.make(n * n, 0) in
  let b = array.make(n * n, 0) in
  let c = array.make(n * n, 0) in
  (for i = 0 upto n * n - 1 do
     (array.set(a, i, i % 7 + 1); array.set(b, i, i % 11 + 1))
   end;
   for i = 0 upto n - 1 do
     for j = 0 upto n - 1 do
       var s := 0 in
       (for q = 0 upto n - 1 do
          s := s + array.get(a, i * n + q) * array.get(b, q * n + j)
        end;
        array.set(c, i * n + j, s))
     end
   end;
   array.get(c, 0) + array.get(c, n * n - 1))
end";

/// Permutation generation (the Stanford `Perm` kernel).
pub const PERM: &str = "
module perm export main
let swap(a: Array, i: Int, j: Int): Unit =
  let t = array.get(a, i) in
  (array.set(a, i, array.get(a, j)); array.set(a, j, t))
let permute(a: Array, n: Int, cnt: Array): Unit =
  if n == 0 then
    array.set(cnt, 0, array.get(cnt, 0) + 1)
  else
    (permute(a, n - 1, cnt);
     for i = 0 upto n - 2 do
       (swap(a, n - 1, i); permute(a, n - 1, cnt); swap(a, n - 1, i))
     end)
  end
let main(n: Int): Int =
  let a = array.make(n, 0) in
  let cnt = array.make(1, 0) in
  (for i = 0 upto n - 1 do array.set(a, i, i) end;
   permute(a, n, cnt);
   array.get(cnt, 0))
end";

/// Binary tree insertion and counting (pointer-chasing through the store).
pub const TREE: &str = "
module tree export main
let insert(node: Dyn, v: Int): Dyn =
  if node == nil then
    let n = array.make(3, nil) in
    (array.set(n, 0, v); n)
  else
    (if v < array.get(node, 0) then
       array.set(node, 1, insert(array.get(node, 1), v))
     else
       array.set(node, 2, insert(array.get(node, 2), v))
     end;
     node)
  end
let count(node: Dyn): Int =
  if node == nil then 0
  else 1 + count(array.get(node, 1)) + count(array.get(node, 2)) end
let lcg(x: Int): Int = (x * 1103515245 + 12345) % 2147483648
let main(n: Int): Int =
  var t := nil in
  var seed := 74755 in
  (for i = 1 upto n do
     (seed := lcg(seed); t := insert(t, seed % 10000))
   end;
   count(t))
end";

/// Mandelbrot membership count on an n×n grid: real-arithmetic heavy
/// (the Stanford suite's floating-point programs play this role).
pub const MANDEL: &str = "
module mandel export main
let main(n: Int): Int =
  var count := 0 in
  (for py = 0 upto n - 1 do
     for px = 0 upto n - 1 do
       let cx = real.ofint(px) * 3.5 / real.ofint(n) - 2.5 in
       let cy = real.ofint(py) * 2.0 / real.ofint(n) - 1.0 in
       var x := 0.0 in
       var y := 0.0 in
       var i := 0 in
       (while x * x + y * y <= 4.0 and i < 16 do
          let t = x * x - y * y + cx in
          (y := 2.0 * x * y + cy;
           x := t;
           i := i + 1)
        end;
        if i == 16 then count := count + 1 else nil end)
     end
   end;
   count)
end";

/// The whole suite with golden checksums (established once in `Direct`
/// mode and asserted identical in every other mode).
pub fn suite() -> Vec<StanfordProgram> {
    vec![
        StanfordProgram {
            name: "fib",
            src: FIB,
            entry: "fib.main",
            test_n: 15,
            test_expected: 610,
            bench_n: 18,
        },
        StanfordProgram {
            name: "sieve",
            src: SIEVE,
            entry: "sieve.main",
            test_n: 100,
            test_expected: 25,
            bench_n: 2000,
        },
        StanfordProgram {
            name: "towers",
            src: TOWERS,
            entry: "towers.main",
            test_n: 10,
            test_expected: 1023,
            bench_n: 12,
        },
        StanfordProgram {
            name: "bubble",
            src: BUBBLE,
            entry: "bubble.main",
            test_n: 50,
            test_expected: -1, // computed by the golden test below
            bench_n: 120,
        },
        StanfordProgram {
            name: "quick",
            src: QUICK,
            entry: "quick.main",
            test_n: 60,
            test_expected: -1,
            bench_n: 600,
        },
        StanfordProgram {
            name: "queens",
            src: QUEENS,
            entry: "queens.main",
            test_n: 6,
            test_expected: 4,
            bench_n: 7,
        },
        StanfordProgram {
            name: "intmm",
            src: INTMM,
            entry: "intmm.main",
            test_n: 8,
            test_expected: -1,
            bench_n: 18,
        },
        StanfordProgram {
            name: "perm",
            src: PERM,
            entry: "perm.main",
            test_n: 5,
            test_expected: -1,
            bench_n: 6,
        },
        StanfordProgram {
            name: "tree",
            src: TREE,
            entry: "tree.main",
            test_n: 60,
            test_expected: -1,
            bench_n: 400,
        },
        StanfordProgram {
            name: "mandel",
            src: MANDEL,
            entry: "mandel.main",
            test_n: 12,
            test_expected: -1,
            bench_n: 40,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{OptMode, Session, SessionConfig};
    use crate::types::LowerMode;
    use tml_vm::RVal;

    fn run_program(p: &StanfordProgram, lower: LowerMode, opt: OptMode, n: i64) -> i64 {
        let mut s = Session::new(SessionConfig {
            lower,
            opt,
            ..Default::default()
        })
        .unwrap();
        s.load_str(p.src)
            .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        let r = s
            .call(p.entry, vec![RVal::Int(n)])
            .unwrap_or_else(|e| panic!("{}: {e}", p.name));
        match r.result {
            RVal::Int(v) => v,
            other => panic!("{}: non-integer checksum {other:?}", p.name),
        }
    }

    #[test]
    fn known_checksums_hold() {
        for p in suite() {
            if p.test_expected >= 0 {
                let got = run_program(&p, LowerMode::Direct, OptMode::None, p.test_n);
                assert_eq!(got, p.test_expected, "{}", p.name);
            }
        }
    }

    #[test]
    fn all_modes_agree_on_every_program() {
        for p in suite() {
            let golden = run_program(&p, LowerMode::Direct, OptMode::None, p.test_n);
            for lower in [LowerMode::Direct, LowerMode::Library] {
                for opt in [OptMode::None, OptMode::Local] {
                    let got = run_program(&p, lower, opt, p.test_n);
                    assert_eq!(got, golden, "{} in {lower:?}/{opt:?}", p.name);
                }
            }
        }
    }

    #[test]
    fn sorting_programs_actually_sort() {
        // bubble and quick produce checksums consistent with sortedness:
        // first element <= last element.
        for name in ["bubble", "quick"] {
            let p = suite().into_iter().find(|p| p.name == name).unwrap();
            let checksum = run_program(&p, LowerMode::Direct, OptMode::None, p.test_n);
            assert!(checksum > 0, "{name} checksum {checksum}");
        }
    }

    #[test]
    fn perm_counts_factorial_leaves() {
        // permute(n) visits 1 + sum over levels; count of leaf visits for
        // n=4 must be 4! = 24? The Stanford kernel counts every call at
        // n == 0: that is exactly the number of generated permutations.
        let p = suite().into_iter().find(|p| p.name == "perm").unwrap();
        let got = run_program(&p, LowerMode::Direct, OptMode::None, 4);
        assert_eq!(got, 24);
    }

    #[test]
    fn queens_eight_is_92() {
        let p = suite().into_iter().find(|p| p.name == "queens").unwrap();
        let got = run_program(&p, LowerMode::Direct, OptMode::None, 8);
        assert_eq!(got, 92);
    }

    #[test]
    fn towers_matches_closed_form() {
        let p = suite().into_iter().find(|p| p.name == "towers").unwrap();
        for n in [3, 7, 11] {
            let got = run_program(&p, LowerMode::Direct, OptMode::None, n);
            assert_eq!(got, (1 << n) - 1, "n={n}");
        }
    }
}
