//! The TL abstract syntax tree.

use crate::error::Pos;

/// A TL type annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Type {
    /// 64-bit integer.
    Int,
    /// 64-bit real.
    Real,
    /// Boolean.
    Bool,
    /// Byte character.
    Char,
    /// Immutable string.
    Str,
    /// The unit type (written `Unit`; value `nil`).
    Unit,
    /// The dynamic type: unifies with everything (tuples project to it).
    Dyn,
    /// An opaque tuple (record representation).
    Tuple,
    /// A mutable array.
    Array,
    /// A relation (bulk data, `tml-query`).
    Rel,
    /// A function; parameter and result types.
    Fun(Vec<Type>, Box<Type>),
}

impl Type {
    /// `true` if values of `self` can flow where `other` is expected.
    pub fn flows_to(&self, other: &Type) -> bool {
        match (self, other) {
            (Type::Dyn, _) | (_, Type::Dyn) => true,
            (Type::Fun(a, r), Type::Fun(b, s)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| y.flows_to(x)) && r.flows_to(s)
            }
            _ => self == other,
        }
    }
}

impl std::fmt::Display for Type {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Type::Int => write!(f, "Int"),
            Type::Real => write!(f, "Real"),
            Type::Bool => write!(f, "Bool"),
            Type::Char => write!(f, "Char"),
            Type::Str => write!(f, "Str"),
            Type::Unit => write!(f, "Unit"),
            Type::Dyn => write!(f, "Dyn"),
            Type::Tuple => write!(f, "Tuple"),
            Type::Array => write!(f, "Array"),
            Type::Rel => write!(f, "Rel"),
            Type::Fun(ps, r) => {
                write!(f, "Fun(")?;
                for (i, p) in ps.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{p}")?;
                }
                write!(f, "): {r}")
            }
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Lt,
    Gt,
    Le,
    Ge,
    Eq,
    Ne,
    And,
    Or,
}

impl BinOp {
    /// `true` for comparison operators (result `Bool`).
    pub fn is_cmp(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Gt | BinOp::Le | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// `true` for the short-circuit logical operators.
    pub fn is_logic(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// A TL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Real literal.
    Real(f64),
    /// Character literal.
    Char(u8),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// The unit literal `nil`.
    Nil,
    /// A variable or global reference (possibly qualified, `mod.name`).
    Var(String, Pos),
    /// Function call.
    Call(Box<Expr>, Vec<Expr>, Pos),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>, Pos),
    /// Unary minus.
    Neg(Box<Expr>, Pos),
    /// Logical negation.
    Not(Box<Expr>, Pos),
    /// Conditional; `else` is mandatory.
    If(Box<Expr>, Box<Expr>, Box<Expr>, Pos),
    /// While loop (value `nil`).
    While(Box<Expr>, Box<Expr>, Pos),
    /// `for i = a upto b do body end` (value `nil`).
    For(String, Box<Expr>, Box<Expr>, Box<Expr>, Pos),
    /// Immutable binding: `let x = e in body`.
    Let(String, Box<Expr>, Box<Expr>, Pos),
    /// Mutable binding: `var x := e in body`.
    VarDecl(String, Box<Expr>, Box<Expr>, Pos),
    /// Assignment to a mutable binding (value `nil`).
    Assign(String, Box<Expr>, Pos),
    /// Sequencing: `e1; e2`.
    Seq(Box<Expr>, Box<Expr>),
    /// Tuple construction.
    Tuple(Vec<Expr>, Pos),
    /// Tuple projection `e.N`.
    Proj(Box<Expr>, usize, Pos),
    /// Raise an exception.
    Raise(Box<Expr>, Pos),
    /// `try e handle x -> h end`.
    Try(Box<Expr>, String, Box<Expr>, Pos),
    /// Direct primitive application: `prim "+"(a, b)`. Used by the standard
    /// library to bottom out; not ordinarily written by applications.
    Prim(String, Vec<Expr>, Pos),
    /// Embedded query: `select <target> from <var> in <range> [where <pred>]`.
    /// When the target is the bare range variable the query is a pure
    /// selection; otherwise a selection followed by a projection — the
    /// paper's `select Target(x) from Rel x where Pred(x)` (§4.2).
    Select {
        /// Projection target (an expression over the range variable).
        target: Box<Expr>,
        /// Range variable name.
        var: String,
        /// Range relation.
        range: Box<Expr>,
        /// Optional selection predicate.
        pred: Option<Box<Expr>>,
        /// Source position.
        pos: Pos,
    },
    /// Embedded existential query: `exists <var> in <range> where <pred>`.
    Exists {
        /// Range variable name.
        var: String,
        /// Range relation.
        range: Box<Expr>,
        /// The predicate.
        pred: Box<Expr>,
        /// Source position.
        pos: Pos,
    },
}

impl Expr {
    /// Best-effort source position, for diagnostics.
    pub fn pos(&self) -> Pos {
        match self {
            Expr::Var(_, p)
            | Expr::Call(_, _, p)
            | Expr::Bin(_, _, _, p)
            | Expr::Neg(_, p)
            | Expr::Not(_, p)
            | Expr::If(_, _, _, p)
            | Expr::While(_, _, p)
            | Expr::For(_, _, _, _, p)
            | Expr::Let(_, _, _, p)
            | Expr::VarDecl(_, _, _, p)
            | Expr::Assign(_, _, p)
            | Expr::Tuple(_, p)
            | Expr::Proj(_, _, p)
            | Expr::Raise(_, p)
            | Expr::Try(_, _, _, p)
            | Expr::Prim(_, _, p) => *p,
            Expr::Select { pos, .. } | Expr::Exists { pos, .. } => *pos,
            Expr::Seq(a, _) => a.pos(),
            _ => Pos::default(),
        }
    }
}

/// A function parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
}

/// A module-level function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct FunDef {
    /// Function name (unqualified).
    pub name: String,
    /// Parameters.
    pub params: Vec<Param>,
    /// Declared result type.
    pub ret: Type,
    /// The body expression.
    pub body: Expr,
    /// Position of the definition.
    pub pos: Pos,
}

/// A module definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Exported function names.
    pub exports: Vec<String>,
    /// Function definitions.
    pub funs: Vec<FunDef>,
    /// Position of the `module` keyword.
    pub pos: Pos,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dyn_flows_everywhere() {
        assert!(Type::Dyn.flows_to(&Type::Int));
        assert!(Type::Int.flows_to(&Type::Dyn));
        assert!(!Type::Int.flows_to(&Type::Real));
        assert!(Type::Int.flows_to(&Type::Int));
    }

    #[test]
    fn fun_types_contravariant() {
        let f = Type::Fun(vec![Type::Dyn], Box::new(Type::Int));
        let g = Type::Fun(vec![Type::Int], Box::new(Type::Dyn));
        assert!(f.flows_to(&g));
    }

    #[test]
    fn op_classification() {
        assert!(BinOp::Lt.is_cmp());
        assert!(!BinOp::Add.is_cmp());
        assert!(BinOp::And.is_logic());
    }

    #[test]
    fn type_display() {
        let f = Type::Fun(vec![Type::Int, Type::Real], Box::new(Type::Bool));
        assert_eq!(f.to_string(), "Fun(Int, Real): Bool");
    }
}
