//! # tml-lang — the TL front end
//!
//! A compact reconstruction of the Tycoon language **TL** (Matthes/Schmidt
//! 1992) sufficient to reproduce the paper's experiments: a statically
//! scoped, module-structured, imperative language with first-class
//! functions, tuples, arrays and exceptions, compiled to TML by CPS
//! conversion.
//!
//! Two properties of the real Tycoon system are preserved deliberately
//! because the paper's evaluation (§6) depends on them:
//!
//! 1. **Everything is a library call.** "Even operations on integers and
//!    arrays are factored out into dynamically bound libraries and
//!    therefore not amenable to local optimization." `a + b` compiles to a
//!    call through the global binding `int.add`, whose value is only known
//!    at link time. (A `direct_prims` switch compiles operators straight to
//!    primitives, for ablation.)
//! 2. **Modules are first-class and separately compiled.** Every exported
//!    function becomes a persistent closure in the store carrying (a) the
//!    R-value bindings of its free (global) identifiers and (b) its PTML
//!    attachment — the inputs the reflective optimizer (`tml-reflect`)
//!    needs to optimize across abstraction barriers.
//!
//! The [`session::Session`] type ties everything together: it owns the
//! TML context, the abstract machine, the store and the global binding
//! environment, and exposes `load_module` / `call`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod cps;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod session;
pub mod stanford;
pub mod stdlib;
pub mod types;

pub use error::LangError;
pub use session::{OptMode, Session, SessionConfig};
