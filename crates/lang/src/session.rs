//! The session: compilation, linking, the persistent store and execution
//! tied together (the paper's figure 3 architecture).
//!
//! Loading a module runs the full pipeline per function:
//!
//! ```text
//! parse → check/lower → CPS convert → (optional local optimization)
//!       → PTML encode (attached to the function, paper §4)
//!       → bytecode compile
//!       → persistent closure with R-value bindings, linked two-phase
//!         (so intra-module recursion resolves)
//! ```
//!
//! The session owns the *global binding environment* mapping fully
//! qualified names (`int.add`, `complex.x`) to store values; those are
//! exactly the R-value bindings recorded in each closure.

use crate::ast::Type;
use crate::cps::convert_fun;
use crate::error::LangError;
use crate::parser::parse_program;
use crate::stdlib::STDLIB_SRC;
use crate::types::{check_module, LowerMode, TypeEnv};
use std::collections::HashMap;
use tml_core::{Ctx, Oid, VarId};
use tml_opt::{optimize_abs, OptOptions};
use tml_store::ptml::encode_abs;
use tml_store::{ClosureObj, ModuleObj, Object, SVal, Store, StoreAccess};
use tml_vm::machine::ExecStats;
use tml_vm::{Machine, RVal, Vm};

/// Static optimization applied at module load time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptMode {
    /// No optimization (raw CPS conversion output).
    None,
    /// Local compile-time optimization: the TML optimizer runs on each
    /// function in isolation, without binding information — the paper's E1
    /// configuration.
    Local,
}

/// Session configuration.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// Operator lowering (library calls vs direct primitives).
    pub lower: LowerMode,
    /// Static optimization mode.
    pub opt: OptMode,
    /// Optimizer options for both static and reflective optimization.
    pub opt_options: OptOptions,
    /// Attach PTML to compiled functions (the paper's default; switching it
    /// off halves the persistent code size — experiment E3).
    pub attach_ptml: bool,
    /// Instruction budget per [`Session::call`].
    pub fuel: u64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            lower: LowerMode::Library,
            opt: OptMode::None,
            opt_options: OptOptions::default(),
            attach_ptml: true,
            fuel: 2_000_000_000,
        }
    }
}

/// The result of a [`Session::call`].
#[derive(Debug, Clone)]
pub struct CallResult {
    /// The function's result.
    pub result: RVal,
    /// Machine counters for the call.
    pub stats: ExecStats,
    /// `io.print` output produced during the call.
    pub output: Vec<String>,
}

/// A loaded, linked, runnable TL universe.
///
/// Generic over the store-access seam: the default `S = Store` is the
/// plain in-memory heap, while `S = DurableStore` gives a durable
/// session whose every store mutation (module linking, execution,
/// garbage collection) is write-ahead logged and survives a crash.
pub struct Session<S: StoreAccess = Store> {
    /// The TML context.
    pub ctx: Ctx,
    /// The abstract machine (code table + extension primitives).
    pub vm: Vm,
    /// The persistent object store, behind the access seam.
    pub store: S,
    /// Global type environment.
    pub types: TypeEnv,
    /// Global binding environment: fully qualified name → store value.
    pub globals: HashMap<String, SVal>,
    /// Configuration.
    pub config: SessionConfig,
    /// Names of loaded modules, in load order.
    pub modules: Vec<String>,
}

impl Session {
    /// Create a session and load the standard library.
    pub fn new(config: SessionConfig) -> Result<Session, LangError> {
        Session::with_registry(config, tml_core::Registry::standard())
    }

    /// Create a session whose primitive world is an explicitly built
    /// [`tml_core::Registry`] — the single construction path shared with
    /// the image loader and the `tmlc` driver. Primitives registered
    /// through the registry's public API behave exactly like built-ins in
    /// every layer (compile, optimize, persist, execute).
    pub fn with_registry(
        config: SessionConfig,
        registry: tml_core::Registry,
    ) -> Result<Session, LangError> {
        Session::on_store(Store::new(), config, registry)
    }

    /// Shorthand for a default-configured session.
    pub fn default_session() -> Result<Session, LangError> {
        Session::new(SessionConfig::default())
    }
}

impl<S: StoreAccess> Session<S> {
    /// Create a session over an explicit store backend (fresh — the
    /// standard library is loaded through the seam, so on a durable
    /// backend it is logged like any other module). Reopening an
    /// existing image goes through `tml-reflect`'s session rebuild
    /// instead, which relinks persistent closures rather than reloading
    /// sources.
    pub fn on_store(
        store: S,
        config: SessionConfig,
        registry: tml_core::Registry,
    ) -> Result<Session<S>, LangError> {
        let mut s = Session {
            ctx: Ctx::from_registry(registry),
            vm: Vm::new(),
            store,
            types: TypeEnv::new(),
            globals: HashMap::new(),
            config,
            modules: Vec::new(),
        };
        s.load_str(STDLIB_SRC)?;
        Ok(s)
    }

    /// Parse and load every module in `src`.
    pub fn load_str(&mut self, src: &str) -> Result<(), LangError> {
        for module in parse_program(src)? {
            self.load_module(&module)?;
        }
        Ok(())
    }

    fn load_module(&mut self, module: &crate::ast::Module) -> Result<(), LangError> {
        if self.modules.iter().any(|m| m == &module.name) {
            return Err(LangError::DuplicateModule(module.name.clone()));
        }
        let (lowered, export_types) = check_module(&self.types, module, self.config.lower)?;

        // Compile every function.
        struct Pending {
            full_name: String,
            block: u32,
            captures: Vec<String>,
            ptml: Option<Oid>,
        }
        let mut pending = Vec::with_capacity(lowered.funs.len());
        for fun in &lowered.funs {
            let cps = convert_fun(&mut self.ctx, fun)?;
            let mut abs = cps.abs;
            if self.config.opt == OptMode::Local {
                let (optimized, _) = optimize_abs(&mut self.ctx, abs, &self.config.opt_options);
                abs = optimized;
            }
            let ptml = if self.config.attach_ptml {
                let bytes = encode_abs(&self.ctx, &abs);
                Some(self.store.alloc(Object::Ptml(bytes))?)
            } else {
                None
            };
            let compiled = self
                .vm
                .compile_proc(&self.ctx, &abs)
                .map_err(|e| LangError::Compile(e.to_string()))?;
            let by_var: HashMap<VarId, &str> =
                cps.globals.iter().map(|(n, v)| (*v, n.as_str())).collect();
            let captures = compiled
                .captures
                .iter()
                .map(|v| {
                    by_var.get(v).map(|n| n.to_string()).ok_or_else(|| {
                        LangError::Compile(format!(
                            "capture {} is not a known global",
                            self.ctx.names.display(*v)
                        ))
                    })
                })
                .collect::<Result<Vec<_>, _>>()?;
            pending.push(Pending {
                full_name: format!("{}.{}", module.name, fun.name),
                block: compiled.block,
                captures,
                ptml,
            });
        }

        // Phase 1: allocate closures so intra-module references resolve.
        let mut local: HashMap<String, SVal> = HashMap::new();
        let mut oids = Vec::with_capacity(pending.len());
        for p in &pending {
            let oid = self.store.alloc(Object::Closure(ClosureObj {
                code: p.block,
                env: Vec::new(),
                bindings: Vec::new(),
                ptml: p.ptml,
            }))?;
            local.insert(p.full_name.clone(), SVal::Ref(oid));
            oids.push(oid);
        }
        // Phase 2: resolve R-value bindings and patch environments.
        for (p, &oid) in pending.iter().zip(&oids) {
            let mut env = Vec::with_capacity(p.captures.len());
            let mut bindings = Vec::with_capacity(p.captures.len());
            for name in &p.captures {
                let val = local
                    .get(name)
                    .or_else(|| self.globals.get(name))
                    .cloned()
                    .ok_or_else(|| LangError::Unresolved(name.clone()))?;
                env.push(val.clone());
                bindings.push((name.clone(), val));
            }
            self.store.mutate(oid, &mut |obj| {
                match obj {
                    Object::Closure(c) => {
                        c.env = env.clone();
                        c.bindings = bindings.clone();
                    }
                    _ => unreachable!("just allocated"),
                }
                Ok(())
            })?;
        }

        // Module record and global registration (exports only).
        let mut record = ModuleObj {
            name: module.name.clone(),
            exports: Default::default(),
        };
        for e in &module.exports {
            let full = format!("{}.{e}", module.name);
            let val = local.get(&full).expect("exports checked").clone();
            record.exports.insert(e.clone(), val.clone());
            self.globals.insert(full, val);
        }
        let module_oid = self.store.alloc(Object::Module(record))?;
        self.store.set_root(&module.name, module_oid)?;
        self.globals
            .insert(module.name.clone(), SVal::Ref(module_oid));
        self.types.insert(module.name.clone(), Type::Dyn);
        for (name, ty) in export_types {
            self.types.insert(name, ty);
        }
        self.modules.push(module.name.clone());
        Ok(())
    }

    /// Look up a global binding.
    pub fn global(&self, name: &str) -> Option<&SVal> {
        self.globals.get(name)
    }

    /// Call a loaded function (by qualified name) with the given arguments.
    pub fn call(&mut self, name: &str, args: Vec<RVal>) -> Result<CallResult, LangError> {
        let target = self
            .globals
            .get(name)
            .cloned()
            .ok_or_else(|| LangError::Unresolved(name.to_string()))?;
        self.call_value(RVal::from_sval(&target), args)
    }

    /// Call an arbitrary procedure value.
    pub fn call_value(&mut self, target: RVal, args: Vec<RVal>) -> Result<CallResult, LangError> {
        let mut machine = Machine::new(
            &self.vm.code,
            &self.vm.externs,
            &mut self.store,
            self.config.fuel,
        );
        match machine.call_value_checked(target, args) {
            Ok(Ok(result)) => Ok(CallResult {
                result,
                stats: machine.stats,
                output: machine.output().to_vec(),
            }),
            Ok(Err(exc)) => Err(LangError::Exception(format!("{exc:?}"))),
            // Transaction aborts stay typed: the caller (server executor,
            // txn layer) matches on the StoreError to decide whether to
            // retry the request, so they must not be flattened into the
            // stringly Exception channel.
            Err(tml_vm::machine::VmError::Aborted(e)) => Err(LangError::Store(e)),
            // Other machine-level failures keep their historical shape:
            // a TML exception string, as the flattening wrapper produced.
            Err(e) => Err(LangError::Exception(format!(
                "{:?}",
                RVal::Str(format!("vm:{e}").into())
            ))),
        }
    }

    /// Collect store garbage, rooting the session's global bindings in
    /// addition to the store's named roots. On a durable backend every
    /// reclaimed object is logged as a free, so the collection survives
    /// crash recovery.
    pub fn collect_garbage(&mut self) -> Result<tml_store::gc::GcStats, LangError> {
        let extra: Vec<tml_core::Oid> =
            self.globals.values().filter_map(SVal::as_ref_oid).collect();
        Ok(self.store.collect(&extra)?)
    }

    /// Total approximate size of the executable code generated so far.
    pub fn code_bytes(&self) -> usize {
        self.vm.code.byte_size()
    }

    /// Total bytes of PTML attachments in the store.
    pub fn ptml_bytes(&self) -> usize {
        self.store.stats().ptml_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stdlib::stdlib_exports;

    fn session(lower: LowerMode, opt: OptMode) -> Session {
        Session::new(SessionConfig {
            lower,
            opt,
            ..Default::default()
        })
        .unwrap()
    }

    #[test]
    fn stdlib_loads_and_links() {
        let s = Session::default_session().unwrap();
        for (name, _) in stdlib_exports() {
            assert!(s.global(name).is_some(), "missing {name}");
        }
        assert!(s.store.root("int").is_some());
    }

    #[test]
    fn stdlib_functions_execute() {
        let mut s = Session::default_session().unwrap();
        let r = s
            .call("int.add", vec![RVal::Int(2), RVal::Int(40)])
            .unwrap();
        assert_eq!(r.result, RVal::Int(42));
        let r = s
            .call("int.max", vec![RVal::Int(2), RVal::Int(40)])
            .unwrap();
        assert_eq!(r.result, RVal::Int(40));
        let r = s.call("real.sqrt", vec![RVal::Real(25.0)]).unwrap();
        assert_eq!(r.result, RVal::Real(5.0));
    }

    #[test]
    fn user_module_with_operators() {
        for lower in [LowerMode::Library, LowerMode::Direct] {
            let mut s = session(lower, OptMode::None);
            s.load_str("module m export sq\nlet sq(a: Int): Int = a * a + 1\nend")
                .unwrap();
            let r = s.call("m.sq", vec![RVal::Int(6)]).unwrap();
            assert_eq!(r.result, RVal::Int(37), "mode {lower:?}");
        }
    }

    #[test]
    fn library_mode_costs_more_instructions_than_direct() {
        let mut lib = session(LowerMode::Library, OptMode::None);
        let mut dir = session(LowerMode::Direct, OptMode::None);
        let src = "module m export f\n\
                   let f(n: Int): Int = var s := 0 in \
                     (var i := 0 in while i < n do (s := s + i; i := i + 1) end; s)\n\
                   end";
        lib.load_str(src).unwrap();
        dir.load_str(src).unwrap();
        let rl = lib.call("m.f", vec![RVal::Int(200)]).unwrap();
        let rd = dir.call("m.f", vec![RVal::Int(200)]).unwrap();
        assert_eq!(rl.result, rd.result);
        // This loop mixes library calls with direct cell operations, so the
        // gap is below the suite-wide ≥2× (arithmetic-dominated programs
        // like fib exceed it; see the E1/E2 experiments).
        assert!(
            rl.stats.instrs * 10 > rd.stats.instrs * 14,
            "library {} vs direct {} instructions",
            rl.stats.instrs,
            rd.stats.instrs
        );
    }

    #[test]
    fn recursion_and_conditionals() {
        let mut s = Session::default_session().unwrap();
        s.load_str(
            "module m export fib\n\
             let fib(n: Int): Int = if n < 2 then n else fib(n - 1) + fib(n - 2) end\n\
             end",
        )
        .unwrap();
        let r = s.call("m.fib", vec![RVal::Int(15)]).unwrap();
        assert_eq!(r.result, RVal::Int(610));
    }

    #[test]
    fn exceptions_surface_and_are_handled() {
        let mut s = Session::default_session().unwrap();
        s.load_str(
            "module m export boom, safe\n\
             let boom(a: Int): Int = if a < 0 then raise 99 else a end\n\
             let safe(a: Int): Int = try boom(a) handle e -> 0 - 1 end\n\
             end",
        )
        .unwrap();
        let ok = s.call("m.boom", vec![RVal::Int(5)]).unwrap();
        assert_eq!(ok.result, RVal::Int(5));
        let err = s.call("m.boom", vec![RVal::Int(-5)]);
        assert!(matches!(err, Err(LangError::Exception(m)) if m.contains("99")));
        let handled = s.call("m.safe", vec![RVal::Int(-5)]).unwrap();
        assert_eq!(handled.result, RVal::Int(-1));
    }

    #[test]
    fn division_by_zero_is_catchable() {
        let mut s = Session::default_session().unwrap();
        s.load_str(
            "module m export f\n\
             let f(a: Int): Int = try 10 / a handle e -> 0 - 7 end\n\
             end",
        )
        .unwrap();
        assert_eq!(
            s.call("m.f", vec![RVal::Int(2)]).unwrap().result,
            RVal::Int(5)
        );
        assert_eq!(
            s.call("m.f", vec![RVal::Int(0)]).unwrap().result,
            RVal::Int(-7)
        );
    }

    #[test]
    fn closures_carry_ptml_and_bindings() {
        let s = Session::default_session().unwrap();
        let SVal::Ref(oid) = s.global("int.min").unwrap() else {
            panic!("expected ref");
        };
        let Object::Closure(c) = s.store.get(*oid).unwrap() else {
            panic!("expected closure");
        };
        assert!(c.ptml.is_some());
        // int.min calls int.lt — recorded as an R-value binding.
        assert!(
            c.bindings.iter().any(|(n, _)| n == "int.lt"),
            "{:?}",
            c.bindings
        );
    }

    #[test]
    fn ptml_can_be_disabled() {
        let s = Session::new(SessionConfig {
            attach_ptml: false,
            ..Default::default()
        })
        .unwrap();
        assert_eq!(s.ptml_bytes(), 0);
        assert!(s.code_bytes() > 0);
    }

    #[test]
    fn duplicate_module_rejected() {
        let mut s = Session::default_session().unwrap();
        let src = "module m export f\nlet f(a: Int): Int = a\nend";
        s.load_str(src).unwrap();
        assert!(matches!(
            s.load_str(src),
            Err(LangError::DuplicateModule(_))
        ));
    }

    #[test]
    fn unresolved_global_rejected_at_type_time() {
        let mut s = Session::default_session().unwrap();
        let src = "module m export f\nlet f(a: Int): Int = ghost.fn(a)\nend";
        assert!(s.load_str(src).is_err());
    }

    #[test]
    fn loops_and_mutable_state() {
        let mut s = Session::default_session().unwrap();
        s.load_str(
            "module m export sum\n\
             let sum(n: Int): Int = var s := 0 in \
               (for i = 1 upto n do s := s + i end; s)\n\
             end",
        )
        .unwrap();
        let r = s.call("m.sum", vec![RVal::Int(100)]).unwrap();
        assert_eq!(r.result, RVal::Int(5050));
    }

    #[test]
    fn print_output_captured() {
        let mut s = Session::default_session().unwrap();
        s.load_str("module m export f\nlet f(a: Int): Unit = io.print(a)\nend")
            .unwrap();
        let r = s.call("m.f", vec![RVal::Int(7)]).unwrap();
        assert_eq!(r.output, vec!["7"]);
    }

    #[test]
    fn local_static_optimization_keeps_results() {
        let src = "module m export f\n\
                   let f(n: Int): Int = (1 + 2) * n + (10 / 2)\n\
                   end";
        let mut plain = session(LowerMode::Library, OptMode::None);
        let mut opt = session(LowerMode::Library, OptMode::Local);
        plain.load_str(src).unwrap();
        opt.load_str(src).unwrap();
        let a = plain.call("m.f", vec![RVal::Int(9)]).unwrap();
        let b = opt.call("m.f", vec![RVal::Int(9)]).unwrap();
        assert_eq!(a.result, b.result);
        assert_eq!(a.result, RVal::Int(32));
    }

    #[test]
    fn garbage_collection_keeps_sessions_runnable() {
        let mut s = Session::default_session().unwrap();
        s.load_str(
            "module m export sum\n\
             let sum(n: Int): Int = var s := 0 in \
               (for i = 1 upto n do s := s + i end; s)\n\
             end",
        )
        .unwrap();
        // Loop entries allocate persistent closure groups; after the call
        // they are garbage.
        let r1 = s.call("m.sum", vec![RVal::Int(50)]).unwrap();
        let before = s.store.live();
        let stats = s.collect_garbage().unwrap();
        assert!(stats.freed > 0, "loop closures should be collected");
        assert!(s.store.live() < before);
        // Everything still runs after collection.
        let r2 = s.call("m.sum", vec![RVal::Int(50)]).unwrap();
        assert_eq!(r1.result, r2.result);
    }

    #[test]
    fn higher_order_functions() {
        let mut s = Session::default_session().unwrap();
        s.load_str(
            "module m export twice, inc, go\n\
             let inc(x: Int): Int = x + 1\n\
             let twice(f: Fun(Int): Int, x: Int): Int = f(f(x))\n\
             let go(x: Int): Int = twice(inc, x)\n\
             end",
        )
        .unwrap();
        let r = s.call("m.go", vec![RVal::Int(40)]).unwrap();
        assert_eq!(r.result, RVal::Int(42));
    }
}
