//! A minimal JSON writer.
//!
//! The workspace is dependency-free by policy, so the export schema is
//! produced by hand. Only the small surface the trace layer needs is
//! implemented: objects, arrays, string/number/bool fields, with full
//! string escaping.

/// Incremental JSON writer over an owned `String`.
#[derive(Debug, Default)]
pub struct JsonWriter {
    out: String,
    need_comma: Vec<bool>,
}

impl JsonWriter {
    /// Create an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finish and return the serialized text.
    pub fn finish(self) -> String {
        self.out
    }

    fn pre_value(&mut self) {
        if let Some(need) = self.need_comma.last_mut() {
            if *need {
                self.out.push(',');
            }
            *need = true;
        }
    }

    /// Open an object value (`{`).
    pub fn begin_object(&mut self) {
        self.pre_value();
        self.out.push('{');
        self.need_comma.push(false);
    }

    /// Close the innermost object (`}`).
    pub fn end_object(&mut self) {
        self.need_comma.pop();
        self.out.push('}');
    }

    /// Open an array value (`[`).
    pub fn begin_array(&mut self) {
        self.pre_value();
        self.out.push('[');
        self.need_comma.push(false);
    }

    /// Close the innermost array (`]`).
    pub fn end_array(&mut self) {
        self.need_comma.pop();
        self.out.push(']');
    }

    /// Emit an object key; the next emitted value becomes its value.
    pub fn key(&mut self, k: &str) {
        self.pre_value();
        self.string_raw(k);
        self.out.push(':');
        // The value that follows must not get a comma of its own.
        if let Some(need) = self.need_comma.last_mut() {
            *need = false;
        }
    }

    fn string_raw(&mut self, s: &str) {
        self.out.push('"');
        for c in s.chars() {
            match c {
                '"' => self.out.push_str("\\\""),
                '\\' => self.out.push_str("\\\\"),
                '\n' => self.out.push_str("\\n"),
                '\r' => self.out.push_str("\\r"),
                '\t' => self.out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    self.out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => self.out.push(c),
            }
        }
        self.out.push('"');
    }

    /// Emit a string value.
    pub fn string(&mut self, s: &str) {
        self.pre_value();
        self.string_raw(s);
    }

    /// Emit an unsigned integer value.
    pub fn u64(&mut self, v: u64) {
        self.pre_value();
        self.out.push_str(&v.to_string());
    }

    /// Emit a signed integer value.
    pub fn i64(&mut self, v: i64) {
        self.pre_value();
        self.out.push_str(&v.to_string());
    }

    /// Emit a finite floating-point value. JSON has no NaN/Infinity;
    /// non-finite inputs are clamped to 0 rather than emitting invalid
    /// text.
    pub fn f64(&mut self, v: f64) {
        self.pre_value();
        let v = if v.is_finite() { v } else { 0.0 };
        if v == v.trunc() && v.abs() < 1e15 {
            // Integral values print without a fraction for stable,
            // jq-friendly output.
            self.out.push_str(&format!("{}", v as i64));
        } else {
            self.out.push_str(&format!("{}", v));
        }
    }

    /// Emit a boolean value.
    pub fn bool(&mut self, v: bool) {
        self.pre_value();
        self.out.push_str(if v { "true" } else { "false" });
    }

    /// Shorthand: `"k": "v"` field inside the current object.
    pub fn str_field(&mut self, k: &str, v: &str) {
        self.key(k);
        self.string(v);
    }

    /// Shorthand: `"k": n` field inside the current object.
    pub fn u64_field(&mut self, k: &str, v: u64) {
        self.key(k);
        self.u64(v);
    }

    /// Shorthand: `"k": n` field for signed values.
    pub fn i64_field(&mut self, k: &str, v: i64) {
        self.key(k);
        self.i64(v);
    }

    /// Shorthand: `"k": x.y` field for floating-point values.
    pub fn f64_field(&mut self, k: &str, v: f64) {
        self.key(k);
        self.f64(v);
    }

    /// Shorthand: `"k": true|false` field.
    pub fn bool_field(&mut self, k: &str, v: bool) {
        self.key(k);
        self.bool(v);
    }

    /// Shorthand: `"k": n` or `"k": null`.
    pub fn opt_u64_field(&mut self, k: &str, v: Option<u64>) {
        self.key(k);
        match v {
            Some(n) => self.u64(n),
            None => {
                self.pre_value();
                self.out.push_str("null");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn object_with_fields() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.str_field("a", "x\"y\\z\n");
        w.u64_field("b", 7);
        w.bool_field("c", true);
        w.opt_u64_field("d", None);
        w.end_object();
        assert_eq!(
            w.finish(),
            "{\"a\":\"x\\\"y\\\\z\\n\",\"b\":7,\"c\":true,\"d\":null}"
        );
    }

    #[test]
    fn nested_arrays() {
        let mut w = JsonWriter::new();
        w.begin_object();
        w.key("xs");
        w.begin_array();
        w.u64(1);
        w.u64(2);
        w.begin_object();
        w.i64_field("neg", -3);
        w.end_object();
        w.end_array();
        w.end_object();
        assert_eq!(w.finish(), "{\"xs\":[1,2,{\"neg\":-3}]}");
    }

    #[test]
    fn control_chars_escaped() {
        let mut w = JsonWriter::new();
        w.string("\u{1}\t");
        assert_eq!(w.finish(), "\"\\u0001\\t\"");
    }
}
