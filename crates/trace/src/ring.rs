//! Bounded ring buffer of [`Sample`]s.
//!
//! The buffer keeps the most recent `cap` events. When full, a new event
//! overwrites the oldest one and the drop counter is bumped; sequence
//! numbers stay monotonic so consumers can tell how much history was lost.

use crate::event::{Event, Sample};

/// Fixed-capacity event ring. Not synchronized — the [`Recorder`]
/// (crate root) wraps it in a mutex.
///
/// [`Recorder`]: crate::Recorder
/// Accounting invariant, preserved across any interleaving of events and
/// span records: `recorded() == dropped() + drained() + len()`. Every
/// push is either still held, was overwritten at capacity (`dropped`), or
/// was handed to a consumer (`drained`) — nothing is lost silently.
#[derive(Debug)]
pub struct Ring {
    buf: Vec<Sample>,
    cap: usize,
    /// Index of the oldest sample once the buffer has wrapped.
    start: usize,
    next_seq: u64,
    dropped: u64,
    drained: u64,
}

/// Default event capacity of the global recorder.
pub const DEFAULT_CAPACITY: usize = 4096;

impl Ring {
    /// Create an empty ring with the given capacity (minimum 1).
    pub const fn new(cap: usize) -> Self {
        Ring {
            buf: Vec::new(),
            cap,
            start: 0,
            next_seq: 0,
            dropped: 0,
            drained: 0,
        }
    }

    /// Append an event, overwriting the oldest when at capacity. Returns
    /// `true` when an older sample was overwritten (history lost), so the
    /// recorder can surface the loss through the `trace.ring.dropped`
    /// counter.
    pub fn push(&mut self, event: Event) -> bool {
        let cap = self.cap.max(1);
        let sample = Sample {
            seq: self.next_seq,
            event,
        };
        self.next_seq += 1;
        if self.buf.len() < cap {
            self.buf.push(sample);
            false
        } else {
            self.buf[self.start] = sample;
            self.start = (self.start + 1) % cap;
            self.dropped += 1;
            true
        }
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten since creation (history lost to wraparound).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events handed out by [`Ring::drain`] since creation.
    pub fn drained(&self) -> u64 {
        self.drained
    }

    /// Total events ever pushed. Always equals
    /// `dropped() + drained() + len()`.
    pub fn recorded(&self) -> u64 {
        self.next_seq
    }

    /// Copy the held events out in recording order (oldest first).
    pub fn snapshot(&self) -> Vec<Sample> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.start..]);
        out.extend_from_slice(&self.buf[..self.start]);
        out
    }

    /// Remove and return all held events in recording order. Sequence
    /// numbering continues from where it left off.
    pub fn drain(&mut self) -> Vec<Sample> {
        let out = self.snapshot();
        self.drained += out.len() as u64;
        self.buf.clear();
        self.start = 0;
        out
    }

    /// Discard held events and reset counters; optionally change capacity.
    pub fn reset(&mut self, cap: Option<usize>) {
        if let Some(c) = cap {
            self.cap = c.max(1);
        }
        self.buf.clear();
        self.buf.shrink_to_fit();
        self.start = 0;
        self.next_seq = 0;
        self.dropped = 0;
        self.drained = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u64) -> Event {
        Event::CacheOp {
            cache: "opt-cache",
            op: "hit",
            key_hash: n,
        }
    }

    fn key(s: &Sample) -> u64 {
        match s.event {
            Event::CacheOp { key_hash, .. } => key_hash,
            _ => unreachable!(),
        }
    }

    #[test]
    fn fills_then_wraps_overwriting_oldest() {
        let mut r = Ring::new(3);
        for n in 0..5 {
            r.push(ev(n));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        assert_eq!(r.recorded(), 5);
        let held = r.snapshot();
        // Oldest two (0, 1) were overwritten; order is preserved.
        assert_eq!(held.iter().map(key).collect::<Vec<_>>(), vec![2, 3, 4]);
        // Sequence numbers are the global record indices.
        assert_eq!(
            held.iter().map(|s| s.seq).collect::<Vec<_>>(),
            vec![2, 3, 4]
        );
    }

    #[test]
    fn drain_empties_but_keeps_sequencing() {
        let mut r = Ring::new(2);
        r.push(ev(0));
        r.push(ev(1));
        let first = r.drain();
        assert_eq!(first.len(), 2);
        assert!(r.is_empty());
        assert_eq!(r.drained(), 2);
        r.push(ev(2));
        assert_eq!(r.snapshot()[0].seq, 2);
    }

    #[test]
    fn accounting_invariant_holds_through_wrap_and_drain() {
        // recorded == dropped + drained + len at every step, regardless
        // of how pushes (events or span records alike) interleave with
        // capacity wraps and drains.
        let mut r = Ring::new(3);
        let check = |r: &Ring| {
            assert_eq!(
                r.recorded(),
                r.dropped() + r.drained() + r.len() as u64,
                "accounting drifted: recorded={} dropped={} drained={} len={}",
                r.recorded(),
                r.dropped(),
                r.drained(),
                r.len()
            );
        };
        for n in 0..7 {
            assert_eq!(r.push(ev(n)), n >= 3);
            check(&r);
        }
        r.drain();
        check(&r);
        for n in 7..9 {
            r.push(ev(n));
            check(&r);
        }
        r.drain();
        check(&r);
        assert_eq!(r.recorded(), 9);
        assert_eq!(r.dropped(), 4);
        assert_eq!(r.drained(), 5);
    }

    #[test]
    fn wrap_exactly_at_capacity_boundary() {
        let mut r = Ring::new(4);
        for n in 0..4 {
            r.push(ev(n));
        }
        assert_eq!(r.dropped(), 0);
        r.push(ev(4));
        assert_eq!(r.dropped(), 1);
        assert_eq!(
            r.snapshot().iter().map(key).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
    }

    #[test]
    fn reset_changes_capacity() {
        let mut r = Ring::new(2);
        r.push(ev(0));
        r.reset(Some(8));
        assert!(r.is_empty());
        for n in 0..8 {
            r.push(ev(n));
        }
        assert_eq!(r.len(), 8);
        assert_eq!(r.dropped(), 0);
    }
}
