//! Log-bucketed latency histograms (HDR-style, zero-dependency).
//!
//! Durations in nanoseconds are binned into buckets whose width grows
//! with magnitude: each power of two is split into 16 linear sub-buckets,
//! so any recorded value lands in a bucket whose bounds are within 1/16
//! (6.25%) of it. That is the classic HDR layout, shrunk to what the
//! profiler needs: fixed memory (976 buckets × 8 bytes per histogram),
//! lock-free recording through a shared handle, and percentile snapshots
//! (p50/p90/p99/max) read without stopping writers.
//!
//! Histograms are keyed like counters (`opt.optimize_all`, `vm.run`,
//! `store.wal.commit_flush`, …) in a [`HistRegistry`]; every closed span
//! feeds the histogram of its name, and hot paths too noisy for span
//! events (WAL appends) record into a kept handle directly.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// log2 of the linear sub-buckets per power of two.
const SUB_BITS: u32 = 4;
/// Sub-buckets per power of two (16).
const SUB: usize = 1 << SUB_BITS;
/// Total buckets: 16 unit buckets + 16 per exponent 4..=63.
const BUCKETS: usize = SUB + (64 - SUB_BITS as usize) * SUB;

/// Bucket index of a value. Monotone in the value.
#[inline]
fn bucket_of(v: u64) -> usize {
    if v < SUB as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = ((v >> (exp - SUB_BITS)) as usize) - SUB; // 0..SUB
    (((exp - SUB_BITS + 1) as usize) << SUB_BITS) + sub
}

/// Smallest value that maps to bucket `ix`.
fn bucket_low(ix: usize) -> u64 {
    if ix < SUB {
        return ix as u64;
    }
    let group = (ix >> SUB_BITS) as u32; // >= 1
    let exp = group + SUB_BITS - 1;
    let sub = (ix & (SUB - 1)) as u64;
    (1u64 << exp) + (sub << (exp - SUB_BITS))
}

/// Largest value that maps to bucket `ix`.
fn bucket_high(ix: usize) -> u64 {
    if ix < SUB {
        return ix as u64;
    }
    let group = (ix >> SUB_BITS) as u32;
    let exp = group + SUB_BITS - 1;
    // `low + width - 1`, subtracting first so the final bucket's bound
    // (`u64::MAX`) does not overflow.
    (bucket_low(ix) - 1) + (1u64 << (exp - SUB_BITS))
}

#[derive(Debug)]
struct HistInner {
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    /// Minimum recorded value, `u64::MAX` while empty.
    min: AtomicU64,
}

/// A shared handle to one named histogram. Recording is lock-free;
/// clones alias the same cells.
#[derive(Debug, Clone)]
pub struct Hist(Arc<HistInner>);

impl Hist {
    fn new() -> Self {
        let mut counts = Vec::with_capacity(BUCKETS);
        counts.resize_with(BUCKETS, || AtomicU64::new(0));
        Hist(Arc::new(HistInner {
            counts,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }))
    }

    /// Record one value (a duration in nanoseconds, by convention).
    pub fn record(&self, v: u64) {
        let i = &self.0;
        i.counts[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        i.count.fetch_add(1, Ordering::Relaxed);
        i.sum.fetch_add(v, Ordering::Relaxed);
        i.max.fetch_max(v, Ordering::Relaxed);
        i.min.fetch_min(v, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// A point-in-time summary with percentiles.
    pub fn snapshot(&self) -> HistSnapshot {
        let i = &self.0;
        let count = i.count.load(Ordering::Relaxed);
        let max = i.max.load(Ordering::Relaxed);
        let min = i.min.load(Ordering::Relaxed);
        let mut snap = HistSnapshot {
            count,
            sum: i.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { min },
            max,
            p50: 0,
            p90: 0,
            p99: 0,
        };
        if count == 0 {
            return snap;
        }
        // Walk the buckets once, resolving all three quantiles. The
        // reported value is the bucket's upper bound (the highest value
        // indistinguishable from the observation), clamped to the true
        // recorded max so p99 of a single-value histogram equals it.
        let ranks = [
            quantile_rank(count, 0.50),
            quantile_rank(count, 0.90),
            quantile_rank(count, 0.99),
        ];
        let mut out = [0u64; 3];
        let mut seen = 0u64;
        let mut t = 0usize;
        'walk: for ix in 0..BUCKETS {
            let c = i.counts[ix].load(Ordering::Relaxed);
            if c == 0 {
                continue;
            }
            seen += c;
            while t < ranks.len() && seen >= ranks[t] {
                out[t] = bucket_high(ix).min(max);
                t += 1;
                if t == ranks.len() {
                    break 'walk;
                }
            }
        }
        (snap.p50, snap.p90, snap.p99) = (out[0], out[1], out[2]);
        snap
    }

    /// Reset every cell to empty.
    pub fn clear(&self) {
        let i = &self.0;
        for c in &i.counts {
            c.store(0, Ordering::Relaxed);
        }
        i.count.store(0, Ordering::Relaxed);
        i.sum.store(0, Ordering::Relaxed);
        i.max.store(0, Ordering::Relaxed);
        i.min.store(u64::MAX, Ordering::Relaxed);
    }
}

/// 1-based rank of the q-quantile among `count` observations.
fn quantile_rank(count: u64, q: f64) -> u64 {
    (((count as f64) * q).ceil() as u64).clamp(1, count)
}

/// Summary of one histogram at a point in time. All values are in the
/// recorded unit (nanoseconds for span-fed histograms).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Observations recorded.
    pub count: u64,
    /// Sum of all observations (total time, for durations).
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Median (upper bucket bound, ≤6.25% above the true value).
    pub p50: u64,
    /// 90th percentile.
    pub p90: u64,
    /// 99th percentile.
    pub p99: u64,
}

impl HistSnapshot {
    /// Mean observation, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// Name → histogram map behind a mutex, mirroring the counter
/// [`Registry`](crate::Registry): lookup takes the lock once, recording
/// through the returned handle is lock-free.
#[derive(Debug)]
pub struct HistRegistry {
    map: Mutex<BTreeMap<String, Hist>>,
}

impl HistRegistry {
    /// Create an empty registry (const so it can live in a `static`).
    pub const fn new() -> Self {
        HistRegistry {
            map: Mutex::new(BTreeMap::new()),
        }
    }

    /// Look up or create the histogram called `name`.
    pub fn hist(&self, name: &str) -> Hist {
        let mut map = self.map.lock().unwrap();
        if let Some(h) = map.get(name) {
            return h.clone();
        }
        let h = Hist::new();
        map.insert(name.to_string(), h.clone());
        h
    }

    /// Snapshot every non-empty histogram, sorted by name. Sorted output
    /// is a determinism contract: JSON exports and golden tests key on it.
    pub fn snapshot(&self) -> Vec<(String, HistSnapshot)> {
        self.map
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .filter(|(_, s)| s.count > 0)
            .collect()
    }

    /// Remove every histogram.
    pub fn clear(&self) {
        self.map.lock().unwrap().clear();
    }
}

impl Default for HistRegistry {
    fn default() -> Self {
        HistRegistry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_bracket_every_magnitude() {
        // Property: for a sweep of values across the whole u64 range, the
        // chosen bucket's bounds bracket the value and the relative error
        // of the upper bound is at most 1/16.
        let mut v: u64 = 1;
        loop {
            for delta in [0u64, 1, 2, 3, 5, 7, 11, 13] {
                let x = v.saturating_add(delta);
                let ix = bucket_of(x);
                assert!(bucket_low(ix) <= x, "low({ix}) > {x}");
                assert!(bucket_high(ix) >= x, "high({ix}) < {x}");
                if x >= 16 {
                    let err = (bucket_high(ix) - x) as f64 / x as f64;
                    assert!(err <= 1.0 / 16.0 + 1e-9, "err {err} at {x}");
                }
            }
            if v > u64::MAX / 3 {
                break;
            }
            v = v.wrapping_mul(3);
        }
        // Exact boundaries.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(15), 15);
        assert_eq!(bucket_of(16), 16);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_high(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn buckets_are_monotone_and_contiguous() {
        for ix in 1..BUCKETS {
            assert_eq!(
                bucket_high(ix - 1) + 1,
                bucket_low(ix),
                "gap between buckets {} and {}",
                ix - 1,
                ix
            );
        }
    }

    #[test]
    fn percentiles_bracket_exact_order_statistics() {
        // Pseudo-random but deterministic sample; compare against the
        // exact order statistics with the 1/16 bucket tolerance.
        let mut state = 0x243F_6A88_85A3_08D3u64;
        let mut vals: Vec<u64> = (0..10_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // Spread over ~6 orders of magnitude, like latencies do.
                (state >> 33) % 1_000_000_000
            })
            .collect();
        let h = Hist::new();
        for &v in &vals {
            h.record(v);
        }
        vals.sort_unstable();
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.min, vals[0]);
        assert_eq!(s.max, *vals.last().unwrap());
        for (q, got) in [(0.50, s.p50), (0.90, s.p90), (0.99, s.p99)] {
            let exact = vals[(quantile_rank(10_000, q) - 1) as usize];
            assert!(
                got >= exact,
                "p{q}: reported {got} below exact {exact} (upper bound contract)"
            );
            let err = (got - exact) as f64 / (exact.max(1)) as f64;
            assert!(err <= 1.0 / 16.0 + 1e-9, "p{q}: err {err}");
        }
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99 && s.p99 <= s.max);
    }

    #[test]
    fn single_value_percentiles_are_exact() {
        let h = Hist::new();
        h.record(123_456);
        let s = h.snapshot();
        assert_eq!(
            (s.p50, s.p90, s.p99, s.max, s.min),
            (123_456, 123_456, 123_456, 123_456, 123_456)
        );
        assert_eq!(s.mean(), 123_456);
    }

    #[test]
    fn empty_snapshot_is_zero() {
        let h = Hist::new();
        assert_eq!(h.snapshot(), HistSnapshot::default());
    }

    #[test]
    fn registry_handles_alias_and_snapshot_sorted() {
        let r = HistRegistry::new();
        r.hist("vm.run").record(5);
        r.hist("opt.round").record(7);
        r.hist("vm.run").record(9);
        r.hist("empty.unused"); // never recorded: excluded from snapshots
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["opt.round", "vm.run"]);
        assert_eq!(snap[1].1.count, 2);
        r.clear();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn concurrent_recording_sums() {
        let h = Hist::new();
        let h2 = h.clone();
        let t = std::thread::spawn(move || {
            for _ in 0..50_000 {
                h2.record(10);
            }
        });
        for _ in 0..50_000 {
            h.record(1_000);
        }
        t.join().unwrap();
        let s = h.snapshot();
        assert_eq!(s.count, 100_000);
        assert_eq!(s.sum, 50_000 * 10 + 50_000 * 1_000);
    }
}
