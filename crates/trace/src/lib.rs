//! `tml-trace` — unified tracing, metrics and optimizer-provenance layer.
//!
//! The paper's point (§4–5) is that one persistent CPS representation lets
//! the system *re-optimize code dynamically*; this crate is how the
//! reproduction shows its work. Every subsystem reports through one global
//! [`Recorder`]:
//!
//! * a bounded **ring buffer** of typed [`Event`]s — the optimizer's rewrite
//!   provenance log, cache/GC/snapshot activity, query plan choices;
//! * a **counter registry** of named monotonic `u64`s — opcode and
//!   primitive profiles, hot-closure call counts, cache hit/miss totals;
//! * a single **JSON export** ([`Recorder::to_json`]) consumed by
//!   `tmlc profile`, `tmlc explain` and `tmlc info --json`.
//!
//! Recording is off by default. The disabled fast path is one relaxed
//! atomic load ([`enabled`]); instrumented code must check it before
//! building event payloads, so a disabled recorder costs a predicted
//! branch and nothing else. The crate depends on nothing — not even
//! `tml-core` — so every layer of the workspace can use it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod event;
pub mod export;
pub mod hist;
pub mod json;
pub mod registry;
pub mod ring;
pub mod span;

pub use clock::Clock;
pub use event::{Event, Sample};
pub use hist::{Hist, HistRegistry, HistSnapshot};
pub use registry::{Counter, Registry};
pub use ring::{Ring, DEFAULT_CAPACITY};
pub use span::SpanGuard;

use json::JsonWriter;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// Version tag of the JSON export schema. v2 added timed spans, the
/// `hists` section, and duration (`micros`) fields on WAL/recovery
/// events. v3 added `txn` events, the `lock.wait` histogram and the
/// `store.buffer.would_block` counter.
pub const SCHEMA_VERSION: u64 = 3;

/// The trace facility: an enabled flag, an event ring, a counter
/// registry, a latency-histogram registry and the trace clock. One
/// global instance serves the whole process ([`global`]); independent
/// instances can be created for tests (spans and the [`span!`] macro
/// always use the global one).
#[derive(Debug)]
pub struct Recorder {
    enabled: AtomicBool,
    ring: Mutex<Ring>,
    registry: Registry,
    hists: HistRegistry,
    clock: Clock,
}

impl Recorder {
    /// Create a disabled recorder with the default ring capacity.
    pub const fn new() -> Self {
        Recorder {
            enabled: AtomicBool::new(false),
            ring: Mutex::new(Ring::new(DEFAULT_CAPACITY)),
            registry: Registry::new(),
            hists: HistRegistry::new(),
            clock: Clock::new(),
        }
    }

    /// Is recording on? One relaxed load — this is the fast path every
    /// instrumentation site checks first.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Append an event to the ring if recording is enabled. Overwrites at
    /// capacity are published through the `trace.ring.dropped` counter so
    /// history loss is never silent.
    pub fn record(&self, event: Event) {
        if self.is_enabled() {
            let overwrote = self.ring.lock().unwrap().push(event);
            if overwrote {
                self.registry.counter("trace.ring.dropped").inc();
            }
        }
    }

    /// Look up or create a named counter. The handle is lock-free to bump;
    /// hot paths should resolve once and reuse it.
    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(name)
    }

    /// Add `n` to the named counter, but only when recording is enabled.
    /// Convenience for call sites too cold to keep a handle.
    pub fn count(&self, name: &str, n: u64) {
        if self.is_enabled() {
            self.registry.counter(name).add(n);
        }
    }

    /// The counter registry (for snapshots and gauge-style publication
    /// that should work even while recording is disabled).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Look up or create a named latency histogram. Like counters, the
    /// handle records lock-free; hot paths should resolve once and keep
    /// it.
    pub fn hist(&self, name: &str) -> Hist {
        self.hists.hist(name)
    }

    /// Record a duration (nanoseconds) into the named histogram, but only
    /// when recording is enabled. Convenience for call sites too cold to
    /// keep a handle.
    pub fn record_ns(&self, name: &str, ns: u64) {
        if self.is_enabled() {
            self.hists.hist(name).record(ns);
        }
    }

    /// Snapshot every non-empty histogram, sorted by name.
    pub fn hist_snapshot(&self) -> Vec<(String, HistSnapshot)> {
        self.hists.snapshot()
    }

    /// The trace clock (mock it in tests for deterministic spans).
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Resize the event ring, discarding held events and resetting the
    /// sequence/drop counters.
    pub fn set_capacity(&self, cap: usize) {
        self.ring.lock().unwrap().reset(Some(cap));
    }

    /// Remove and return all held events, oldest first.
    pub fn drain(&self) -> Vec<Sample> {
        self.ring.lock().unwrap().drain()
    }

    /// Copy out all held events without removing them.
    pub fn events(&self) -> Vec<Sample> {
        self.ring.lock().unwrap().snapshot()
    }

    /// Events lost to ring wraparound.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().unwrap().dropped()
    }

    /// Events handed out by [`Recorder::drain`].
    pub fn drained(&self) -> u64 {
        self.ring.lock().unwrap().drained()
    }

    /// Total events ever recorded (`dropped + drained + held`).
    pub fn recorded(&self) -> u64 {
        self.ring.lock().unwrap().recorded()
    }

    /// Discard all events, counters and histograms and reset sequencing.
    /// The enabled flag is left as-is.
    pub fn clear(&self) {
        self.ring.lock().unwrap().reset(None);
        self.registry.clear();
        self.hists.clear();
    }

    /// Export the full trace state as JSON:
    ///
    /// ```json
    /// {
    ///   "version": 3,
    ///   "enabled": true,
    ///   "recorded": 12, "dropped": 0,
    ///   "counters": { "vm.instrs": 123, ... },
    ///   "hists": { "vm.run": { "count": 3, "p50_ns": 1200, ... }, ... },
    ///   "events": [ { "seq": 0, "type": "rule-fired", ... }, ... ]
    /// }
    /// ```
    ///
    /// Counter and histogram keys are emitted in sorted order — a
    /// determinism contract golden tests and CI `jq` assertions rely on.
    pub fn to_json(&self) -> String {
        let (samples, recorded, dropped) = {
            let ring = self.ring.lock().unwrap();
            (ring.snapshot(), ring.recorded(), ring.dropped())
        };
        let counters = self.registry.snapshot();
        let hists = self.hists.snapshot();
        let mut w = JsonWriter::new();
        w.begin_object();
        w.u64_field("version", SCHEMA_VERSION);
        w.bool_field("enabled", self.is_enabled());
        w.u64_field("recorded", recorded);
        w.u64_field("dropped", dropped);
        w.key("counters");
        w.begin_object();
        for (name, value) in &counters {
            w.u64_field(name, *value);
        }
        w.end_object();
        w.key("hists");
        w.begin_object();
        for (name, s) in &hists {
            w.key(name);
            w.begin_object();
            w.u64_field("count", s.count);
            w.u64_field("sum_ns", s.sum);
            w.u64_field("min_ns", s.min);
            w.u64_field("max_ns", s.max);
            w.u64_field("p50_ns", s.p50);
            w.u64_field("p90_ns", s.p90);
            w.u64_field("p99_ns", s.p99);
            w.end_object();
        }
        w.end_object();
        w.key("events");
        w.begin_array();
        for s in &samples {
            w.begin_object();
            w.u64_field("seq", s.seq);
            w.str_field("type", s.event.kind());
            s.event.write_json(&mut w);
            w.end_object();
        }
        w.end_array();
        w.end_object();
        w.finish()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

static GLOBAL: Recorder = Recorder::new();

/// The process-wide recorder used by all instrumentation.
pub fn global() -> &'static Recorder {
    &GLOBAL
}

/// Fast path: is the global recorder enabled?
#[inline]
pub fn enabled() -> bool {
    GLOBAL.is_enabled()
}

/// Record an event on the global recorder (no-op when disabled).
#[inline]
pub fn record(event: Event) {
    GLOBAL.record(event);
}

/// Bump a global counter by `n` when recording is enabled.
#[inline]
pub fn count(name: &str, n: u64) {
    GLOBAL.count(name, n);
}

/// Resolve a handle to a global counter (works regardless of the enabled
/// flag; use for gauges and for hot paths that keep the handle).
pub fn counter(name: &str) -> Counter {
    GLOBAL.counter(name)
}

/// Where provenance events go during an optimizer run.
///
/// `optimize` forwards to the global recorder when it is enabled; replay
/// and `tmlc explain` substitute a collecting closure. The `active` flag
/// is hoisted so instrumented loops pay a plain-bool branch and skip
/// building payloads entirely when nobody is listening.
pub struct Sink<'a> {
    active: bool,
    collect: Option<&'a mut dyn FnMut(&Event)>,
}

impl<'a> Sink<'a> {
    /// A sink that forwards to the global recorder iff it is enabled.
    pub fn global() -> Sink<'static> {
        Sink {
            active: enabled(),
            collect: None,
        }
    }

    /// A sink that is never active.
    pub fn disabled() -> Sink<'static> {
        Sink {
            active: false,
            collect: None,
        }
    }

    /// A sink that hands every event to `f` (always active).
    pub fn collect(f: &'a mut dyn FnMut(&Event)) -> Sink<'a> {
        Sink {
            active: true,
            collect: Some(f),
        }
    }

    /// Should the caller build and emit events?
    #[inline]
    pub fn active(&self) -> bool {
        self.active
    }

    /// Deliver one event (no-op when inactive).
    pub fn emit(&mut self, event: Event) {
        if !self.active {
            return;
        }
        match self.collect.as_mut() {
            Some(f) => f(&event),
            None => record(event),
        }
    }
}

impl std::fmt::Debug for Sink<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sink")
            .field("active", &self.active)
            .field("collect", &self.collect.is_some())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn ev(n: u64) -> Event {
        Event::CacheOp {
            cache: "opt-cache",
            op: "miss",
            key_hash: n,
        }
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let r = Recorder::new();
        assert!(!r.is_enabled());
        r.record(ev(1));
        r.count("x", 5);
        assert!(r.events().is_empty());
        assert_eq!(r.counter("x").get(), 0);
        // Explicit handles still work while disabled (gauge publication).
        r.counter("g").set(9);
        assert_eq!(r.counter("g").get(), 9);
    }

    #[test]
    fn enabled_recorder_stores_events_and_counts() {
        let r = Recorder::new();
        r.set_enabled(true);
        r.record(ev(1));
        r.record(ev(2));
        r.count("x", 2);
        r.count("x", 3);
        assert_eq!(r.events().len(), 2);
        assert_eq!(r.counter("x").get(), 5);
        let drained = r.drain();
        assert_eq!(drained.len(), 2);
        assert!(r.events().is_empty());
    }

    #[test]
    fn ring_wraparound_at_capacity() {
        let r = Recorder::new();
        r.set_enabled(true);
        r.set_capacity(4);
        for n in 0..10 {
            r.record(ev(n));
        }
        let held = r.events();
        assert_eq!(held.len(), 4);
        assert_eq!(r.dropped(), 6);
        assert_eq!(
            held.iter().map(|s| s.seq).collect::<Vec<_>>(),
            vec![6, 7, 8, 9]
        );
    }

    #[test]
    fn concurrent_counter_increments_sum_correctly() {
        let r = std::sync::Arc::new(Recorder::new());
        r.set_enabled(true);
        let c1 = r.counter("shared");
        let c2 = r.counter("shared");
        let t1 = thread::spawn(move || {
            for _ in 0..100_000 {
                c1.inc();
            }
        });
        let t2 = thread::spawn(move || {
            for _ in 0..100_000 {
                c2.add(2);
            }
        });
        t1.join().unwrap();
        t2.join().unwrap();
        assert_eq!(r.counter("shared").get(), 300_000);
    }

    #[test]
    fn json_export_shape() {
        let r = Recorder::new();
        r.set_enabled(true);
        r.counter("vm.instrs").add(41);
        r.record(Event::RuleFired {
            rule: "subst",
            site: "x_1".to_string(),
            node: 3,
            size_delta: -2,
        });
        r.hist("vm.run").record(100);
        let json = r.to_json();
        assert!(json.starts_with("{\"version\":3,\"enabled\":true,"));
        assert!(json.contains("\"counters\":{\"vm.instrs\":41}"));
        assert!(json.contains("\"hists\":{\"vm.run\":{\"count\":1,"));
        assert!(json.contains(
            "{\"seq\":0,\"type\":\"rule-fired\",\"rule\":\"subst\",\"site\":\"x_1\",\"node\":3,\"size_delta\":-2}"
        ));
    }

    #[test]
    fn sink_collect_gathers_events() {
        let mut got = Vec::new();
        {
            let mut push = |e: &Event| got.push(e.clone());
            let mut sink = Sink::collect(&mut push);
            assert!(sink.active());
            sink.emit(ev(7));
        }
        assert_eq!(got.len(), 1);
        let mut sink = Sink::disabled();
        assert!(!sink.active());
        sink.emit(ev(8)); // must be a no-op
    }
}
