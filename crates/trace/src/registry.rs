//! Monotonic counter registry.
//!
//! Counters are named `u64` cells. Looking a counter up takes the registry
//! lock once; the returned [`Counter`] handle is a shared atomic that can
//! be bumped lock-free from any thread afterwards. Hot paths should
//! resolve their handles once and keep them.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A shared handle to one named counter cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n` to the counter (relaxed; counters are independent totals).
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Overwrite the value (gauge semantics, e.g. store footprint numbers).
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Read the current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Name → counter map behind a mutex.
#[derive(Debug)]
pub struct Registry {
    map: Mutex<BTreeMap<String, Counter>>,
}

impl Registry {
    /// Create an empty registry (const so it can live in a `static`).
    pub const fn new() -> Self {
        Registry {
            map: Mutex::new(BTreeMap::new()),
        }
    }

    /// Look up or create the counter called `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.map.lock().unwrap();
        if let Some(c) = map.get(name) {
            return c.clone();
        }
        let c = Counter::default();
        map.insert(name.to_string(), c.clone());
        c
    }

    /// Snapshot all counters, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, u64)> {
        self.map
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshot the counters whose name starts with `prefix`.
    pub fn snapshot_prefix(&self, prefix: &str) -> Vec<(String, u64)> {
        self.snapshot()
            .into_iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .collect()
    }

    /// Remove every counter.
    pub fn clear(&self) {
        self.map.lock().unwrap().clear();
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_alias_the_same_cell() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.inc();
        assert_eq!(r.counter("x").get(), 3);
    }

    #[test]
    fn snapshot_is_sorted_and_prefix_filters() {
        let r = Registry::new();
        r.counter("vm.instrs").set(10);
        r.counter("store.bytes").set(5);
        r.counter("vm.calls").set(2);
        let all = r.snapshot();
        let names: Vec<&str> = all.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["store.bytes", "vm.calls", "vm.instrs"]);
        assert_eq!(
            r.snapshot_prefix("vm."),
            vec![("vm.calls".to_string(), 2), ("vm.instrs".to_string(), 10)]
        );
    }
}
