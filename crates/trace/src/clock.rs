//! The trace clock: monotonic nanoseconds with a mockable source.
//!
//! Span timing must be deterministic under test, so every timestamp the
//! trace layer takes goes through one [`Clock`]. In its default mode the
//! clock reads a process-wide monotonic epoch ([`std::time::Instant`],
//! anchored lazily on first use); switched into mock mode it returns a
//! counter that tests advance by hand, making span trees and histogram
//! contents byte-reproducible.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Monotonic nanosecond source with a test-controlled mock mode.
///
/// The fast path (real mode) is one relaxed atomic load plus an
/// `Instant::elapsed` call; mock mode replaces the OS clock with an
/// atomic counter. Mode changes are process-visible immediately, which is
/// what lets integration tests freeze time around a workload.
#[derive(Debug)]
pub struct Clock {
    mocked: AtomicBool,
    mock_ns: AtomicU64,
    epoch: OnceLock<Instant>,
}

impl Clock {
    /// A real-time clock (const, so it can live inside the static
    /// [`Recorder`]).
    ///
    /// [`Recorder`]: crate::Recorder
    pub const fn new() -> Self {
        Clock {
            mocked: AtomicBool::new(false),
            mock_ns: AtomicU64::new(0),
            epoch: OnceLock::new(),
        }
    }

    /// Current time in nanoseconds: elapsed since the (lazily anchored)
    /// process epoch, or the mock counter when mocked.
    #[inline]
    pub fn now_ns(&self) -> u64 {
        if self.mocked.load(Ordering::Relaxed) {
            return self.mock_ns.load(Ordering::Relaxed);
        }
        let epoch = self.epoch.get_or_init(Instant::now);
        epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }

    /// Is the clock in mock mode?
    pub fn is_mocked(&self) -> bool {
        self.mocked.load(Ordering::Relaxed)
    }

    /// Enter mock mode at the given tick. All subsequent [`Clock::now_ns`]
    /// reads return the mock counter until [`Clock::unmock`].
    pub fn mock(&self, start_ns: u64) {
        self.mock_ns.store(start_ns, Ordering::Relaxed);
        self.mocked.store(true, Ordering::Relaxed);
    }

    /// Advance the mock counter by `delta_ns`, returning the new value.
    /// No-op (returning the real time) when not mocked.
    pub fn advance(&self, delta_ns: u64) -> u64 {
        if !self.is_mocked() {
            return self.now_ns();
        }
        self.mock_ns.fetch_add(delta_ns, Ordering::Relaxed) + delta_ns
    }

    /// Set the mock counter to an absolute tick (mock mode only).
    pub fn set(&self, ns: u64) {
        if self.is_mocked() {
            self.mock_ns.store(ns, Ordering::Relaxed);
        }
    }

    /// Leave mock mode and resume the monotonic source.
    pub fn unmock(&self) {
        self.mocked.store(false, Ordering::Relaxed);
    }
}

impl Default for Clock {
    fn default() -> Self {
        Clock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic() {
        let c = Clock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn mock_clock_is_deterministic() {
        let c = Clock::new();
        c.mock(100);
        assert_eq!(c.now_ns(), 100);
        assert_eq!(c.advance(50), 150);
        assert_eq!(c.now_ns(), 150);
        c.set(1_000);
        assert_eq!(c.now_ns(), 1_000);
        c.unmock();
        assert!(!c.is_mocked());
    }
}
