//! Profiling exporters over the recorded span tree.
//!
//! Two formats, both derived from the [`Event::Span`] records held in the
//! event ring:
//!
//! * [`chrome_json`] — the Chrome tracing ("Trace Event") format. Load
//!   the file in `chrome://tracing` or <https://ui.perfetto.dev> to see
//!   the span tree on a per-thread timeline. Each span becomes one
//!   complete (`"ph":"X"`) event with microsecond `ts`/`dur`.
//! * [`flame_folded`] — Brendan Gregg's collapsed-stack format, one
//!   `stack;path count` line per unique span path. The count is the
//!   span's *self* time in nanoseconds (duration minus the time covered
//!   by its recorded children), so `flamegraph.pl out.folded` renders
//!   frame widths proportional to where time was actually spent.
//!
//! Spans whose parents were lost to ring wraparound are treated as roots;
//! the tree degrades gracefully rather than dropping data.

use crate::event::{Event, Sample};
use crate::json::JsonWriter;
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy)]
struct Rec {
    name: &'static str,
    parent: u64,
    dur_ns: u64,
}

fn collect(samples: &[Sample]) -> BTreeMap<u64, Rec> {
    let mut out = BTreeMap::new();
    for s in samples {
        if let Event::Span {
            name,
            id,
            parent,
            dur_ns,
            ..
        } = s.event
        {
            out.insert(
                id,
                Rec {
                    name,
                    parent,
                    dur_ns,
                },
            );
        }
    }
    out
}

/// Serialize the span records among `samples` as Chrome tracing JSON:
/// `{"traceEvents":[{"name":..,"ph":"X","ts":..,"dur":..,"pid":1,
/// "tid":..,"args":{"id":..,"parent":..}}, ...]}`. Timestamps and
/// durations are microseconds (fractional), per the format.
pub fn chrome_json(samples: &[Sample]) -> String {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.str_field("displayTimeUnit", "ms");
    w.key("traceEvents");
    w.begin_array();
    for s in samples {
        if let Event::Span {
            name,
            id,
            parent,
            thread,
            start_ns,
            dur_ns,
        } = s.event
        {
            w.begin_object();
            w.str_field("name", name);
            w.str_field("cat", "span");
            w.str_field("ph", "X");
            w.f64_field("ts", start_ns as f64 / 1000.0);
            w.f64_field("dur", dur_ns as f64 / 1000.0);
            w.u64_field("pid", 1);
            w.u64_field("tid", thread);
            w.key("args");
            w.begin_object();
            w.u64_field("id", id);
            w.u64_field("parent", parent);
            w.end_object();
            w.end_object();
        }
    }
    w.end_array();
    w.end_object();
    w.finish()
}

/// Serialize the span records among `samples` in collapsed-stack
/// ("folded") form: one `name;name;... <self_ns>` line per unique span
/// path, merged and sorted. Counts are self-time nanoseconds; paths
/// whose self time folds to zero (fully covered by children) are
/// omitted, as is conventional for the format.
pub fn flame_folded(samples: &[Sample]) -> String {
    let recs = collect(samples);
    // Self time = own duration minus time covered by recorded children.
    let mut child_ns: BTreeMap<u64, u64> = BTreeMap::new();
    for r in recs.values() {
        if r.parent != 0 && recs.contains_key(&r.parent) {
            *child_ns.entry(r.parent).or_insert(0) += r.dur_ns;
        }
    }
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for (id, r) in &recs {
        let self_ns = r
            .dur_ns
            .saturating_sub(child_ns.get(id).copied().unwrap_or(0));
        if self_ns == 0 {
            continue;
        }
        // Walk the parent chain to build the stack, root first. Span ids
        // are allocated monotonically so chains are acyclic; the depth
        // cap guards against corrupt input anyway.
        let mut stack = vec![r.name];
        let mut cur = r.parent;
        let mut depth = 0;
        while cur != 0 && depth < 64 {
            match recs.get(&cur) {
                Some(p) => {
                    stack.push(p.name);
                    cur = p.parent;
                }
                None => break, // parent lost to ring wraparound
            }
            depth += 1;
        }
        stack.reverse();
        *folded.entry(stack.join(";")).or_insert(0) += self_ns;
    }
    let mut out = String::new();
    for (stack, ns) in &folded {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(id: u64, parent: u64, name: &'static str, start: u64, dur: u64) -> Sample {
        Sample {
            seq: id,
            event: Event::Span {
                name,
                id,
                parent,
                thread: 1,
                start_ns: start,
                dur_ns: dur,
            },
        }
    }

    #[test]
    fn chrome_json_emits_complete_events_in_microseconds() {
        let samples = vec![
            span(2, 1, "inner", 1500, 500),
            span(1, 0, "outer", 1000, 2000),
        ];
        let json = chrome_json(&samples);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains(
            "{\"name\":\"inner\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":1.5,\"dur\":0.5,\
             \"pid\":1,\"tid\":1,\"args\":{\"id\":2,\"parent\":1}}"
        ));
        assert!(json.contains("\"name\":\"outer\""));
        assert!(json.contains("\"ts\":1,\"dur\":2,"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn chrome_json_ignores_non_span_events() {
        let samples = vec![Sample {
            seq: 0,
            event: Event::CacheOp {
                cache: "opt-cache",
                op: "hit",
                key_hash: 1,
            },
        }];
        assert_eq!(
            chrome_json(&samples),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }

    #[test]
    fn folded_stacks_use_self_time_and_merge_paths() {
        // outer(100) -> inner(30), inner(20); plus a second outer-only
        // instance (40). Self times: outer = (100-50) + 40 = 90,
        // outer;inner = 50.
        let samples = vec![
            span(1, 0, "outer", 0, 100),
            span(2, 1, "inner", 10, 30),
            span(3, 1, "inner", 50, 20),
            span(4, 0, "outer", 200, 40),
        ];
        let folded = flame_folded(&samples);
        assert_eq!(folded, "outer 90\nouter;inner 50\n");
    }

    #[test]
    fn folded_orphan_parent_becomes_root() {
        // Parent id 7 was lost to ring wraparound; the child still shows
        // up as a root frame instead of vanishing.
        let samples = vec![span(9, 7, "child", 0, 12)];
        assert_eq!(flame_folded(&samples), "child 12\n");
    }

    #[test]
    fn folded_drops_fully_covered_parents() {
        let samples = vec![span(1, 0, "outer", 0, 50), span(2, 1, "inner", 0, 50)];
        assert_eq!(flame_folded(&samples), "outer;inner 50\n");
    }
}
