//! Typed trace events.
//!
//! Every subsystem reports through the same closed event vocabulary so the
//! export schema stays stable: the optimizer emits the rewrite provenance
//! log ([`Event::RuleFired`], [`Event::ExpandDecision`], [`Event::OptRound`],
//! [`Event::OptStop`]), the store emits cache/GC/snapshot activity, the
//! query rewriter emits plan decisions, and the reflective optimizer emits
//! memo-cache consults and relink summaries.

use crate::json::JsonWriter;

/// One structured trace event.
///
/// Variants carry only plain integers and short strings so recording stays
/// cheap and the JSON export needs no external serializer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// An optimizer rewrite rule fired (§3 rules + constant folding).
    RuleFired {
        /// Rule name (`subst`, `remove`, `reduce`, `eta-reduce`, `fold`,
        /// `case-subst`, `y-remove`, `y-reduce`).
        rule: &'static str,
        /// Anchor for the rewrite where one exists: the bound variable or
        /// primitive the rule matched on, in display form. Empty otherwise.
        site: String,
        /// Pre-order index of the term node the sweep was visiting.
        node: u64,
        /// Term size after the rewrite minus size before (negative = shrank).
        size_delta: i64,
    },
    /// The expansion pass considered an inlining candidate (Appel-style
    /// heuristic, §3.2): records the cost/limit comparison that decided it.
    ExpandDecision {
        /// Display name of the let-bound function considered for inlining.
        site: String,
        /// Estimated body cost of the candidate.
        cost: u64,
        /// `inline_limit` the cost was compared against.
        limit: u64,
        /// Whether the candidate was inlined.
        taken: bool,
        /// Term-size growth charged against the penalty budget (0 if skipped).
        growth: u64,
    },
    /// One reduce(+expand) round of the optimizer driver completed.
    OptRound {
        /// 1-based round number.
        round: u32,
        /// Rule firings during this round's reduce-to-fixpoint pass.
        reductions: u64,
        /// Call sites inlined by this round's expansion pass.
        inlined: u64,
        /// Accumulated inlining penalty after this round.
        penalty: u64,
        /// Term size at the end of the round.
        size: u64,
    },
    /// The optimizer driver stopped, and why (§5 termination argument).
    OptStop {
        /// `fixpoint`, `expand-disabled`, `max-rounds` or `penalty-limit`.
        reason: &'static str,
        /// Total rounds executed.
        rounds: u32,
        /// Final accumulated penalty.
        penalty: u64,
        /// The configured penalty budget.
        penalty_limit: u64,
    },
    /// A named cache performed an operation (store optimization cache).
    CacheOp {
        /// Which cache (`opt-cache`).
        cache: &'static str,
        /// `hit`, `miss`, `invalidation`, `eviction` or `insert`.
        op: &'static str,
        /// Operation detail: the PTML hash of the key involved.
        key_hash: u64,
    },
    /// One phase of a garbage collection pause.
    GcPhase {
        /// `mark`, `sweep` or `cache-sweep`.
        phase: &'static str,
        /// Wall-clock duration of the phase in microseconds.
        micros: u64,
        /// Objects touched: marked (mark), freed (sweep), dropped entries
        /// (cache-sweep).
        count: u64,
        /// Bytes freed, where the phase tracks them.
        bytes: u64,
    },
    /// A snapshot image was encoded or decoded.
    SnapshotIo {
        /// `write` or `read`.
        dir: &'static str,
        /// Image size in bytes.
        bytes: u64,
        /// Live objects in the image.
        objects: u64,
    },
    /// The query rewriter applied an algebraic rewrite.
    QueryRewrite {
        /// `merge-select`, `trivial-exists` or `index-select`.
        rule: &'static str,
        /// Relation OID, when the rewrite is anchored to a stored relation.
        relation: Option<u64>,
        /// Index OID substituted by `index-select`.
        index: Option<u64>,
    },
    /// The executor chose an access path for a select.
    PlanChosen {
        /// `scan` or `index`.
        plan: &'static str,
        /// OID of the relation or index driving the plan, if known.
        target: Option<u64>,
    },
    /// The reflective optimizer consulted the persistent memo cache.
    ReflectConsult {
        /// Qualified function name being rebuilt.
        function: String,
        /// Store OID of the closure.
        oid: u64,
        /// `hit`, `miss` or `bypass` (caching disabled).
        outcome: &'static str,
    },
    /// A whole-world optimization pass relinked rebuilt closures.
    Relink {
        /// Closures rebuilt by the pass.
        rebuilt: u64,
        /// Global/module bindings repointed to the rebuilt closures.
        relinked: u64,
    },
    /// One target of a whole-world pass was skipped in degraded mode: its
    /// optimization panicked, diverged past its fuel budget, or its PTML
    /// blob failed to decode. The unoptimized term is kept.
    DegradedSkip {
        /// Qualified function name of the skipped target.
        function: String,
        /// Store OID of the closure.
        oid: u64,
        /// `panic`, `decode` or `fuel`.
        reason: &'static str,
        /// Human-readable detail (panic payload, decode error), truncated.
        detail: String,
    },
    /// Write-ahead-log activity: one append/flush/checkpoint/redo step of
    /// the durable store's log manager.
    Wal {
        /// `append`, `flush`, `sync`, `checkpoint`, `redo` or `discard`.
        op: &'static str,
        /// Log sequence number the operation reached (last LSN involved).
        lsn: u64,
        /// Bytes appended/flushed/replayed by the operation.
        bytes: u64,
        /// Records involved (1 for appends, batch size for flush/redo).
        records: u64,
        /// Wall-clock duration of the operation in microseconds. These
        /// operations straddle real IO (fsync, image save, redo replay),
        /// so the event carries its own duration instead of being
        /// point-in-time.
        micros: u64,
    },
    /// Transaction lifecycle: one begin/commit/abort/deadlock/recovery
    /// step of the transaction manager (or of recovery undoing a loser).
    Txn {
        /// `begin`, `commit`, `abort`, `deadlock` or `recover-abort`.
        op: &'static str,
        /// Transaction id.
        txn: u64,
        /// Operation-dependent magnitude: logged mutations for `commit`,
        /// undo records rolled back for `abort`/`recover-abort`, 0
        /// otherwise.
        n: u64,
        /// Wall-clock duration in microseconds (0 for point events).
        micros: u64,
    },
    /// A durability guarantee was weakened but execution continued — e.g.
    /// the directory fsync after an atomic rename failed, so the rename
    /// itself may not survive a power cut even though the data is intact.
    DurabilityRisk {
        /// The site that degraded (`snapshot.save.dirsync`, …).
        site: &'static str,
        /// Human-readable detail (the OS error), truncated by the emitter.
        detail: String,
    },
    /// A snapshot load fell back past the primary image (backup, the
    /// completed temp file of an interrupted save, or salvage), possibly
    /// dropping data.
    Recovery {
        /// `backup`, `tmp`, `salvaged-primary`, `salvaged-backup` or
        /// `salvaged-tmp`.
        source: &'static str,
        /// Objects dropped during salvage.
        dropped_objects: u64,
        /// Roots dropped because their target object was dropped.
        dropped_roots: u64,
        /// Whether the version/cache tail sections were lost.
        dropped_sections: bool,
        /// Wall-clock duration of the whole recovery cascade in
        /// microseconds (the operation spans several file reads and
        /// salvage passes, so the event records how long it took, not
        /// just that it happened).
        micros: u64,
    },
    /// One closed timed span: a bracketed operation measured by a
    /// [`SpanGuard`](crate::span::SpanGuard). Recorded on close (Chrome
    /// "complete event" model), so a span's children always precede it in
    /// the ring. The span tree reconstructs from `id`/`parent`.
    Span {
        /// Span name, which is also its histogram key (`opt.round`,
        /// `vm.run`, `store.wal.commit_flush`, …).
        name: &'static str,
        /// Process-unique span id (never 0).
        id: u64,
        /// Id of the enclosing span, 0 for a root.
        parent: u64,
        /// Small dense label of the recording thread.
        thread: u64,
        /// Start tick in nanoseconds (trace clock).
        start_ns: u64,
        /// Duration in nanoseconds.
        dur_ns: u64,
    },
}

impl Event {
    /// Stable schema tag for the JSON export.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RuleFired { .. } => "rule-fired",
            Event::ExpandDecision { .. } => "expand-decision",
            Event::OptRound { .. } => "opt-round",
            Event::OptStop { .. } => "opt-stop",
            Event::CacheOp { .. } => "cache-op",
            Event::GcPhase { .. } => "gc-phase",
            Event::SnapshotIo { .. } => "snapshot-io",
            Event::QueryRewrite { .. } => "query-rewrite",
            Event::PlanChosen { .. } => "plan-chosen",
            Event::ReflectConsult { .. } => "reflect-consult",
            Event::Relink { .. } => "relink",
            Event::DegradedSkip { .. } => "degraded-skip",
            Event::Wal { .. } => "wal",
            Event::Txn { .. } => "txn",
            Event::DurabilityRisk { .. } => "durability-risk",
            Event::Recovery { .. } => "recovery",
            Event::Span { .. } => "span",
        }
    }

    /// True for events that belong to the deterministic rewrite provenance
    /// log (the subset `replay` re-derives and checks).
    pub fn is_provenance(&self) -> bool {
        matches!(
            self,
            Event::RuleFired { .. }
                | Event::ExpandDecision { .. }
                | Event::OptRound { .. }
                | Event::OptStop { .. }
        )
    }

    pub(crate) fn write_json(&self, w: &mut JsonWriter) {
        match self {
            Event::RuleFired {
                rule,
                site,
                node,
                size_delta,
            } => {
                w.str_field("rule", rule);
                w.str_field("site", site);
                w.u64_field("node", *node);
                w.i64_field("size_delta", *size_delta);
            }
            Event::ExpandDecision {
                site,
                cost,
                limit,
                taken,
                growth,
            } => {
                w.str_field("site", site);
                w.u64_field("cost", *cost);
                w.u64_field("limit", *limit);
                w.bool_field("taken", *taken);
                w.u64_field("growth", *growth);
            }
            Event::OptRound {
                round,
                reductions,
                inlined,
                penalty,
                size,
            } => {
                w.u64_field("round", u64::from(*round));
                w.u64_field("reductions", *reductions);
                w.u64_field("inlined", *inlined);
                w.u64_field("penalty", *penalty);
                w.u64_field("size", *size);
            }
            Event::OptStop {
                reason,
                rounds,
                penalty,
                penalty_limit,
            } => {
                w.str_field("reason", reason);
                w.u64_field("rounds", u64::from(*rounds));
                w.u64_field("penalty", *penalty);
                w.u64_field("penalty_limit", *penalty_limit);
            }
            Event::CacheOp {
                cache,
                op,
                key_hash,
            } => {
                w.str_field("cache", cache);
                w.str_field("op", op);
                w.u64_field("key_hash", *key_hash);
            }
            Event::GcPhase {
                phase,
                micros,
                count,
                bytes,
            } => {
                w.str_field("phase", phase);
                w.u64_field("micros", *micros);
                w.u64_field("count", *count);
                w.u64_field("bytes", *bytes);
            }
            Event::SnapshotIo {
                dir,
                bytes,
                objects,
            } => {
                w.str_field("dir", dir);
                w.u64_field("bytes", *bytes);
                w.u64_field("objects", *objects);
            }
            Event::QueryRewrite {
                rule,
                relation,
                index,
            } => {
                w.str_field("rule", rule);
                w.opt_u64_field("relation", *relation);
                w.opt_u64_field("index", *index);
            }
            Event::PlanChosen { plan, target } => {
                w.str_field("plan", plan);
                w.opt_u64_field("target", *target);
            }
            Event::ReflectConsult {
                function,
                oid,
                outcome,
            } => {
                w.str_field("function", function);
                w.u64_field("oid", *oid);
                w.str_field("outcome", outcome);
            }
            Event::Relink { rebuilt, relinked } => {
                w.u64_field("rebuilt", *rebuilt);
                w.u64_field("relinked", *relinked);
            }
            Event::DegradedSkip {
                function,
                oid,
                reason,
                detail,
            } => {
                w.str_field("function", function);
                w.u64_field("oid", *oid);
                w.str_field("reason", reason);
                w.str_field("detail", detail);
            }
            Event::Wal {
                op,
                lsn,
                bytes,
                records,
                micros,
            } => {
                w.str_field("op", op);
                w.u64_field("lsn", *lsn);
                w.u64_field("bytes", *bytes);
                w.u64_field("records", *records);
                w.u64_field("micros", *micros);
            }
            Event::Txn { op, txn, n, micros } => {
                w.str_field("op", op);
                w.u64_field("txn", *txn);
                w.u64_field("n", *n);
                w.u64_field("micros", *micros);
            }
            Event::DurabilityRisk { site, detail } => {
                w.str_field("site", site);
                w.str_field("detail", detail);
            }
            Event::Recovery {
                source,
                dropped_objects,
                dropped_roots,
                dropped_sections,
                micros,
            } => {
                w.str_field("source", source);
                w.u64_field("dropped_objects", *dropped_objects);
                w.u64_field("dropped_roots", *dropped_roots);
                w.bool_field("dropped_sections", *dropped_sections);
                w.u64_field("micros", *micros);
            }
            Event::Span {
                name,
                id,
                parent,
                thread,
                start_ns,
                dur_ns,
            } => {
                w.str_field("name", name);
                w.u64_field("id", *id);
                w.u64_field("parent", *parent);
                w.u64_field("thread", *thread);
                w.u64_field("start_ns", *start_ns);
                w.u64_field("dur_ns", *dur_ns);
            }
        }
    }
}

/// A recorded event with its global sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Sample {
    /// Monotonic sequence number assigned at record time (never reused,
    /// so gaps reveal ring-buffer overwrites).
    pub seq: u64,
    /// The event payload.
    pub event: Event,
}
