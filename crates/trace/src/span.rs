//! Hierarchical timed spans with RAII guards.
//!
//! A span measures one bracketed operation — an optimizer round, a VM
//! run, a WAL commit flush. Spans nest: each thread keeps a stack of
//! open spans, and a new span's parent is whatever is on top, so the
//! recorded stream reconstructs into a tree without the instrumented
//! code threading any context around. Cross-thread work (the parallel
//! whole-world optimizer) parents explicitly: the spawning side captures
//! [`current`] and the worker opens its span with
//! [`enter_with_parent`].
//!
//! The fast path is the crate-wide rule: one relaxed atomic load when
//! tracing is disabled ([`enter`] returns an inert guard that does
//! nothing on drop — no allocation, no TLS touch, no clock read). When
//! enabled, the guard takes two clock reads and, on close, pushes one
//! [`Event::Span`] into the event ring and feeds the histogram keyed by
//! the span's name — so `tmlc stats` percentiles come for free with the
//! span tree.
//!
//! ```
//! let _guard = tml_trace::span!("opt.round");
//! // ... the bracketed operation ...
//! // guard drops here; duration recorded if tracing was on at entry
//! ```

use crate::event::Event;
use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide span id allocator. Ids start at 1; 0 is the "no parent"
/// sentinel in [`Event::Span::parent`].
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Process-wide thread label allocator (std thread ids are opaque).
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Open spans on this thread, innermost last.
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Small dense label for this thread, assigned on first span.
    static THREAD_LABEL: Cell<u64> = const { Cell::new(0) };
}

/// Stable small integer identifying the current thread in span records.
pub fn thread_label() -> u64 {
    THREAD_LABEL.with(|l| {
        let v = l.get();
        if v != 0 {
            return v;
        }
        let v = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
        l.set(v);
        v
    })
}

/// Id of the innermost open span on this thread, or 0 when none (or when
/// tracing is disabled — disabled guards never push). Capture this before
/// spawning a worker and pass it to [`enter_with_parent`] so the worker's
/// spans attach under the spawning operation in the tree.
pub fn current() -> u64 {
    STACK.with(|s| s.borrow().last().copied().unwrap_or(0))
}

/// RAII guard for one span. Created by [`enter`] / [`enter_with_parent`]
/// (usually via the [`span!`](crate::span!) macro); records the span on
/// drop. Inert when tracing was disabled at entry.
#[must_use = "a span guard measures until it is dropped; binding it to _ closes it immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    live: Option<Live>,
}

#[derive(Debug)]
struct Live {
    name: &'static str,
    id: u64,
    parent: u64,
    start_ns: u64,
}

/// Open a span named `name`, parented under the innermost open span of
/// this thread. One atomic load and an inert guard when tracing is off.
#[inline]
pub fn enter(name: &'static str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { live: None };
    }
    open(name, current())
}

/// Open a span with an explicit parent id (0 for a root), for work that
/// crosses threads. The span still joins this thread's stack so further
/// nested spans parent under it.
#[inline]
pub fn enter_with_parent(name: &'static str, parent: u64) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { live: None };
    }
    open(name, parent)
}

fn open(name: &'static str, parent: u64) -> SpanGuard {
    let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    STACK.with(|s| s.borrow_mut().push(id));
    SpanGuard {
        live: Some(Live {
            name,
            id,
            parent,
            start_ns: crate::global().clock().now_ns(),
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        // Unwind this thread's stack to (and past) our own id. Guards are
        // dropped LIFO under normal control flow; popping to the id keeps
        // the stack consistent even if an inner guard leaked.
        STACK.with(|s| {
            let mut st = s.borrow_mut();
            while let Some(top) = st.pop() {
                if top == live.id {
                    break;
                }
            }
        });
        let rec = crate::global();
        // Tracing may have been switched off mid-span; the stack above
        // still had to unwind, but nothing is recorded.
        if !rec.is_enabled() {
            return;
        }
        let end_ns = rec.clock().now_ns();
        let dur_ns = end_ns.saturating_sub(live.start_ns);
        rec.hist(live.name).record(dur_ns);
        rec.record(Event::Span {
            name: live.name,
            id: live.id,
            parent: live.parent,
            thread: thread_label(),
            start_ns: live.start_ns,
            dur_ns,
        });
    }
}

impl SpanGuard {
    /// The span's id, for explicit cross-thread parenting (0 when inert).
    pub fn id(&self) -> u64 {
        self.live.as_ref().map_or(0, |l| l.id)
    }

    /// Whether this guard will record on drop.
    pub fn is_recording(&self) -> bool {
        self.live.is_some()
    }
}

/// Open a [`SpanGuard`] for the enclosing scope:
/// `let _g = tml_trace::span!("vm.run");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span::enter($name)
    };
    ($name:expr, parent = $parent:expr) => {
        $crate::span::enter_with_parent($name, $parent)
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sample;

    /// Global-recorder tests share process state (the recorder and the
    /// clock), so they serialize on one mutex.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        match GATE.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn spans(samples: &[Sample]) -> Vec<(&'static str, u64, u64, u64)> {
        samples
            .iter()
            .filter_map(|s| match s.event {
                Event::Span {
                    name,
                    id,
                    parent,
                    dur_ns,
                    ..
                } => Some((name, id, parent, dur_ns)),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn disabled_spans_cost_nothing_and_record_nothing() {
        let _g = lock();
        let rec = crate::global();
        rec.set_enabled(false);
        rec.clear();
        {
            let g = enter("outer");
            assert!(!g.is_recording());
            assert_eq!(g.id(), 0);
            assert_eq!(current(), 0, "disabled spans never join the stack");
            let _inner = enter("inner");
        }
        assert!(rec.events().is_empty());
        assert!(rec.hist_snapshot().is_empty());
    }

    #[test]
    fn nested_spans_build_a_tree_with_mock_durations() {
        let _g = lock();
        let rec = crate::global();
        rec.clear();
        rec.clock().mock(1_000);
        rec.set_enabled(true);
        {
            let outer = enter("outer");
            rec.clock().advance(10);
            {
                let _inner = enter("inner");
                assert_eq!(current(), _inner.id());
                rec.clock().advance(5);
            }
            rec.clock().advance(2);
            assert_eq!(current(), outer.id());
        }
        rec.set_enabled(false);
        rec.clock().unmock();
        let got = spans(&rec.events());
        assert_eq!(got.len(), 2, "inner closes first, then outer");
        let (inner, outer) = (got[0], got[1]);
        assert_eq!(inner.0, "inner");
        assert_eq!(outer.0, "outer");
        assert_eq!(inner.2, outer.1, "inner's parent is outer");
        assert_eq!(outer.2, 0, "outer is a root");
        assert_eq!(inner.3, 5);
        assert_eq!(outer.3, 17);
        // Span-fed histograms carry the same durations.
        let hists = rec.hist_snapshot();
        let names: Vec<&str> = hists.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, vec!["inner", "outer"]);
        assert_eq!(hists[0].1.max, 5);
        assert_eq!(hists[1].1.max, 17);
        rec.clear();
    }

    #[test]
    fn cross_thread_parenting_is_explicit() {
        let _g = lock();
        let rec = crate::global();
        rec.clear();
        rec.clock().mock(0);
        rec.set_enabled(true);
        {
            let fanout = enter("fanout");
            let parent = fanout.id();
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    std::thread::spawn(move || {
                        let _w = enter_with_parent("worker", parent);
                        crate::global().clock().advance(3);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        }
        rec.set_enabled(false);
        rec.clock().unmock();
        let got = spans(&rec.events());
        let fanout_id = got.iter().find(|s| s.0 == "fanout").unwrap().1;
        let workers: Vec<_> = got.iter().filter(|s| s.0 == "worker").collect();
        assert_eq!(workers.len(), 2);
        for w in workers {
            assert_eq!(w.2, fanout_id, "worker parented under fanout");
        }
        rec.clear();
    }

    #[test]
    fn span_records_survive_ring_overflow_with_consistent_accounting() {
        let _g = lock();
        let rec = crate::global();
        rec.clear();
        rec.set_capacity(4);
        rec.clock().mock(0);
        rec.set_enabled(true);
        for n in 0..6 {
            let _s = enter("tick");
            rec.record(Event::CacheOp {
                cache: "opt-cache",
                op: "hit",
                key_hash: n,
            });
        }
        rec.set_enabled(false);
        rec.clock().unmock();
        // 12 records went in (6 events + 6 spans) into 4 slots.
        assert_eq!(rec.recorded(), 12);
        assert_eq!(rec.dropped(), 8);
        assert_eq!(rec.events().len(), 4);
        assert_eq!(rec.recorded(), rec.dropped() + rec.events().len() as u64);
        // The drop counter is published so silent loss is visible.
        assert_eq!(rec.counter("trace.ring.dropped").get(), 8);
        // Histograms are not ring-bound: all 6 spans measured.
        assert_eq!(rec.hist("tick").count(), 6);
        rec.clear();
        rec.set_capacity(crate::DEFAULT_CAPACITY);
    }
}
