//! End-to-end server tests: ship → relink → execute inside transactions,
//! explicit commit/abort semantics, optimize, graceful shutdown, and
//! durability of exactly the committed work.

mod common;

use common::{author_bump_ptml, read_slots, start_server, TempDir};
use tml_txn::wire::{ErrCode, Value};
use tml_txn::{Client, ServerOptions};

fn opts() -> ServerOptions {
    ServerOptions {
        addr: "127.0.0.1:0".into(),
        ..ServerOptions::default()
    }
}

#[test]
fn ship_call_commit_abort_and_shutdown() {
    let dir = TempDir::new("basic");
    let server = start_server(&dir.image(), opts());
    let ptml = author_bump_ptml();

    let mut c = Client::connect(server.addr).expect("connect");
    c.ping().expect("ping");

    // Ship installs the function durably (autocommit transaction).
    c.ship("work.bump", &ptml).expect("ship");

    // Autocommit call: effect survives.
    let v = c
        .call("work.bump", &[Value::Int(0), Value::Int(5)])
        .expect("bump");
    assert_eq!(v, Value::Int(5));

    // Explicit transaction, committed: effect survives.
    c.begin().expect("begin");
    let v = c
        .call("work.bump", &[Value::Int(0), Value::Int(2)])
        .expect("bump in txn");
    assert_eq!(v, Value::Int(7));
    c.commit().expect("commit");

    // Explicit transaction, aborted: effect rolled back.
    c.begin().expect("begin");
    let v = c
        .call("work.bump", &[Value::Int(0), Value::Int(100)])
        .expect("bump in doomed txn");
    assert_eq!(v, Value::Int(107));
    c.abort().expect("abort");
    let v = c
        .call("work.bump", &[Value::Int(0), Value::Int(0)])
        .expect("read back");
    assert_eq!(v, Value::Int(7), "aborted bump must not stick");

    // Unknown global is a typed error, not a dead session.
    let e = c.call("no.such", &[]).expect_err("unknown global");
    assert!(matches!(
        e,
        tml_txn::client::ClientError::Server {
            code: ErrCode::Unresolved,
            ..
        }
    ));
    c.ping().expect("session still alive");

    // Server-side reflective optimization of the shipped function.
    c.optimize("work.bump").expect("optimize");
    let v = c
        .call("work.bump", &[Value::Int(1), Value::Int(3)])
        .expect("optimized bump");
    assert_eq!(v, Value::Int(3));

    c.bye().expect("bye");

    // Graceful shutdown drains and checkpoints.
    let mut c = Client::connect(server.addr).expect("connect for shutdown");
    c.shutdown().expect("shutdown");
    server.join().expect("clean server exit");

    // The committed state — and nothing else — is on disk.
    let slots = read_slots(&dir.image());
    assert_eq!(slots[0], 7);
    assert_eq!(slots[1], 3);
    assert!(slots[2..].iter().all(|&v| v == 0));
}

#[test]
fn transaction_protocol_errors_are_typed() {
    let dir = TempDir::new("proto");
    let server = start_server(&dir.image(), opts());

    let mut c = Client::connect(server.addr).expect("connect");
    // Commit/abort without a transaction.
    for r in [c.commit(), c.abort()] {
        let e = r.expect_err("no txn open");
        assert!(matches!(
            e,
            tml_txn::client::ClientError::Server {
                code: ErrCode::Proto,
                ..
            }
        ));
    }
    // Double begin.
    c.begin().expect("begin");
    let e = c.begin().expect_err("nested begin");
    assert!(matches!(
        e,
        tml_txn::client::ClientError::Server {
            code: ErrCode::Proto,
            ..
        }
    ));
    // Optimize inside a transaction is refused.
    let e = c.optimize("work.bump").expect_err("optimize in txn");
    assert!(matches!(
        e,
        tml_txn::client::ClientError::Server {
            code: ErrCode::Proto,
            ..
        }
    ));
    c.abort().expect("abort");

    // A session that disconnects mid-transaction is rolled back.
    let ptml = author_bump_ptml();
    c.ship("work.bump", &ptml).expect("ship");
    {
        let mut dropper = Client::connect(server.addr).expect("connect");
        dropper.begin().expect("begin");
        dropper
            .call("work.bump", &[Value::Int(4), Value::Int(9)])
            .expect("bump");
        // Drop without commit: the server aborts on EOF.
    }
    // Give the server a beat to process the disconnect.
    std::thread::sleep(std::time::Duration::from_millis(100));
    let v = c
        .call("work.bump", &[Value::Int(4), Value::Int(0)])
        .expect("read back");
    assert_eq!(v, Value::Int(0), "disconnected txn must roll back");

    let mut c2 = Client::connect(server.addr).expect("connect");
    c2.shutdown().expect("shutdown");
    server.join().expect("clean exit");
}

#[test]
fn concurrent_sessions_serialize_on_the_same_slot() {
    let dir = TempDir::new("concurrent");
    let server = start_server(&dir.image(), opts());
    let ptml = author_bump_ptml();
    {
        let mut c = Client::connect(server.addr).expect("connect");
        c.ship("work.bump", &ptml).expect("ship");
        c.bye().ok();
    }

    const WRITERS: usize = 4;
    const PER: i64 = 10;
    let addr = server.addr;
    let handles: Vec<_> = (0..WRITERS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).expect("connect");
                let mut acked = 0i64;
                for _ in 0..PER {
                    c.transact(16, |c| c.call("work.bump", &[Value::Int(2), Value::Int(1)]))
                        .expect("bump eventually commits");
                    acked += 1;
                }
                c.bye().ok();
                acked
            })
        })
        .collect();
    let total: i64 = handles.into_iter().map(|h| h.join().expect("writer")).sum();
    assert_eq!(total, WRITERS as i64 * PER);

    let mut c = Client::connect(addr).expect("connect");
    let v = c
        .call("work.bump", &[Value::Int(2), Value::Int(0)])
        .expect("read");
    assert_eq!(v, Value::Int(total), "no lost updates");
    c.shutdown().expect("shutdown");
    server.join().expect("clean exit");

    assert_eq!(read_slots(&dir.image())[2], total);
}
