//! Shared scaffolding for the server/transaction integration tests: a
//! client-authored PTML payload that bumps a shared persistent array,
//! and a server running on its own thread against a durable image.

// Each test binary uses a different subset of these helpers.
#![allow(dead_code)]

use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use tml_core::Registry;
use tml_lang::ast::Type;
use tml_lang::{Session, SessionConfig};
use tml_store::{DurableOptions, DurableStore, Object, SVal, StoreAccess};
use tml_txn::{Client, Server, ServerOptions};

/// Number of counter slots in the shared `db.slots` array.
pub const SLOTS: usize = 16;

/// A temp dir that cleans up after itself.
pub struct TempDir(pub PathBuf);

impl TempDir {
    pub fn new(tag: &str) -> TempDir {
        let dir = std::env::temp_dir().join(format!(
            "tml_txn_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("tmpdir");
        TempDir(dir)
    }

    pub fn image(&self) -> PathBuf {
        self.0.join("server.img")
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        std::fs::remove_dir_all(&self.0).ok();
    }
}

/// Author `work.bump(i, d)` on a throwaway client session and return its
/// PTML bytes. The function reads and writes `db.slots` — a free
/// identifier the server resolves against its own globals at ship time.
pub fn author_bump_ptml() -> Vec<u8> {
    let mut client = Session::default_session().expect("client session");
    let arr = client.store.alloc(Object::Array(vec![SVal::Int(0); SLOTS]));
    client.globals.insert("db.slots".into(), SVal::Ref(arr));
    client.types.insert("db.slots", Type::Array);
    client
        .load_str(
            "module work export bump\n\
             let bump(i: Int, d: Int): Int =\n\
               (array.set(db.slots, i, array.get(db.slots, i) + d);\n\
                array.get(db.slots, i))\n\
             end",
        )
        .expect("bump compiles");
    extract_ptml(&client, "work.bump")
}

/// Number of independent single-cell arrays (`db.s0`..`db.s3`) used by
/// the stress tests to create multi-key lock conflicts.
pub const CELLS: usize = 4;

/// Author `work.bump0`..`work.bump{CELLS-1}` — one bump function per
/// independent cell array, so transactions touching two cells in
/// opposite orders genuinely deadlock. Returns `(name, ptml)` pairs.
pub fn author_cell_ptmls() -> Vec<(String, Vec<u8>)> {
    let mut client = Session::default_session().expect("client session");
    let mut src = String::from("module work export ");
    src.push_str(
        &(0..CELLS)
            .map(|k| format!("bump{k}"))
            .collect::<Vec<_>>()
            .join(", "),
    );
    src.push('\n');
    for k in 0..CELLS {
        let arr = client.store.alloc(Object::Array(vec![SVal::Int(0)]));
        client.globals.insert(format!("db.s{k}"), SVal::Ref(arr));
        client.types.insert(format!("db.s{k}"), Type::Array);
        src.push_str(&format!(
            "let bump{k}(d: Int): Int =\n\
             \x20 (array.set(db.s{k}, 0, array.get(db.s{k}, 0) + d);\n\
             \x20  array.get(db.s{k}, 0))\n"
        ));
    }
    src.push_str("end");
    client.load_str(&src).expect("cell module compiles");
    (0..CELLS)
        .map(|k| {
            let name = format!("work.bump{k}");
            let ptml = extract_ptml(&client, &name);
            (name, ptml)
        })
        .collect()
}

/// Pull the PTML bytes off a compiled global's closure.
pub fn extract_ptml(client: &Session, name: &str) -> Vec<u8> {
    let SVal::Ref(oid) = *client.global(name).expect("global bound") else {
        panic!("expected closure global");
    };
    let Object::Closure(clo) = client.store.get(oid).expect("closure") else {
        panic!("expected closure object");
    };
    let ptml_oid = clo.ptml.expect("PTML attached");
    let Object::Ptml(bytes) = client.store.get(ptml_oid).expect("ptml") else {
        panic!("expected ptml object");
    };
    bytes.clone()
}

/// Create (or reopen) a durable session with the `db.slots` array
/// installed as a root and a global.
pub fn server_session(image: &Path) -> Session<DurableStore> {
    if image.exists() {
        let (ds, _report) = DurableStore::open(image, DurableOptions::default()).expect("reopen");
        let mut sess = tml_reflect::session_from_access_with(
            ds,
            SessionConfig::default(),
            Registry::standard(),
        );
        tml_reflect::relink_image_code(&mut sess).expect("relink");
        let slots = StoreAccess::root(&sess.store, "db.slots").expect("slots root survives");
        sess.globals.insert("db.slots".into(), SVal::Ref(slots));
        for k in 0..CELLS {
            let cell = StoreAccess::root(&sess.store, &format!("db.s{k}")).expect("cell root");
            sess.globals.insert(format!("db.s{k}"), SVal::Ref(cell));
        }
        sess
    } else {
        let ds = DurableStore::create(image, DurableOptions::default()).expect("create");
        let mut sess = Session::on_store(ds, SessionConfig::default(), Registry::standard())
            .expect("server session");
        let slots = sess
            .store
            .alloc(Object::Array(vec![SVal::Int(0); SLOTS]))
            .expect("slots array");
        sess.store.set_root("db.slots", slots).expect("slots root");
        for k in 0..CELLS {
            let cell = sess
                .store
                .alloc(Object::Array(vec![SVal::Int(0)]))
                .expect("cell array");
            sess.store
                .set_root(&format!("db.s{k}"), cell)
                .expect("cell root");
            sess.globals.insert(format!("db.s{k}"), SVal::Ref(cell));
        }
        sess.store.commit().expect("commit setup");
        sess.globals.insert("db.slots".into(), SVal::Ref(slots));
        sess
    }
}

/// A server on its own thread; `join` returns `run`'s result.
pub struct TestServer {
    pub addr: SocketAddr,
    handle: JoinHandle<std::io::Result<()>>,
}

impl TestServer {
    pub fn join(self) -> std::io::Result<()> {
        self.handle.join().expect("server thread panicked")
    }
}

/// Bind, then build the (non-`Send`) session inside the server thread.
pub fn start_server(image: &Path, opts: ServerOptions) -> TestServer {
    let server = Server::bind(opts).expect("bind");
    let addr = server.local_addr();
    let image = image.to_path_buf();
    let handle = std::thread::spawn(move || {
        let sess = server_session(&image);
        server.run(sess)
    });
    // Wait for the accept loop.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Client::connect(addr) {
            Ok(mut c) => {
                c.ping().expect("ping");
                c.bye().ok();
                break;
            }
            Err(_) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(10)),
            Err(e) => panic!("server never came up: {e}"),
        }
    }
    TestServer { addr, handle }
}

/// Read cell `k` (`db.s{k}`) straight off a durable image.
pub fn read_cell(image: &Path, k: usize) -> i64 {
    let (ds, _) = DurableStore::open(image, DurableOptions::default()).expect("reopen");
    let root = StoreAccess::root(&ds, &format!("db.s{k}")).expect("cell root");
    let Object::Array(vals) = ds.get(root).expect("cell object") else {
        panic!("expected array");
    };
    match vals[0] {
        SVal::Int(n) => n,
        ref other => panic!("expected int cell, got {other:?}"),
    }
}

/// Read the committed contents of `db.slots` straight off a durable
/// image (no session, no server).
pub fn read_slots(image: &Path) -> Vec<i64> {
    let (ds, report) = DurableStore::open(image, DurableOptions::default()).expect("reopen");
    assert!(!report.stale_log, "log matches the image");
    let root = StoreAccess::root(&ds, "db.slots").expect("slots root");
    let Object::Array(vals) = ds.get(root).expect("slots object") else {
        panic!("expected array");
    };
    vals.iter()
        .map(|v| match v {
            SVal::Int(n) => *n,
            other => panic!("expected int slot, got {other:?}"),
        })
        .collect()
}
