//! Property: random lock orders always terminate in bounded time.
//!
//! A fleet of threads repeatedly grabs random subsets of a small key
//! pool in random order — the classic deadlock recipe. The wait-for
//! graph detector (with the timeout backstop behind it) must convert
//! every cycle into a typed abort of one participant; nothing may hang,
//! and the table must end empty. Seeded (`TML_FAULT_SEED` in CI) so any
//! failure replays.

use std::sync::Arc;
use std::time::{Duration, Instant};

use tml_txn::{LockError, LockOptions, LockTable};

struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

fn seed() -> u64 {
    std::env::var("TML_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xBADD_1CE5)
}

#[test]
fn random_lock_orders_terminate_in_bounded_time() {
    const THREADS: u64 = 8;
    const ROUNDS: usize = 40;
    const KEYS: u64 = 6;

    let table = Arc::new(LockTable::new());
    let opts = LockOptions {
        timeout: Duration::from_millis(200),
        retries: 2,
        backoff: Duration::from_millis(1),
    };
    let started = Instant::now();

    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let table = Arc::clone(&table);
            std::thread::spawn(move || {
                let mut rng = XorShift(seed() ^ (t + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                let mut aborted = 0u64;
                let mut round = 0usize;
                // Transaction ids must be unique across the run: reuse of
                // an id while its victim mark is pending would confuse
                // the detector. Allocate per (thread, attempt).
                let mut txn = t + 1;
                while round < ROUNDS {
                    // 2..=4 distinct keys in random order.
                    let want = 2 + (rng.next() % 3) as usize;
                    let mut keys: Vec<u64> = Vec::new();
                    while keys.len() < want {
                        let k = rng.next() % KEYS;
                        if !keys.contains(&k) {
                            keys.push(k);
                        }
                    }
                    let mut ok = true;
                    for (i, &k) in keys.iter().enumerate() {
                        // Mix shared and exclusive modes.
                        let exclusive = i == keys.len() - 1 || rng.next().is_multiple_of(2);
                        match table.acquire_with_retry(txn, k, exclusive, &opts) {
                            Ok(()) => {}
                            Err(LockError::Deadlock) | Err(LockError::Timeout) => {
                                aborted += 1;
                                ok = false;
                                break;
                            }
                            Err(e) => panic!("unexpected lock failure: {e}"),
                        }
                    }
                    table.release_all(txn);
                    txn += THREADS; // fresh id for the retry or next round
                    if ok {
                        round += 1;
                    }
                }
                aborted
            })
        })
        .collect();

    let mut total_aborts = 0;
    for h in handles {
        total_aborts += h.join().expect("locker thread");
    }
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "random lock orders must terminate in bounded time \
         ({total_aborts} aborts along the way)"
    );
    let stats = table.stats();
    assert_eq!(stats.holders, 0, "every lock released");
    assert_eq!(stats.waiters, 0, "no waiter left behind");
}
