//! Crash-recovery matrix for the transaction layer.
//!
//! The contract under test: after a crash at any point of the
//! transaction lifecycle — mid-transaction, before the commit marker,
//! mid-rollback — reopening the image recovers **byte-identically** the
//! state an explicit, successful resolution of the same transactions
//! would have produced: committed transactions present, losers rolled
//! back (at recovery time, through the same undo records), version
//! counters and all.
//!
//! Crash points come from the seeded failpoint matrix (`txn.commit`,
//! `txn.abort`, `lock.acquire`; `TML_FAULT_SEED` varies the scripts in
//! CI) plus plain mid-flight drops. Every scenario is deterministic.

use std::path::{Path, PathBuf};

use tml_core::Oid;
use tml_store::failpoint::{Action, FailSpec, ScopedFailpoints};
use tml_store::{snapshot, DurableOptions, DurableStore, Object, SVal, StoreAccess, StoreError};
use tml_txn::txn::oid_key;
use tml_txn::{TxnManager, TxnOptions, TxnView};

const SLOTS: usize = 6;

fn tmpdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("tml_txnrec_{}_{}", name, std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn fault_seed(default: u64) -> u64 {
    std::env::var("TML_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(default)
}

/// A fresh image with `SLOTS` int-tuple objects rooted `slot{i}`,
/// checkpointed so recovery replays only transaction traffic.
fn setup(path: &Path) -> (DurableStore, Vec<Oid>) {
    let mut d = DurableStore::create(path, DurableOptions::default()).unwrap();
    let slots: Vec<Oid> = (0..SLOTS)
        .map(|i| {
            let oid = d.alloc(Object::Tuple(vec![SVal::Int(0)])).unwrap();
            d.set_root(&format!("slot{i}"), oid).unwrap();
            oid
        })
        .collect();
    d.commit().unwrap();
    d.checkpoint().unwrap();
    (d, slots)
}

fn put(
    mgr: &TxnManager,
    d: &mut DurableStore,
    txn: &mut tml_txn::Txn,
    oid: Oid,
    v: i64,
) -> Result<(), StoreError> {
    let locks = std::sync::Arc::clone(mgr.locks());
    let mut view = TxnView::new(d, txn, &locks);
    view.set(oid, Object::Tuple(vec![SVal::Int(v)]))
}

fn recovered(path: &Path) -> (Vec<u8>, tml_store::durable::OpenReport) {
    let (d, report) = DurableStore::open(path, DurableOptions::default()).unwrap();
    (snapshot::to_bytes(d.store()), report)
}

fn slot_value(path: &Path, i: usize) -> i64 {
    let (d, _) = DurableStore::open(path, DurableOptions::default()).unwrap();
    let oid = StoreAccess::root(&d, &format!("slot{i}")).unwrap();
    let Object::Tuple(items) = d.get(oid).unwrap() else {
        panic!("expected tuple");
    };
    let SVal::Int(v) = items[0] else {
        panic!("expected int")
    };
    v
}

/// Two interleaved transactions; one commits, the other is in flight at
/// the crash. Recovery must equal the reference run in which the loser
/// was explicitly aborted at the same point — byte-for-byte.
#[test]
fn interleaved_loser_recovers_byte_identical_to_explicit_abort() {
    // The seed varies how much of the loser's work is in the committed
    // prefix (1..=3 ops), so CI's seed matrix walks distinct scripts.
    let loser_ops = 1 + (fault_seed(0) % 3) as i64;

    let run = |explicit_abort: bool| -> (PathBuf, PathBuf) {
        let dir = tmpdir(if explicit_abort { "ref" } else { "crash" });
        let path = dir.join("db.img");
        let (mut d, slots) = setup(&path);
        let mgr = TxnManager::new(TxnOptions::default());
        let mut t1 = mgr.begin(&mut d);
        let mut t2 = mgr.begin(&mut d);

        put(&mgr, &mut d, &mut t1, slots[0], 10).unwrap();
        for k in 0..loser_ops {
            put(&mgr, &mut d, &mut t2, slots[1 + k as usize], 100 + k).unwrap();
        }
        put(&mgr, &mut d, &mut t1, slots[4], 40).unwrap();
        // t1's commit marker lands after every t2 op, putting t2's whole
        // trail inside the committed prefix.
        mgr.commit(&mut d, t1).unwrap();

        if explicit_abort {
            mgr.abort(&mut d, t2).unwrap();
        }
        drop(d); // crash (or clean close — both end here)
        (dir, path)
    };

    let (crash_dir, crash_path) = run(false);
    let (ref_dir, ref_path) = run(true);

    let (crash_bytes, crash_report) = recovered(&crash_path);
    let (ref_bytes, ref_report) = recovered(&ref_path);
    assert_eq!(crash_report.losers_undone, 1, "t2 is a loser");
    assert_eq!(crash_report.loser_records, loser_ops as u64);
    assert_eq!(ref_report.losers_undone, 0, "reference resolved cleanly");
    assert_eq!(
        crash_bytes, ref_bytes,
        "recovery must equal the explicit-abort run byte-for-byte"
    );

    // Recovery healed the log; a second open replays nothing and agrees.
    let (again, report2) = recovered(&crash_path);
    assert_eq!(
        report2.losers_undone, 0,
        "heal checkpoint consumed the loser"
    );
    assert_eq!(again, crash_bytes, "recovery is idempotent");

    assert_eq!(slot_value(&crash_path, 0), 10);
    assert_eq!(slot_value(&crash_path, 1), 0, "loser work rolled back");
    assert_eq!(slot_value(&crash_path, 4), 40);

    std::fs::remove_dir_all(&crash_dir).ok();
    std::fs::remove_dir_all(&ref_dir).ok();
}

/// The `txn.commit` failpoint fires before the marker: the transaction's
/// work is never acknowledged, and a later committed transaction pushes
/// the loser's trail into the committed prefix. Recovery rolls it back —
/// identically to a run that aborted it outright.
#[test]
fn crash_before_commit_marker_loses_the_whole_txn() {
    let run = |inject: bool| -> (PathBuf, PathBuf) {
        let dir = tmpdir(if inject { "cmt_crash" } else { "cmt_ref" });
        let path = dir.join("db.img");
        let (mut d, slots) = setup(&path);
        let mgr = TxnManager::new(TxnOptions::default());

        let mut t1 = mgr.begin(&mut d);
        put(&mgr, &mut d, &mut t1, slots[0], 7).unwrap();
        put(&mgr, &mut d, &mut t1, slots[1], 8).unwrap();
        if inject {
            let fp = ScopedFailpoints::new(&[(
                "txn.commit",
                FailSpec::always(Action::Io).for_key(t1.id()),
            )]);
            let err = mgr.commit(&mut d, t1).expect_err("injected commit failure");
            assert!(matches!(err, StoreError::Io(_)), "typed failure: {err}");
            drop(fp);
        } else {
            mgr.abort(&mut d, t1).unwrap();
        }

        // An unrelated transaction commits afterwards; its marker makes
        // the loser's forward records durable parts of the prefix.
        let mut t2 = mgr.begin(&mut d);
        put(&mgr, &mut d, &mut t2, slots[2], 9).unwrap();
        mgr.commit(&mut d, t2).unwrap();
        drop(d); // crash
        (dir, path)
    };

    let (crash_dir, crash_path) = run(true);
    let (ref_dir, ref_path) = run(false);

    let (crash_bytes, crash_report) = recovered(&crash_path);
    let (ref_bytes, _) = recovered(&ref_path);
    assert_eq!(crash_report.losers_undone, 1);
    assert_eq!(crash_report.loser_records, 2);
    assert_eq!(
        crash_bytes, ref_bytes,
        "unacknowledged commit must recover like an abort"
    );
    assert_eq!(slot_value(&crash_path, 0), 0);
    assert_eq!(slot_value(&crash_path, 1), 0);
    assert_eq!(slot_value(&crash_path, 2), 9);

    std::fs::remove_dir_all(&crash_dir).ok();
    std::fs::remove_dir_all(&ref_dir).ok();
}

/// The `txn.abort` failpoint fires mid-rollback, leaving a partial
/// compensation trail in the log. Recovery picks up where the abort
/// stopped: replayed CLRs pop their undo entries, the rest are undone at
/// recovery time — converging on exactly the fully-aborted state.
#[test]
fn crash_mid_rollback_completes_the_abort_on_recovery() {
    // Fail after 0, 1 or 2 CLRs depending on the CI seed.
    let clrs_before_crash = fault_seed(1) % 3;

    let run = |inject: bool| -> (PathBuf, PathBuf) {
        let tag = if inject { "abt_crash" } else { "abt_ref" };
        let dir = tmpdir(&format!("{tag}_{clrs_before_crash}"));
        let path = dir.join("db.img");
        let (mut d, slots) = setup(&path);
        let mgr = TxnManager::new(TxnOptions::default());

        let mut t1 = mgr.begin(&mut d);
        put(&mgr, &mut d, &mut t1, slots[0], 70).unwrap();
        put(&mgr, &mut d, &mut t1, slots[1], 71).unwrap();
        put(&mgr, &mut d, &mut t1, slots[2], 72).unwrap();
        if inject {
            let mut spec = FailSpec::always(Action::Io).for_key(t1.id());
            spec.after = clrs_before_crash;
            let fp = ScopedFailpoints::new(&[("txn.abort", spec)]);
            mgr.abort(&mut d, t1).expect_err("injected abort failure");
            drop(fp);
        } else {
            mgr.abort(&mut d, t1).unwrap();
        }

        let mut t2 = mgr.begin(&mut d);
        put(&mgr, &mut d, &mut t2, slots[3], 73).unwrap();
        mgr.commit(&mut d, t2).unwrap();
        drop(d); // crash
        (dir, path)
    };

    let (crash_dir, crash_path) = run(true);
    let (ref_dir, ref_path) = run(false);

    let (crash_bytes, crash_report) = recovered(&crash_path);
    let (ref_bytes, _) = recovered(&ref_path);
    assert_eq!(crash_report.losers_undone, 1);
    assert_eq!(
        crash_report.loser_records,
        3 - clrs_before_crash,
        "recovery undoes exactly the steps the crashed abort did not log"
    );
    assert_eq!(
        crash_bytes, ref_bytes,
        "partial compensation trail must converge on the aborted state"
    );
    for i in 0..3 {
        assert_eq!(slot_value(&crash_path, i), 0, "slot{i} rolled back");
    }
    assert_eq!(slot_value(&crash_path, 3), 73);

    std::fs::remove_dir_all(&crash_dir).ok();
    std::fs::remove_dir_all(&ref_dir).ok();
}

/// A crash during a tier hot-swap. The promotion's store mutations ride
/// an ordinary transaction, so a crash before its commit marker makes
/// the swap a loser: recovery must restore the closure, its PTML
/// reference and the tier bookkeeping byte-identically to a run that
/// explicitly aborted the swap — the promoted code simply never
/// happened.
#[test]
fn crash_during_tier_swap_recovers_the_pre_swap_closure() {
    use tml_core::Registry;
    use tml_lang::{Session, SessionConfig};
    use tml_reflect::tier::{self, TierOptions};

    const SRC: &str = "
module complex export new, x, y
let new(a: Real, b: Real): Tuple = tuple(a, b)
let x(c: Tuple): Real = c.0
let y(c: Tuple): Real = c.1
end
module geom export abs
let abs(c: Tuple): Real =
  real.sqrt(complex.x(c) * complex.x(c) + complex.y(c) * complex.y(c))
end";

    // The seed picks the crash point: even = the process dies with the
    // swap transaction still in flight, odd = the `txn.commit` failpoint
    // fires before the marker.
    let fail_commit = fault_seed(1) % 2 == 1;

    #[derive(PartialEq, Clone, Copy)]
    enum Mode {
        Crash,
        ExplicitAbort,
    }

    let run = |mode: Mode| -> (PathBuf, PathBuf, Oid, Oid) {
        let tag = match mode {
            Mode::Crash => "swap_crash",
            Mode::ExplicitAbort => "swap_ref",
        };
        let dir = tmpdir(tag);
        let path = dir.join("db.img");
        let ds = DurableStore::create(&path, DurableOptions::default()).unwrap();
        let mut sess = Session::on_store(ds, SessionConfig::default(), Registry::standard())
            .expect("durable session");
        sess.load_str(SRC).unwrap();
        sess.store.commit().unwrap();
        sess.store.checkpoint().unwrap();

        let SVal::Ref(oid) = *sess.global("geom.abs").unwrap() else {
            panic!("expected closure global");
        };
        let Object::Closure(clo) = sess.store.get(oid).unwrap() else {
            panic!("expected closure");
        };
        let orig_ptml = clo.ptml.unwrap();

        let p = tier::prepare_promotion(&mut sess, oid, &TierOptions::default()).unwrap();
        let mgr = TxnManager::new(TxnOptions::default());
        let mut t = mgr.begin(&mut sess.store);
        {
            let locks = std::sync::Arc::clone(mgr.locks());
            let mut view = TxnView::new(&mut sess.store, &mut t, &locks);
            tier::apply_promotion(&mut view, &p).unwrap();
        }
        match mode {
            Mode::Crash if fail_commit => {
                let fp = ScopedFailpoints::new(&[(
                    "txn.commit",
                    FailSpec::always(Action::Io).for_key(t.id()),
                )]);
                let err = mgr
                    .commit(&mut sess.store, t)
                    .expect_err("injected commit failure");
                assert!(matches!(err, StoreError::Io(_)), "typed failure: {err}");
                drop(fp);
            }
            Mode::Crash => drop(t), // still in flight at the crash
            Mode::ExplicitAbort => mgr.abort(&mut sess.store, t).unwrap(),
        }

        // An unrelated committed mutation pushes the swap's trail into
        // the committed prefix.
        let extra = sess.store.alloc(Object::Tuple(vec![SVal::Int(9)])).unwrap();
        sess.store.set_root("bystander", extra).unwrap();
        sess.store.commit().unwrap();
        drop(sess); // crash
        (dir, path, oid, orig_ptml)
    };

    let (crash_dir, crash_path, oid, orig_ptml) = run(Mode::Crash);
    let (ref_dir, ref_path, ref_oid, ref_ptml) = run(Mode::ExplicitAbort);
    assert_eq!(oid, ref_oid, "deterministic setup");
    assert_eq!(orig_ptml, ref_ptml);

    let (crash_bytes, crash_report) = recovered(&crash_path);
    let (ref_bytes, ref_report) = recovered(&ref_path);
    assert_eq!(crash_report.losers_undone, 1, "the swap txn is a loser");
    assert_eq!(ref_report.losers_undone, 0, "reference resolved cleanly");
    assert_eq!(
        crash_bytes, ref_bytes,
        "crashed swap must recover byte-identically to an aborted swap"
    );

    // The closure is exactly its pre-swap self.
    let (d, _) = DurableStore::open(&crash_path, DurableOptions::default()).unwrap();
    let Object::Closure(clo) = d.get(oid).unwrap() else {
        panic!("expected closure");
    };
    assert_eq!(clo.ptml, Some(orig_ptml), "pre-swap PTML reference intact");
    assert_eq!(d.attr(oid, "tier"), None, "tier attribute rolled back");
    assert_eq!(
        StoreAccess::root(&d, &tier::prev_root(oid)),
        None,
        "no provenance root survives the rollback"
    );
    assert_eq!(tier::totals(&d).swaps, 0, "totals rolled back");
    drop(d);

    std::fs::remove_dir_all(&crash_dir).ok();
    std::fs::remove_dir_all(&ref_dir).ok();
}

/// An injected lock-acquisition fault surfaces as a typed abort; the
/// transaction rolls back cleanly and the lock table ends empty.
#[test]
fn injected_lock_fault_aborts_cleanly() {
    let dir = tmpdir("lockfault");
    let path = dir.join("db.img");
    let (mut d, slots) = setup(&path);
    let mgr = TxnManager::new(TxnOptions::default());

    let mut t1 = mgr.begin(&mut d);
    put(&mgr, &mut d, &mut t1, slots[0], 5).unwrap();
    let err = {
        let _fp = ScopedFailpoints::new(&[(
            "lock.acquire",
            FailSpec::always(Action::Io).for_key(oid_key(slots[1])),
        )]);
        put(&mgr, &mut d, &mut t1, slots[1], 6).expect_err("injected lock fault")
    };
    assert!(
        matches!(err, StoreError::Aborted { .. }),
        "typed, retryable abort: {err}"
    );
    mgr.abort(&mut d, t1).unwrap();

    let stats = mgr.locks().stats();
    assert_eq!(stats.holders, 0, "no locks survive the abort");
    assert_eq!(stats.waiters, 0);
    for (i, &oid) in slots.iter().enumerate() {
        let Object::Tuple(items) = d.get(oid).unwrap() else {
            panic!("expected tuple");
        };
        assert_eq!(items[0], SVal::Int(0), "slot{i} back to pre-txn state");
    }
    drop(d);
    std::fs::remove_dir_all(&dir).ok();
}

/// Transactions pin the log: auto-checkpoints defer and explicit
/// checkpoints are refused while a transaction is open, so an undo trail
/// can never be consolidated away mid-flight.
#[test]
fn open_transactions_block_checkpoints() {
    let dir = tmpdir("pin");
    let path = dir.join("db.img");
    let (mut d, slots) = setup(&path);
    let mgr = TxnManager::new(TxnOptions::default());

    let mut t1 = mgr.begin(&mut d);
    put(&mgr, &mut d, &mut t1, slots[0], 1).unwrap();
    assert!(
        d.checkpoint().is_err(),
        "checkpoint must refuse while a transaction is open"
    );
    mgr.commit(&mut d, t1).unwrap();
    d.checkpoint().expect("checkpoint fine after resolution");
    drop(d);
    std::fs::remove_dir_all(&dir).ok();
}
