//! End-to-end tiered execution against a live server: the background
//! re-optimizer thread samples the shipped closure's invocation
//! counters, hot-swaps it mid-workload inside its own transaction, and
//! the client never observes anything but correct results. After
//! shutdown the image records the swap (totals root, tier attributes,
//! persisted counters).

mod common;

use std::time::Duration;

use common::{author_bump_ptml, read_slots, start_server, TempDir};
use tml_reflect::tier;
use tml_store::{DurableOptions, DurableStore, Object, StoreAccess};
use tml_txn::{Client, ServerOptions, TierSettings, Value};

fn opts() -> ServerOptions {
    ServerOptions {
        addr: "127.0.0.1:0".into(),
        tier: Some(TierSettings {
            threshold: 8,
            interval: Duration::from_millis(10),
        }),
        ..ServerOptions::default()
    }
}

#[test]
fn background_reoptimizer_swaps_a_hot_closure_mid_workload() {
    let dir = TempDir::new("tier");
    let server = start_server(&dir.image(), opts());
    let mut c = Client::connect(server.addr).expect("connect");
    let ptml = author_bump_ptml();
    c.ship("work.bump", &ptml).expect("ship");

    // Drive the closure past the threshold. Each call is its own
    // autocommit transaction, so the executor is free to run ticks
    // between requests.
    let mut expect = 0i64;
    for k in 0..20 {
        expect += k;
        let v = c
            .call("work.bump", &[Value::Int(0), Value::Int(k)])
            .expect("bump");
        assert_eq!(v, Value::Int(expect), "pre-swap call {k}");
    }
    // Several tick intervals: the sampler sees the hot closure and the
    // swap transaction commits while the session idles.
    std::thread::sleep(Duration::from_millis(200));

    // Post-swap calls land on the promoted closure — same answers.
    for k in 0..10 {
        expect += k;
        let v = c
            .call("work.bump", &[Value::Int(0), Value::Int(k)])
            .expect("bump");
        assert_eq!(v, Value::Int(expect), "post-swap call {k}");
    }
    c.bye().expect("bye");

    let mut c = Client::connect(server.addr).expect("reconnect");
    c.shutdown().expect("shutdown");
    server.join().expect("server ran clean");

    // The committed image records the tier activity: at least one swap
    // (the closure's deps include the bumped array, so later ticks may
    // legitimately deopt and re-promote — totals only grow).
    let (ds, report) = DurableStore::open(dir.image(), DurableOptions::default()).expect("reopen");
    assert!(!report.stale_log);
    assert!(
        tier::totals(&ds).swaps >= 1,
        "expected at least one hot-swap, totals = {:?}",
        tier::totals(&ds)
    );
    let clo = StoreAccess::root(&ds, "work.bump").expect("shipped root");
    assert!(
        matches!(ds.get(clo), Ok(Object::Closure(_))),
        "work.bump is still a closure"
    );
    assert!(
        ds.attr(clo, "tier.calls").unwrap_or(0) > 0,
        "invocation counters persisted at shutdown"
    );

    // And the data is exactly what the calls produced.
    let slots = read_slots(&dir.image());
    assert_eq!(slots[0], expect, "slot sum survives the swaps");
}

/// With tiering disabled (the library default), the same workload
/// records no tier activity at all.
#[test]
fn tier_off_leaves_no_tier_state() {
    let dir = TempDir::new("tieroff");
    let server = start_server(
        &dir.image(),
        ServerOptions {
            addr: "127.0.0.1:0".into(),
            ..ServerOptions::default()
        },
    );
    let mut c = Client::connect(server.addr).expect("connect");
    c.ship("work.bump", &author_bump_ptml()).expect("ship");
    for k in 0..20 {
        c.call("work.bump", &[Value::Int(1), Value::Int(k)])
            .expect("bump");
    }
    std::thread::sleep(Duration::from_millis(50));
    c.shutdown().expect("shutdown");
    server.join().expect("server ran clean");

    let (ds, _) = DurableStore::open(dir.image(), DurableOptions::default()).expect("reopen");
    assert_eq!(
        tier::totals(&ds),
        tier::TierTotals::default(),
        "no swaps without a tier engine"
    );
    let clo = StoreAccess::root(&ds, "work.bump").expect("shipped root");
    assert_eq!(ds.attr(clo, "tier"), None);
    // Counters still persist — hotness must survive even if the engine
    // is only enabled on a later start.
    assert!(ds.attr(clo, "tier.calls").unwrap_or(0) >= 20);
}
