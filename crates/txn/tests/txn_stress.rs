//! Seeded multi-writer stress: 8 concurrent sessions moving units
//! between independent cells with two-call transactions taken in
//! arbitrary (often opposite) lock orders — a deadlock factory.
//!
//! Invariants checked:
//! - **No lost updates, no phantom commits**: every cell ends exactly at
//!   the sum of the deltas whose transactions were acknowledged; the
//!   grand total of a pure transfer workload is zero.
//! - **Bounded termination**: every deadlock or timeout surfaces as a
//!   typed, retryable abort and the workload drains within the deadline
//!   — no stuck wait queue, no leaked lock.
//! - **Durability**: the committed state survives server shutdown and
//!   reopen byte-for-byte (cells re-read straight off the image).

mod common;

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use common::{author_cell_ptmls, read_cell, start_server, TempDir, CELLS};
use tml_txn::wire::Value;
use tml_txn::{Client, LockOptions, ServerOptions};

/// Deterministic per-thread op schedule.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

fn stress_seed() -> u64 {
    std::env::var("TML_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD1CE)
}

#[test]
fn eight_writers_transfer_without_lost_updates_or_hangs() {
    const WRITERS: usize = 8;
    const TXNS_PER_WRITER: usize = 12;

    let dir = TempDir::new("stress");
    let opts = ServerOptions {
        addr: "127.0.0.1:0".into(),
        lock: LockOptions {
            timeout: Duration::from_millis(120),
            retries: 3,
            backoff: Duration::from_millis(2),
        },
        ..ServerOptions::default()
    };
    let server = start_server(&dir.image(), opts);

    {
        let mut c = Client::connect(server.addr).expect("connect");
        for (name, ptml) in author_cell_ptmls() {
            c.ship(&name, &ptml).expect("ship");
        }
        c.bye().ok();
    }

    // Acked per-cell deltas — the serial order the store must equal.
    let acked: Arc<Vec<AtomicI64>> = Arc::new((0..CELLS).map(|_| AtomicI64::new(0)).collect());
    let started = Instant::now();
    let seed = stress_seed();

    let handles: Vec<_> = (0..WRITERS)
        .map(|w| {
            let addr = server.addr;
            let acked = Arc::clone(&acked);
            std::thread::spawn(move || {
                let mut rng =
                    XorShift(seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(w as u64 + 1)));
                let mut c = Client::connect(addr).expect("connect");
                for _ in 0..TXNS_PER_WRITER {
                    let src = (rng.next() % CELLS as u64) as usize;
                    let mut dst = (rng.next() % CELLS as u64) as usize;
                    if dst == src {
                        dst = (dst + 1) % CELLS;
                    }
                    // Two-cell transfer; half the fleet locks in one
                    // order, half in the other.
                    c.transact(64, |c| {
                        c.call(&format!("work.bump{src}"), &[Value::Int(1)])?;
                        c.call(&format!("work.bump{dst}"), &[Value::Int(-1)])
                    })
                    .expect("transfer eventually commits");
                    // Acked only after the server acknowledged the commit.
                    acked[src].fetch_add(1, Ordering::SeqCst);
                    acked[dst].fetch_add(-1, Ordering::SeqCst);
                }
                c.bye().ok();
            })
        })
        .collect();
    for h in handles {
        h.join().expect("writer thread");
    }
    assert!(
        started.elapsed() < Duration::from_secs(120),
        "workload must terminate in bounded time"
    );

    // Live state equals the acked serial order.
    let mut c = Client::connect(server.addr).expect("connect");
    let mut total = 0i64;
    for k in 0..CELLS {
        let Value::Int(v) = c
            .call(&format!("work.bump{k}"), &[Value::Int(0)])
            .expect("read cell")
        else {
            panic!("expected int");
        };
        assert_eq!(
            v,
            acked[k].load(Ordering::SeqCst),
            "cell {k}: committed value must equal acked deltas (no lost updates)"
        );
        total += v;
    }
    assert_eq!(total, 0, "pure transfers conserve the grand total");

    c.shutdown().expect("shutdown");
    server.join().expect("clean exit");

    // And the same state is on disk.
    for k in 0..CELLS {
        assert_eq!(
            read_cell(&dir.image(), k),
            acked[k].load(Ordering::SeqCst),
            "cell {k} durable"
        );
    }
}
