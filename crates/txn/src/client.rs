//! A small blocking client for the transaction server.
//!
//! Used by the CLI, the soak tests and the E17 bench. One TCP stream is
//! one session: at most one open transaction, requests answered in
//! order. [`Client::transact`] adds the transparent retry the protocol
//! is designed for — `Aborted` errors (deadlock victim, lock timeout)
//! re-run the whole closure in a fresh transaction.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::wire::{
    decode_response, encode_request, read_frame, write_frame, ErrCode, Request, Response, Value,
    WireError,
};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Transport or framing failure.
    Wire(WireError),
    /// The server reported a typed error.
    Server {
        /// Error category (drives [`Client::transact`] retries).
        code: ErrCode,
        /// Server-side detail.
        msg: String,
    },
    /// The server replied with something the request doesn't expect.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Server { code, msg } => write!(f, "server error ({code:?}): {msg}"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Wire(WireError::Io(e))
    }
}

impl ClientError {
    /// `true` for typed aborts the caller can transparently retry in a
    /// fresh transaction (deadlock victim, lock timeout).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            ClientError::Server {
                code: ErrCode::Aborted,
                ..
            }
        )
    }
}

/// One session against a `tml-server`.
pub struct Client {
    stream: TcpStream,
    /// Process-wide connect ordinal — the stable per-client identity the
    /// retry jitter keys off when `TML_JITTER_SEED` pins the schedule
    /// (the ephemeral port differs run to run; this does not).
    ordinal: u64,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client {
            stream,
            ordinal: NEXT.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
        })
    }

    /// Set (or clear) the per-request response timeout.
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Raw request/response round trip.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, 0, &encode_request(req))?;
        let frame = read_frame(&mut self.stream, 0)?;
        Ok(decode_response(&frame)?)
    }

    fn expect_ok(&mut self, req: &Request) -> Result<(), ClientError> {
        match self.request(req)? {
            Response::Ok => Ok(()),
            Response::Err { code, msg } => Err(ClientError::Server { code, msg }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        self.expect_ok(&Request::Ping)
    }

    /// Open an explicit transaction.
    pub fn begin(&mut self) -> Result<(), ClientError> {
        self.expect_ok(&Request::Begin)
    }

    /// Commit the open transaction.
    pub fn commit(&mut self) -> Result<(), ClientError> {
        self.expect_ok(&Request::Commit)
    }

    /// Abort the open transaction.
    pub fn abort(&mut self) -> Result<(), ClientError> {
        self.expect_ok(&Request::Abort)
    }

    /// Ship PTML bytes, installing them under `name`.
    pub fn ship(&mut self, name: &str, ptml: &[u8]) -> Result<(), ClientError> {
        self.expect_ok(&Request::Ship {
            name: name.into(),
            ptml: ptml.to_vec(),
        })
    }

    /// Call a server global with immediate arguments.
    pub fn call(&mut self, name: &str, args: &[Value]) -> Result<Value, ClientError> {
        let req = Request::Call {
            name: name.into(),
            args: args.to_vec(),
        };
        match self.request(&req)? {
            Response::Val(v) => Ok(v),
            Response::Ok => Ok(Value::Unit),
            Response::Err { code, msg } => Err(ClientError::Server { code, msg }),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Ask the server to reflectively optimize a global.
    pub fn optimize(&mut self, name: &str) -> Result<(), ClientError> {
        self.expect_ok(&Request::Optimize { name: name.into() })
    }

    /// Close the session (the server aborts an open transaction).
    pub fn bye(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Bye)? {
            Response::Bye => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Response::Bye => Ok(()),
            other => Err(ClientError::Unexpected(format!("{other:?}"))),
        }
    }

    /// Run `body` inside an explicit transaction, retrying the whole
    /// transaction up to `retries` times when it is aborted by the
    /// server (deadlock victim or lock timeout — the typed, retryable
    /// error class). Non-retryable errors abort and propagate.
    pub fn transact<T>(
        &mut self,
        retries: u32,
        mut body: impl FnMut(&mut Client) -> Result<T, ClientError>,
    ) -> Result<T, ClientError> {
        let mut attempt = 0;
        loop {
            self.begin()?;
            match body(self) {
                Ok(v) => match self.commit() {
                    Ok(()) => return Ok(v),
                    Err(e) if e.is_retryable() && attempt < retries => {
                        attempt += 1;
                        self.retry_pause(attempt);
                    }
                    Err(e) => return Err(e),
                },
                Err(e) if e.is_retryable() && attempt < retries => {
                    // The server already aborted the transaction.
                    attempt += 1;
                    self.retry_pause(attempt);
                }
                Err(e) => {
                    let _ = self.abort();
                    return Err(e);
                }
            }
        }
    }

    /// Jittered backoff between transaction attempts. Victims that
    /// retry in lockstep re-begin as the *youngest* transactions of the
    /// next collision — and the youngest cycle member is always the
    /// next victim — so equal-aged clients can starve one another
    /// indefinitely. The jitter (keyed off the session's ephemeral
    /// port, so each client's schedule differs) breaks the lockstep.
    /// With `TML_JITTER_SEED` set the key is the seed plus the client's
    /// connect ordinal instead — per-client schedules stay distinct but
    /// become identical across runs.
    fn retry_pause(&self, attempt: u32) {
        let seed = match crate::lock::jitter_seed() {
            Some(s) => s.wrapping_add(self.ordinal),
            None => self
                .stream
                .local_addr()
                .map(|a| u64::from(a.port()))
                .unwrap_or(1),
        };
        let base = Duration::from_micros(500).saturating_mul(1 << attempt.min(6));
        let jitter = crate::lock::hash3(seed, u64::from(attempt), 0x7472_7921)
            % base.as_micros().max(1) as u64;
        std::thread::sleep(base / 2 + Duration::from_micros(jitter));
    }
}
