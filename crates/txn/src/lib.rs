//! Concurrent multi-session transactions over the TML store.
//!
//! The paper's setting is an *open database environment*: many clients
//! executing persistent closures against one shared store. This crate
//! supplies the concurrency and failure-handling layer that setting
//! needs, on top of the durability substrate (`tml-store`'s WAL, paged
//! heap and [`StoreAccess`](tml_store::StoreAccess) seam):
//!
//! - [`lock`] — a strict-2PL lock table with per-OID shared/exclusive
//!   locks, FIFO wait queues, acquisition timeouts with jittered
//!   exponential backoff, and wait-for-graph deadlock detection.
//! - [`txn`] — the transaction manager: [`TxnView`](txn::TxnView) wraps
//!   any `StoreAccess` backend, takes locks and buffers an undo record
//!   per mutation; abort rolls back through the same logged entry
//!   points (compensating records), so recovery replays committed
//!   transactions and undoes losers byte-identically.
//! - [`wire`] — the length-framed client/server protocol promoted from
//!   `examples/code_shipping.rs`: clients ship PTML, the server relinks
//!   and executes inside a transaction.
//! - [`server`] — `tml-server`: N concurrent sessions over TCP, one
//!   transaction per session, typed abort/retry on lock conflicts,
//!   graceful shutdown draining in-flight commits.
//! - [`client`] — a small blocking client for tests, benches and the
//!   CLI, with a transparent retry helper for aborted transactions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod lock;
pub mod server;
pub mod txn;
pub mod wire;

pub use client::Client;
pub use lock::{LockError, LockMode, LockOptions, LockStats, LockTable};
pub use server::{Server, ServerOptions, TierSettings};
pub use txn::{oid_key, Txn, TxnManager, TxnOptions, TxnView};
pub use wire::{ErrCode, Request, Response, Value};
