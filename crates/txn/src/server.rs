//! `tml-server`: N concurrent sessions over TCP against one durable
//! store.
//!
//! ## Execution model
//!
//! The `Session` is not `Send` (extension primitives are `Rc` closures),
//! so the server runs a single *executor* on the calling thread that
//! owns the session, and one lightweight thread per connection that only
//! does frame IO and lock waits. Connection threads send decoded
//! requests over a channel; the executor runs each inside the
//! connection's transaction over a [`TxnView`] and replies.
//!
//! Lock conflicts never block the executor: a [`StoreError::Busy`]
//! aborts the VM run, the executor rolls back to the request's
//! savepoint and tells the connection thread *which key* to wait for.
//! The connection thread blocks on the lock table (timeout, jittered
//! exponential backoff, deadlock detection) **outside** the executor,
//! then resends the request — the lock is already granted to its
//! transaction, so the retry proceeds. Deadlock victims and timeouts
//! get a typed `Aborted` response; the client can transparently retry
//! the whole transaction.
//!
//! ## Robustness
//!
//! Per-connection read timeouts bound idle sessions; connections past
//! `max_conns` are refused with a typed busy error (backpressure); a
//! graceful shutdown (the `Shutdown` request) stops the acceptor,
//! severs idle connections, drains in-flight requests, aborts
//! still-open transactions and checkpoints the store. The
//! `serve.read`/`serve.write` failpoints sever sessions at frame
//! boundaries for the fault matrix; an abandoned transaction is rolled
//! back exactly like an aborted one.

use std::collections::HashMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{Receiver, Sender, SyncSender};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use tml_lang::Session;
use tml_reflect::tier::{self, TierEngine, TierOptions};
use tml_reflect::{optimize_value, ReflectOptions};
use tml_store::{ClosureObj, DurableStore, Object, SVal, StoreAccess, StoreError};
use tml_vm::{Machine, RVal, VmError};

use crate::lock::LockOptions;
use crate::txn::{Txn, TxnManager, TxnOptions, TxnView};
use crate::wire::{
    self, decode_request, encode_response, read_frame, write_frame, ErrCode, Request, Response,
    Value,
};

/// Server tuning.
#[derive(Debug, Clone)]
pub struct ServerOptions {
    /// Bind address (`127.0.0.1:0` for an ephemeral port).
    pub addr: String,
    /// Accepted connections beyond this are refused with a busy error.
    pub max_conns: usize,
    /// Per-connection read timeout (idle sessions are dropped and their
    /// transactions aborted).
    pub conn_timeout: Duration,
    /// Lock acquisition behavior for conflict waits.
    pub lock: LockOptions,
    /// Background tier re-optimization; `None` serves baseline code
    /// only. The library default is off — `tmlc serve` turns it on
    /// unless `--tier-off` is given.
    pub tier: Option<TierSettings>,
}

/// Background re-optimizer configuration for [`ServerOptions`].
#[derive(Debug, Clone, Copy)]
pub struct TierSettings {
    /// Invocation count at which a closure is promoted to the hot tier.
    pub threshold: u64,
    /// How often the re-optimizer samples the counters.
    pub interval: Duration,
}

impl Default for TierSettings {
    fn default() -> Self {
        TierSettings {
            threshold: 1000,
            interval: Duration::from_millis(25),
        }
    }
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            addr: "127.0.0.1:0".into(),
            max_conns: 64,
            conn_timeout: Duration::from_secs(30),
            lock: LockOptions::default(),
            tier: None,
        }
    }
}

/// What the executor tells a connection thread to do next.
enum Reply {
    /// Final response: forward to the client.
    Done(Response),
    /// The request hit a lock conflict: wait for `key` (mode per
    /// `exclusive`) as transaction `txn`, then resend the request.
    Wait { txn: u64, key: u64, exclusive: bool },
}

/// Work items the executor drains from its single channel.
enum Op {
    /// A decoded client request from a connection thread.
    Client {
        conn: u64,
        req: Request,
        /// `None` for fire-and-forget cleanup (connection closed).
        reply: Option<SyncSender<Reply>>,
    },
    /// The background ticker asking for one re-optimizer pass. Running
    /// ticks on the executor keeps the session single-threaded: swaps
    /// interleave with client requests at request granularity, never
    /// inside one.
    TierTick,
}

/// Per-connection transaction state, owned by the executor.
#[derive(Default)]
struct ConnState {
    txn: Option<Txn>,
    /// `true` when the client opened the transaction with `Begin` (it
    /// ends only on its `Commit`/`Abort`); `false` for per-request
    /// autocommit transactions.
    explicit: bool,
    /// Globals installed by `Ship` inside the open transaction, with
    /// their previous values — undone on abort.
    pending_globals: Vec<(String, Option<SVal>)>,
}

/// The multi-session transaction server.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    opts: ServerOptions,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Bind the listening socket (the address is final after this — use
    /// [`Server::local_addr`] before [`Server::run`]).
    pub fn bind(opts: ServerOptions) -> io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            opts,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A flag that stops the accept loop when set (the `Shutdown`
    /// request sets it too).
    pub fn shutdown_flag(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    /// Serve until shutdown. Blocks the calling thread (it becomes the
    /// executor). On return the store is drained: open transactions
    /// aborted, a final commit + checkpoint taken.
    pub fn run(self, mut sess: Session<DurableStore>) -> io::Result<()> {
        let mgr = Arc::new(TxnManager::new(TxnOptions {
            lock: self.opts.lock,
        }));
        let (tx, rx): (Sender<Op>, Receiver<Op>) = mpsc::channel();
        let shutdown = Arc::clone(&self.shutdown);
        let conns: Arc<Mutex<HashMap<u64, TcpStream>>> = Arc::new(Mutex::new(HashMap::new()));
        let active = Arc::new(AtomicUsize::new(0));
        let next_conn = Arc::new(AtomicU64::new(1));

        // Background re-optimizer: a ticker thread that only sends
        // `TierTick` marks; the engine itself runs on the executor.
        let mut engine = self.opts.tier.map(|t| {
            TierEngine::new(TierOptions {
                threshold: t.threshold,
                ..TierOptions::default()
            })
        });
        let ticker = self.opts.tier.map(|t| {
            let tx = tx.clone();
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                while !shutdown.load(Ordering::SeqCst) {
                    let mut slept = Duration::ZERO;
                    while slept < t.interval && !shutdown.load(Ordering::SeqCst) {
                        let step = Duration::from_millis(5).min(t.interval - slept);
                        std::thread::sleep(step);
                        slept += step;
                    }
                    if shutdown.load(Ordering::SeqCst) || tx.send(Op::TierTick).is_err() {
                        break;
                    }
                }
            })
        });

        self.listener.set_nonblocking(true)?;
        let listener = self.listener.try_clone()?;
        let accept_opts = self.opts.clone();
        let accept_mgr = Arc::clone(&mgr);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_conns = Arc::clone(&conns);
        let acceptor = std::thread::spawn(move || {
            accept_loop(
                listener,
                accept_opts,
                accept_mgr,
                tx,
                accept_shutdown,
                accept_conns,
                active,
                next_conn,
            );
        });

        // Executor: single-threaded ownership of the session.
        let mut states: HashMap<u64, ConnState> = HashMap::new();
        while let Ok(op) = rx.recv() {
            match op {
                Op::Client { conn, req, reply } => {
                    let state = states.entry(conn).or_default();
                    match reply {
                        Some(reply) => {
                            let r = execute(&mut sess, &mgr, state, conn, &req, &conns, &shutdown);
                            // A dead connection thread is fine; its cleanup
                            // op already rolled the transaction back.
                            let _ = reply.send(r);
                        }
                        None => {
                            // Connection closed: roll back whatever it
                            // left open.
                            let _ = abort_conn(&mut sess, &mgr, state);
                            states.remove(&conn);
                        }
                    }
                }
                Op::TierTick => {
                    if let Some(engine) = engine.as_mut() {
                        tier_tick(&mut sess, &mgr, engine);
                    }
                }
            }
            publish_lock_gauges(&mgr);
        }
        // All senders gone: acceptor and ticker exited and every
        // connection drained.
        acceptor.join().expect("acceptor panicked");
        if let Some(t) = ticker {
            t.join().expect("ticker panicked");
        }
        for (_, mut state) in states.drain() {
            let _ = abort_conn(&mut sess, &mgr, &mut state);
        }
        // Hotness must survive the restart: write the lifetime call
        // counters into the catalog's attr section before the final
        // checkpoint seals it.
        tier::persist_counters(&mut sess).map_err(|e| io::Error::other(e.to_string()))?;
        sess.store.commit()?;
        sess.store.checkpoint()?;
        publish_lock_gauges(&mgr);
        publish_store_gauges(&sess, engine.as_ref().map(|e| &e.opts));
        Ok(())
    }
}

/// One executor-side re-optimizer tick: first deopt every hot closure
/// whose specialization assumptions broke, then promote the hottest
/// above-threshold candidates. Each swap runs in its own transaction
/// over a [`TxnView`], so it takes the closure's exclusive lock (a
/// conflict with a client transaction skips the swap — retried on a
/// later tick), is WAL-logged, and rolls back if the server crashes
/// mid-swap.
fn tier_tick(sess: &mut Session<DurableStore>, mgr: &TxnManager, engine: &mut TierEngine) {
    for oid in engine.violations(sess) {
        let Ok(d) = tier::prepare_deopt(sess, oid) else {
            continue;
        };
        if swap_txn(sess, mgr, |view| tier::apply_deopt(view, &d)).is_ok() {
            engine.note_deopted(oid);
        }
    }
    for (oid, _calls) in engine.sample(sess) {
        match tier::prepare_promotion(sess, oid, &engine.opts) {
            Ok(p) => {
                if swap_txn(sess, mgr, |view| tier::apply_promotion(view, &p)).is_ok() {
                    engine.note_promoted(&p);
                }
            }
            Err(_) => {
                // A target the escalated pipeline cannot rebuild stays
                // at baseline and is never reconsidered.
                let _ = sess.store.set_attr(oid, "tier.skip", 1);
            }
        }
    }
}

/// Run one tier swap in its own transaction: commit on success, abort
/// (undoing any partial mutation) on failure.
fn swap_txn(
    sess: &mut Session<DurableStore>,
    mgr: &TxnManager,
    body: impl FnOnce(&mut TxnView<'_, DurableStore>) -> Result<(), StoreError>,
) -> Result<(), StoreError> {
    let mut txn = mgr.begin(&mut sess.store);
    let r = {
        let mut view = TxnView::new(&mut sess.store, &mut txn, mgr.locks());
        body(&mut view)
    };
    match r {
        Ok(()) => mgr.commit(&mut sess.store, txn).map(|_| ()),
        Err(e) => {
            let _ = mgr.abort(&mut sess.store, txn);
            Err(e)
        }
    }
}

/// Final-stats gauges for the store side: optimization-cache traffic
/// plus the tier section (`tmlc serve --json` reports these alongside
/// the lock-table block).
fn publish_store_gauges(sess: &Session<DurableStore>, tier_opts: Option<&TierOptions>) {
    if !tml_trace::enabled() {
        return;
    }
    let rec = tml_trace::global();
    let c = sess.store.base().cache_stats();
    rec.counter("store.opt_cache.entries")
        .set(sess.store.base().cache().len() as u64);
    rec.counter("store.opt_cache.hits").set(c.hits);
    rec.counter("store.opt_cache.misses").set(c.misses);
    rec.counter("store.opt_cache.inserts").set(c.inserts);
    rec.counter("store.opt_cache.invalidations")
        .set(c.invalidations);
    rec.counter("store.opt_cache.evictions").set(c.evictions);
    tier::publish_gauges(&sess.store, tier_opts);
}

/// Live lock-table occupancy (plus high-water marks) as trace gauges,
/// for `tmlc stats` / `tmlc info --json` style reporting. Cheap no-op
/// when tracing is off.
fn publish_lock_gauges(mgr: &TxnManager) {
    if !tml_trace::enabled() {
        return;
    }
    let s = mgr.locks().stats();
    let rec = tml_trace::global();
    rec.counter("lock.table.keys").set(s.keys);
    rec.counter("lock.table.holders").set(s.holders);
    rec.counter("lock.table.waiters").set(s.waiters);
    let peak = rec.counter("lock.table.peak_holders");
    if s.holders > peak.get() {
        peak.set(s.holders);
    }
    let peak = rec.counter("lock.table.peak_waiters");
    if s.waiters > peak.get() {
        peak.set(s.waiters);
    }
}

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: TcpListener,
    opts: ServerOptions,
    mgr: Arc<TxnManager>,
    tx: Sender<Op>,
    shutdown: Arc<AtomicBool>,
    conns: Arc<Mutex<HashMap<u64, TcpStream>>>,
    active: Arc<AtomicUsize>,
    next_conn: Arc<AtomicU64>,
) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if active.load(Ordering::SeqCst) >= opts.max_conns {
                    // Backpressure: refuse with a typed busy error.
                    let mut s = stream;
                    let _ = write_frame(
                        &mut s,
                        0,
                        &encode_response(&Response::Err {
                            code: ErrCode::Server,
                            msg: "server at connection capacity".into(),
                        }),
                    );
                    continue;
                }
                let conn = next_conn.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_read_timeout(Some(opts.conn_timeout));
                let _ = stream.set_nodelay(true);
                if let Ok(clone) = stream.try_clone() {
                    conns.lock().unwrap().insert(conn, clone);
                }
                active.fetch_add(1, Ordering::SeqCst);
                let tx = tx.clone();
                let mgr = Arc::clone(&mgr);
                let shutdown = Arc::clone(&shutdown);
                let active = Arc::clone(&active);
                let reg = Arc::clone(&conns);
                let lock_opts = opts.lock;
                std::thread::spawn(move || {
                    serve_conn(stream, conn, tx, mgr, lock_opts, shutdown);
                    reg.lock().unwrap().remove(&conn);
                    active.fetch_sub(1, Ordering::SeqCst);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
    }
    drop(tx); // executor drains and finalizes once all conn senders drop
}

fn serve_conn(
    mut stream: TcpStream,
    conn: u64,
    tx: Sender<Op>,
    mgr: Arc<TxnManager>,
    lock_opts: LockOptions,
    shutdown: Arc<AtomicBool>,
) {
    // The read loop ends on EOF, timeout, severed stream or an
    // injected fault — all the same to the cleanup below.
    while let Ok(frame) = read_frame(&mut stream, conn) {
        let req = match decode_request(&frame) {
            Ok(r) => r,
            Err(e) => {
                let _ = respond(
                    &mut stream,
                    conn,
                    &Response::Err {
                        code: ErrCode::Proto,
                        msg: e.to_string(),
                    },
                );
                break;
            }
        };
        let closing = matches!(req, Request::Bye | Request::Shutdown);
        let rsp = run_request(&tx, &mgr, &lock_opts, conn, req);
        if respond(&mut stream, conn, &rsp).is_err() {
            break;
        }
        if closing || shutdown.load(Ordering::SeqCst) {
            break;
        }
    }
    // Fire-and-forget cleanup: the executor aborts anything still open.
    let _ = tx.send(Op::Client {
        conn,
        req: Request::Abort,
        reply: None,
    });
}

/// One request round-trip with the executor, waiting out lock conflicts
/// on this thread (never inside the executor).
fn run_request(
    tx: &Sender<Op>,
    mgr: &TxnManager,
    lock_opts: &LockOptions,
    conn: u64,
    req: Request,
) -> Response {
    loop {
        let (rtx, rrx) = mpsc::sync_channel(1);
        if tx
            .send(Op::Client {
                conn,
                req: req.clone(),
                reply: Some(rtx),
            })
            .is_err()
        {
            return Response::Err {
                code: ErrCode::Server,
                msg: "server shutting down".into(),
            };
        }
        match rrx.recv() {
            Ok(Reply::Done(rsp)) => return rsp,
            Ok(Reply::Wait {
                txn,
                key,
                exclusive,
            }) => {
                match mgr
                    .locks()
                    .acquire_with_retry(txn, key, exclusive, lock_opts)
                {
                    Ok(()) => continue, // lock granted to our txn: resend
                    Err(e) => {
                        // Deadlock victim or timed out: abort the whole
                        // transaction, report a retryable typed error.
                        let (atx, arx) = mpsc::sync_channel(1);
                        let _ = tx.send(Op::Client {
                            conn,
                            req: Request::Abort,
                            reply: Some(atx),
                        });
                        let _ = arx.recv();
                        return Response::Err {
                            code: ErrCode::Aborted,
                            msg: format!("transaction {txn} aborted: {e}"),
                        };
                    }
                }
            }
            Err(_) => {
                return Response::Err {
                    code: ErrCode::Server,
                    msg: "executor gone".into(),
                }
            }
        }
    }
}

fn respond(stream: &mut TcpStream, conn: u64, rsp: &Response) -> Result<(), wire::WireError> {
    write_frame(stream, conn, &encode_response(rsp))
}

fn err(code: ErrCode, msg: impl Into<String>) -> Reply {
    Reply::Done(Response::Err {
        code,
        msg: msg.into(),
    })
}

/// Executor-side dispatch of one request (single-threaded over the
/// session).
#[allow(clippy::too_many_arguments)]
fn execute(
    sess: &mut Session<DurableStore>,
    mgr: &TxnManager,
    state: &mut ConnState,
    conn: u64,
    req: &Request,
    conns: &Mutex<HashMap<u64, TcpStream>>,
    shutdown: &AtomicBool,
) -> Reply {
    match req {
        Request::Ping => Reply::Done(Response::Ok),
        Request::Begin => {
            if state.txn.is_some() {
                return err(ErrCode::Proto, "transaction already open");
            }
            state.txn = Some(mgr.begin(&mut sess.store));
            state.explicit = true;
            Reply::Done(Response::Ok)
        }
        Request::Commit => {
            let Some(txn) = state.txn.take() else {
                return err(ErrCode::Proto, "no open transaction");
            };
            state.explicit = false;
            state.pending_globals.clear();
            match mgr.commit(&mut sess.store, txn) {
                Ok(_) => Reply::Done(Response::Ok),
                Err(e) => err(ErrCode::Server, format!("commit failed: {e}")),
            }
        }
        Request::Abort => {
            if state.txn.is_none() {
                return err(ErrCode::Proto, "no open transaction");
            }
            match abort_conn(sess, mgr, state) {
                Ok(()) => Reply::Done(Response::Ok),
                Err(e) => err(ErrCode::Server, format!("abort failed: {e}")),
            }
        }
        Request::Ship { name, ptml } => with_txn(sess, mgr, state, |sess, mgr, state| {
            ship(sess, mgr, state, name, ptml)
        }),
        Request::Call { name, args } => with_txn(sess, mgr, state, |sess, mgr, state| {
            call(sess, mgr, state, name, args)
        }),
        Request::Optimize { name } => {
            if state.txn.is_some() {
                return err(ErrCode::Proto, "optimize inside a transaction");
            }
            let Some(target) = sess.globals.get(name).cloned() else {
                return err(ErrCode::Unresolved, format!("unknown global {name}"));
            };
            match optimize_value(sess, &target, &ReflectOptions::default()) {
                Ok(_) => match sess.store.commit() {
                    Ok(_) => Reply::Done(Response::Ok),
                    Err(e) => err(ErrCode::Server, e.to_string()),
                },
                Err(e) => err(ErrCode::Server, format!("optimize failed: {e}")),
            }
        }
        Request::Bye => {
            let _ = abort_conn(sess, mgr, state);
            Reply::Done(Response::Bye)
        }
        Request::Shutdown => {
            let _ = abort_conn(sess, mgr, state);
            shutdown.store(true, Ordering::SeqCst);
            // Sever the read side of every *other* session so the drain
            // cannot hang on a silent client. Write sides stay open:
            // requests already in flight (queued behind this one on the
            // executor channel) still get their responses, and this
            // session still gets its `Bye`.
            for (&id, s) in conns.lock().unwrap().iter() {
                if id != conn {
                    let _ = s.shutdown(std::net::Shutdown::Read);
                }
            }
            Reply::Done(Response::Bye)
        }
    }
}

/// Abort `state`'s transaction if open, restoring shipped globals.
fn abort_conn(
    sess: &mut Session<DurableStore>,
    mgr: &TxnManager,
    state: &mut ConnState,
) -> Result<(), StoreError> {
    let Some(txn) = state.txn.take() else {
        return Ok(());
    };
    state.explicit = false;
    for (name, prev) in state.pending_globals.drain(..).rev() {
        match prev {
            Some(v) => sess.globals.insert(name, v),
            None => sess.globals.remove(&name),
        };
    }
    mgr.abort(&mut sess.store, txn)
}

/// The per-request transaction envelope: reuse the open transaction or
/// wrap the request in an autocommit one; on `Busy` roll back to the
/// request savepoint and hand the key to the connection thread.
fn with_txn(
    sess: &mut Session<DurableStore>,
    mgr: &TxnManager,
    state: &mut ConnState,
    body: impl FnOnce(&mut Session<DurableStore>, &TxnManager, &mut ConnState) -> Result<Response, Fail>,
) -> Reply {
    if state.txn.is_none() {
        state.txn = Some(mgr.begin(&mut sess.store));
        state.explicit = false;
    }
    let auto = !state.explicit;
    let sp = state.txn.as_ref().expect("just ensured").savepoint();
    match body(sess, mgr, state) {
        Ok(rsp) => {
            if auto {
                let txn = state.txn.take().expect("open");
                state.pending_globals.clear();
                if let Err(e) = mgr.commit(&mut sess.store, txn) {
                    return err(ErrCode::Server, format!("commit failed: {e}"));
                }
            }
            Reply::Done(rsp)
        }
        Err(fail) => {
            let txn_id = state.txn.as_ref().expect("open").id();
            match fail {
                Fail::Busy { key, exclusive } => {
                    let txn = state.txn.as_mut().expect("open");
                    if let Err(e) = mgr.rollback_to(&mut sess.store, txn, sp) {
                        let _ = abort_conn(sess, mgr, state);
                        return err(ErrCode::Server, format!("rollback failed: {e}"));
                    }
                    Reply::Wait {
                        txn: txn_id,
                        key,
                        exclusive,
                    }
                }
                Fail::Aborted(e) => {
                    let msg = format!("transaction {txn_id} aborted: {e}");
                    let _ = abort_conn(sess, mgr, state);
                    err(ErrCode::Aborted, msg)
                }
                Fail::Report { code, msg } => {
                    // Undo this request's effects; an explicit
                    // transaction stays open for the client to decide.
                    let txn = state.txn.as_mut().expect("open");
                    if let Err(e) = mgr.rollback_to(&mut sess.store, txn, sp) {
                        let _ = abort_conn(sess, mgr, state);
                        return err(ErrCode::Server, format!("rollback failed: {e}"));
                    }
                    if auto {
                        let _ = abort_conn(sess, mgr, state);
                    }
                    err(code, msg)
                }
            }
        }
    }
}

/// Why a request body failed (pre-envelope).
enum Fail {
    /// Lock conflict: wait for this key outside, then retry the request.
    Busy {
        /// Lock key to wait for.
        key: u64,
        /// Requested mode.
        exclusive: bool,
    },
    /// Typed abort (deadlock victim, timeout, injected fault).
    Aborted(StoreError),
    /// Plain failure to report to the client.
    Report {
        /// Error category.
        code: ErrCode,
        /// Detail.
        msg: String,
    },
}

impl Fail {
    fn from_store(e: StoreError) -> Fail {
        match e {
            StoreError::Busy { key, exclusive, .. } => Fail::Busy { key, exclusive },
            e @ StoreError::Aborted { .. } => Fail::Aborted(e),
            e => Fail::Report {
                code: ErrCode::Server,
                msg: e.to_string(),
            },
        }
    }
}

fn rval_to_value(v: &RVal) -> Value {
    match v {
        RVal::Unit => Value::Unit,
        RVal::Bool(b) => Value::Bool(*b),
        RVal::Int(n) => Value::Int(*n),
        RVal::Str(s) => Value::Str(s.to_string()),
        other => Value::Str(format!("{other:?}")),
    }
}

fn value_to_rval(v: &Value) -> RVal {
    match v {
        Value::Unit => RVal::Unit,
        Value::Bool(b) => RVal::Bool(*b),
        Value::Int(n) => RVal::Int(*n),
        Value::Str(s) => RVal::Str(s.as_str().into()),
    }
}

/// Run a call inside the connection's transaction.
fn call(
    sess: &mut Session<DurableStore>,
    mgr: &TxnManager,
    state: &mut ConnState,
    name: &str,
    args: &[Value],
) -> Result<Response, Fail> {
    let Some(target) = sess.globals.get(name).cloned() else {
        return Err(Fail::Report {
            code: ErrCode::Unresolved,
            msg: format!("unknown global {name}"),
        });
    };
    let rargs: Vec<RVal> = args.iter().map(value_to_rval).collect();
    let txn = state.txn.as_mut().expect("with_txn ensured");
    let mut view = TxnView::new(&mut sess.store, txn, mgr.locks());
    let mut machine = Machine::new(&sess.vm.code, &sess.vm.externs, &mut view, sess.config.fuel);
    match machine.call_value_checked(RVal::from_sval(&target), rargs) {
        Ok(Ok(v)) => Ok(Response::Val(rval_to_value(&v))),
        Ok(Err(exc)) => Err(Fail::Report {
            code: ErrCode::Exception,
            msg: format!("{exc:?}"),
        }),
        Err(VmError::Aborted(e)) => Err(Fail::from_store(e)),
        Err(e) => Err(Fail::Report {
            code: ErrCode::Server,
            msg: e.to_string(),
        }),
    }
}

/// Install shipped PTML: decode, recompile, rebind free identifiers
/// against the server's globals, and persist PTML + closure + root
/// through the transaction view (all logged, all undoable).
fn ship(
    sess: &mut Session<DurableStore>,
    mgr: &TxnManager,
    state: &mut ConnState,
    name: &str,
    ptml: &[u8],
) -> Result<Response, Fail> {
    let (abs, free) =
        tml_store::ptml::decode_abs(&mut sess.ctx, ptml).map_err(|e| Fail::Report {
            code: ErrCode::Proto,
            msg: format!("undecodable PTML: {e}"),
        })?;
    let compiled = sess
        .vm
        .compile_proc(&sess.ctx, &abs)
        .map_err(|e| Fail::Report {
            code: ErrCode::Server,
            msg: format!("recompile failed: {e}"),
        })?;
    let by_var: HashMap<_, _> = free.iter().map(|(n, v)| (*v, n.clone())).collect();
    let mut env = Vec::new();
    let mut bindings = Vec::new();
    for v in &compiled.captures {
        let free_name = &by_var[v];
        let Some(val) = sess.globals.get(free_name).cloned() else {
            return Err(Fail::Report {
                code: ErrCode::Unresolved,
                msg: format!("server cannot resolve {free_name}"),
            });
        };
        env.push(val.clone());
        bindings.push((free_name.clone(), val));
    }
    let txn = state.txn.as_mut().expect("with_txn ensured");
    let mut view = TxnView::new(&mut sess.store, txn, mgr.locks());
    let install = (|| -> Result<tml_core::Oid, StoreError> {
        let ptml_oid = view.alloc(Object::Ptml(ptml.to_vec()))?;
        let clo = view.alloc(Object::Closure(ClosureObj {
            code: compiled.block,
            env,
            bindings,
            ptml: Some(ptml_oid),
        }))?;
        view.set_root(name, clo)?;
        Ok(clo)
    })();
    let clo = install.map_err(Fail::from_store)?;
    let prev = sess.globals.insert(name.to_string(), SVal::Ref(clo));
    state.pending_globals.push((name.to_string(), prev));
    Ok(Response::Ok)
}
