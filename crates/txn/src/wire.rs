//! The length-framed client/server protocol — the code-shipping flow of
//! `examples/code_shipping.rs` promoted to a wire format.
//!
//! Every frame is `u32` little-endian payload length, then the payload:
//! one kind byte followed by varint-encoded fields (the store's own
//! varint module, so the encoding matches PTML/WAL idiom). Strings and
//! byte strings are length-prefixed; values carry a one-byte tag.
//!
//! Frames are capped at 16 MiB — a frame length beyond the cap is a
//! protocol error, not an allocation.
//!
//! The `serve.read` / `serve.write` failpoints (keyed by connection id)
//! fire inside [`read_frame`]/[`write_frame`] so the fault matrix can
//! sever a session at any frame boundary.

use std::io::{Read, Write};

use tml_store::failpoint;
use tml_store::varint::{self, Reader};

/// Hard ceiling on one frame's payload.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// A wire value: the immediate subset of the VM's runtime values that
/// crosses the protocol (references and closures ship as PTML instead).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unit.
    Unit,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// Immutable string.
    Str(String),
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe.
    Ping,
    /// Open an explicit transaction for this session.
    Begin,
    /// Commit the session's transaction.
    Commit,
    /// Abort the session's transaction.
    Abort,
    /// Ship a function: PTML bytes, installed under `name` (a global and
    /// a persistent root) after relinking against the server's globals.
    Ship {
        /// Global/root name to install under.
        name: String,
        /// Portable TML bytes.
        ptml: Vec<u8>,
    },
    /// Call a global by name.
    Call {
        /// Fully qualified global name.
        name: String,
        /// Immediate arguments.
        args: Vec<Value>,
    },
    /// Reflectively optimize a global on the server (outside any
    /// transaction; the optimization cache is derived data).
    Optimize {
        /// Fully qualified global name.
        name: String,
    },
    /// Close this session (the server aborts an open transaction).
    Bye,
    /// Ask the server to shut down gracefully (drain, checkpoint, exit).
    Shutdown,
}

/// Typed error category in an [`Response::Err`] frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrCode {
    /// Malformed or out-of-order request.
    Proto,
    /// A TML-level exception escaped the call.
    Exception,
    /// The transaction was aborted (deadlock victim, lock timeout,
    /// injected fault). Retryable: begin a new transaction and re-run.
    Aborted,
    /// Unknown global / unresolvable name.
    Unresolved,
    /// Server-side failure (IO, store poisoned).
    Server,
}

impl ErrCode {
    fn to_byte(self) -> u8 {
        match self {
            ErrCode::Proto => 1,
            ErrCode::Exception => 2,
            ErrCode::Aborted => 3,
            ErrCode::Unresolved => 4,
            ErrCode::Server => 5,
        }
    }

    fn from_byte(b: u8) -> Option<ErrCode> {
        Some(match b {
            1 => ErrCode::Proto,
            2 => ErrCode::Exception,
            3 => ErrCode::Aborted,
            4 => ErrCode::Unresolved,
            5 => ErrCode::Server,
            _ => return None,
        })
    }
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Request done, no value.
    Ok,
    /// Request done, with a value.
    Val(Value),
    /// Request failed.
    Err {
        /// Category (drives client-side retry).
        code: ErrCode,
        /// Human-readable detail.
        msg: String,
    },
    /// The server acknowledges session close.
    Bye,
}

const REQ_PING: u8 = 1;
const REQ_BEGIN: u8 = 2;
const REQ_COMMIT: u8 = 3;
const REQ_ABORT: u8 = 4;
const REQ_SHIP: u8 = 5;
const REQ_CALL: u8 = 6;
const REQ_OPTIMIZE: u8 = 7;
const REQ_BYE: u8 = 8;
const REQ_SHUTDOWN: u8 = 9;

const RSP_OK: u8 = 1;
const RSP_VAL: u8 = 2;
const RSP_ERR: u8 = 3;
const RSP_BYE: u8 = 4;

const VAL_UNIT: u8 = 0;
const VAL_BOOL: u8 = 1;
const VAL_INT: u8 = 2;
const VAL_STR: u8 = 3;

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Unit => out.push(VAL_UNIT),
        Value::Bool(b) => {
            out.push(VAL_BOOL);
            out.push(u8::from(*b));
        }
        Value::Int(n) => {
            out.push(VAL_INT);
            varint::put_i64(out, *n);
        }
        Value::Str(s) => {
            out.push(VAL_STR);
            varint::put_str(out, s);
        }
    }
}

fn get_value(r: &mut Reader) -> Result<Value, WireError> {
    Ok(match r.byte()? {
        VAL_UNIT => Value::Unit,
        VAL_BOOL => Value::Bool(r.byte()? != 0),
        VAL_INT => Value::Int(r.i64()?),
        VAL_STR => Value::Str(r.str()?.to_string()),
        t => return Err(WireError::Malformed(format!("bad value tag {t}"))),
    })
}

/// Encode a request payload (no frame header).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut out = Vec::new();
    match req {
        Request::Ping => out.push(REQ_PING),
        Request::Begin => out.push(REQ_BEGIN),
        Request::Commit => out.push(REQ_COMMIT),
        Request::Abort => out.push(REQ_ABORT),
        Request::Ship { name, ptml } => {
            out.push(REQ_SHIP);
            varint::put_str(&mut out, name);
            varint::put_bytes(&mut out, ptml);
        }
        Request::Call { name, args } => {
            out.push(REQ_CALL);
            varint::put_str(&mut out, name);
            varint::put_u64(&mut out, args.len() as u64);
            for a in args {
                put_value(&mut out, a);
            }
        }
        Request::Optimize { name } => {
            out.push(REQ_OPTIMIZE);
            varint::put_str(&mut out, name);
        }
        Request::Bye => out.push(REQ_BYE),
        Request::Shutdown => out.push(REQ_SHUTDOWN),
    }
    out
}

/// Decode a request payload.
pub fn decode_request(buf: &[u8]) -> Result<Request, WireError> {
    let mut r = Reader::new(buf);
    let req = match r.byte()? {
        REQ_PING => Request::Ping,
        REQ_BEGIN => Request::Begin,
        REQ_COMMIT => Request::Commit,
        REQ_ABORT => Request::Abort,
        REQ_SHIP => Request::Ship {
            name: r.str()?.to_string(),
            ptml: r.byte_string()?.to_vec(),
        },
        REQ_CALL => {
            let name = r.str()?.to_string();
            let n = r.len()?;
            if n > buf.len() {
                return Err(WireError::Malformed(format!("arg count {n} exceeds frame")));
            }
            let mut args = Vec::with_capacity(n);
            for _ in 0..n {
                args.push(get_value(&mut r)?);
            }
            Request::Call { name, args }
        }
        REQ_OPTIMIZE => Request::Optimize {
            name: r.str()?.to_string(),
        },
        REQ_BYE => Request::Bye,
        REQ_SHUTDOWN => Request::Shutdown,
        t => return Err(WireError::Malformed(format!("bad request kind {t}"))),
    };
    if !r.is_at_end() {
        return Err(WireError::Malformed("trailing request bytes".into()));
    }
    Ok(req)
}

/// Encode a response payload (no frame header).
pub fn encode_response(rsp: &Response) -> Vec<u8> {
    let mut out = Vec::new();
    match rsp {
        Response::Ok => out.push(RSP_OK),
        Response::Val(v) => {
            out.push(RSP_VAL);
            put_value(&mut out, v);
        }
        Response::Err { code, msg } => {
            out.push(RSP_ERR);
            out.push(code.to_byte());
            varint::put_str(&mut out, msg);
        }
        Response::Bye => out.push(RSP_BYE),
    }
    out
}

/// Decode a response payload.
pub fn decode_response(buf: &[u8]) -> Result<Response, WireError> {
    let mut r = Reader::new(buf);
    let rsp = match r.byte()? {
        RSP_OK => Response::Ok,
        RSP_VAL => Response::Val(get_value(&mut r)?),
        RSP_ERR => {
            let code = ErrCode::from_byte(r.byte()?)
                .ok_or_else(|| WireError::Malformed("bad error code".into()))?;
            Response::Err {
                code,
                msg: r.str()?.to_string(),
            }
        }
        RSP_BYE => Response::Bye,
        t => return Err(WireError::Malformed(format!("bad response kind {t}"))),
    };
    if !r.is_at_end() {
        return Err(WireError::Malformed("trailing response bytes".into()));
    }
    Ok(rsp)
}

/// Protocol failures.
#[derive(Debug)]
pub enum WireError {
    /// Transport-level failure (includes clean EOF between frames).
    Io(std::io::Error),
    /// Undecodable payload.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire io: {e}"),
            WireError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

impl From<varint::DecodeError> for WireError {
    fn from(e: varint::DecodeError) -> Self {
        WireError::Malformed(e.to_string())
    }
}

/// Read one frame. `conn` keys the `serve.read` failpoint.
pub fn read_frame(r: &mut impl Read, conn: u64) -> Result<Vec<u8>, WireError> {
    failpoint::fail_io("serve.read", conn)?;
    let mut hdr = [0u8; 4];
    r.read_exact(&mut hdr)?;
    let len = u32::from_le_bytes(hdr);
    if len > MAX_FRAME {
        return Err(WireError::Malformed(format!("frame of {len} bytes")));
    }
    let mut buf = vec![0u8; len as usize];
    r.read_exact(&mut buf)?;
    Ok(buf)
}

/// Write one frame. `conn` keys the `serve.write` failpoint.
pub fn write_frame(w: &mut impl Write, conn: u64, payload: &[u8]) -> Result<(), WireError> {
    failpoint::fail_io("serve.write", conn)?;
    debug_assert!(payload.len() <= MAX_FRAME as usize);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_roundtrip() {
        let cases = vec![
            Request::Ping,
            Request::Begin,
            Request::Commit,
            Request::Abort,
            Request::Ship {
                name: "shipped.rate".into(),
                ptml: vec![1, 2, 3, 0xff],
            },
            Request::Call {
                name: "score.rate".into(),
                args: vec![
                    Value::Int(-42),
                    Value::Bool(true),
                    Value::Str("x".into()),
                    Value::Unit,
                ],
            },
            Request::Optimize {
                name: "shipped.rate".into(),
            },
            Request::Bye,
            Request::Shutdown,
        ];
        for req in cases {
            let bytes = encode_request(&req);
            assert_eq!(decode_request(&bytes).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn responses_roundtrip() {
        let cases = vec![
            Response::Ok,
            Response::Val(Value::Int(7)),
            Response::Err {
                code: ErrCode::Aborted,
                msg: "deadlock victim".into(),
            },
            Response::Bye,
        ];
        for rsp in cases {
            let bytes = encode_response(&rsp);
            assert_eq!(decode_response(&bytes).unwrap(), rsp, "{rsp:?}");
        }
    }

    #[test]
    fn frames_roundtrip_and_cap() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 1, &[9, 9, 9]).unwrap();
        let got = read_frame(&mut buf.as_slice(), 1).unwrap();
        assert_eq!(got, vec![9, 9, 9]);
        // An adversarial length header is an error, not an allocation.
        let huge = (MAX_FRAME + 1).to_le_bytes();
        assert!(matches!(
            read_frame(&mut huge.as_slice(), 1),
            Err(WireError::Malformed(_))
        ));
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_request(&[200]).is_err());
        assert!(decode_response(&[RSP_ERR, 99, 0]).is_err());
        // Trailing garbage after a valid body.
        let mut bytes = encode_request(&Request::Ping);
        bytes.push(0);
        assert!(decode_request(&bytes).is_err());
    }
}
