//! The transaction manager: undo-buffered, lock-guarded mutation over
//! any [`StoreAccess`] backend.
//!
//! A [`Txn`] is an id plus an undo list. Mutations go through a
//! [`TxnView`], which (1) takes the key's exclusive lock with a
//! *non-blocking* acquire — a conflict surfaces as
//! [`StoreError::Busy`], aborting the VM run so the caller can wait
//! outside whatever critical section the store lives in — (2) computes
//! the undo record against the pre-state with the same helpers recovery
//! uses, (3) performs the operation with the backend stamped
//! `TxnOp{txn}`, and (4) pushes the undo entry.
//!
//! Abort replays the undo list in reverse through the same logged entry
//! points, stamped as compensating records (`clr`), so a crash at any
//! point — mid-transaction, mid-abort, around the resolution marker —
//! recovers byte-identically: `tml-store`'s recovery replays the
//! committed prefix and rolls losers back with exactly these records.
//!
//! Commit appends a `TxnCommit` marker and runs the backend's normal
//! group-commit path; locks release only after resolution (strict 2PL).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use tml_core::Oid;
use tml_store::access::TxnStamp;
use tml_store::cache::{CacheEntry, CacheKey};
use tml_store::failpoint;
use tml_store::gc::GcStats;
use tml_store::wal::{
    undo_for_alloc, undo_for_remove_attr, undo_for_remove_root, undo_for_set, undo_for_set_attr,
    undo_for_set_root, WalRecord,
};
use tml_store::{Object, SVal, Store, StoreAccess, StoreError};

use crate::lock::{hash3, LockError, LockOptions, LockTable};

/// Lock key of an object: its OID index (top bit clear — OIDs are
/// sequential allocations, nowhere near 2^63).
pub fn oid_key(oid: Oid) -> u64 {
    oid.0 & !(1 << 63)
}

/// Lock key of a persistent root name: a hash with the top bit set, so
/// root locks can never collide with OID locks. Two names hashing
/// together merely over-serialize — never under-lock.
pub fn root_key(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h | (1 << 63)
}

/// Transaction-layer tuning.
#[derive(Debug, Clone, Copy, Default)]
pub struct TxnOptions {
    /// Blocking-acquisition behavior for waits done outside the VM.
    pub lock: LockOptions,
}

/// One open transaction: an id and the undo records accumulated so far
/// (most recent last).
#[derive(Debug)]
pub struct Txn {
    id: u64,
    undo: Vec<WalRecord>,
    started: Instant,
}

impl Txn {
    /// The transaction id (also its WAL stamp and lock-table identity).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Number of undo records buffered (== logged forward mutations).
    pub fn ops(&self) -> usize {
        self.undo.len()
    }

    /// A rollback point for partial rollback ([`TxnManager::rollback_to`]).
    pub fn savepoint(&self) -> usize {
        self.undo.len()
    }
}

/// Hands out transaction ids and owns the lock table. One per store.
#[derive(Debug)]
pub struct TxnManager {
    next: AtomicU64,
    locks: Arc<LockTable>,
    opts: TxnOptions,
}

impl Default for TxnManager {
    fn default() -> Self {
        TxnManager::new(TxnOptions::default())
    }
}

impl TxnManager {
    /// A fresh manager with its own lock table. Ids start at 1; recovery
    /// heals the log whenever loser records exist, so a restarted
    /// manager's ids cannot collide with unresolved ones.
    pub fn new(opts: TxnOptions) -> TxnManager {
        TxnManager {
            next: AtomicU64::new(1),
            locks: Arc::new(LockTable::new()),
            opts,
        }
    }

    /// The shared lock table (for blocking waits outside a [`TxnView`]).
    pub fn locks(&self) -> &Arc<LockTable> {
        &self.locks
    }

    /// The configured lock options.
    pub fn lock_options(&self) -> &LockOptions {
        &self.opts.lock
    }

    /// Open a transaction: allocate an id and pin the backend's log so a
    /// concurrent commit cannot checkpoint the undo trail away.
    pub fn begin<S: StoreAccess + ?Sized>(&self, store: &mut S) -> Txn {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        store.txn_pin();
        if tml_trace::enabled() {
            tml_trace::count("txn.begins", 1);
            tml_trace::record(tml_trace::Event::Txn {
                op: "begin",
                txn: id,
                n: 0,
                micros: 0,
            });
        }
        Txn {
            id,
            undo: Vec::new(),
            started: Instant::now(),
        }
    }

    /// Commit: append the `TxnCommit` marker, run the backend's normal
    /// group-commit path, release locks. The `txn.commit` failpoint
    /// (keyed by txn id) fires *before* the marker — a crash there loses
    /// the whole transaction, never half of it.
    pub fn commit<S: StoreAccess + ?Sized>(
        &self,
        store: &mut S,
        txn: Txn,
    ) -> Result<bool, StoreError> {
        store.txn_stamp(None);
        let marked = failpoint::fail_io("txn.commit", txn.id)
            .map_err(|e| StoreError::Io(e.to_string()))
            .and_then(|()| store.txn_marker(txn.id, true));
        store.txn_unpin();
        self.locks.release_all(txn.id);
        let synced = marked?;
        if tml_trace::enabled() {
            tml_trace::count("txn.commits", 1);
            tml_trace::record(tml_trace::Event::Txn {
                op: "commit",
                txn: txn.id,
                n: txn.undo.len() as u64,
                micros: (txn.started.elapsed().as_micros()).min(u128::from(u64::MAX)) as u64,
            });
        }
        Ok(synced)
    }

    /// Abort: roll the undo list back through the logged entry points
    /// (compensating records), append the `TxnAbort` marker, release
    /// locks. The `txn.abort` failpoint fires per undo step, so the
    /// fault matrix exercises partial compensation trails.
    pub fn abort<S: StoreAccess + ?Sized>(
        &self,
        store: &mut S,
        mut txn: Txn,
    ) -> Result<(), StoreError> {
        let n = txn.undo.len() as u64;
        let rolled = self
            .rollback_to(store, &mut txn, 0)
            .and_then(|()| store.txn_marker(txn.id, false).map(|_| ()));
        store.txn_unpin();
        self.locks.release_all(txn.id);
        rolled?;
        if tml_trace::enabled() {
            tml_trace::count("txn.aborts", 1);
            tml_trace::record(tml_trace::Event::Txn {
                op: "abort",
                txn: txn.id,
                n,
                micros: (txn.started.elapsed().as_micros()).min(u128::from(u64::MAX)) as u64,
            });
        }
        Ok(())
    }

    /// Roll back to a savepoint: undo (and pop) records past `sp`, most
    /// recent first, each applied through the seam stamped as a
    /// compensating record. Locks stay held — the transaction is still
    /// open and may retry.
    pub fn rollback_to<S: StoreAccess + ?Sized>(
        &self,
        store: &mut S,
        txn: &mut Txn,
        sp: usize,
    ) -> Result<(), StoreError> {
        while txn.undo.len() > sp {
            failpoint::fail_io("txn.abort", txn.id).map_err(|e| StoreError::Io(e.to_string()))?;
            let rec = txn.undo.last().cloned().expect("len > sp >= 0");
            store.txn_stamp(Some(TxnStamp {
                txn: txn.id,
                clr: true,
            }));
            let r = apply_undo(store, &rec);
            store.txn_stamp(None);
            r?;
            txn.undo.pop();
        }
        Ok(())
    }

    /// Block until `key` is grantable to `txn` (used by executors after
    /// a [`StoreError::Busy`], *outside* their store critical section),
    /// with the configured timeout/backoff. Maps lock failures to the
    /// typed abort the caller propagates.
    pub fn wait_for(&self, txn: &Txn, key: u64, exclusive: bool) -> Result<(), StoreError> {
        self.locks
            .acquire_with_retry(txn.id, key, exclusive, &self.opts.lock)
            .map_err(|e| lock_to_store(txn.id, e))
    }
}

/// Map a lock failure to the store-level error the VM and session
/// layers understand.
pub fn lock_to_store(txn: u64, e: LockError) -> StoreError {
    match e {
        LockError::Busy { holder, exclusive } => StoreError::Busy {
            key: 0,
            holder,
            exclusive,
        },
        LockError::Timeout => StoreError::Aborted {
            txn,
            reason: "lock timeout",
        },
        LockError::Deadlock => StoreError::Aborted {
            txn,
            reason: "deadlock victim",
        },
        LockError::Injected => StoreError::Aborted {
            txn,
            reason: "injected lock fault",
        },
    }
}

/// Apply one undo record through the seam (logged as a CLR by the
/// enclosing stamp). Only inverse-op variants appear in undo lists.
fn apply_undo<S: StoreAccess + ?Sized>(store: &mut S, rec: &WalRecord) -> Result<(), StoreError> {
    match rec {
        WalRecord::Free { oid } => store.free_obj(*oid),
        WalRecord::Set { oid, obj } => store.set(*oid, obj.clone()),
        WalRecord::SetRoot { name, oid } => store.set_root(name, *oid),
        WalRecord::RemoveRoot { name } => store.remove_root(name).map(|_| ()),
        WalRecord::SetAttr { oid, key, value } => store.set_attr(*oid, key, *value),
        WalRecord::RemoveAttr { oid, key } => store.remove_attr(*oid, key).map(|_| ()),
        other => Err(StoreError::Io(format!(
            "malformed undo record: {}",
            other.kind_name()
        ))),
    }
}

/// A transactional view over a store backend: locks + undo + stamping
/// around every mutation. Implements [`StoreAccess`], so the VM, the
/// session loader and the reflective optimizer run over it unchanged.
///
/// Reads (`get`, `array_get`, …) take shared try-locks; `root()` and
/// `attr()` return bare `Option`s and stay read-committed (no channel
/// for a conflict — documented degradation, bounded by the enclosing
/// request retry). `free_obj`, `collect` and `checkpoint` are refused
/// inside a transaction: a tombstoned OID cannot be resurrected through
/// the seam, so freeing is not undoable.
pub struct TxnView<'a, S: StoreAccess + ?Sized> {
    store: &'a mut S,
    txn: &'a mut Txn,
    locks: &'a LockTable,
}

impl<'a, S: StoreAccess + ?Sized> TxnView<'a, S> {
    /// Wrap `store` for mutations by `txn`.
    pub fn new(store: &'a mut S, txn: &'a mut Txn, locks: &'a LockTable) -> TxnView<'a, S> {
        TxnView { store, txn, locks }
    }

    fn lock(&self, key: u64, exclusive: bool) -> Result<(), StoreError> {
        match self.locks.try_acquire(self.txn.id, key, exclusive) {
            Ok(()) => Ok(()),
            Err(LockError::Busy { holder, exclusive }) => Err(StoreError::Busy {
                key,
                holder,
                exclusive,
            }),
            Err(e) => Err(lock_to_store(self.txn.id, e)),
        }
    }

    /// Run `f` with the backend stamped as a forward op of this txn,
    /// then push `undo` on success.
    fn logged<T>(
        &mut self,
        undo: Option<WalRecord>,
        f: impl FnOnce(&mut S) -> Result<T, StoreError>,
    ) -> Result<T, StoreError> {
        self.store.txn_stamp(Some(TxnStamp {
            txn: self.txn.id,
            clr: false,
        }));
        let r = f(self.store);
        self.store.txn_stamp(None);
        let v = r?;
        if let Some(u) = undo {
            self.txn.undo.push(u);
        }
        Ok(v)
    }
}

impl<S: StoreAccess + ?Sized> StoreAccess for TxnView<'_, S> {
    fn base(&self) -> &Store {
        self.store.base()
    }

    fn base_mut_unlogged(&mut self) -> &mut Store {
        self.store.base_mut_unlogged()
    }

    fn alloc(&mut self, obj: Object) -> Result<Oid, StoreError> {
        let oid = self.logged(None, |s| s.alloc(obj))?;
        self.txn.undo.push(undo_for_alloc(oid));
        // A fresh OID is invisible to other transactions until a root or
        // container publishes it, and publishing needs their lock — but
        // lock it anyway so every undo-listed OID is provably ours. The
        // undo entry is pushed first: even a failed grab must leave the
        // allocation rollback-able.
        self.lock(oid_key(oid), true)?;
        Ok(oid)
    }

    fn set(&mut self, oid: Oid, obj: Object) -> Result<(), StoreError> {
        self.lock(oid_key(oid), true)?;
        let undo = undo_for_set(self.store.base(), oid)?;
        self.logged(Some(undo), |s| s.set(oid, obj))
    }

    fn free_obj(&mut self, _oid: Oid) -> Result<(), StoreError> {
        // A tombstone cannot be resurrected through the seam, so a freed
        // object would be unrecoverable on abort. GC runs outside
        // transactions (the server does it between requests).
        Err(StoreError::Io(
            "free inside a transaction is not undoable".into(),
        ))
    }

    fn mutate(
        &mut self,
        oid: Oid,
        f: &mut dyn FnMut(&mut Object) -> Result<(), StoreError>,
    ) -> Result<(), StoreError> {
        self.lock(oid_key(oid), true)?;
        let undo = undo_for_set(self.store.base(), oid)?;
        self.logged(Some(undo), |s| s.mutate(oid, f))
    }

    fn set_root(&mut self, name: &str, oid: Oid) -> Result<(), StoreError> {
        self.lock(root_key(name), true)?;
        let undo = undo_for_set_root(self.store.base(), name);
        self.logged(Some(undo), |s| s.set_root(name, oid))
    }

    fn remove_root(&mut self, name: &str) -> Result<Option<Oid>, StoreError> {
        self.lock(root_key(name), true)?;
        let undo = undo_for_remove_root(self.store.base(), name);
        self.logged(undo, |s| s.remove_root(name))
    }

    fn set_attr(&mut self, oid: Oid, key: &str, value: i64) -> Result<(), StoreError> {
        self.lock(oid_key(oid), true)?;
        let undo = undo_for_set_attr(self.store.base(), oid, key);
        self.logged(Some(undo), |s| s.set_attr(oid, key, value))
    }

    fn remove_attr(&mut self, oid: Oid, key: &str) -> Result<Option<i64>, StoreError> {
        self.lock(oid_key(oid), true)?;
        let undo = undo_for_remove_attr(self.store.base(), oid, key);
        self.logged(undo, |s| s.remove_attr(oid, key))
    }

    fn array_set(&mut self, oid: Oid, index: i64, value: SVal) -> Result<(), StoreError> {
        self.lock(oid_key(oid), true)?;
        let undo = undo_for_set(self.store.base(), oid)?;
        self.logged(Some(undo), |s| s.array_set(oid, index, value))
    }

    fn bytes_set(&mut self, oid: Oid, index: i64, value: u8) -> Result<(), StoreError> {
        self.lock(oid_key(oid), true)?;
        let undo = undo_for_set(self.store.base(), oid)?;
        self.logged(Some(undo), |s| s.bytes_set(oid, index, value))
    }

    fn collect(&mut self, _extra_roots: &[Oid]) -> Result<GcStats, StoreError> {
        Err(StoreError::Io(
            "garbage collection inside a transaction".into(),
        ))
    }

    fn commit(&mut self) -> Result<bool, StoreError> {
        // Durability points are the transaction markers; an inner commit
        // (e.g. module-load autosave) is deferred to resolution.
        Ok(false)
    }

    fn checkpoint(&mut self) -> Result<(), StoreError> {
        Err(StoreError::Io("checkpoint inside a transaction".into()))
    }

    fn cache_lookup(&mut self, key: CacheKey) -> Option<CacheEntry> {
        // Cache entries are derived data: not locked, not undone.
        self.store.cache_lookup(key)
    }

    fn cache_insert(&mut self, key: CacheKey, entry: CacheEntry) {
        self.store.cache_insert(key, entry)
    }

    // -- Reads: shared try-locks where a Result channel exists ----------

    fn get(&self, oid: Oid) -> Result<&Object, StoreError> {
        self.lock(oid_key(oid), false)?;
        self.store.get(oid)
    }

    fn array_get(&self, oid: Oid, index: i64) -> Result<SVal, StoreError> {
        self.lock(oid_key(oid), false)?;
        self.store.array_get(oid, index)
    }

    fn bytes_get(&self, oid: Oid, index: i64) -> Result<u8, StoreError> {
        self.lock(oid_key(oid), false)?;
        self.store.bytes_get(oid, index)
    }

    fn size_of(&self, oid: Oid) -> Result<usize, StoreError> {
        self.lock(oid_key(oid), false)?;
        self.store.size_of(oid)
    }
}

/// Deterministic per-(txn, key) jitter — re-exported for tests that want
/// to reproduce the backoff schedule.
pub fn jitter(txn: u64, key: u64, attempt: u32) -> u64 {
    hash3(txn, key, u64::from(attempt))
}
