//! The lock table: strict two-phase locking over store OIDs and root
//! names.
//!
//! Lock keys are plain `u64`s — an OID's index, or a hashed root name
//! with the top bit set (see [`crate::txn::root_key`]). Each key has a
//! set of holders (many shared, or one exclusive) and a FIFO wait
//! queue; upgrades (shared → exclusive by the sole holder) happen in
//! place, and an upgrader that must wait jumps to the front of the
//! queue.
//!
//! ## Deadlock handling
//!
//! A transaction entering a wait runs wait-for-graph cycle detection:
//! edges go from each waiting transaction to the *conflicting* holders
//! of — and conflicting waiters ahead of it on — its awaited key.
//! (A shared waiter queued behind another shared waiter is not an
//! edge: `promote` grants consecutive compatible waiters in one wave,
//! so only mode conflicts actually block.) Detection repeats, skipping
//! already-chosen victims, until no cycle through the enqueuer
//! remains; each cycle's *youngest* member (highest txn id) wakes with
//! [`LockError::Deadlock`], which the transaction layer converts into a
//! typed abort the session can transparently retry. Timeouts are the
//! backstop for anything detection misses.
//!
//! ## Fairness
//!
//! [`LockTable::try_acquire`] declines a grantable shared lock when the
//! queue is non-empty, so a stream of readers cannot starve a waiting
//! writer. Re-entrant requests by an existing holder are always granted.

use std::collections::{BTreeMap, HashSet, VecDeque};
use std::sync::{Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

use tml_store::failpoint;

/// Process-wide jitter seed from `TML_JITTER_SEED`, read once. When set,
/// every jittered backoff schedule in this process — lock-retry sleeps
/// here, client transaction-retry pauses — derives from the seed instead
/// of per-run state (the client's ephemeral port), so a soak or stress
/// run's interleaving can be reproduced exactly in CI by exporting the
/// same seed. Unset (`None`) preserves the historical schedules.
pub(crate) fn jitter_seed() -> Option<u64> {
    static SEED: OnceLock<Option<u64>> = OnceLock::new();
    *SEED.get_or_init(|| {
        std::env::var("TML_JITTER_SEED")
            .ok()
            .and_then(|s| s.trim().parse().ok())
    })
}

/// Requested/held access mode for one lock key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockMode {
    /// Shared: many readers.
    Shared,
    /// Exclusive: one writer.
    Exclusive,
}

/// Tuning for blocking acquisition.
#[derive(Debug, Clone, Copy)]
pub struct LockOptions {
    /// How long one blocking [`LockTable::acquire`] waits before
    /// reporting [`LockError::Timeout`].
    pub timeout: Duration,
    /// Extra attempts [`LockTable::acquire_with_retry`] makes after the
    /// first timeout.
    pub retries: u32,
    /// Base backoff between retry attempts; doubles per attempt, with
    /// deterministic jitter derived from `(txn, key, attempt)`.
    pub backoff: Duration,
}

impl Default for LockOptions {
    fn default() -> Self {
        LockOptions {
            timeout: Duration::from_millis(1000),
            retries: 3,
            backoff: Duration::from_millis(10),
        }
    }
}

/// Why a lock was not granted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockError {
    /// Non-blocking attempt conflicted; `holder` is one current holder
    /// (or queue-front waiter) standing in the way.
    Busy {
        /// A transaction currently holding (or queued ahead on) the key.
        holder: u64,
        /// Whether the *request* was for exclusive access.
        exclusive: bool,
    },
    /// A blocking wait exceeded its timeout.
    Timeout,
    /// The waiter was chosen as a deadlock victim.
    Deadlock,
    /// The `lock.acquire` failpoint fired (fault injection).
    Injected,
}

impl std::fmt::Display for LockError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockError::Busy { holder, exclusive } => write!(
                f,
                "lock busy (held by txn {holder}, {} requested)",
                if *exclusive { "exclusive" } else { "shared" }
            ),
            LockError::Timeout => write!(f, "lock wait timed out"),
            LockError::Deadlock => write!(f, "deadlock victim"),
            LockError::Injected => write!(f, "injected lock fault"),
        }
    }
}

impl std::error::Error for LockError {}

/// Point-in-time occupancy of the table (the `tmlc info`/`stats` gauge).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockStats {
    /// Keys with at least one holder or waiter.
    pub keys: u64,
    /// Granted (txn, key) pairs.
    pub holders: u64,
    /// Queued waiters across all keys.
    pub waiters: u64,
}

#[derive(Debug, Clone, Copy)]
struct Waiter {
    txn: u64,
    exclusive: bool,
}

#[derive(Debug, Default)]
struct Entry {
    holders: Vec<(u64, LockMode)>,
    waiters: VecDeque<Waiter>,
}

impl Entry {
    fn holds(&self, txn: u64, exclusive: bool) -> bool {
        self.holders
            .iter()
            .any(|&(t, m)| t == txn && (!exclusive || m == LockMode::Exclusive))
    }

    /// Whether `txn` could be granted `exclusive` access right now,
    /// ignoring the queue.
    fn compatible(&self, txn: u64, exclusive: bool) -> bool {
        if exclusive {
            self.holders.iter().all(|&(t, _)| t == txn)
        } else {
            self.holders
                .iter()
                .all(|&(t, m)| t == txn || m == LockMode::Shared)
        }
    }

    fn grant(&mut self, txn: u64, exclusive: bool) {
        if let Some(h) = self.holders.iter_mut().find(|(t, _)| *t == txn) {
            if exclusive {
                h.1 = LockMode::Exclusive;
            }
        } else {
            self.holders.push((
                txn,
                if exclusive {
                    LockMode::Exclusive
                } else {
                    LockMode::Shared
                },
            ));
        }
    }
}

#[derive(Debug, Default)]
struct State {
    entries: BTreeMap<u64, Entry>,
    /// Waiting transaction → the single (key, exclusive) it waits on.
    waits: BTreeMap<u64, (u64, bool)>,
    /// Transactions chosen as deadlock victims, pending their wake-up.
    victims: HashSet<u64>,
}

impl State {
    /// Grant-wave from the front of `key`'s queue: grant consecutive
    /// compatible waiters, stop at the first that must keep waiting.
    fn promote(&mut self, key: u64) {
        let Some(e) = self.entries.get_mut(&key) else {
            return;
        };
        while let Some(&w) = e.waiters.front() {
            if !e.compatible(w.txn, w.exclusive) {
                break;
            }
            e.waiters.pop_front();
            e.grant(w.txn, w.exclusive);
            self.waits.remove(&w.txn);
        }
        if e.holders.is_empty() && e.waiters.is_empty() {
            self.entries.remove(&key);
        }
    }

    /// Everything `w` (waiting on `key` with mode `excl`) actually
    /// waits for: the key's *conflicting* holders plus the
    /// *conflicting* waiters queued ahead of it. Compatible neighbours
    /// (shared next to shared) are not edges — `promote` grants them in
    /// the same wave, so they never block each other.
    fn edges_of(&self, w: u64, excl: bool, key: u64, out: &mut Vec<u64>) {
        out.clear();
        let Some(e) = self.entries.get(&key) else {
            return;
        };
        out.extend(
            e.holders
                .iter()
                .filter(|&&(t, m)| t != w && (excl || m == LockMode::Exclusive))
                .map(|&(t, _)| t),
        );
        for q in &e.waiters {
            if q.txn == w {
                break;
            }
            if q.exclusive || excl {
                out.push(q.txn);
            }
        }
    }

    /// Find a wait-for cycle through `start`, returning its members.
    /// Transactions already marked as victims are treated as gone —
    /// their locks are about to be released.
    fn find_cycle(&self, start: u64) -> Option<Vec<u64>> {
        // DFS over the wait-for graph. Nodes are waiting transactions;
        // a txn waits on at most one key, so the graph is small and a
        // cycle through `start` can only appear when `start` enters a
        // wait — which is exactly when this runs.
        let mut path = vec![start];
        let mut frontier: Vec<Vec<u64>> = Vec::new();
        let mut edges = Vec::new();
        let &(key, excl) = self.waits.get(&start)?;
        self.edges_of(start, excl, key, &mut edges);
        frontier.push(edges.clone());
        while let Some(next) = frontier.last_mut() {
            let Some(node) = next.pop() else {
                frontier.pop();
                path.pop();
                continue;
            };
            if node == start {
                return Some(path.clone());
            }
            if path.contains(&node) || self.victims.contains(&node) {
                continue; // already on the path, or already condemned
            }
            let Some(&(k, x)) = self.waits.get(&node) else {
                continue; // not waiting: no outgoing edges
            };
            path.push(node);
            self.edges_of(node, x, k, &mut edges);
            frontier.push(edges.clone());
        }
        None
    }

    /// Break every wait-for cycle through `txn`, marking each cycle's
    /// youngest member as a victim. Returns `true` when `txn` itself
    /// was condemned (the caller reports [`LockError::Deadlock`]
    /// directly instead of waiting).
    fn resolve_deadlocks(&mut self, txn: u64) -> bool {
        while let Some(cycle) = self.find_cycle(txn) {
            let victim = cycle.iter().copied().max().unwrap_or(txn);
            if tml_trace::enabled() {
                tml_trace::count("lock.deadlocks", 1);
                tml_trace::record(tml_trace::Event::Txn {
                    op: "deadlock",
                    txn: victim,
                    n: cycle.len() as u64,
                    micros: 0,
                });
            }
            if victim == txn {
                return true;
            }
            self.victims.insert(victim);
        }
        false
    }

    fn remove_waiter(&mut self, txn: u64, key: u64) {
        if let Some(e) = self.entries.get_mut(&key) {
            e.waiters.retain(|w| w.txn != txn);
            if e.holders.is_empty() && e.waiters.is_empty() {
                self.entries.remove(&key);
            } else {
                self.promote(key);
            }
        }
        self.waits.remove(&txn);
    }
}

/// The shared lock table. One instance serves every transaction of a
/// store; all methods take `&self` and are thread-safe.
#[derive(Debug, Default)]
pub struct LockTable {
    state: Mutex<State>,
    cv: Condvar,
}

impl LockTable {
    /// A fresh, empty table.
    pub fn new() -> LockTable {
        LockTable::default()
    }

    /// Non-blocking acquisition. Grants re-entrant requests and
    /// uncontended (or share-compatible, queue-empty) requests; anything
    /// else returns [`LockError::Busy`] with one blocking holder, so the
    /// caller can wait *outside* whatever critical section it runs in.
    pub fn try_acquire(&self, txn: u64, key: u64, exclusive: bool) -> Result<(), LockError> {
        if failpoint::check("lock.acquire", key).is_some() {
            return Err(LockError::Injected);
        }
        let mut s = self.state.lock().unwrap();
        let e = s.entries.entry(key).or_default();
        if e.holds(txn, exclusive) {
            return Ok(());
        }
        let blocked_by_queue = !e.waiters.is_empty() && !e.holders.iter().any(|&(t, _)| t == txn);
        if !blocked_by_queue && e.compatible(txn, exclusive) {
            e.grant(txn, exclusive);
            return Ok(());
        }
        let holder = e
            .holders
            .iter()
            .map(|&(t, _)| t)
            .find(|&t| t != txn)
            .or_else(|| e.waiters.front().map(|w| w.txn))
            .unwrap_or(0);
        if e.holders.is_empty() && e.waiters.is_empty() {
            s.entries.remove(&key);
        }
        Err(LockError::Busy { holder, exclusive })
    }

    /// Blocking acquisition with deadlock detection and a timeout.
    pub fn acquire(
        &self,
        txn: u64,
        key: u64,
        exclusive: bool,
        timeout: Duration,
    ) -> Result<(), LockError> {
        match self.try_acquire(txn, key, exclusive) {
            Ok(()) => return Ok(()),
            Err(LockError::Injected) => return Err(LockError::Injected),
            Err(_) => {}
        }
        let started = Instant::now();
        let mut s = self.state.lock().unwrap();
        // Register the wait. An upgrader (already holds shared) jumps the
        // queue: it cannot give way without releasing what it holds.
        let e = s.entries.entry(key).or_default();
        let upgrading = e.holders.iter().any(|&(t, _)| t == txn);
        let w = Waiter { txn, exclusive };
        if upgrading {
            e.waiters.push_front(w);
        } else {
            e.waiters.push_back(w);
        }
        s.waits.insert(txn, (key, exclusive));
        if tml_trace::enabled() {
            tml_trace::count("lock.waits", 1);
        }
        if s.resolve_deadlocks(txn) {
            s.remove_waiter(txn, key);
            self.cv.notify_all();
            return Err(LockError::Deadlock);
        }
        if !s.victims.is_empty() {
            self.cv.notify_all();
        }
        loop {
            s.promote(key);
            let granted = s.entries.get(&key).is_some_and(|e| e.holds(txn, exclusive));
            if granted {
                self.record_wait(started);
                self.cv.notify_all();
                return Ok(());
            }
            if s.victims.remove(&txn) {
                s.remove_waiter(txn, key);
                self.record_wait(started);
                self.cv.notify_all();
                return Err(LockError::Deadlock);
            }
            let elapsed = started.elapsed();
            if elapsed >= timeout {
                s.remove_waiter(txn, key);
                self.record_wait(started);
                self.cv.notify_all();
                if tml_trace::enabled() {
                    tml_trace::count("lock.timeouts", 1);
                }
                return Err(LockError::Timeout);
            }
            let (next, _) = self.cv.wait_timeout(s, timeout - elapsed).unwrap();
            s = next;
        }
    }

    /// [`LockTable::acquire`] wrapped in `opts.retries` extra attempts
    /// with jittered exponential backoff between timeouts. Deadlock and
    /// injected faults propagate immediately — retrying a deadlock
    /// victim without releasing its locks cannot make progress.
    pub fn acquire_with_retry(
        &self,
        txn: u64,
        key: u64,
        exclusive: bool,
        opts: &LockOptions,
    ) -> Result<(), LockError> {
        let mut attempt = 0u32;
        loop {
            match self.acquire(txn, key, exclusive, opts.timeout) {
                Err(LockError::Timeout) if attempt < opts.retries => {
                    let base = opts.backoff.saturating_mul(1 << attempt.min(10));
                    let seed = jitter_seed().unwrap_or(0);
                    let jitter_ns = hash3(txn ^ seed, key, u64::from(attempt))
                        % opts.backoff.as_nanos().max(1) as u64;
                    std::thread::sleep(base + Duration::from_nanos(jitter_ns));
                    attempt += 1;
                }
                r => return r,
            }
        }
    }

    /// Drop every lock and queued wait of `txn` (end of transaction),
    /// promoting each affected queue. Returns the number of keys
    /// released.
    pub fn release_all(&self, txn: u64) -> usize {
        let mut s = self.state.lock().unwrap();
        let affected: Vec<u64> = s
            .entries
            .iter()
            .filter(|(_, e)| {
                e.holders.iter().any(|&(t, _)| t == txn) || e.waiters.iter().any(|w| w.txn == txn)
            })
            .map(|(&k, _)| k)
            .collect();
        let mut released = 0;
        for &k in &affected {
            let e = s.entries.get_mut(&k).unwrap();
            let before = e.holders.len();
            e.holders.retain(|&(t, _)| t != txn);
            released += before - e.holders.len();
            e.waiters.retain(|w| w.txn != txn);
            if e.holders.is_empty() && e.waiters.is_empty() {
                s.entries.remove(&k);
            } else {
                s.promote(k);
            }
        }
        s.waits.remove(&txn);
        s.victims.remove(&txn);
        if !affected.is_empty() {
            self.cv.notify_all();
        }
        released
    }

    /// Current occupancy (for `tmlc info --json` and `tmlc stats`).
    pub fn stats(&self) -> LockStats {
        let s = self.state.lock().unwrap();
        LockStats {
            keys: s.entries.len() as u64,
            holders: s.entries.values().map(|e| e.holders.len() as u64).sum(),
            waiters: s.entries.values().map(|e| e.waiters.len() as u64).sum(),
        }
    }

    fn record_wait(&self, started: Instant) {
        if tml_trace::enabled() {
            tml_trace::global().record_ns(
                "lock.wait",
                started.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            );
        }
    }
}

/// FNV-1a over three words — the deterministic jitter source (no RNG
/// state, so fault-matrix runs stay reproducible).
pub(crate) fn hash3(a: u64, b: u64, c: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for w in [a, b, c] {
        for byte in w.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    const T: Duration = Duration::from_millis(50);

    #[test]
    fn shared_locks_coexist_exclusive_does_not() {
        let lt = LockTable::new();
        lt.try_acquire(1, 7, false).unwrap();
        lt.try_acquire(2, 7, false).unwrap();
        assert_eq!(
            lt.try_acquire(3, 7, true),
            Err(LockError::Busy {
                holder: 1,
                exclusive: true
            })
        );
        assert_eq!(lt.release_all(1), 1);
        assert_eq!(lt.release_all(2), 1);
        lt.try_acquire(3, 7, true).unwrap();
        assert!(matches!(
            lt.try_acquire(1, 7, false),
            Err(LockError::Busy { .. })
        ));
    }

    #[test]
    fn reentrant_and_upgrade_in_place() {
        let lt = LockTable::new();
        lt.try_acquire(1, 9, false).unwrap();
        lt.try_acquire(1, 9, false).unwrap();
        // Sole holder: shared → exclusive upgrades in place.
        lt.try_acquire(1, 9, true).unwrap();
        lt.try_acquire(1, 9, false).unwrap(); // shared under own exclusive
        assert!(matches!(
            lt.try_acquire(2, 9, false),
            Err(LockError::Busy { .. })
        ));
        // With a second shared holder the upgrade must wait.
        lt.release_all(1);
        lt.try_acquire(1, 9, false).unwrap();
        lt.try_acquire(2, 9, false).unwrap();
        assert!(matches!(
            lt.try_acquire(1, 9, true),
            Err(LockError::Busy { .. })
        ));
    }

    #[test]
    fn fifo_a_waiting_writer_blocks_new_readers() {
        let lt = Arc::new(LockTable::new());
        lt.try_acquire(1, 3, false).unwrap();
        let lt2 = Arc::clone(&lt);
        let writer = std::thread::spawn(move || lt2.acquire(2, 3, true, Duration::from_secs(5)));
        // Wait until the writer is queued.
        while lt.stats().waiters == 0 {
            std::thread::yield_now();
        }
        // A new reader must not overtake the queued writer.
        assert!(matches!(
            lt.try_acquire(4, 3, false),
            Err(LockError::Busy { .. })
        ));
        lt.release_all(1);
        writer.join().unwrap().unwrap();
        assert!(matches!(
            lt.try_acquire(4, 3, false),
            Err(LockError::Busy { .. })
        ));
        lt.release_all(2);
        lt.try_acquire(4, 3, false).unwrap();
    }

    #[test]
    fn timeout_fires_and_leaves_a_clean_queue() {
        let lt = LockTable::new();
        lt.try_acquire(1, 5, true).unwrap();
        let t0 = Instant::now();
        assert_eq!(lt.acquire(2, 5, true, T), Err(LockError::Timeout));
        assert!(t0.elapsed() >= T);
        assert_eq!(lt.stats().waiters, 0);
        lt.release_all(1);
        lt.try_acquire(2, 5, true).unwrap();
    }

    #[test]
    fn deadlock_picks_the_youngest_victim() {
        let lt = Arc::new(LockTable::new());
        lt.try_acquire(1, 100, true).unwrap();
        lt.try_acquire(2, 200, true).unwrap();
        let lt2 = Arc::clone(&lt);
        // Txn 1 (older) waits for key 200 held by txn 2.
        let older = std::thread::spawn(move || lt2.acquire(1, 200, true, Duration::from_secs(10)));
        while lt.stats().waiters == 0 {
            std::thread::yield_now();
        }
        // Txn 2 closing the cycle is the youngest: it gets the abort.
        assert_eq!(
            lt.acquire(2, 100, true, Duration::from_secs(10)),
            Err(LockError::Deadlock)
        );
        lt.release_all(2);
        older.join().unwrap().unwrap();
        lt.release_all(1);
    }

    #[test]
    fn injected_fault_surfaces_as_injected() {
        let _fp = tml_store::failpoint::ScopedFailpoints::new(&[(
            "lock.acquire",
            tml_store::failpoint::FailSpec::always(tml_store::failpoint::Action::Io),
        )]);
        let lt = LockTable::new();
        assert_eq!(lt.try_acquire(1, 4, true), Err(LockError::Injected));
        assert_eq!(
            lt.acquire(1, 4, true, Duration::from_millis(10)),
            Err(LockError::Injected)
        );
    }

    #[test]
    fn deadlock_victim_comes_from_the_cycle_not_the_queue() {
        let lt = Arc::new(LockTable::new());
        lt.try_acquire(1, 10, true).unwrap();
        lt.try_acquire(2, 20, true).unwrap();
        // Bystander: youngest txn id, holds nothing, queued shared
        // behind holder 1.
        let lt9 = Arc::clone(&lt);
        let bystander =
            std::thread::spawn(move || lt9.acquire(9, 10, false, Duration::from_secs(10)));
        while lt.stats().waiters < 1 {
            std::thread::yield_now();
        }
        let lt2 = Arc::clone(&lt);
        let inner = std::thread::spawn(move || {
            let r = lt2.acquire(2, 10, false, Duration::from_secs(10));
            lt2.release_all(2);
            r
        });
        while lt.stats().waiters < 2 {
            std::thread::yield_now();
        }
        // 1 closes the 1 <-> 2 cycle. Its youngest member is 2; txn 9,
        // younger still but outside the cycle (shared behind shared is
        // not a wait-for edge), must not be condemned in its place.
        lt.acquire(1, 20, false, Duration::from_secs(10)).unwrap();
        assert_eq!(inner.join().unwrap(), Err(LockError::Deadlock));
        lt.release_all(1);
        bystander.join().unwrap().unwrap();
        lt.release_all(9);
    }

    #[test]
    fn retry_with_backoff_eventually_wins() {
        let lt = Arc::new(LockTable::new());
        lt.try_acquire(1, 6, true).unwrap();
        let lt2 = Arc::clone(&lt);
        let holder = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(120));
            lt2.release_all(1);
        });
        let opts = LockOptions {
            timeout: Duration::from_millis(40),
            retries: 8,
            backoff: Duration::from_millis(5),
        };
        lt.acquire_with_retry(2, 6, true, &opts).unwrap();
        holder.join().unwrap();
    }
}
