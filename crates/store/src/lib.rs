//! # tml-store — the persistent Tycoon object store
//!
//! The paper's architecture (§4, figure 3) rests on a persistent object
//! store that holds *both* data (tables, indices, ADT values, module
//! records) and *code* (compiled procedures together with their compact
//! persistent TML representation, **PTML**).
//!
//! This crate provides:
//!
//! * [`SVal`] — the uniform immediate value representation shared by the
//!   abstract machine and the store (complex values are [`Oid`]
//!   references);
//! * [`Object`] / [`Store`] — the OID-addressed object heap with named
//!   roots, closures carrying PTML attachments and R-value bindings, and a
//!   derived-attribute cache ("to speed up repeated optimizations of
//!   (shared) functions, the optimizer attaches several derived attributes
//!   (costs, savings, …) to the generated code which also become part of
//!   the persistent system state");
//! * [`ptml`] — the compact binary encoding of TML trees (experiment E3
//!   measures its size against the executable code size);
//! * [`snapshot`] — whole-store persistence to a file and back;
//! * [`gc`] — mark-and-sweep collection with stable OIDs (tombstones);
//! * [`wal`] / [`page`] / [`buffer`] / [`durable`] — a write-ahead log
//!   over fixed-size pages with a pinned buffer pool, and the
//!   [`DurableStore`] wrapper that combines log-first mutation with
//!   periodic checkpoint snapshots and redo recovery.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod access;
pub mod buffer;
pub mod cache;
pub mod crc;
pub mod durable;
pub mod failpoint;
pub mod gc;
pub mod object;
pub mod page;
pub mod paged;
pub mod ptml;
pub mod snapshot;
pub mod store;
pub mod sval;
pub mod varint;
pub mod wal;

pub use access::StoreAccess;
pub use buffer::{BufferPool, BufferStats};
pub use cache::{CacheEntry, CacheKey, CacheStats, OptCache};
pub use crc::crc32;
pub use durable::{DurableOptions, DurableStore, OpenReport};
pub use object::{ClosureObj, ModuleObj, Object, Relation};
pub use page::{Page, PageFile, PageId, PAGE_SIZE};
pub use paged::{PageStats, PagedHeap};
pub use snapshot::{get_sval, put_sval, ImageIdentity, RecoveryReport, RecoverySource};
pub use store::{Store, StoreError, StoreStats};
pub use sval::SVal;
pub use tml_core::Oid;
pub use wal::{LogScan, SyncPolicy, Wal, WalRecord, WalStats};
