//! CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant) for the snapshot
//! trailer.
//!
//! The persistent image *is* the database — the paper keeps every compiled
//! function's PTML in the store, so a silently corrupt image is not a cache
//! miss but data loss. Like the ASF+SDF compiler's persistent term store,
//! the image must be self-validating: the TYSTO3 snapshot format appends a
//! CRC-32 of the whole body so torn writes and bit rot are detected before
//! any object is trusted.
//!
//! Table-driven, no dependencies, byte-at-a-time — snapshot IO is
//! file-system bound, not CRC bound.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xedb8_8320;

/// 256-entry lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// An incremental CRC-32 computation.
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Start a fresh checksum.
    pub fn new() -> Crc32 {
        Crc32(0xffff_ffff)
    }

    /// Fold in a byte slice.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.0;
        for &b in bytes {
            c = TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    /// The finished checksum.
    pub fn finish(&self) -> u32 {
        self.0 ^ 0xffff_ffff
    }
}

/// One-shot checksum of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for the IEEE polynomial.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414f_a339
        );
    }

    #[test]
    fn incremental_matches_one_shot() {
        let data = b"persistent intermediate code representations";
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flips_always_detected() {
        let data: Vec<u8> = (0u16..256).map(|i| (i * 31 % 251) as u8).collect();
        let good = crc32(&data);
        for pos in 0..data.len() {
            for bit in 0..8 {
                let mut m = data.clone();
                m[pos] ^= 1 << bit;
                assert_ne!(crc32(&m), good, "flip at {pos}.{bit} undetected");
            }
        }
    }
}
