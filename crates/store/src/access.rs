//! The store-access seam: one narrow trait covering the read/write
//! surface of [`Store`], implemented by both the plain in-memory store
//! and the write-ahead-logged [`crate::durable::DurableStore`].
//!
//! Everything above the store — the session, the VM's host hooks, the
//! reflective optimizer, the query externs — mutates object state through
//! [`StoreAccess`] instead of calling `Store` methods directly. With
//! `S = Store` the seam compiles down to the plain heap (tests, ephemeral
//! runs); with `S = DurableStore` every mutation is WAL-logged and
//! replays byte-identically after a crash. The trait is object safe, so
//! host callbacks that cannot be generic (`ExternFn`) receive a
//! `&mut dyn StoreAccess`.
//!
//! ## Error model
//!
//! Mutations return `Result<_, StoreError>`. The plain store can only
//! fail with the classic typed errors (dangling, wrong kind, bounds,
//! immutable); the durable store additionally surfaces IO failures as
//! [`StoreError::Io`] — typed errors are preserved exactly, so VM
//! semantics (bounds → TML exception, …) are identical on both backends.
//!
//! ## The escape hatch
//!
//! [`StoreAccess::base_mut_unlogged`] exposes the raw `&mut Store`. On
//! the durable store this marks the image as *raw-exposed*: the next
//! checkpoint degrades from a dirty-record flush to a full flush, so even
//! unlogged mutations (code-table relinking, cache warm-up) land on disk
//! at the next checkpoint instead of silently diverging.

use crate::cache::{CacheEntry, CacheKey};
use crate::gc::{self, GcStats};
use crate::object::Object;
use crate::store::{Store, StoreError, StoreStats};
use crate::sval::SVal;
use tml_core::Oid;

/// A transaction stamp for logged mutations: which transaction owns the
/// record and whether it is a compensating (rollback) record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TxnStamp {
    /// Owning transaction id.
    pub txn: u64,
    /// `true` for compensating records written by rollback.
    pub clr: bool,
}

/// The uniform read/write surface of an object store.
///
/// Read methods have default implementations that delegate to
/// [`StoreAccess::base`]; mutating methods are required, so a logged
/// backend cannot accidentally inherit an unlogged path.
pub trait StoreAccess {
    // -- Backing store ---------------------------------------------------

    /// Read view of the underlying in-memory store.
    fn base(&self) -> &Store;

    /// Escape hatch: the raw mutable store, bypassing logging. Changes
    /// made through this view are volatile until the next checkpoint; a
    /// durable backend flags itself so that checkpoint is a full flush.
    /// Only for transient state (relinking, cache warm-up) that can
    /// always be re-derived.
    fn base_mut_unlogged(&mut self) -> &mut Store;

    // -- Mutations (logged on a durable backend) -------------------------

    /// Allocate an object; returns its OID.
    fn alloc(&mut self, obj: Object) -> Result<Oid, StoreError>;

    /// Replace an object wholesale.
    fn set(&mut self, oid: Oid, obj: Object) -> Result<(), StoreError>;

    /// Tombstone an object (the OID is never reused).
    fn free_obj(&mut self, oid: Oid) -> Result<(), StoreError>;

    /// Mutate an object in place. The closure runs on the live object
    /// (content version bumped once); a durable backend logs the full
    /// post-image, so replay advances the version identically.
    fn mutate(
        &mut self,
        oid: Oid,
        f: &mut dyn FnMut(&mut Object) -> Result<(), StoreError>,
    ) -> Result<(), StoreError>;

    /// Bind a persistent root name to an OID.
    fn set_root(&mut self, name: &str, oid: Oid) -> Result<(), StoreError>;

    /// Unbind a persistent root; returns the OID it pointed at.
    fn remove_root(&mut self, name: &str) -> Result<Option<Oid>, StoreError>;

    /// Attach a derived attribute to an object.
    fn set_attr(&mut self, oid: Oid, key: &str, value: i64) -> Result<(), StoreError>;

    /// Remove a derived attribute; returns the previous value. The
    /// transaction layer uses it to roll back a `set_attr` that created
    /// the key.
    fn remove_attr(&mut self, oid: Oid, key: &str) -> Result<Option<i64>, StoreError>;

    /// Array element update (`[:=]` primitive).
    fn array_set(&mut self, oid: Oid, index: i64, value: SVal) -> Result<(), StoreError>;

    /// Byte array update (`b[:=]` primitive).
    fn bytes_set(&mut self, oid: Oid, index: i64, value: u8) -> Result<(), StoreError>;

    /// Garbage-collect; a durable backend logs one free per reclaimed
    /// object so the collection survives recovery.
    fn collect(&mut self, extra_roots: &[Oid]) -> Result<GcStats, StoreError>;

    /// Commit everything since the previous commit. `true` when durably
    /// synced on return; the plain store trivially reports `true`.
    fn commit(&mut self) -> Result<bool, StoreError>;

    /// Consolidate on-disk state (flush dirty pages, truncate the log).
    /// A no-op on the plain store.
    fn checkpoint(&mut self) -> Result<(), StoreError>;

    // -- Transactions ------------------------------------------------------
    //
    // Hooks the transaction layer (crates/txn) drives. A logged backend
    // stamps and marks records in its WAL; the plain store ignores
    // stamping and treats markers as ordinary commits, so the transaction
    // machinery runs unchanged (minus durability) over `S = Store`.

    /// Stamp subsequent logged mutations as belonging to transaction
    /// `stamp.txn` (`clr` flags compensating rollback records). `None`
    /// returns to unstamped autocommit logging. No-op on a plain store.
    fn txn_stamp(&mut self, _stamp: Option<TxnStamp>) {}

    /// Append a transaction resolution marker — commit (`committed`) or
    /// abort — for `txn`, then make it durable through the normal commit
    /// path. Returns the commit's sync status. Defaults to a plain
    /// commit on backends without a log.
    fn txn_marker(&mut self, _txn: u64, _committed: bool) -> Result<bool, StoreError> {
        self.commit()
    }

    /// Pin the log against consolidation: while at least one pin is
    /// held, a logged backend must not checkpoint (truncating the log
    /// would durably apply still-open transactions and discard their
    /// undo records). The transaction layer pins at `begin` and unpins
    /// after the resolution marker. No-op on a plain store.
    fn txn_pin(&mut self) {}

    /// Release one pin taken by [`StoreAccess::txn_pin`].
    fn txn_unpin(&mut self) {}

    // -- Optimization cache ----------------------------------------------
    //
    // Cache traffic is derived data (checkpoints always carry the whole
    // cache), so these do not count as raw exposure on a durable backend.

    /// Look up a cached optimization product, revalidating versions.
    fn cache_lookup(&mut self, key: CacheKey) -> Option<CacheEntry>;

    /// Read-only hit prediction (no stats, no LRU touch).
    fn cache_peek(&self, key: CacheKey) -> bool {
        self.base().cache_peek(key)
    }

    /// Insert (or replace) a cached optimization product.
    fn cache_insert(&mut self, key: CacheKey, entry: CacheEntry);

    // -- Reads (defaults over `base()`) ----------------------------------

    /// Fetch an object.
    fn get(&self, oid: Oid) -> Result<&Object, StoreError> {
        self.base().get(oid)
    }

    /// Array element access (`[]` primitive).
    fn array_get(&self, oid: Oid, index: i64) -> Result<SVal, StoreError> {
        self.base().array_get(oid, index)
    }

    /// Byte array access (`b[]` primitive).
    fn bytes_get(&self, oid: Oid, index: i64) -> Result<u8, StoreError> {
        self.base().bytes_get(oid, index)
    }

    /// Length of an array / vector / byte array / tuple / relation.
    fn size_of(&self, oid: Oid) -> Result<usize, StoreError> {
        self.base().size_of(oid)
    }

    /// Look up a persistent root.
    fn root(&self, name: &str) -> Option<Oid> {
        self.base().root(name)
    }

    /// Read a derived attribute.
    fn attr(&self, oid: Oid, key: &str) -> Option<i64> {
        self.base().attr(oid, key)
    }

    /// The content version of an object's slot.
    fn version(&self, oid: Oid) -> u64 {
        self.base().version(oid)
    }

    /// `Some(version)` when the OID denotes a live object.
    fn live_version(&self, oid: Oid) -> Option<u64> {
        self.base().live_version(oid)
    }

    /// Number of object slots ever allocated (including tombstones).
    fn len(&self) -> usize {
        self.base().len()
    }

    /// `true` if the store holds no objects.
    fn is_empty(&self) -> bool {
        self.base().is_empty()
    }

    /// Number of live (non-collected) objects.
    fn live(&self) -> usize {
        self.base().live()
    }

    /// Aggregate statistics over all live objects.
    fn stats(&self) -> StoreStats {
        self.base().stats()
    }
}

impl StoreAccess for Store {
    fn base(&self) -> &Store {
        self
    }

    fn base_mut_unlogged(&mut self) -> &mut Store {
        self
    }

    fn alloc(&mut self, obj: Object) -> Result<Oid, StoreError> {
        Ok(Store::alloc(self, obj))
    }

    fn set(&mut self, oid: Oid, obj: Object) -> Result<(), StoreError> {
        Store::set(self, oid, obj)
    }

    fn free_obj(&mut self, oid: Oid) -> Result<(), StoreError> {
        self.free(oid);
        Ok(())
    }

    fn mutate(
        &mut self,
        oid: Oid,
        f: &mut dyn FnMut(&mut Object) -> Result<(), StoreError>,
    ) -> Result<(), StoreError> {
        f(self.get_mut(oid)?)
    }

    fn set_root(&mut self, name: &str, oid: Oid) -> Result<(), StoreError> {
        Store::set_root(self, name, oid);
        Ok(())
    }

    fn remove_root(&mut self, name: &str) -> Result<Option<Oid>, StoreError> {
        Ok(Store::remove_root(self, name))
    }

    fn set_attr(&mut self, oid: Oid, key: &str, value: i64) -> Result<(), StoreError> {
        Store::set_attr(self, oid, key, value);
        Ok(())
    }

    fn remove_attr(&mut self, oid: Oid, key: &str) -> Result<Option<i64>, StoreError> {
        Ok(Store::remove_attr(self, oid, key))
    }

    fn array_set(&mut self, oid: Oid, index: i64, value: SVal) -> Result<(), StoreError> {
        Store::array_set(self, oid, index, value)
    }

    fn bytes_set(&mut self, oid: Oid, index: i64, value: u8) -> Result<(), StoreError> {
        Store::bytes_set(self, oid, index, value)
    }

    fn collect(&mut self, extra_roots: &[Oid]) -> Result<GcStats, StoreError> {
        Ok(gc::collect(self, extra_roots))
    }

    fn commit(&mut self) -> Result<bool, StoreError> {
        Ok(true)
    }

    fn checkpoint(&mut self) -> Result<(), StoreError> {
        Ok(())
    }

    fn cache_lookup(&mut self, key: CacheKey) -> Option<CacheEntry> {
        Store::cache_lookup(self, key)
    }

    fn cache_insert(&mut self, key: CacheKey, entry: CacheEntry) {
        Store::cache_insert(self, key, entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn as_dyn(s: &mut Store) -> &mut dyn StoreAccess {
        s
    }

    #[test]
    fn plain_store_routes_through_the_seam() {
        let mut store = Store::new();
        let s = as_dyn(&mut store);
        let a = s
            .alloc(Object::Array(vec![SVal::Int(1), SVal::Int(2)]))
            .unwrap();
        s.array_set(a, 0, SVal::Int(9)).unwrap();
        assert_eq!(s.array_get(a, 0).unwrap(), SVal::Int(9));
        s.set_root("main", a).unwrap();
        assert_eq!(s.root("main"), Some(a));
        s.set_attr(a, "cost", 7).unwrap();
        assert_eq!(s.attr(a, "cost"), Some(7));
        s.mutate(a, &mut |o| {
            if let Object::Array(v) = o {
                v.push(SVal::Int(3));
            }
            Ok(())
        })
        .unwrap();
        assert_eq!(s.size_of(a).unwrap(), 3);
        assert!(s.commit().unwrap());
        s.checkpoint().unwrap();
        let b = s.alloc(Object::ByteArray(vec![0; 4])).unwrap();
        s.bytes_set(b, 1, 0xcd).unwrap();
        assert_eq!(s.bytes_get(b, 1).unwrap(), 0xcd);
        let stats = s.collect(&[]).unwrap();
        assert_eq!(stats.freed, 1, "b is unreachable from the roots");
        assert_eq!(s.live(), 1);
    }

    #[test]
    fn typed_errors_pass_through_unchanged() {
        let mut store = Store::new();
        let s = as_dyn(&mut store);
        let v = s.alloc(Object::Vector(vec![SVal::Int(1)])).unwrap();
        assert!(matches!(
            s.array_set(v, 0, SVal::Int(2)),
            Err(StoreError::Immutable(_))
        ));
        assert!(matches!(
            s.mutate(Oid(99), &mut |_| Ok(())),
            Err(StoreError::Dangling(_))
        ));
    }
}
