//! Store values: the uniform immediate value representation.
//!
//! `SVal` is what the abstract machine computes with and what store objects
//! contain in their slots. Simple values are immediate; everything complex
//! (arrays, tuples, closures, relations, modules) lives in the [`crate::Store`]
//! behind an [`Oid`] reference — exactly the split the paper's `Lit`
//! production makes between simple literal constants and OIDs.

use std::sync::Arc;
use tml_core::{Lit, Oid};

/// An immediate value.
#[derive(Clone, PartialEq)]
pub enum SVal {
    /// The unit value.
    Unit,
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
    /// A 64-bit real.
    Real(f64),
    /// A byte/character.
    Char(u8),
    /// An immutable string.
    Str(Arc<str>),
    /// A reference to a store object.
    Ref(Oid),
}

impl SVal {
    /// Convert a TML literal into a store value.
    pub fn from_lit(lit: &Lit) -> SVal {
        match lit {
            Lit::Unit => SVal::Unit,
            Lit::Bool(b) => SVal::Bool(*b),
            Lit::Int(n) => SVal::Int(*n),
            Lit::Real(r) => SVal::Real(r.get()),
            Lit::Char(c) => SVal::Char(*c),
            Lit::Str(s) => SVal::Str(s.clone()),
            Lit::Oid(o) => SVal::Ref(*o),
        }
    }

    /// Convert back into a TML literal (possible for every `SVal`; this is
    /// how runtime R-value bindings re-enter TML terms during reflective
    /// optimization).
    pub fn to_lit(&self) -> Lit {
        match self {
            SVal::Unit => Lit::Unit,
            SVal::Bool(b) => Lit::Bool(*b),
            SVal::Int(n) => Lit::Int(*n),
            SVal::Real(x) => Lit::real(*x),
            SVal::Char(c) => Lit::Char(*c),
            SVal::Str(s) => Lit::Str(s.clone()),
            SVal::Ref(o) => Lit::Oid(*o),
        }
    }

    /// Object identity, the semantics of the `==` primitive: simple values
    /// compare by value, references by OID.
    pub fn identical(&self, other: &SVal) -> bool {
        match (self, other) {
            (SVal::Unit, SVal::Unit) => true,
            (SVal::Bool(a), SVal::Bool(b)) => a == b,
            (SVal::Int(a), SVal::Int(b)) => a == b,
            (SVal::Real(a), SVal::Real(b)) => a.to_bits() == b.to_bits(),
            (SVal::Char(a), SVal::Char(b)) => a == b,
            (SVal::Str(a), SVal::Str(b)) => a == b,
            (SVal::Ref(a), SVal::Ref(b)) => a == b,
            _ => false,
        }
    }

    /// The integer payload, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            SVal::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The real payload, if any.
    pub fn as_real(&self) -> Option<f64> {
        match self {
            SVal::Real(x) => Some(*x),
            _ => None,
        }
    }

    /// The reference payload, if any.
    pub fn as_ref_oid(&self) -> Option<Oid> {
        match self {
            SVal::Ref(o) => Some(*o),
            _ => None,
        }
    }

    /// A short kind tag for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            SVal::Unit => "unit",
            SVal::Bool(_) => "bool",
            SVal::Int(_) => "int",
            SVal::Real(_) => "real",
            SVal::Char(_) => "char",
            SVal::Str(_) => "string",
            SVal::Ref(_) => "ref",
        }
    }
}

impl std::fmt::Debug for SVal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SVal::Unit => write!(f, "unit"),
            SVal::Bool(b) => write!(f, "{b}"),
            SVal::Int(n) => write!(f, "{n}"),
            SVal::Real(x) => write!(f, "{x:?}"),
            SVal::Char(c) => write!(f, "'{}'", char::from(*c).escape_default()),
            SVal::Str(s) => write!(f, "{s:?}"),
            SVal::Ref(o) => write!(f, "{o}"),
        }
    }
}

impl From<i64> for SVal {
    fn from(n: i64) -> Self {
        SVal::Int(n)
    }
}
impl From<f64> for SVal {
    fn from(x: f64) -> Self {
        SVal::Real(x)
    }
}
impl From<bool> for SVal {
    fn from(b: bool) -> Self {
        SVal::Bool(b)
    }
}
impl From<Oid> for SVal {
    fn from(o: Oid) -> Self {
        SVal::Ref(o)
    }
}
impl From<&str> for SVal {
    fn from(s: &str) -> Self {
        SVal::Str(Arc::from(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lit_roundtrip() {
        for lit in [
            Lit::Unit,
            Lit::Bool(true),
            Lit::Int(-5),
            Lit::real(2.5),
            Lit::Char(b'z'),
            Lit::str("hello"),
            Lit::Oid(Oid(42)),
        ] {
            assert_eq!(SVal::from_lit(&lit).to_lit(), lit);
        }
    }

    #[test]
    fn identity_semantics() {
        assert!(SVal::Int(3).identical(&SVal::Int(3)));
        assert!(!SVal::Int(3).identical(&SVal::Real(3.0)));
        assert!(SVal::Ref(Oid(1)).identical(&SVal::Ref(Oid(1))));
        assert!(!SVal::Ref(Oid(1)).identical(&SVal::Ref(Oid(2))));
        assert!(SVal::Real(f64::NAN).identical(&SVal::Real(f64::NAN)));
    }

    #[test]
    fn accessors() {
        assert_eq!(SVal::Int(7).as_int(), Some(7));
        assert_eq!(SVal::Unit.as_int(), None);
        assert_eq!(SVal::Real(1.5).as_real(), Some(1.5));
        assert_eq!(SVal::Ref(Oid(3)).as_ref_oid(), Some(Oid(3)));
    }

    #[test]
    fn kinds() {
        assert_eq!(SVal::from("x").kind(), "string");
        assert_eq!(SVal::from(true).kind(), "bool");
    }
}
