//! Deterministic fault injection at named sites.
//!
//! Durability code is exercised by failures that almost never happen in
//! development: a crash between the temp-file write and the rename, a torn
//! page, a flipped bit in a PTML blob. This module lets tests and
//! operators *schedule* those failures at named sites in the snapshot
//! save/load path, the PTML codec and the cache persistence path, driven
//! by deterministic seeds so every injected failure replays exactly.
//!
//! ## Arming
//!
//! Failpoints are compiled in unconditionally but cost a single relaxed
//! atomic load while disarmed. They are armed either programmatically
//! ([`arm`], usually through the RAII [`ScopedFailpoints`] in tests) or
//! from the environment: setting
//!
//! ```text
//! TML_FAILPOINTS="snapshot.save.rename=io;ptml.decode=flip2@7"
//! ```
//!
//! arms an IO error at the rename site and a deterministic 2-bit
//! corruption (seed 7) of every decoded PTML blob. The grammar per entry
//! is `site=action[:afterN][#keyK][@seedS]` with actions `io`,
//! `short<permille>`, `flip<bits>` and `panic`.
//!
//! ## Sites
//!
//! | site                        | effect of triggering                    |
//! |-----------------------------|-----------------------------------------|
//! | `snapshot.save.write`       | temp-file write fails (IO error)         |
//! | `snapshot.save.fsync`       | fsync of the temp file fails             |
//! | `snapshot.save.backup`      | rotation of the previous image fails     |
//! | `snapshot.save.rename`      | crash between write and rename           |
//! | `snapshot.save.bytes`       | short write / bit flips in the image     |
//! | `snapshot.load.read`        | image read fails (IO error)              |
//! | `snapshot.load.bytes`       | short read / bit flips in the image      |
//! | `snapshot.save.dirsync`     | directory fsync after the rename fails   |
//! | `ptml.encode`               | corrupt bytes leaving the encoder        |
//! | `ptml.decode`               | corrupt bytes entering the decoder       |
//! | `cache.persist`             | corrupt bytes in a cached code segment   |
//! | `reflect.prepare`           | panic inside one optimization job        |
//! | `wal.append`                | appending a log record fails (IO error)  |
//! | `wal.flush`                 | log flush fails / tears the flushed page |
//! | `wal.checkpoint`            | crash at the start of a checkpoint       |
//! | `page.write`                | writing an inline object record fails    |
//! | `page.chain`                | writing an overflow-chain record fails   |
//! | `page.flush`                | flushing dirty pages at checkpoint fails |
//! | `txn.commit`                | crash before the txn-commit marker lands |
//! | `txn.abort`                 | crash mid-rollback (partial CLR trail)   |
//! | `lock.acquire`              | lock acquisition fails (injected abort)  |
//! | `serve.read`                | reading a request frame fails (IO error) |
//! | `serve.write`               | writing a response frame fails           |
//!
//! Sites are matched by exact name. A hit may carry a *key* (an OID, a
//! path hash) so a spec can target one object or file without perturbing
//! concurrent tests that pass through the same site.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, Once, OnceLock, PoisonError};

/// What happens when a failpoint triggers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Return an injected `std::io::Error` (kind `Other`).
    Io,
    /// Truncate a byte buffer to the given permille of its length
    /// (simulates a torn / short write).
    ShortWrite(u32),
    /// Flip the given number of bits at seed-derived positions.
    FlipBits(u32),
    /// Panic with a message naming the site.
    Panic,
}

/// A scheduled failure at one site.
#[derive(Debug, Clone, Copy)]
pub struct FailSpec {
    /// What to inject.
    pub action: Action,
    /// Skip this many matching hits before triggering (0 = first hit).
    pub after: u64,
    /// Only hits carrying exactly this key match; `None` matches any hit.
    pub key: Option<u64>,
    /// Seed for the deterministic corruption stream (bit positions).
    pub seed: u64,
    /// Keep triggering after the first time (`false` = one-shot).
    pub sticky: bool,
}

impl FailSpec {
    /// A spec that triggers on every matching hit.
    pub fn always(action: Action) -> FailSpec {
        FailSpec {
            action,
            after: 0,
            key: None,
            seed: 0,
            sticky: true,
        }
    }

    /// Restrict the spec to hits carrying `key`.
    pub fn for_key(mut self, key: u64) -> FailSpec {
        self.key = Some(key);
        self
    }

    /// Trigger only once, on the first matching hit.
    pub fn once(mut self) -> FailSpec {
        self.sticky = false;
        self
    }

    /// Set the deterministic corruption seed.
    pub fn with_seed(mut self, seed: u64) -> FailSpec {
        self.seed = seed;
        self
    }
}

struct FailState {
    spec: FailSpec,
    hits: u64,
    fired: bool,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();

fn registry() -> &'static Mutex<HashMap<String, FailState>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, FailState>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Lock the registry, recovering from poisoning. A `Panic`-action failpoint
/// caught by degraded-mode `catch_unwind` (or any panicking test thread)
/// must not turn every later failpoint call into a second panic: the map
/// holds plain data whose invariants hold between statements, so the
/// poisoned guard is safe to adopt.
fn reg_lock() -> MutexGuard<'static, HashMap<String, FailState>> {
    registry().lock().unwrap_or_else(PoisonError::into_inner)
}

/// The big test lock: failpoints are process-global, so tests that arm
/// them serialize on this mutex (via [`ScopedFailpoints`]).
fn test_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

fn init_from_env() {
    ENV_INIT.call_once(|| {
        if let Ok(val) = std::env::var("TML_FAILPOINTS") {
            for entry in val.split(';').filter(|e| !e.trim().is_empty()) {
                match parse_entry(entry.trim()) {
                    Some((site, spec)) => arm(&site, spec),
                    None => eprintln!("tml-store: ignoring bad TML_FAILPOINTS entry {entry:?}"),
                }
            }
        }
    });
}

/// Parse one `site=action[:afterN][#keyK][@seedS]` entry.
fn parse_entry(entry: &str) -> Option<(String, FailSpec)> {
    let (site, rest) = entry.split_once('=')?;
    let mut spec = FailSpec::always(Action::Io);
    let mut action = rest;
    for (marker, field) in [(":", 0usize), ("#", 1), ("@", 2)] {
        if let Some(ix) = action.find(marker) {
            let (head, tail) = action.split_at(ix);
            let digits: String = tail[1..]
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect();
            let n: u64 = digits.parse().ok()?;
            match field {
                0 => spec.after = n,
                1 => spec.key = Some(n),
                _ => spec.seed = n,
            }
            let remainder = &tail[1 + digits.len()..];
            action = Box::leak(format!("{head}{remainder}").into_boxed_str());
        }
    }
    spec.action = match action {
        "io" => Action::Io,
        "panic" => Action::Panic,
        a if a.starts_with("short") => Action::ShortWrite(a[5..].parse().ok()?),
        a if a.starts_with("flip") => Action::FlipBits(a[4..].parse().ok()?),
        _ => return None,
    };
    Some((site.to_string(), spec))
}

/// `true` when any failpoint is armed (one relaxed load — the whole cost
/// on the production path).
#[inline]
pub fn armed() -> bool {
    init_from_env();
    ARMED.load(Ordering::Relaxed)
}

/// Arm a failpoint at `site`. Replaces any existing spec for the site.
pub fn arm(site: &str, spec: FailSpec) {
    let mut reg = reg_lock();
    reg.insert(
        site.to_string(),
        FailState {
            spec,
            hits: 0,
            fired: false,
        },
    );
    ARMED.store(true, Ordering::Relaxed);
}

/// Disarm one site.
pub fn disarm(site: &str) {
    let mut reg = reg_lock();
    reg.remove(site);
    if reg.is_empty() {
        ARMED.store(false, Ordering::Relaxed);
    }
}

/// Disarm every site.
pub fn disarm_all() {
    let mut reg = reg_lock();
    reg.clear();
    ARMED.store(false, Ordering::Relaxed);
}

/// Evaluate a hit at `site` carrying `key`. Returns the action to inject
/// when the site triggers. Records the trigger on the trace recorder.
/// `Action::Panic` panics here, so call sites cannot forget to honor it.
pub fn check(site: &str, key: u64) -> Option<(Action, u64)> {
    if !armed() {
        return None;
    }
    let action = {
        let mut reg = reg_lock();
        let state = reg.get_mut(site)?;
        if let Some(k) = state.spec.key {
            if k != key {
                return None;
            }
        }
        if state.fired && !state.spec.sticky {
            return None;
        }
        let hit = state.hits;
        state.hits += 1;
        if hit < state.spec.after {
            return None;
        }
        state.fired = true;
        (state.spec.action, state.spec.seed)
    };
    if tml_trace::enabled() {
        tml_trace::count(&format!("store.failpoint.{site}"), 1);
    }
    if action.0 == Action::Panic {
        panic!("failpoint {site} (key {key}): injected panic");
    }
    Some(action)
}

/// IO-path helper: `Err` with an injected error when `site` triggers.
pub fn fail_io(site: &str, key: u64) -> std::io::Result<()> {
    match check(site, key) {
        Some((Action::Io, _))
        | Some((Action::ShortWrite(_), _))
        | Some((Action::FlipBits(_), _)) => Err(std::io::Error::other(format!(
            "failpoint {site}: injected IO error"
        ))),
        _ => Ok(()),
    }
}

/// Byte-stream helper: apply a scheduled short write or bit flips to
/// `bytes` in place. Returns `true` when the buffer was corrupted. The
/// corruption positions derive from the spec's seed and the buffer length
/// only, so a given (spec, input) pair always corrupts identically.
pub fn corrupt(site: &str, key: u64, bytes: &mut Vec<u8>) -> bool {
    match check(site, key) {
        Some((action, seed)) => apply_corruption(action, seed, bytes),
        None => false,
    }
}

/// Apply one corruption action to a buffer in place; returns `true` only
/// when the buffer actually changed. A `ShortWrite` permille is clamped to
/// 1000, so a spec of `short1000` (or more) keeps the whole buffer and
/// reports no corruption — fault-matrix accounting must not count a
/// truncation that truncated nothing. `Io` and `Panic` actions never touch
/// byte buffers.
pub fn apply_corruption(action: Action, seed: u64, bytes: &mut Vec<u8>) -> bool {
    match action {
        Action::ShortWrite(permille) => {
            let keep = (bytes.len() as u64 * u64::from(permille.min(1000)) / 1000) as usize;
            if keep >= bytes.len() {
                return false;
            }
            bytes.truncate(keep);
            true
        }
        Action::FlipBits(n) => {
            if bytes.is_empty() || n == 0 {
                return false;
            }
            let mut rng = Xorshift::new(seed ^ 0x9e37_79b9_7f4a_7c15);
            for _ in 0..n {
                let bit = (rng.next() % (bytes.len() as u64 * 8)) as usize;
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
            true
        }
        Action::Io | Action::Panic => false,
    }
}

/// A deterministic xorshift64* stream for corruption positions.
struct Xorshift(u64);

impl Xorshift {
    fn new(seed: u64) -> Xorshift {
        Xorshift(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

/// RAII guard for tests: takes the process-global failpoint lock, arms the
/// given specs, and disarms everything on drop. Tests that inject faults
/// create one of these so concurrent tests in the same binary never see a
/// half-armed registry.
pub struct ScopedFailpoints {
    _guard: MutexGuard<'static, ()>,
}

impl ScopedFailpoints {
    /// Take the lock and arm `specs`.
    pub fn new(specs: &[(&str, FailSpec)]) -> ScopedFailpoints {
        // A previous test may have panicked (deliberately, for Action::Panic)
        // while holding the guard; the lock content is unit, so poisoning
        // carries no risk.
        let guard = match test_lock().lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        disarm_all();
        for (site, spec) in specs {
            arm(site, *spec);
        }
        ScopedFailpoints { _guard: guard }
    }
}

impl Drop for ScopedFailpoints {
    fn drop(&mut self) {
        disarm_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_is_free_and_silent() {
        let _fp = ScopedFailpoints::new(&[]);
        assert!(check("nowhere", 0).is_none());
        assert!(fail_io("nowhere", 0).is_ok());
        let mut b = vec![1, 2, 3];
        assert!(!corrupt("nowhere", 0, &mut b));
        assert_eq!(b, vec![1, 2, 3]);
    }

    #[test]
    fn key_and_after_filtering() {
        let _fp = ScopedFailpoints::new(&[(
            "t.site",
            FailSpec {
                action: Action::Io,
                after: 1,
                key: Some(42),
                seed: 0,
                sticky: true,
            },
        )]);
        assert!(check("t.site", 7).is_none(), "wrong key never matches");
        assert!(check("t.site", 42).is_none(), "first matching hit skipped");
        assert!(check("t.site", 42).is_some(), "second matching hit fires");
        assert!(check("t.site", 42).is_some(), "sticky keeps firing");
    }

    #[test]
    fn one_shot_fires_once() {
        let _fp = ScopedFailpoints::new(&[("t.once", FailSpec::always(Action::Io).once())]);
        assert!(check("t.once", 0).is_some());
        assert!(check("t.once", 0).is_none());
    }

    #[test]
    fn corruption_is_deterministic() {
        let base: Vec<u8> = (0..64).collect();
        let run = |seed| {
            let _fp = ScopedFailpoints::new(&[(
                "t.flip",
                FailSpec::always(Action::FlipBits(3)).with_seed(seed),
            )]);
            let mut b = base.clone();
            assert!(corrupt("t.flip", 0, &mut b));
            b
        };
        assert_eq!(run(7), run(7), "same seed, same corruption");
        assert_ne!(run(7), run(8), "different seed, different corruption");
        assert_ne!(run(7), base, "corruption changed the bytes");
    }

    #[test]
    fn short_write_truncates() {
        let _fp = ScopedFailpoints::new(&[("t.short", FailSpec::always(Action::ShortWrite(500)))]);
        let mut b: Vec<u8> = (0..100).collect();
        assert!(corrupt("t.short", 0, &mut b));
        assert_eq!(b.len(), 50);
        assert_eq!(b[..], (0..50).collect::<Vec<u8>>()[..]);
    }

    #[test]
    fn short_write_that_truncates_nothing_reports_no_corruption() {
        let _fp = ScopedFailpoints::new(&[
            // Permille >= 1000 keeps every byte: not a corruption.
            ("t.noop", FailSpec::always(Action::ShortWrite(1000))),
            // Over-unit permille exercises the clamp.
            ("t.over", FailSpec::always(Action::ShortWrite(2500))),
            // An empty buffer has nothing to truncate.
            ("t.empty", FailSpec::always(Action::ShortWrite(500))),
        ]);
        let mut b: Vec<u8> = (0..10).collect();
        assert!(!corrupt("t.noop", 0, &mut b));
        assert_eq!(b.len(), 10, "buffer unchanged");
        let mut b: Vec<u8> = (0..10).collect();
        assert!(!corrupt("t.over", 0, &mut b));
        assert_eq!(b.len(), 10);
        let mut b: Vec<u8> = Vec::new();
        assert!(!corrupt("t.empty", 0, &mut b));
    }

    #[test]
    fn poisoned_registry_recovers_instead_of_panicking() {
        let _fp = ScopedFailpoints::new(&[]);
        // Poison the registry mutex by panicking while holding it, as a
        // Panic-action failpoint caught by catch_unwind can do.
        let _ = std::panic::catch_unwind(|| {
            let _guard = registry().lock().unwrap();
            panic!("poison the registry");
        });
        assert!(registry().lock().is_err(), "registry is poisoned");
        // Every entry point must keep working on the poisoned mutex.
        arm("t.poison", FailSpec::always(Action::Io));
        assert!(check("t.poison", 0).is_some());
        disarm("t.poison");
        assert!(check("t.poison", 0).is_none());
        disarm_all();
    }

    #[test]
    fn env_grammar_parses() {
        let (site, spec) = parse_entry("snapshot.save.rename=io:2#9@13").unwrap();
        assert_eq!(site, "snapshot.save.rename");
        assert_eq!(spec.action, Action::Io);
        assert_eq!(spec.after, 2);
        assert_eq!(spec.key, Some(9));
        assert_eq!(spec.seed, 13);
        let (_, spec) = parse_entry("ptml.decode=flip4@7").unwrap();
        assert_eq!(spec.action, Action::FlipBits(4));
        assert_eq!(spec.seed, 7);
        let (_, spec) = parse_entry("x=short250").unwrap();
        assert_eq!(spec.action, Action::ShortWrite(250));
        assert!(parse_entry("nonsense").is_none());
        assert!(parse_entry("x=explode").is_none());
    }

    #[test]
    #[should_panic(expected = "injected panic")]
    fn panic_action_panics_at_check() {
        let _fp = ScopedFailpoints::new(&[("t.panic", FailSpec::always(Action::Panic))]);
        let _ = check("t.panic", 0);
    }
}
