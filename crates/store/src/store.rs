//! The OID-addressed object heap with named roots and the derived-attribute
//! cache.

use crate::cache::{CacheEntry, CacheKey, CacheStats, OptCache};
use crate::object::Object;
use crate::sval::SVal;
use std::collections::BTreeMap;
use tml_core::Oid;

/// Record an optimization-cache operation on the global trace recorder:
/// one `store.cache.<op>` counter bump plus a [`tml_trace::Event::CacheOp`]
/// ring event keyed by the entry's PTML hash. No-op while tracing is off.
fn trace_cache_op(op: &'static str, key_hash: u64) {
    if !tml_trace::enabled() {
        return;
    }
    tml_trace::count(&format!("store.cache.{op}"), 1);
    tml_trace::record(tml_trace::Event::CacheOp {
        cache: "opt-cache",
        op,
        key_hash,
    });
}

/// Errors from store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// The OID does not denote a live object.
    Dangling(Oid),
    /// The object has a different kind than expected.
    WrongKind {
        /// The offending OID.
        oid: Oid,
        /// What the caller expected.
        expected: &'static str,
        /// What the store found.
        found: &'static str,
    },
    /// Attempt to mutate an immutable object (e.g. a `vector`).
    Immutable(Oid),
    /// Index out of bounds.
    Bounds {
        /// The offending OID.
        oid: Oid,
        /// The requested index.
        index: i64,
        /// The object's length.
        len: usize,
    },
    /// A durability-layer IO failure (WAL append, page flush, checkpoint)
    /// surfaced through the [`crate::access::StoreAccess`] seam. Carried as
    /// a message so `StoreError` stays `Clone + Eq`.
    Io(String),
    /// A lock conflict: another transaction holds the lock covering this
    /// mutation. Not a store-state error — the transaction layer catches
    /// it, waits for the lock outside the VM, and retries the request.
    Busy {
        /// The lock-table key that conflicted (an OID or a hashed root
        /// name, see the txn crate's lock keys).
        key: u64,
        /// One current holder of the lock.
        holder: u64,
        /// Whether exclusive access was requested.
        exclusive: bool,
    },
    /// The surrounding transaction was aborted — deadlock victim, lock
    /// timeout, or an injected fault — and must roll back. Surfaces
    /// through the VM as a typed abort trap that TML handlers cannot
    /// catch.
    Aborted {
        /// The aborted transaction's id.
        txn: u64,
        /// Short machine-readable reason: `deadlock`, `timeout`, …
        reason: &'static str,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Dangling(o) => write!(f, "dangling reference {o}"),
            StoreError::WrongKind {
                oid,
                expected,
                found,
            } => write!(f, "{oid} is a {found}, expected a {expected}"),
            StoreError::Immutable(o) => write!(f, "{o} is immutable"),
            StoreError::Bounds { oid, index, len } => {
                write!(f, "index {index} out of bounds for {oid} of length {len}")
            }
            StoreError::Io(msg) => write!(f, "store io failure: {msg}"),
            StoreError::Busy {
                key,
                holder,
                exclusive,
            } => write!(
                f,
                "lock conflict on key {key:#x} ({} requested, held by txn {holder})",
                if *exclusive { "exclusive" } else { "shared" }
            ),
            StoreError::Aborted { txn, reason } => {
                write!(f, "transaction {txn} aborted: {reason}")
            }
        }
    }
}

impl std::error::Error for StoreError {}

/// Aggregate store statistics (experiment E3 reads these).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Live objects.
    pub objects: usize,
    /// Total approximate bytes of all live objects.
    pub bytes: usize,
    /// Bytes held by PTML attachments alone.
    pub ptml_bytes: usize,
    /// Live closures.
    pub closures: usize,
}

/// The persistent object store.
///
/// Objects live in stable slots: an OID, once allocated, never moves and
/// is never reused — the garbage collector ([`crate::gc`]) tombstones
/// unreachable slots instead of compacting, so references held outside
/// the store (session globals, decoded TML terms) stay valid.
#[derive(Debug, Clone, Default)]
pub struct Store {
    objects: Vec<Option<Object>>,
    roots: BTreeMap<String, Oid>,
    attrs: BTreeMap<Oid, BTreeMap<String, i64>>,
    /// Per-slot content version, parallel to `objects`. Bumped on every
    /// mutable access and on collection, so derived state (the
    /// optimization cache) can detect that an object changed behind a
    /// stable OID.
    versions: Vec<u64>,
    /// The persistent reflective-optimization cache.
    cache: OptCache,
}

impl Store {
    /// Create an empty store.
    pub fn new() -> Store {
        Store::default()
    }

    /// Allocate an object; returns its OID. OIDs start at 1 (0 is the
    /// reserved null OID).
    pub fn alloc(&mut self, obj: Object) -> Oid {
        self.objects.push(Some(obj));
        self.versions.push(0);
        Oid(self.objects.len() as u64)
    }

    /// Number of object slots ever allocated (including tombstones).
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Number of live (non-collected) objects.
    pub fn live(&self) -> usize {
        self.objects.iter().filter(|o| o.is_some()).count()
    }

    /// `true` if the store holds no objects.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Fetch an object.
    pub fn get(&self, oid: Oid) -> Result<&Object, StoreError> {
        if oid.is_null() {
            return Err(StoreError::Dangling(oid));
        }
        self.objects
            .get(oid.0 as usize - 1)
            .and_then(Option::as_ref)
            .ok_or(StoreError::Dangling(oid))
    }

    /// Fetch an object mutably. Conservatively bumps the object's content
    /// version: every mutation path goes through here, so a version
    /// mismatch is a sound (if over-approximate) staleness witness for
    /// derived state.
    pub fn get_mut(&mut self, oid: Oid) -> Result<&mut Object, StoreError> {
        if oid.is_null() {
            return Err(StoreError::Dangling(oid));
        }
        let ix = oid.0 as usize - 1;
        let slot = self
            .objects
            .get_mut(ix)
            .and_then(Option::as_mut)
            .ok_or(StoreError::Dangling(oid))?;
        self.versions[ix] += 1;
        Ok(slot)
    }

    /// Fetch an object mutably *without* bumping its content version.
    /// Only for restoring transient state whose persistent content is
    /// unchanged — e.g. relinking a closure's code-table index after an
    /// image load, where the PTML and binding values stay identical.
    /// Using this for real content mutation breaks cache-staleness
    /// detection.
    pub fn get_mut_untracked(&mut self, oid: Oid) -> Result<&mut Object, StoreError> {
        if oid.is_null() {
            return Err(StoreError::Dangling(oid));
        }
        self.objects
            .get_mut(oid.0 as usize - 1)
            .and_then(Option::as_mut)
            .ok_or(StoreError::Dangling(oid))
    }

    /// The content version of an object's slot: 0 at allocation, bumped on
    /// every mutable access and on collection. Returns 0 for OIDs the
    /// store never allocated.
    pub fn version(&self, oid: Oid) -> u64 {
        if oid.is_null() {
            return 0;
        }
        self.versions.get(oid.0 as usize - 1).copied().unwrap_or(0)
    }

    /// `Some(version)` when the OID denotes a live object, `None` when it
    /// is null, dangling or tombstoned.
    pub fn live_version(&self, oid: Oid) -> Option<u64> {
        if oid.is_null() {
            return None;
        }
        let ix = oid.0 as usize - 1;
        match self.objects.get(ix) {
            Some(Some(_)) => Some(self.versions[ix]),
            _ => None,
        }
    }

    /// Tombstone a slot (garbage collection). The OID is never reused;
    /// subsequent access reports a dangling reference. Attributes of the
    /// object are dropped.
    pub(crate) fn free(&mut self, oid: Oid) {
        if !oid.is_null() {
            let ix = oid.0 as usize - 1;
            if let Some(slot) = self.objects.get_mut(ix) {
                *slot = None;
                // Collection is a content change: cached results derived
                // from this object must stop matching.
                self.versions[ix] += 1;
            }
        }
        self.attrs.remove(&oid);
    }

    /// Internal: restore a possibly-dead slot (snapshot decoding).
    pub(crate) fn push_slot(&mut self, obj: Option<Object>) {
        self.objects.push(obj);
        self.versions.push(0);
    }

    /// Internal: raw slot access including tombstones (snapshot encoding).
    pub(crate) fn slots(&self) -> &[Option<Object>] {
        &self.objects
    }

    /// Replace an object wholesale (used by relinking after snapshot load).
    pub fn set(&mut self, oid: Oid, obj: Object) -> Result<(), StoreError> {
        *self.get_mut(oid)? = obj;
        Ok(())
    }

    /// Fetch, insisting on a particular kind.
    pub fn expect<'a, T>(
        &'a self,
        oid: Oid,
        expected: &'static str,
        project: impl FnOnce(&'a Object) -> Option<T>,
    ) -> Result<T, StoreError> {
        let obj = self.get(oid)?;
        let found = obj.kind();
        project(obj).ok_or(StoreError::WrongKind {
            oid,
            expected,
            found,
        })
    }

    /// Iterate over all live `(oid, object)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Oid, &Object)> {
        self.objects
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.as_ref().map(|o| (Oid(i as u64 + 1), o)))
    }

    // -- Named roots --------------------------------------------------------

    /// Bind a persistent root name to an OID (database names, module names).
    pub fn set_root(&mut self, name: impl Into<String>, oid: Oid) {
        self.roots.insert(name.into(), oid);
    }

    /// Look up a persistent root.
    pub fn root(&self, name: &str) -> Option<Oid> {
        self.roots.get(name).copied()
    }

    /// Unbind a persistent root. Returns the OID it pointed at, if any.
    /// Used by snapshot salvage to drop roots whose target was lost.
    pub fn remove_root(&mut self, name: &str) -> Option<Oid> {
        self.roots.remove(name)
    }

    /// All roots, sorted by name.
    pub fn roots(&self) -> impl Iterator<Item = (&str, Oid)> {
        self.roots.iter().map(|(n, o)| (n.as_str(), *o))
    }

    // -- Derived attributes --------------------------------------------------

    /// Attach a derived attribute (cost, savings, …) to a code object.
    pub fn set_attr(&mut self, oid: Oid, key: impl Into<String>, value: i64) {
        self.attrs.entry(oid).or_default().insert(key.into(), value);
    }

    /// Read a derived attribute.
    pub fn attr(&self, oid: Oid, key: &str) -> Option<i64> {
        self.attrs.get(&oid).and_then(|m| m.get(key)).copied()
    }

    /// Remove a derived attribute, returning the previous value. Empty
    /// per-object tables are dropped so the attr table keeps the same
    /// canonical shape `set_attr` produces (snapshot byte-determinism).
    pub fn remove_attr(&mut self, oid: Oid, key: &str) -> Option<i64> {
        let m = self.attrs.get_mut(&oid)?;
        let prev = m.remove(key);
        if m.is_empty() {
            self.attrs.remove(&oid);
        }
        prev
    }

    /// All attributes of an object.
    pub fn attrs_of(&self, oid: Oid) -> impl Iterator<Item = (&str, i64)> {
        self.attrs
            .get(&oid)
            .into_iter()
            .flat_map(|m| m.iter().map(|(k, v)| (k.as_str(), *v)))
    }

    /// Internal: the whole attribute table (snapshot encoding).
    pub(crate) fn attr_table(&self) -> &BTreeMap<Oid, BTreeMap<String, i64>> {
        &self.attrs
    }

    /// Internal: restore the attribute table (snapshot decoding).
    pub(crate) fn set_attr_table(&mut self, attrs: BTreeMap<Oid, BTreeMap<String, i64>>) {
        self.attrs = attrs;
    }

    /// Internal: the version vector (snapshot encoding).
    pub(crate) fn versions(&self) -> &[u64] {
        &self.versions
    }

    /// Internal: restore the version vector (snapshot decoding); padded or
    /// truncated to the slot count so legacy images load cleanly.
    pub(crate) fn set_versions(&mut self, mut versions: Vec<u64>) {
        versions.resize(self.objects.len(), 0);
        self.versions = versions;
    }

    // -- Reflective-optimization cache ---------------------------------------

    /// Read access to the optimization cache.
    pub fn cache(&self) -> &OptCache {
        &self.cache
    }

    /// Mutable access to the optimization cache (capacity, clearing,
    /// snapshot restore).
    pub fn cache_mut(&mut self) -> &mut OptCache {
        &mut self.cache
    }

    /// The cache's hit/miss counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats
    }

    /// Look up a cached optimization product, revalidating it against the
    /// current object versions. A stale entry (any observed object mutated
    /// or collected since the entry was produced) is dropped and counted
    /// as an invalidation; the lookup then reports a miss.
    pub fn cache_lookup(&mut self, key: CacheKey) -> Option<CacheEntry> {
        let valid = match self.cache.entries.get(&key) {
            None => {
                self.cache.stats.misses += 1;
                trace_cache_op("miss", key.ptml_hash);
                return None;
            }
            Some(e) => e
                .observed
                .iter()
                .all(|(oid, ver)| self.live_version(*oid) == Some(*ver)),
        };
        if !valid {
            self.cache.entries.remove(&key);
            self.cache.stats.invalidations += 1;
            self.cache.stats.misses += 1;
            trace_cache_op("invalidation", key.ptml_hash);
            trace_cache_op("miss", key.ptml_hash);
            return None;
        }
        self.cache.tick += 1;
        self.cache.stats.hits += 1;
        trace_cache_op("hit", key.ptml_hash);
        let entry = self.cache.entries.get_mut(&key).expect("checked above");
        entry.tick = self.cache.tick;
        Some(entry.clone())
    }

    /// Read-only hit prediction: `true` if an entry for `key` exists and
    /// every store version it observed still holds. Unlike
    /// [`Store::cache_lookup`] this records no statistics, does not touch
    /// the LRU clock and evicts nothing, so probing leaves the cache's
    /// observable behavior untouched — the parallel whole-world optimizer
    /// uses it to partition targets before the real (stats-counted)
    /// consultations happen in merge order.
    pub fn cache_peek(&self, key: CacheKey) -> bool {
        match self.cache.entries.get(&key) {
            None => false,
            Some(e) => e
                .observed
                .iter()
                .all(|(oid, ver)| self.live_version(*oid) == Some(*ver)),
        }
    }

    /// Insert (or replace) a cached optimization product, evicting the
    /// least-recently-used entry when at capacity.
    pub fn cache_insert(&mut self, key: CacheKey, mut entry: CacheEntry) {
        if !self.cache.entries.contains_key(&key) {
            while self.cache.entries.len() >= self.cache.cap {
                self.cache.evict_lru();
                trace_cache_op("eviction", key.ptml_hash);
            }
        }
        self.cache.tick += 1;
        entry.tick = self.cache.tick;
        self.cache.stats.inserts += 1;
        trace_cache_op("insert", key.ptml_hash);
        self.cache.entries.insert(key, entry);
    }

    /// Drop every cache entry that observed an object which is no longer
    /// live at its recorded version. Called by the garbage collector after
    /// a sweep; returns the number of entries dropped (each counted as an
    /// invalidation).
    pub fn cache_sweep(&mut self) -> usize {
        let stale: Vec<CacheKey> = self
            .cache
            .entries
            .iter()
            .filter(|(_, e)| {
                e.observed
                    .iter()
                    .any(|(oid, ver)| self.live_version(*oid) != Some(*ver))
            })
            .map(|(k, _)| *k)
            .collect();
        for key in &stale {
            self.cache.entries.remove(key);
            self.cache.stats.invalidations += 1;
            trace_cache_op("invalidation", key.ptml_hash);
        }
        stale.len()
    }

    /// Publish footprint and cache totals to the global trace registry as
    /// gauges (`store.*`). Works regardless of the recorder's enabled
    /// flag, so `tmlc info` can use the registry as its single report
    /// path.
    pub fn publish_counters(&self) {
        let g = tml_trace::global();
        let st = self.stats();
        g.counter("store.objects").set(st.objects as u64);
        g.counter("store.slots").set(self.len() as u64);
        g.counter("store.bytes").set(st.bytes as u64);
        g.counter("store.ptml_bytes").set(st.ptml_bytes as u64);
        g.counter("store.closures").set(st.closures as u64);
        g.counter("store.cache.entries")
            .set(self.cache.len() as u64);
        g.counter("store.cache.cap").set(self.cache.cap() as u64);
        g.counter("store.cache.bytes")
            .set(self.cache.byte_size() as u64);
        let cs = self.cache.stats;
        g.counter("store.cache.hits").set(cs.hits);
        g.counter("store.cache.misses").set(cs.misses);
        g.counter("store.cache.invalidations").set(cs.invalidations);
        g.counter("store.cache.evictions").set(cs.evictions);
        g.counter("store.cache.inserts").set(cs.inserts);
    }

    // -- Statistics ----------------------------------------------------------

    /// Aggregate statistics over all live objects.
    pub fn stats(&self) -> StoreStats {
        let mut s = StoreStats {
            objects: self.live(),
            ..Default::default()
        };
        for obj in self.objects.iter().flatten() {
            s.bytes += obj.byte_size();
            match obj {
                Object::Ptml(b) => s.ptml_bytes += b.len(),
                Object::Closure(_) => s.closures += 1,
                _ => {}
            }
        }
        s
    }

    // -- Array helpers (primitive semantics shared by VM and tests) ----------

    /// Array element access (`[]` primitive).
    pub fn array_get(&self, oid: Oid, index: i64) -> Result<SVal, StoreError> {
        let slots = match self.get(oid)? {
            Object::Array(v) | Object::Vector(v) | Object::Tuple(v) => v,
            other => {
                return Err(StoreError::WrongKind {
                    oid,
                    expected: "array",
                    found: other.kind(),
                })
            }
        };
        usize::try_from(index)
            .ok()
            .and_then(|i| slots.get(i))
            .cloned()
            .ok_or(StoreError::Bounds {
                oid,
                index,
                len: slots.len(),
            })
    }

    /// Array element update (`[:=]` primitive).
    pub fn array_set(&mut self, oid: Oid, index: i64, value: SVal) -> Result<(), StoreError> {
        let obj = self.get_mut(oid)?;
        let slots = match obj {
            Object::Array(v) | Object::Tuple(v) => v,
            Object::Vector(_) => return Err(StoreError::Immutable(oid)),
            other => {
                return Err(StoreError::WrongKind {
                    oid,
                    expected: "array",
                    found: other.kind(),
                })
            }
        };
        let len = slots.len();
        match usize::try_from(index).ok().and_then(|i| slots.get_mut(i)) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(StoreError::Bounds { oid, index, len }),
        }
    }

    /// Length of an array / vector / byte array / tuple (`size` primitive).
    pub fn size_of(&self, oid: Oid) -> Result<usize, StoreError> {
        match self.get(oid)? {
            Object::Array(v) | Object::Vector(v) | Object::Tuple(v) => Ok(v.len()),
            Object::ByteArray(b) => Ok(b.len()),
            Object::Relation(r) => Ok(r.len()),
            other => Err(StoreError::WrongKind {
                oid,
                expected: "sized object",
                found: other.kind(),
            }),
        }
    }

    /// Byte array access (`b[]` primitive).
    pub fn bytes_get(&self, oid: Oid, index: i64) -> Result<u8, StoreError> {
        let bytes = self.expect(oid, "bytearray", |o| match o {
            Object::ByteArray(b) => Some(b),
            _ => None,
        })?;
        usize::try_from(index)
            .ok()
            .and_then(|i| bytes.get(i))
            .copied()
            .ok_or(StoreError::Bounds {
                oid,
                index,
                len: bytes.len(),
            })
    }

    /// Byte array update (`b[:=]` primitive).
    pub fn bytes_set(&mut self, oid: Oid, index: i64, value: u8) -> Result<(), StoreError> {
        let obj = self.get_mut(oid)?;
        let Object::ByteArray(bytes) = obj else {
            return Err(StoreError::WrongKind {
                oid,
                expected: "bytearray",
                found: obj.kind(),
            });
        };
        let len = bytes.len();
        match usize::try_from(index).ok().and_then(|i| bytes.get_mut(i)) {
            Some(slot) => {
                *slot = value;
                Ok(())
            }
            None => Err(StoreError::Bounds { oid, index, len }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_returns_distinct_nonnull_oids() {
        let mut s = Store::new();
        let a = s.alloc(Object::Array(vec![]));
        let b = s.alloc(Object::Array(vec![]));
        assert_ne!(a, b);
        assert!(!a.is_null());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn get_dangling_and_null() {
        let s = Store::new();
        assert!(matches!(s.get(Oid(5)), Err(StoreError::Dangling(_))));
        assert!(matches!(s.get(Oid::NULL), Err(StoreError::Dangling(_))));
    }

    #[test]
    fn array_get_set_bounds() {
        let mut s = Store::new();
        let a = s.alloc(Object::Array(vec![SVal::Int(1), SVal::Int(2)]));
        assert_eq!(s.array_get(a, 1).unwrap(), SVal::Int(2));
        s.array_set(a, 0, SVal::Int(9)).unwrap();
        assert_eq!(s.array_get(a, 0).unwrap(), SVal::Int(9));
        assert!(matches!(s.array_get(a, 2), Err(StoreError::Bounds { .. })));
        assert!(matches!(s.array_get(a, -1), Err(StoreError::Bounds { .. })));
    }

    #[test]
    fn vectors_are_immutable() {
        let mut s = Store::new();
        let v = s.alloc(Object::Vector(vec![SVal::Int(1)]));
        assert_eq!(s.array_get(v, 0).unwrap(), SVal::Int(1));
        assert!(matches!(
            s.array_set(v, 0, SVal::Int(2)),
            Err(StoreError::Immutable(_))
        ));
    }

    #[test]
    fn byte_arrays() {
        let mut s = Store::new();
        let b = s.alloc(Object::ByteArray(vec![0; 4]));
        s.bytes_set(b, 2, 0xab).unwrap();
        assert_eq!(s.bytes_get(b, 2).unwrap(), 0xab);
        assert_eq!(s.size_of(b).unwrap(), 4);
        assert!(matches!(s.bytes_get(b, 9), Err(StoreError::Bounds { .. })));
    }

    #[test]
    fn wrong_kind_reported() {
        let mut s = Store::new();
        let b = s.alloc(Object::ByteArray(vec![]));
        let err = s.array_get(b, 0).unwrap_err();
        assert!(matches!(
            err,
            StoreError::WrongKind {
                expected: "array",
                ..
            }
        ));
    }

    #[test]
    fn roots() {
        let mut s = Store::new();
        let m = s.alloc(Object::Module(crate::ModuleObj::default()));
        s.set_root("complex", m);
        assert_eq!(s.root("complex"), Some(m));
        assert_eq!(s.root("missing"), None);
        assert_eq!(s.roots().count(), 1);
    }

    #[test]
    fn derived_attributes() {
        let mut s = Store::new();
        let c = s.alloc(Object::Ptml(vec![1, 2, 3]));
        s.set_attr(c, "cost", 42);
        s.set_attr(c, "savings", 7);
        assert_eq!(s.attr(c, "cost"), Some(42));
        assert_eq!(s.attr(c, "nope"), None);
        assert_eq!(s.attrs_of(c).count(), 2);
    }

    #[test]
    fn stats_track_ptml_and_closures() {
        let mut s = Store::new();
        s.alloc(Object::Ptml(vec![0; 50]));
        s.alloc(Object::Closure(crate::ClosureObj {
            code: 0,
            env: vec![],
            bindings: vec![],
            ptml: None,
        }));
        let st = s.stats();
        assert_eq!(st.objects, 2);
        assert_eq!(st.ptml_bytes, 50);
        assert_eq!(st.closures, 1);
        assert!(st.bytes > 50);
    }

    #[test]
    fn versions_track_mutation_and_collection() {
        let mut s = Store::new();
        let a = s.alloc(Object::Array(vec![SVal::Int(1)]));
        let b = s.alloc(Object::Array(vec![SVal::Int(2)]));
        assert_eq!(s.version(a), 0);
        s.array_set(a, 0, SVal::Int(5)).unwrap();
        assert_eq!(s.version(a), 1);
        assert_eq!(s.version(b), 0, "mutating a must not touch b");
        s.get_mut(a).unwrap();
        assert_eq!(s.version(a), 2);
        assert_eq!(s.live_version(a), Some(2));
        s.free(a);
        assert!(s.version(a) > 2, "collection bumps the version");
        assert_eq!(s.live_version(a), None);
        assert_eq!(s.version(Oid::NULL), 0);
        assert_eq!(s.version(Oid(999)), 0);
    }

    #[test]
    fn error_display() {
        let e = StoreError::Bounds {
            oid: Oid(3),
            index: 9,
            len: 2,
        };
        assert!(e.to_string().contains("out of bounds"));
    }
}
