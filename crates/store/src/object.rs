//! Heap objects: the complex values living behind OIDs.

use crate::sval::SVal;
use std::collections::BTreeMap;
use tml_core::Oid;

/// A compiled procedure in the store.
///
/// "For each exported source code function f in a compilation unit, the
/// compiler back end augments the generated code for f with a reference to
/// a compact persistent representation of the TML tree (Persistent TML,
/// PTML) for f." The closure also records the R-value bindings of its free
/// (global) variables — the `[identifier, OID]` pairs the reflective
/// optimizer re-establishes as λ-bindings (§4.1).
#[derive(Debug, Clone, PartialEq)]
pub struct ClosureObj {
    /// Index into the abstract machine's code table. Transient: snapshots
    /// keep the value but the code table must be relinked (regenerated from
    /// PTML) after loading.
    pub code: u32,
    /// Captured environment slots (lexical closure record).
    pub env: Vec<SVal>,
    /// The R-value bindings of the procedure's free variables, in the order
    /// the PTML encoding lists them: `(identifier, value)` pairs.
    pub bindings: Vec<(String, SVal)>,
    /// PTML attachment: an OID of an [`Object::Ptml`] byte object, if the
    /// compiler kept the intermediate representation.
    pub ptml: Option<Oid>,
}

/// A module record: the runtime value of a first-class Tycoon module.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ModuleObj {
    /// Module name (e.g. `complex`).
    pub name: String,
    /// Exported bindings, by export name.
    pub exports: BTreeMap<String, SVal>,
}

/// A relation (bulk data): a schema plus a bag of rows. Used by the
/// `tml-query` crate; stored here so relations persist like any object.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Relation {
    /// Column names.
    pub schema: Vec<String>,
    /// Rows; every row has `schema.len()` fields.
    pub rows: Vec<Vec<SVal>>,
}

impl Relation {
    /// Create an empty relation with the given schema.
    pub fn new(schema: Vec<String>) -> Relation {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// Index of a column by name.
    pub fn column(&self, name: &str) -> Option<usize> {
        self.schema.iter().position(|c| c == name)
    }

    /// Append a row.
    ///
    /// # Panics
    /// Panics if the row width does not match the schema.
    pub fn insert(&mut self, row: Vec<SVal>) {
        assert_eq!(
            row.len(),
            self.schema.len(),
            "row width {} does not match schema width {}",
            row.len(),
            self.schema.len()
        );
        self.rows.push(row);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

/// An ordered index key. Only orderable immediates can be indexed.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum IndexKey {
    /// Boolean key.
    Bool(bool),
    /// Integer key.
    Int(i64),
    /// Character key.
    Char(u8),
    /// String key.
    Str(String),
}

impl IndexKey {
    /// Build a key from a store value, if it is indexable.
    pub fn from_sval(v: &SVal) -> Option<IndexKey> {
        match v {
            SVal::Bool(b) => Some(IndexKey::Bool(*b)),
            SVal::Int(n) => Some(IndexKey::Int(*n)),
            SVal::Char(c) => Some(IndexKey::Char(*c)),
            SVal::Str(s) => Some(IndexKey::Str(s.to_string())),
            _ => None,
        }
    }
}

/// A secondary index over one column of a relation.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct IndexObj {
    /// The indexed relation.
    pub relation: Oid,
    /// The indexed column.
    pub column: usize,
    /// Key → row indices.
    pub entries: BTreeMap<IndexKey, Vec<usize>>,
}

/// A heap object.
#[derive(Debug, Clone, PartialEq)]
pub enum Object {
    /// A mutable object array (`array`, `new` primitives).
    Array(Vec<SVal>),
    /// An immutable object array (`vector` primitive).
    Vector(Vec<SVal>),
    /// A mutable byte array (`bnew` primitive).
    ByteArray(Vec<u8>),
    /// A record/tuple value (ADT representations, e.g. complex numbers).
    Tuple(Vec<SVal>),
    /// A compiled procedure.
    Closure(ClosureObj),
    /// An encoded TML tree (see [`crate::ptml`]).
    Ptml(Vec<u8>),
    /// A first-class module record.
    Module(ModuleObj),
    /// A relation.
    Relation(Relation),
    /// A secondary index.
    Index(IndexObj),
}

impl Object {
    /// A short kind tag for diagnostics and snapshot encoding.
    pub fn kind(&self) -> &'static str {
        match self {
            Object::Array(_) => "array",
            Object::Vector(_) => "vector",
            Object::ByteArray(_) => "bytearray",
            Object::Tuple(_) => "tuple",
            Object::Closure(_) => "closure",
            Object::Ptml(_) => "ptml",
            Object::Module(_) => "module",
            Object::Relation(_) => "relation",
            Object::Index(_) => "index",
        }
    }

    /// Approximate persistent size in bytes (slot-based accounting used by
    /// the E3 code-size experiment and the store statistics).
    pub fn byte_size(&self) -> usize {
        const SLOT: usize = 8;
        match self {
            Object::Array(v) | Object::Vector(v) | Object::Tuple(v) => v.len() * SLOT + SLOT,
            Object::ByteArray(b) => b.len() + SLOT,
            Object::Closure(c) => {
                SLOT * 3
                    + c.env.len() * SLOT
                    + c.bindings
                        .iter()
                        .map(|(n, _)| n.len() + SLOT)
                        .sum::<usize>()
            }
            Object::Ptml(b) => b.len() + SLOT,
            Object::Module(m) => {
                m.name.len() + m.exports.keys().map(|n| n.len() + SLOT).sum::<usize>() + SLOT
            }
            Object::Relation(r) => {
                r.schema.iter().map(|s| s.len()).sum::<usize>()
                    + r.rows.len() * r.schema.len().max(1) * SLOT
                    + SLOT
            }
            Object::Index(ix) => ix.entries.len() * 2 * SLOT + SLOT,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relation_insert_and_lookup() {
        let mut r = Relation::new(vec!["id".into(), "name".into()]);
        r.insert(vec![SVal::Int(1), SVal::from("ada")]);
        r.insert(vec![SVal::Int(2), SVal::from("bob")]);
        assert_eq!(r.len(), 2);
        assert_eq!(r.column("name"), Some(1));
        assert_eq!(r.column("nope"), None);
        assert!(!r.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn relation_rejects_ragged_rows() {
        let mut r = Relation::new(vec!["id".into()]);
        r.insert(vec![SVal::Int(1), SVal::Int(2)]);
    }

    #[test]
    fn index_keys_order() {
        assert!(IndexKey::Int(1) < IndexKey::Int(2));
        assert!(IndexKey::from_sval(&SVal::Real(1.0)).is_none());
        assert_eq!(IndexKey::from_sval(&SVal::Int(5)), Some(IndexKey::Int(5)));
    }

    #[test]
    fn byte_sizes_scale() {
        let small = Object::Array(vec![SVal::Int(0); 2]);
        let big = Object::Array(vec![SVal::Int(0); 200]);
        assert!(big.byte_size() > small.byte_size());
        let ptml = Object::Ptml(vec![0u8; 100]);
        assert_eq!(ptml.byte_size(), 108);
    }

    #[test]
    fn kinds() {
        assert_eq!(Object::Tuple(vec![]).kind(), "tuple");
        assert_eq!(Object::Module(ModuleObj::default()).kind(), "module");
    }
}
