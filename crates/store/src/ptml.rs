//! PTML: the compact persistent encoding of TML trees.
//!
//! "For each exported source code function *f* in a compilation unit, the
//! compiler back end augments the generated code for *f* with a reference
//! to a compact persistent representation of the TML tree (Persistent TML,
//! PTML) for *f*. At runtime, it is possible to map PTML back into TML,
//! re-invoke the optimizer and code-generator, link the newly-generated
//! code into the running program, and execute it."
//!
//! "The mapping from PTML back to TML also returns the set of R-value
//! bindings (\[identifier, OID\] pairs) established at runtime" — here,
//! [`decode_abs`] returns the *free variables* of the encoded term in a
//! stable order; the caller (the reflective optimizer in `tml-reflect`)
//! pairs them with the values recorded in the closure record.
//!
//! ## Format
//!
//! ```text
//! magic "PTML1" (flat) or "PTML2" (share-aware)
//! prim table   : count, names (UTF-8)          -- stable identity is the name
//! var table    : count, (base name, cont flag)
//! free list    : count, var-table indices      -- R-value binding order
//! param list   : count, var-table indices      -- the procedure's formals
//! body         : app
//! app          : value, argc, value*
//! value        : tag … (unit/bool/int/real/char/str/oid/var/prim/abs/backref)
//! ```
//!
//! ## Shared subtrees (PTML2)
//!
//! In the share-aware format every `abs` node carries an implicit sequence
//! number (pre-order emission order, starting at 0). A subtree that is
//! physically shared (`Arc` pointer identity) or structurally identical
//! (same structural hash, verified by deep comparison — identical variable
//! ids included) to an already-emitted abstraction is encoded as a
//! `backref` tag plus the earlier abstraction's sequence number instead of
//! being re-emitted. The decoder keeps one slot per decoded abstraction and
//! materializes back-references as `Arc` clones, so sharing survives the
//! round trip. A back-reference may only point at a *completed* earlier
//! abstraction (an ancestor still being decoded is strictly larger than any
//! of its subtrees, so neither pointer nor content dedup can ever produce
//! one); the decoder rejects forward or unfinished references as corrupt.
//! [`decode_abs`] accepts both formats; [`encode_abs`] emits PTML2 and
//! [`encode_abs_flat`] the legacy PTML1.

use crate::varint::{put_i64, put_str, put_u64, DecodeError, Reader};
use std::collections::HashMap;
use std::sync::Arc;
use tml_core::term::{Abs, App, Value};
use tml_core::{Ctx, Lit, Oid, PrimId, VarId};

const MAGIC_V1: &[u8; 5] = b"PTML1";
const MAGIC_V2: &[u8; 5] = b"PTML2";
#[cfg(test)]
const MAGIC: &[u8; 5] = MAGIC_V2;

const TAG_UNIT: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_REAL: u8 = 3;
const TAG_CHAR: u8 = 4;
const TAG_STR: u8 = 5;
const TAG_OID: u8 = 6;
const TAG_VAR: u8 = 7;
const TAG_PRIM: u8 = 8;
const TAG_ABS: u8 = 9;
const TAG_BACKREF: u8 = 10;

/// Maximum abstraction-nesting depth the decoder and scanner accept.
/// Hostile bytes can otherwise drive the recursive decoder into a stack
/// overflow, which `catch_unwind` cannot contain. Debug-build frames for
/// the recursive decode run to several KiB, so the limit is sized with an
/// ~8x margin against the default 2 MiB worker-thread stack (empirically,
/// overflow sets in somewhere past depth 256). CPS nesting in the programs
/// this system compiles stays well below this.
const MAX_DEPTH: usize = 128;

/// Encode a procedure (abstraction) into share-aware PTML2 bytes: each
/// distinct shared subtree is emitted once and back-referenced thereafter.
pub fn encode_abs(ctx: &Ctx, abs: &Abs) -> Vec<u8> {
    let mut bytes = encode_abs_inner(ctx, abs, true);
    if crate::failpoint::armed() {
        crate::failpoint::corrupt("ptml.encode", 0, &mut bytes);
    }
    bytes
}

/// Encode a procedure into the legacy flat PTML1 format (no back
/// references; every subtree emitted in full). Kept for compatibility
/// tests and for producing blobs older readers understand.
pub fn encode_abs_flat(ctx: &Ctx, abs: &Abs) -> Vec<u8> {
    encode_abs_inner(ctx, abs, false)
}

fn encode_abs_inner(ctx: &Ctx, abs: &Abs, share: bool) -> Vec<u8> {
    let mut enc = Encoder::new(ctx, share);
    // Register free variables first so their order is the stable R-value
    // binding order, then the binders in traversal order. The cached
    // summary already holds the sorted free set — no tree walk needed.
    let free = abs.free_vars();
    for &v in free {
        enc.var_index(v);
    }
    let free_count = free.len();
    enc.collect_binders(abs);

    let mut body = Vec::new();
    enc.put_abs_raw(&mut body, abs);

    if tml_trace::enabled() && share {
        tml_trace::count("store.ptml.share.backrefs", enc.backrefs);
        tml_trace::count("store.ptml.share.saved_bytes", enc.saved_bytes);
    }

    // Assemble: header, prim table, var table, free list, body.
    let mut out = Vec::with_capacity(body.len() + 64);
    out.extend_from_slice(if share { MAGIC_V2 } else { MAGIC_V1 });
    put_u64(&mut out, enc.prims.len() as u64);
    for name in &enc.prims {
        put_str(&mut out, name);
    }
    put_u64(&mut out, enc.vars.len() as u64);
    for &v in &enc.vars {
        let info = ctx.names.info(v);
        put_str(&mut out, &info.base);
        out.push(u8::from(info.is_cont));
    }
    put_u64(&mut out, free_count as u64);
    for i in 0..free_count {
        put_u64(&mut out, i as u64); // free vars were registered first
    }
    out.extend_from_slice(&body);
    out
}

/// Encode a whole program (application) into PTML bytes by wrapping it in a
/// parameterless abstraction. The wrap is cheap: cloning an [`App`] only
/// bumps the reference counts of its immediate children.
pub fn encode_app(ctx: &Ctx, app: &App) -> Vec<u8> {
    encode_abs(ctx, &Abs::new(Vec::new(), app.clone()))
}

/// Decode PTML bytes back into a TML abstraction. Fresh variables are
/// created in `ctx` for every encoded identifier. Returns the abstraction
/// and its free variables `(name, var)` in R-value binding order.
pub fn decode_abs(ctx: &mut Ctx, bytes: &[u8]) -> Result<(Abs, Vec<(String, VarId)>), DecodeError> {
    if crate::failpoint::armed() {
        let mut owned = bytes.to_vec();
        if crate::failpoint::corrupt("ptml.decode", 0, &mut owned) {
            return decode_abs_inner(ctx, &owned);
        }
    }
    decode_abs_inner(ctx, bytes)
}

fn decode_abs_inner(
    ctx: &mut Ctx,
    bytes: &[u8],
) -> Result<(Abs, Vec<(String, VarId)>), DecodeError> {
    let mut r = Reader::new(bytes);
    let magic = r.bytes(MAGIC_V1.len())?;
    if magic != MAGIC_V1 && magic != MAGIC_V2 {
        return Err(DecodeError::BadMagic);
    }
    // Prim table.
    let nprims = r.len()?;
    let mut prims = Vec::with_capacity(nprims);
    for _ in 0..nprims {
        let name = r.str()?.to_string();
        let id = ctx
            .prims
            .lookup(&name)
            .ok_or(DecodeError::UnknownPrim(name))?;
        prims.push(id);
    }
    // Var table: create fresh identifiers.
    let nvars = r.len()?;
    let mut vars = Vec::with_capacity(nvars);
    for _ in 0..nvars {
        let base = r.str()?.to_string();
        let is_cont = r.byte()? != 0;
        let v = if is_cont {
            ctx.names.fresh_cont(base.clone())
        } else {
            ctx.names.fresh(base.clone())
        };
        vars.push((base, v));
    }
    // Free list.
    let nfree = r.len()?;
    let mut free = Vec::with_capacity(nfree);
    for _ in 0..nfree {
        let i = r.len()?;
        let (base, v) = vars.get(i).ok_or(DecodeError::BadIndex(i as u64))?;
        free.push((base.clone(), *v));
    }
    // Body value (must be an abstraction).
    let mut dec = Decoder {
        prims,
        vars,
        slots: Vec::new(),
        depth: 0,
    };
    let val = dec.value(&mut r)?;
    if !r.is_at_end() {
        return Err(DecodeError::Truncated);
    }
    match val {
        Value::Abs(a) => Ok((Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone()), free)),
        _ => Err(DecodeError::BadTag(TAG_ABS)),
    }
}

/// Decode a whole program encoded by [`encode_app`].
pub fn decode_app(ctx: &mut Ctx, bytes: &[u8]) -> Result<(App, Vec<(String, VarId)>), DecodeError> {
    let (abs, free) = decode_abs(ctx, bytes)?;
    Ok((abs.body, free))
}

/// Collect every OID literal embedded in a PTML blob *without* decoding
/// into a context (no primitive table needed). Used by the garbage
/// collector: code can reference data, so OID literals inside PTML keep
/// their targets alive.
pub fn scan_oids(bytes: &[u8]) -> Result<Vec<Oid>, DecodeError> {
    let mut r = Reader::new(bytes);
    let magic = r.bytes(MAGIC_V1.len())?;
    if magic != MAGIC_V1 && magic != MAGIC_V2 {
        return Err(DecodeError::BadMagic);
    }
    let mut oids = Vec::new();
    let nprims = r.len()?;
    for _ in 0..nprims {
        r.str()?;
    }
    let nvars = r.len()?;
    for _ in 0..nvars {
        r.str()?;
        r.byte()?;
    }
    let nfree = r.len()?;
    for _ in 0..nfree {
        r.len()?;
    }
    scan_value(&mut r, &mut oids, 0)?;
    if !r.is_at_end() {
        return Err(DecodeError::Truncated);
    }
    Ok(oids)
}

fn scan_value(r: &mut Reader<'_>, oids: &mut Vec<Oid>, depth: usize) -> Result<(), DecodeError> {
    if depth >= MAX_DEPTH {
        return Err(DecodeError::TooDeep { limit: MAX_DEPTH });
    }
    match r.byte()? {
        TAG_UNIT => {}
        TAG_BOOL | TAG_CHAR => {
            r.byte()?;
        }
        TAG_INT => {
            r.i64()?;
        }
        TAG_REAL => {
            r.bytes(8)?;
        }
        TAG_STR => {
            r.byte_string()?;
        }
        TAG_OID => oids.push(Oid(r.u64()?)),
        TAG_VAR | TAG_PRIM => {
            r.u64()?;
        }
        TAG_ABS => {
            let nparams = r.len()?;
            for _ in 0..nparams {
                r.len()?;
            }
            scan_app(r, oids, depth + 1)?;
        }
        TAG_BACKREF => {
            // The referenced subtree was already scanned where it was
            // first emitted; the GC only needs set membership.
            r.u64()?;
        }
        t => return Err(DecodeError::BadTag(t)),
    }
    Ok(())
}

fn scan_app(r: &mut Reader<'_>, oids: &mut Vec<Oid>, depth: usize) -> Result<(), DecodeError> {
    scan_value(r, oids, depth)?;
    let argc = r.len()?;
    for _ in 0..argc {
        scan_value(r, oids, depth)?;
    }
    Ok(())
}

struct Encoder<'a> {
    ctx: &'a Ctx,
    prims: Vec<String>,
    prim_ix: HashMap<PrimId, u64>,
    vars: Vec<VarId>,
    var_ix: HashMap<VarId, u64>,
    /// Share-aware (PTML2) mode.
    share: bool,
    /// Abs sequence counter (pre-order emission order).
    next_seq: u64,
    /// Emitted byte length per sequence number (filled at completion),
    /// for the saved-bytes accounting.
    seq_len: Vec<usize>,
    /// Already-emitted abstractions by pointer. The `Arc` clones in
    /// `content` keep every registered allocation alive, so a raw address
    /// can never be reused by a different node while encoding.
    ptr_seq: HashMap<usize, u64>,
    /// Already-emitted abstractions by structural hash, for content dedup
    /// (deep equality verified on candidate hit).
    content: HashMap<u64, Vec<(u64, Arc<Abs>)>>,
    backrefs: u64,
    saved_bytes: u64,
}

impl<'a> Encoder<'a> {
    fn new(ctx: &'a Ctx, share: bool) -> Self {
        Encoder {
            ctx,
            prims: Vec::new(),
            prim_ix: HashMap::new(),
            vars: Vec::new(),
            var_ix: HashMap::new(),
            share,
            next_seq: 0,
            seq_len: Vec::new(),
            ptr_seq: HashMap::new(),
            content: HashMap::new(),
            backrefs: 0,
            saved_bytes: 0,
        }
    }

    fn var_index(&mut self, v: VarId) -> u64 {
        if let Some(&i) = self.var_ix.get(&v) {
            return i;
        }
        let i = self.vars.len() as u64;
        self.vars.push(v);
        self.var_ix.insert(v, i);
        i
    }

    fn prim_index(&mut self, p: PrimId) -> u64 {
        if let Some(&i) = self.prim_ix.get(&p) {
            return i;
        }
        let i = self.prims.len() as u64;
        self.prims.push(self.ctx.prims.name(p).to_string());
        self.prim_ix.insert(p, i);
        i
    }

    /// Pre-register every binder so the var table is complete before the
    /// body is emitted (indices must be stable).
    fn collect_binders(&mut self, abs: &Abs) {
        for &p in &abs.params {
            self.var_index(p);
        }
        self.collect_app(&abs.body);
    }

    fn collect_app(&mut self, app: &App) {
        self.collect_value(&app.func);
        for a in &app.args {
            self.collect_value(a);
        }
    }

    fn collect_value(&mut self, v: &Value) {
        match v {
            Value::Abs(a) => self.collect_binders(a),
            Value::Prim(p) => {
                self.prim_index(*p);
            }
            Value::Var(x) => {
                self.var_index(*x);
            }
            Value::Lit(_) => {}
        }
    }

    fn put_value_payload(&mut self, out: &mut Vec<u8>, v: &Value) {
        match v {
            Value::Lit(Lit::Unit) => out.push(TAG_UNIT),
            Value::Lit(Lit::Bool(b)) => {
                out.push(TAG_BOOL);
                out.push(u8::from(*b));
            }
            Value::Lit(Lit::Int(n)) => {
                out.push(TAG_INT);
                put_i64(out, *n);
            }
            Value::Lit(Lit::Real(r)) => {
                out.push(TAG_REAL);
                out.extend_from_slice(&r.get().to_le_bytes());
            }
            Value::Lit(Lit::Char(c)) => {
                out.push(TAG_CHAR);
                out.push(*c);
            }
            Value::Lit(Lit::Str(s)) => {
                out.push(TAG_STR);
                put_str(out, s);
            }
            Value::Lit(Lit::Oid(o)) => {
                out.push(TAG_OID);
                put_u64(out, o.0);
            }
            Value::Var(x) => {
                out.push(TAG_VAR);
                let i = self.var_index(*x);
                put_u64(out, i);
            }
            Value::Prim(p) => {
                out.push(TAG_PRIM);
                let i = self.prim_index(*p);
                put_u64(out, i);
            }
            Value::Abs(a) => self.put_abs_value(out, a),
        }
    }

    /// Emit an abstraction reached through its shared handle: a back
    /// reference when the node (by pointer, then by content) was already
    /// emitted, the full subtree otherwise.
    fn put_abs_value(&mut self, out: &mut Vec<u8>, a: &Arc<Abs>) {
        if !self.share {
            self.put_abs_raw(out, a);
            return;
        }
        let key = Arc::as_ptr(a) as usize;
        if let Some(&seq) = self.ptr_seq.get(&key) {
            self.put_backref(out, seq);
            return;
        }
        let h = a.struct_hash();
        if let Some(cands) = self.content.get(&h) {
            if let Some(&(seq, _)) = cands.iter().find(|(_, c)| **c == **a) {
                self.ptr_seq.insert(key, seq);
                self.put_backref(out, seq);
                return;
            }
        }
        // First emission: register before descending so the sequence
        // numbering is pre-order (matching the decoder's slot order).
        let seq = self.put_abs_raw(out, a);
        self.ptr_seq.insert(key, seq);
        self.content.entry(h).or_default().push((seq, a.clone()));
    }

    /// Emit an abstraction subtree in full, assigning it the next sequence
    /// number. Returns the assigned sequence number.
    fn put_abs_raw(&mut self, out: &mut Vec<u8>, a: &Abs) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.seq_len.push(0);
        let start = out.len();
        out.push(TAG_ABS);
        put_u64(out, a.params.len() as u64);
        for &p in &a.params {
            let i = self.var_index(p);
            put_u64(out, i);
        }
        self.put_app(out, &a.body);
        self.seq_len[seq as usize] = out.len() - start;
        seq
    }

    fn put_backref(&mut self, out: &mut Vec<u8>, seq: u64) {
        let start = out.len();
        out.push(TAG_BACKREF);
        put_u64(out, seq);
        self.backrefs += 1;
        let full = self.seq_len[seq as usize];
        self.saved_bytes += full.saturating_sub(out.len() - start) as u64;
    }

    fn put_app(&mut self, out: &mut Vec<u8>, app: &App) {
        self.put_value_payload(out, &app.func);
        put_u64(out, app.args.len() as u64);
        for a in &app.args {
            self.put_value_payload(out, a);
        }
    }
}

struct Decoder {
    prims: Vec<PrimId>,
    vars: Vec<(String, VarId)>,
    /// One slot per decoded abstraction, in pre-order (matching the
    /// encoder's sequence numbering). A slot is reserved (`None`) when its
    /// `TAG_ABS` is first read and filled once the subtree completes, so a
    /// back-reference to a still-open ancestor is detectable as corrupt.
    slots: Vec<Option<Arc<Abs>>>,
    /// Current abstraction-nesting depth, bounded by [`MAX_DEPTH`] so
    /// hostile bytes cannot overflow the decoder's stack.
    depth: usize,
}

impl Decoder {
    fn value(&mut self, r: &mut Reader<'_>) -> Result<Value, DecodeError> {
        Ok(match r.byte()? {
            TAG_UNIT => Value::Lit(Lit::Unit),
            TAG_BOOL => Value::Lit(Lit::Bool(r.byte()? != 0)),
            TAG_INT => Value::Lit(Lit::Int(r.i64()?)),
            TAG_REAL => {
                let raw: [u8; 8] = r.bytes(8)?.try_into().map_err(|_| DecodeError::Truncated)?;
                Value::Lit(Lit::real(f64::from_le_bytes(raw)))
            }
            TAG_CHAR => Value::Lit(Lit::Char(r.byte()?)),
            TAG_STR => Value::Lit(Lit::str(r.str()?)),
            TAG_OID => Value::Lit(Lit::Oid(Oid(r.u64()?))),
            TAG_VAR => {
                let i = r.len()?;
                let (_, v) = self.vars.get(i).ok_or(DecodeError::BadIndex(i as u64))?;
                Value::Var(*v)
            }
            TAG_PRIM => {
                let i = r.len()?;
                let p = self.prims.get(i).ok_or(DecodeError::BadIndex(i as u64))?;
                Value::Prim(*p)
            }
            TAG_ABS => {
                if self.depth >= MAX_DEPTH {
                    return Err(DecodeError::TooDeep { limit: MAX_DEPTH });
                }
                self.depth += 1;
                let slot = self.slots.len();
                self.slots.push(None);
                let nparams = r.len()?;
                let mut params = Vec::with_capacity(nparams.min(1024));
                for _ in 0..nparams {
                    let i = r.len()?;
                    let (_, v) = self.vars.get(i).ok_or(DecodeError::BadIndex(i as u64))?;
                    params.push(*v);
                }
                let body = self.app(r)?;
                self.depth -= 1;
                let arc = Arc::new(Abs::new(params, body));
                self.slots[slot] = Some(arc.clone());
                Value::Abs(arc)
            }
            TAG_BACKREF => {
                let i = r.len()?;
                let arc = self
                    .slots
                    .get(i)
                    .and_then(|s| s.clone())
                    .ok_or(DecodeError::BadIndex(i as u64))?;
                Value::Abs(arc)
            }
            t => return Err(DecodeError::BadTag(t)),
        })
    }

    fn app(&mut self, r: &mut Reader<'_>) -> Result<App, DecodeError> {
        let func = self.value(r)?;
        let argc = r.len()?;
        let mut args = Vec::with_capacity(argc.min(1024));
        for _ in 0..argc {
            args.push(self.value(r)?);
        }
        Ok(App { func, args })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tml_core::parse::parse_app;
    use tml_core::pretty::print_app;

    fn roundtrip(src: &str) -> (Ctx, App, App, Vec<(String, VarId)>) {
        let mut ctx = Ctx::new();
        let parsed = parse_app(&mut ctx, src).unwrap();
        let bytes = encode_app(&ctx, &parsed.app);
        let (decoded, free) = decode_app(&mut ctx, &bytes).unwrap();
        (ctx, parsed.app, decoded, free)
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let (ctx, orig, decoded, _) =
            roundtrip("(cont(x) (+ x 1 cont(e)(halt e) cont(t)(halt t)) 13)");
        assert_eq!(orig.size(), decoded.size());
        // α-equivalent: printing differs only in unique numbers.
        let a = print_app(&ctx, &orig);
        let b = print_app(&ctx, &decoded);
        let strip = |s: &str| {
            s.chars()
                .filter(|c| !c.is_ascii_digit() && *c != '_')
                .collect::<String>()
        };
        // Literals are digits too, so compare shapes loosely plus sizes.
        assert_eq!(strip(&a).len(), strip(&b).len());
    }

    #[test]
    fn all_literal_kinds_roundtrip() {
        let src = r#"(cont(a b c d e f g) (halt a) unit true -7 2.5 'q' "str" <oid 0xbeef>)"#;
        let (_, orig, decoded, _) = roundtrip(src);
        assert_eq!(orig.args, decoded.args);
    }

    #[test]
    fn free_variables_reported_in_order() {
        let (ctx, _, _, free) = roundtrip("(f g f h)");
        let names: Vec<&str> = free.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["f", "g", "h"]);
        for (_, v) in &free {
            assert!(!ctx.names.is_cont(*v));
        }
    }

    #[test]
    fn cont_flags_survive() {
        let mut ctx = Ctx::new();
        let parsed = parse_app(&mut ctx, "(proc(t ce cc) (cc t) 1 a b)").unwrap();
        let bytes = encode_app(&ctx, &parsed.app);
        let (decoded, _) = decode_app(&mut ctx, &bytes).unwrap();
        let abs = decoded.func.as_abs().unwrap();
        assert!(!ctx.names.is_cont(abs.params[0]));
        assert!(ctx.names.is_cont(abs.params[1]));
        assert!(ctx.names.is_cont(abs.params[2]));
    }

    #[test]
    fn decoded_terms_are_well_formed() {
        use tml_core::gen::{gen_program, GenConfig};
        for seed in 0..25 {
            let (mut ctx, app) = gen_program(seed, GenConfig::default());
            let bytes = encode_app(&ctx, &app);
            let (decoded, _) = decode_app(&mut ctx, &bytes).unwrap();
            tml_core::wellformed::check_app(&ctx, &decoded)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(app.size(), decoded.size());
        }
    }

    #[test]
    fn encoding_is_compact() {
        // A few dozen nodes should encode in well under 4 bytes per node.
        use tml_core::gen::{gen_program, GenConfig};
        let (ctx, app) = gen_program(
            3,
            GenConfig {
                steps: 30,
                ..Default::default()
            },
        );
        let bytes = encode_app(&ctx, &app);
        assert!(
            bytes.len() < app.size() * 8,
            "{} bytes for {} nodes",
            bytes.len(),
            app.size()
        );
    }

    #[test]
    fn bad_magic_rejected() {
        let mut ctx = Ctx::new();
        assert_eq!(
            decode_app(&mut ctx, b"NOPE!xxxx"),
            Err(DecodeError::BadMagic)
        );
    }

    #[test]
    fn truncation_rejected() {
        let mut ctx = Ctx::new();
        let parsed = parse_app(&mut ctx, "(halt 12345)").unwrap();
        let bytes = encode_app(&ctx, &parsed.app);
        for cut in [bytes.len() - 1, bytes.len() / 2, MAGIC.len()] {
            assert!(
                decode_app(&mut ctx, &bytes[..cut]).is_err(),
                "cut at {cut} accepted"
            );
        }
    }

    #[test]
    fn unknown_prim_rejected() {
        // Encode with a context that has an extra primitive, decode with a
        // context lacking it.
        let mut ctx = Ctx::new();
        ctx.prims.register(tml_core::PrimDef {
            name: "mystery".into(),
            signature: tml_core::Signature::exact(0, 1),
            attrs: Default::default(),
            fold: None,
            validate: None,
            cost: tml_core::prim::PrimCost::Const(1),
            codegen: None,
        });
        let parsed = parse_app(&mut ctx, "(mystery k)").unwrap();
        let bytes = encode_app(&ctx, &parsed.app);
        let mut plain = Ctx::new();
        assert_eq!(
            decode_app(&mut plain, &bytes),
            Err(DecodeError::UnknownPrim("mystery".into()))
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut ctx = Ctx::new();
        let parsed = parse_app(&mut ctx, "(halt 1)").unwrap();
        let mut bytes = encode_app(&ctx, &parsed.app);
        bytes.push(0);
        assert_eq!(decode_app(&mut ctx, &bytes), Err(DecodeError::Truncated));
    }

    /// A hostile blob nesting abstractions far past any real program must
    /// hit the depth guard — a typed error, not a decoder stack overflow
    /// (which no `catch_unwind` could contain).
    #[test]
    fn depth_bomb_rejected_not_overflowed() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC);
        put_u64(&mut bytes, 0); // prims
        put_u64(&mut bytes, 0); // vars
        put_u64(&mut bytes, 0); // free list
        for _ in 0..100_000 {
            bytes.push(TAG_ABS);
            bytes.push(0); // no params; body's func is the next abs
        }
        let mut ctx = Ctx::new();
        assert_eq!(
            decode_app(&mut ctx, &bytes),
            Err(DecodeError::TooDeep { limit: MAX_DEPTH })
        );
        assert_eq!(
            scan_oids(&bytes),
            Err(DecodeError::TooDeep { limit: MAX_DEPTH })
        );
    }

    /// Exhaustive truncation and bit-flip sweep: the decoder and the GC's
    /// OID scanner read persisted bytes, so a corrupted blob must produce
    /// an error (or, for a lucky flip, a decodable other term) — never a
    /// panic.
    #[test]
    fn corrupted_blobs_never_panic_decoder_or_scanner() {
        let mut ctx = Ctx::new();
        let parsed = parse_app(
            &mut ctx,
            "(cont(x) (+ x 1 cont(e)(halt e) cont(t)(halt t)) -9223372036854775807)",
        )
        .unwrap();
        let bytes = encode_app(&ctx, &parsed.app);
        for cut in 0..bytes.len() {
            let mut c = Ctx::new();
            assert!(
                decode_app(&mut c, &bytes[..cut]).is_err(),
                "truncation at {cut} accepted"
            );
            let _ = scan_oids(&bytes[..cut]);
        }
        for pos in 0..bytes.len() {
            for flip in [0x01u8, 0x80, 0xff] {
                let mut m = bytes.clone();
                m[pos] ^= flip;
                let mut c = Ctx::new();
                let _ = decode_app(&mut c, &m);
                let _ = scan_oids(&m);
            }
        }
    }
}
