//! Fixed-size pages and positioned page IO.
//!
//! The durable store's on-disk structures (today the write-ahead log, and
//! the shared buffer cache the multi-session server will need next) are
//! laid out in fixed [`PAGE_SIZE`] pages, SimpleDB-style: a [`PageFile`]
//! does positioned whole-page reads and writes, and a [`Page`] is the
//! in-memory image of one disk page.
//!
//! A page offers two views:
//!
//! * a **raw** byte view ([`Page::bytes`], [`Page::bytes_mut`]) — the WAL
//!   treats its pages as a contiguous byte stream that records span
//!   freely, so the log needs nothing more than raw pages;
//! * a **slotted** record view ([`Page::insert_record`],
//!   [`Page::record`]) — a classic slotted-page layout (slot directory
//!   growing from the front, record bodies packed from the back) used for
//!   page-resident object records. The snapshot image is still the object
//!   authority today; the slotted view is the substrate the shared buffer
//!   cache builds on.
//!
//! ```text
//! slotted page:
//! | nslots u16 | free_end u16 | (off u16, len u16)* ...gap... records |
//! 0            2              4                                  4096
//! ```

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// Size of every disk page in bytes.
pub const PAGE_SIZE: usize = 4096;

const HDR: usize = 4; // nslots u16 + free_end u16
const SLOT: usize = 4; // off u16 + len u16

/// Identifies one page in a [`PageFile`] (page index, not a byte offset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u64);

impl PageId {
    /// The byte offset of this page in its file.
    pub fn byte_offset(self) -> u64 {
        self.0 * PAGE_SIZE as u64
    }
}

/// The in-memory image of one disk page.
#[derive(Clone)]
pub struct Page {
    data: Box<[u8; PAGE_SIZE]>,
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("nslots", &self.nslots())
            .field("free_space", &self.free_space())
            .finish()
    }
}

impl Default for Page {
    fn default() -> Self {
        Page::new()
    }
}

impl Page {
    /// A zero-filled page. In the slotted view, zeroes mean "no slots and
    /// `free_end == 0`"; [`Page::format`] must run before inserting.
    pub fn new() -> Page {
        Page {
            data: Box::new([0u8; PAGE_SIZE]),
        }
    }

    /// A page initialized from raw bytes (short input is zero-padded).
    pub fn from_bytes(bytes: &[u8]) -> Page {
        let mut p = Page::new();
        let n = bytes.len().min(PAGE_SIZE);
        p.data[..n].copy_from_slice(&bytes[..n]);
        p
    }

    /// Raw read view of the full page.
    pub fn bytes(&self) -> &[u8; PAGE_SIZE] {
        &self.data
    }

    /// Raw write view of the full page.
    pub fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        &mut self.data
    }

    fn get_u16(&self, at: usize) -> u16 {
        u16::from_le_bytes([self.data[at], self.data[at + 1]])
    }

    fn put_u16(&mut self, at: usize, v: u16) {
        self.data[at..at + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Initialize the slotted-record layout (empties the page).
    pub fn format(&mut self) {
        self.data.fill(0);
        self.put_u16(0, 0);
        self.put_u16(2, PAGE_SIZE as u16);
    }

    /// Number of record slots in the slotted view.
    pub fn nslots(&self) -> u16 {
        self.get_u16(0)
    }

    /// Bytes still available for one more record (slot entry included).
    /// 0 for a page never [`Page::format`]ted.
    pub fn free_space(&self) -> usize {
        let free_end = self.get_u16(2) as usize;
        let dir_end = HDR + self.nslots() as usize * SLOT;
        free_end.saturating_sub(dir_end).saturating_sub(SLOT)
    }

    /// Append a record to the slotted view. Returns its slot number, or
    /// `None` when the record (plus its slot entry) does not fit.
    pub fn insert_record(&mut self, rec: &[u8]) -> Option<u16> {
        if rec.len() > self.free_space() {
            return None;
        }
        let slot = self.nslots();
        let free_end = self.get_u16(2) as usize;
        let off = free_end - rec.len();
        self.data[off..free_end].copy_from_slice(rec);
        let entry = HDR + slot as usize * SLOT;
        self.put_u16(entry, off as u16);
        self.put_u16(entry + 2, rec.len() as u16);
        self.put_u16(0, slot + 1);
        self.put_u16(2, off as u16);
        Some(slot)
    }

    /// Read a record from the slotted view.
    pub fn record(&self, slot: u16) -> Option<&[u8]> {
        if slot >= self.nslots() {
            return None;
        }
        let entry = HDR + slot as usize * SLOT;
        let off = self.get_u16(entry) as usize;
        let len = self.get_u16(entry + 2) as usize;
        if off + len > PAGE_SIZE {
            return None;
        }
        Some(&self.data[off..off + len])
    }
}

/// Positioned whole-page IO over one file.
#[derive(Debug)]
pub struct PageFile {
    file: File,
}

impl PageFile {
    /// Open (creating if missing) a page file for read/write.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<PageFile> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        Ok(PageFile { file })
    }

    /// File length in bytes (not necessarily page-aligned: a torn tail
    /// write can leave a partial last page).
    pub fn len(&self) -> std::io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }

    /// `true` when the file holds no bytes at all.
    pub fn is_empty(&self) -> std::io::Result<bool> {
        Ok(self.len()? == 0)
    }

    /// Number of pages, counting a trailing partial page as one.
    pub fn npages(&self) -> std::io::Result<u64> {
        Ok(self.len()?.div_ceil(PAGE_SIZE as u64))
    }

    /// Read one page. Bytes past EOF read as zero, so the tail page of a
    /// file whose last write was torn still loads.
    pub fn read_page(&mut self, id: PageId, page: &mut Page) -> std::io::Result<()> {
        self.file.seek(SeekFrom::Start(id.byte_offset()))?;
        let buf = page.bytes_mut();
        buf.fill(0);
        let mut filled = 0;
        while filled < PAGE_SIZE {
            match self.file.read(&mut buf[filled..])? {
                0 => break,
                n => filled += n,
            }
        }
        Ok(())
    }

    /// Write one full page at its slot.
    pub fn write_page(&mut self, id: PageId, page: &Page) -> std::io::Result<()> {
        self.file.seek(SeekFrom::Start(id.byte_offset()))?;
        self.file.write_all(page.bytes())
    }

    /// Write an arbitrary prefix of a page — used by fault injection to
    /// lay down a deliberately torn page image.
    pub fn write_page_prefix(&mut self, id: PageId, bytes: &[u8]) -> std::io::Result<()> {
        self.file.seek(SeekFrom::Start(id.byte_offset()))?;
        self.file.write_all(&bytes[..bytes.len().min(PAGE_SIZE)])
    }

    /// Truncate the file to `len` bytes.
    pub fn set_len(&mut self, len: u64) -> std::io::Result<()> {
        self.file.set_len(len)
    }

    /// fsync.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slotted_insert_and_read_back() {
        let mut p = Page::new();
        p.format();
        let a = p.insert_record(b"alpha").unwrap();
        let b = p.insert_record(b"beta").unwrap();
        assert_eq!(p.record(a), Some(&b"alpha"[..]));
        assert_eq!(p.record(b), Some(&b"beta"[..]));
        assert_eq!(p.nslots(), 2);
        assert_eq!(p.record(2), None);
    }

    #[test]
    fn page_fills_up_and_rejects_overflow() {
        let mut p = Page::new();
        p.format();
        let rec = [7u8; 100];
        let mut inserted = 0;
        while p.insert_record(&rec).is_some() {
            inserted += 1;
        }
        // 100 bytes + 4-byte slot entry per record within 4092 usable.
        assert!(inserted >= 38, "only {inserted} records fit");
        assert!(p.free_space() < rec.len());
        // Small records still fit in the remaining gap.
        assert!(p.insert_record(&[1u8; 8]).is_some());
    }

    #[test]
    fn unformatted_page_accepts_nothing() {
        let mut p = Page::new();
        assert_eq!(p.free_space(), 0);
        assert!(p.insert_record(b"x").is_none());
    }

    #[test]
    fn slotted_layout_survives_raw_roundtrip() {
        let mut p = Page::new();
        p.format();
        p.insert_record(b"persisted").unwrap();
        let copy = Page::from_bytes(p.bytes().as_slice());
        assert_eq!(copy.record(0), Some(&b"persisted"[..]));
    }

    #[test]
    fn page_file_roundtrip_and_partial_tail() {
        let dir = std::env::temp_dir().join("tml_store_pagefile_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.bin");
        std::fs::remove_file(&path).ok();
        let mut pf = PageFile::open(&path).unwrap();
        let mut p0 = Page::new();
        p0.bytes_mut()[0] = 0xaa;
        p0.bytes_mut()[PAGE_SIZE - 1] = 0xbb;
        pf.write_page(PageId(0), &p0).unwrap();
        // A torn write: only 10 bytes of page 1 reach the disk.
        pf.write_page_prefix(PageId(1), &[0xcc; 10]).unwrap();
        assert_eq!(pf.npages().unwrap(), 2);
        let mut back = Page::new();
        pf.read_page(PageId(0), &mut back).unwrap();
        assert_eq!(back.bytes()[0], 0xaa);
        assert_eq!(back.bytes()[PAGE_SIZE - 1], 0xbb);
        pf.read_page(PageId(1), &mut back).unwrap();
        assert_eq!(back.bytes()[9], 0xcc);
        assert_eq!(back.bytes()[10], 0, "past-EOF bytes read as zero");
        pf.read_page(PageId(5), &mut back).unwrap();
        assert!(back.bytes().iter().all(|&b| b == 0));
        std::fs::remove_file(&path).ok();
    }
}
