//! A buffer manager: a fixed pool of in-memory page frames over a
//! [`PageFile`], with pin counts and LRU eviction.
//!
//! Readers pin the page they need ([`BufferPool::pin`]), work on the
//! returned frame, and unpin it when done. A miss loads the page into a
//! free frame, evicting the least-recently-used *unpinned* frame when the
//! pool is full (writing it back first if dirty). Pinned frames are never
//! evicted; if every frame is pinned the pool refuses the request rather
//! than blocking — single-threaded callers that hit this have a pin leak,
//! and the multi-session server will layer waiting on top.

use crate::page::{Page, PageFile, PageId};
use std::collections::HashMap;

/// Running counters for buffer-pool behaviour (reported by `tmlc info`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferStats {
    /// Pin requests satisfied from a resident frame.
    pub hits: u64,
    /// Pin requests that had to read the page from disk.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty frames written back (at eviction or flush).
    pub writebacks: u64,
}

#[derive(Debug)]
struct Frame {
    id: PageId,
    page: Page,
    pins: u32,
    dirty: bool,
    last_used: u64,
}

/// A fixed-capacity pool of page frames over one [`PageFile`].
#[derive(Debug)]
pub struct BufferPool {
    frames: Vec<Frame>,
    map: HashMap<PageId, usize>,
    cap: usize,
    tick: u64,
    stats: BufferStats,
}

impl BufferPool {
    /// A pool holding at most `cap` frames (minimum 1).
    pub fn new(cap: usize) -> BufferPool {
        let cap = cap.max(1);
        BufferPool {
            frames: Vec::with_capacity(cap),
            map: HashMap::new(),
            cap,
            tick: 0,
            stats: BufferStats::default(),
        }
    }

    /// Behaviour counters so far.
    pub fn stats(&self) -> BufferStats {
        self.stats
    }

    /// Number of resident frames.
    pub fn resident(&self) -> usize {
        self.frames.len()
    }

    fn touch(&mut self, ix: usize) {
        self.tick += 1;
        self.frames[ix].last_used = self.tick;
    }

    /// Pin `id`, loading it from `file` on a miss. Returns the frame
    /// index for [`BufferPool::page`] / [`BufferPool::page_mut`]. Fails
    /// with `WouldBlock` when every frame is pinned.
    pub fn pin(&mut self, file: &mut PageFile, id: PageId) -> std::io::Result<usize> {
        if let Some(&ix) = self.map.get(&id) {
            self.stats.hits += 1;
            self.frames[ix].pins += 1;
            self.touch(ix);
            return Ok(ix);
        }
        self.stats.misses += 1;
        let ix = if self.frames.len() < self.cap {
            self.frames.push(Frame {
                id,
                page: Page::new(),
                pins: 0,
                dirty: false,
                last_used: 0,
            });
            self.frames.len() - 1
        } else {
            let victim = self
                .frames
                .iter()
                .enumerate()
                .filter(|(_, f)| f.pins == 0)
                .min_by_key(|(_, f)| f.last_used)
                .map(|(ix, _)| ix)
                .ok_or_else(|| {
                    std::io::Error::new(
                        std::io::ErrorKind::WouldBlock,
                        "buffer pool exhausted: every frame is pinned",
                    )
                })?;
            self.evict(file, victim)?;
            victim
        };
        file.read_page(id, &mut self.frames[ix].page)?;
        self.frames[ix].id = id;
        self.frames[ix].pins = 1;
        self.frames[ix].dirty = false;
        self.map.insert(id, ix);
        self.touch(ix);
        Ok(ix)
    }

    fn evict(&mut self, file: &mut PageFile, ix: usize) -> std::io::Result<()> {
        // Hot path under pool pressure: feed the latency histogram
        // directly, no span event per eviction.
        let t0 = if tml_trace::enabled() {
            tml_trace::global().clock().now_ns()
        } else {
            0
        };
        if self.frames[ix].dirty {
            file.write_page(self.frames[ix].id, &self.frames[ix].page)?;
            self.stats.writebacks += 1;
        }
        self.map.remove(&self.frames[ix].id);
        self.stats.evictions += 1;
        if tml_trace::enabled() {
            let rec = tml_trace::global();
            rec.record_ns(
                "store.buffer.evict",
                rec.clock().now_ns().saturating_sub(t0),
            );
        }
        Ok(())
    }

    /// Read view of a pinned frame.
    pub fn page(&self, ix: usize) -> &Page {
        &self.frames[ix].page
    }

    /// Write view of a pinned frame; marks it dirty.
    pub fn page_mut(&mut self, ix: usize) -> &mut Page {
        self.frames[ix].dirty = true;
        &mut self.frames[ix].page
    }

    /// Release one pin on the frame.
    ///
    /// # Panics
    /// Panics on unpinning a frame with no pins (a bookkeeping bug).
    pub fn unpin(&mut self, ix: usize) {
        assert!(self.frames[ix].pins > 0, "unpin of an unpinned frame");
        self.frames[ix].pins -= 1;
    }

    /// Write every dirty frame back to `file` (no fsync; the caller owns
    /// durability policy).
    pub fn flush_all(&mut self, file: &mut PageFile) -> std::io::Result<()> {
        for f in &mut self.frames {
            if f.dirty {
                file.write_page(f.id, &f.page)?;
                f.dirty = false;
                self.stats.writebacks += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PAGE_SIZE;

    fn scratch_file(name: &str, pages: u64) -> PageFile {
        let dir = std::env::temp_dir().join("tml_store_buffer_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::remove_file(&path).ok();
        let mut pf = PageFile::open(&path).unwrap();
        for i in 0..pages {
            let mut p = Page::new();
            p.bytes_mut()[0] = i as u8;
            pf.write_page(PageId(i), &p).unwrap();
        }
        pf
    }

    #[test]
    fn hit_miss_and_lru_eviction() {
        let mut pf = scratch_file("lru.bin", 4);
        let mut pool = BufferPool::new(2);
        let a = pool.pin(&mut pf, PageId(0)).unwrap();
        assert_eq!(pool.page(a).bytes()[0], 0);
        pool.unpin(a);
        let b = pool.pin(&mut pf, PageId(1)).unwrap();
        pool.unpin(b);
        // Page 0 again: still resident, a hit.
        let a2 = pool.pin(&mut pf, PageId(0)).unwrap();
        pool.unpin(a2);
        assert_eq!(pool.stats().hits, 1);
        // Pool is full; page 2 evicts the LRU frame (page 1).
        let c = pool.pin(&mut pf, PageId(2)).unwrap();
        assert_eq!(pool.page(c).bytes()[0], 2);
        pool.unpin(c);
        assert_eq!(pool.stats().evictions, 1);
        // Page 1 must re-read (miss), page 0 may or may not be resident.
        let before = pool.stats().misses;
        let d = pool.pin(&mut pf, PageId(1)).unwrap();
        pool.unpin(d);
        assert_eq!(pool.stats().misses, before + 1);
    }

    #[test]
    fn pinned_frames_are_not_evicted() {
        let mut pf = scratch_file("pinned.bin", 3);
        let mut pool = BufferPool::new(2);
        let a = pool.pin(&mut pf, PageId(0)).unwrap();
        let b = pool.pin(&mut pf, PageId(1)).unwrap();
        // Both frames pinned: a third pin cannot be served.
        let err = pool.pin(&mut pf, PageId(2)).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
        pool.unpin(b);
        // Now the unpinned frame is evictable.
        let c = pool.pin(&mut pf, PageId(2)).unwrap();
        assert_eq!(pool.page(c).bytes()[0], 2);
        assert_eq!(pool.page(a).bytes()[0], 0, "pinned page stayed put");
        pool.unpin(a);
        pool.unpin(c);
    }

    #[test]
    fn dirty_pages_write_back_on_eviction_and_flush() {
        let mut pf = scratch_file("dirty.bin", 3);
        let mut pool = BufferPool::new(1);
        let a = pool.pin(&mut pf, PageId(0)).unwrap();
        pool.page_mut(a).bytes_mut()[100] = 0x5a;
        pool.unpin(a);
        // Eviction must write the dirty frame back.
        let b = pool.pin(&mut pf, PageId(1)).unwrap();
        pool.page_mut(b).bytes_mut()[PAGE_SIZE - 1] = 0xa5;
        pool.unpin(b);
        assert_eq!(pool.stats().writebacks, 1);
        pool.flush_all(&mut pf).unwrap();
        assert_eq!(pool.stats().writebacks, 2);
        let c = pool.pin(&mut pf, PageId(0)).unwrap();
        assert_eq!(pool.page(c).bytes()[100], 0x5a);
        pool.unpin(c);
    }

    #[test]
    #[should_panic(expected = "unpin of an unpinned frame")]
    fn double_unpin_is_a_bug() {
        let mut pf = scratch_file("double.bin", 1);
        let mut pool = BufferPool::new(1);
        let a = pool.pin(&mut pf, PageId(0)).unwrap();
        pool.unpin(a);
        pool.unpin(a);
    }
}
