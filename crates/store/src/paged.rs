//! Paged object storage for the durable store: object records on slotted
//! pages behind the buffer pool, addressed by a small catalog file.
//!
//! Since this module, a durable image is no longer one monolithic TYSTO3
//! snapshot. The image path holds a **TYCAT1 catalog** — the OID → page
//! location directory plus the store's small sections (roots, attributes,
//! versions, optimization cache) — while object bytes live on 4 KiB
//! slotted pages in a sibling *generation file* `<image>.p<gen>`. A
//! checkpoint therefore writes only the records that changed since the
//! last one (the dirty set) plus one small catalog, instead of
//! re-serializing the whole world.
//!
//! ## Record layout
//!
//! A record is exactly the TYSTO3 object encoding
//! ([`snapshot::put_object`]). Records up to [`INLINE_MAX`] bytes live in
//! a slotted page ([`Page::insert_record`]); larger records spill into an
//! **overflow chain** of whole pages, each laid out as
//!
//! ```text
//! | next page id u64 LE | payload (PAGE_SIZE - 8 bytes) |
//! ```
//!
//! with `u64::MAX` terminating the chain.
//!
//! ## Crash safety: fresh pages only
//!
//! The load-bearing invariant: **a checkpoint writes records only into
//! pages the current on-disk catalog does not reference** (page ids at or
//! past the catalog's `next_page` watermark). Superseded locations become
//! dead space instead of being rewritten, so a crash mid-checkpoint can
//! never damage a page the old catalog — still the authoritative one
//! until its atomic replacement — points into. The catalog itself is
//! written with the snapshot module's atomic protocol (tmp + fsync + bak
//! rotation + rename), carrying the same `snapshot.save.*` failpoint
//! sites, and its file identity is what the WAL header binds to.
//!
//! Dead space is reclaimed by **generation compaction**: when it
//! outweighs the live bytes, the checkpoint rewrites every live record
//! into `<image>.p<gen+1>` and the old generation file is deleted after
//! the new catalog lands.

use crate::buffer::{BufferPool, BufferStats};
use crate::cache::OptCache;
use crate::failpoint;
use crate::object::Object;
use crate::page::{PageFile, PageId, PAGE_SIZE};
use crate::snapshot::{self, ImageIdentity};
use crate::store::Store;
use crate::varint::{put_i64, put_str, put_u64, DecodeError, Reader};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use tml_core::Oid;

const MAGIC: &[u8; 6] = b"TYCAT1";

/// Largest record stored inline in a slotted page (one fresh page minus
/// the page header and one slot entry); larger records chain.
pub const INLINE_MAX: usize = PAGE_SIZE - 8;

/// Payload bytes per overflow-chain page (the first 8 hold the next id).
const CHAIN_PAYLOAD: usize = PAGE_SIZE - 8;

/// Buffer-pool frames. Deliberately modest so large checkpoints actually
/// exercise eviction and write-back.
const POOL_CAP: usize = 64;

/// Compaction trigger: dead bytes must exceed both this floor and the
/// live bytes before a checkpoint rewrites the generation.
const COMPACT_MIN_DEAD: u64 = 256 * 1024;

/// Where an object's record lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Location {
    /// A slotted record within one page.
    Inline { page: u64, slot: u16, len: u32 },
    /// An overflow chain starting at `first`, holding `len` record bytes.
    Chain { first: u64, len: u64 },
}

impl Location {
    fn len(&self) -> u64 {
        match self {
            Location::Inline { len, .. } => *len as u64,
            Location::Chain { len, .. } => *len,
        }
    }
}

/// Page-side footprint counters (reported by `tmlc info` / `tmlc fsck`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PageStats {
    /// Current generation number.
    pub gen: u64,
    /// Pages allocated in the current generation (the fresh-page watermark).
    pub pages: u64,
    /// Objects with a page-resident record.
    pub dir_entries: u64,
    /// Objects whose record spills into an overflow chain.
    pub chains: u64,
    /// Bytes of record data the catalog references.
    pub live_bytes: u64,
    /// Bytes written to the generation file no longer referenced.
    pub dead_bytes: u64,
    /// Buffer-pool frames currently resident.
    pub resident: u64,
}

/// The paged object heap: one generation file of slotted pages behind a
/// buffer pool, plus the OID directory destined for the catalog.
#[derive(Debug)]
pub struct PagedHeap {
    path: PathBuf,
    key: u64,
    file: PageFile,
    pool: BufferPool,
    prior_pool_stats: BufferStats,
    dir: BTreeMap<Oid, Location>,
    gen: u64,
    next_page: u64,
    /// The page currently being filled with inline records (this
    /// checkpoint only; reset at flush so catalog-referenced pages are
    /// never appended to).
    fill: Option<u64>,
    live_bytes: u64,
    dead_bytes: u64,
}

fn gen_path(path: &Path, gen: u64) -> PathBuf {
    let mut p = path.as_os_str().to_os_string();
    p.push(format!(".p{gen}"));
    p.into()
}

fn path_key(path: &Path) -> u64 {
    crate::cache::hash_bytes(path.as_os_str().as_encoded_bytes())
}

/// Best-effort removal of generation files other than `keep` (all of
/// them when `keep` is `None`): strays left by a crashed compaction or a
/// superseded store.
fn remove_stray_gens(path: &Path, keep: Option<u64>) {
    let Some(parent) = path.parent() else { return };
    let Some(stem) = path.file_name().and_then(|n| n.to_str()) else {
        return;
    };
    let dir = if parent.as_os_str().is_empty() {
        Path::new(".")
    } else {
        parent
    };
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let prefix = format!("{stem}.p");
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(digits) = name.strip_prefix(&prefix) else {
            continue;
        };
        match digits.parse::<u64>() {
            Ok(g) if Some(g) == keep => {}
            Ok(_) => {
                std::fs::remove_file(entry.path()).ok();
            }
            Err(_) => {}
        }
    }
}

/// `true` when the file at `path` starts with the TYCAT1 catalog magic.
pub fn is_catalog_file(path: impl AsRef<Path>) -> bool {
    use std::io::Read;
    let mut magic = [0u8; 6];
    match std::fs::File::open(path.as_ref()) {
        Ok(mut f) => f.read_exact(&mut magic).is_ok() && &magic == MAGIC,
        Err(_) => false,
    }
}

/// A decoded catalog, before the page file is consulted.
struct Catalog {
    gen: u64,
    next_page: u64,
    slots: u64,
    dir: BTreeMap<Oid, Location>,
    live_bytes: u64,
    dead_bytes: u64,
    roots: Vec<(String, Oid)>,
    attrs: BTreeMap<Oid, BTreeMap<String, i64>>,
    versions: Vec<u64>,
    cache: OptCache,
}

fn decode_catalog(bytes: &[u8]) -> Result<Catalog, DecodeError> {
    let magic = bytes.get(..MAGIC.len()).ok_or(DecodeError::Truncated)?;
    if magic != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let body_len = bytes.len().checked_sub(4).ok_or(DecodeError::Truncated)?;
    if body_len < MAGIC.len() {
        return Err(DecodeError::Truncated);
    }
    let stored = u32::from_le_bytes(
        bytes[body_len..]
            .try_into()
            .map_err(|_| DecodeError::Truncated)?,
    );
    let computed = crate::crc::crc32(&bytes[..body_len]);
    if stored != computed {
        return Err(DecodeError::BadCrc { stored, computed });
    }
    let mut r = Reader::new(&bytes[..body_len]);
    r.bytes(MAGIC.len())?;
    let gen = r.u64()?;
    let next_page = r.u64()?;
    let slots = r.u64()?;
    let ndir = r.len()?;
    let mut dir = BTreeMap::new();
    for _ in 0..ndir {
        let oid = Oid(r.u64()?);
        let loc = match r.byte()? {
            0 => Location::Inline {
                page: r.u64()?,
                slot: r.u64()? as u16,
                len: r.u64()? as u32,
            },
            1 => Location::Chain {
                first: r.u64()?,
                len: r.u64()?,
            },
            t => return Err(DecodeError::BadTag(t)),
        };
        dir.insert(oid, loc);
    }
    let live_bytes = r.u64()?;
    let dead_bytes = r.u64()?;
    let nroots = r.len()?;
    let mut roots = Vec::with_capacity(nroots.min(4096));
    for _ in 0..nroots {
        let name = r.str()?.to_string();
        let oid = Oid(r.u64()?);
        roots.push((name, oid));
    }
    let nattrs = r.len()?;
    let mut attrs: BTreeMap<Oid, BTreeMap<String, i64>> = BTreeMap::new();
    for _ in 0..nattrs {
        let oid = Oid(r.u64()?);
        let nkv = r.len()?;
        let mut kv = BTreeMap::new();
        for _ in 0..nkv {
            let k = r.str()?.to_string();
            let v = r.i64()?;
            kv.insert(k, v);
        }
        attrs.insert(oid, kv);
    }
    let versions = snapshot::get_versions(&mut r)?;
    let cache = snapshot::get_cache(&mut r)?;
    if !r.is_at_end() {
        return Err(DecodeError::Truncated);
    }
    Ok(Catalog {
        gen,
        next_page,
        slots,
        dir,
        live_bytes,
        dead_bytes,
        roots,
        attrs,
        versions,
        cache,
    })
}

/// A catalog-addressed store reconstructed from disk.
pub struct OpenedCatalog {
    /// The heap, positioned to append fresh pages after the catalog's
    /// watermark.
    pub heap: PagedHeap,
    /// The fully rebuilt in-memory store.
    pub store: Store,
    /// Identity of the catalog file bytes that were decoded (what the WAL
    /// header must match).
    pub identity: ImageIdentity,
    /// Which file yielded the catalog.
    pub source: snapshot::RecoverySource,
}

/// Open the paged image at `path`: decode the catalog (falling back to
/// its `.bak` and `.tmp` siblings), then rebuild the store from the page
/// file. Returns `Ok(None)` when no decodable catalog exists at any of
/// the three paths — the caller falls back to the legacy whole-image
/// formats.
pub fn open_catalog(path: &Path) -> std::io::Result<Option<OpenedCatalog>> {
    let candidates = [
        (path.to_path_buf(), snapshot::RecoverySource::Primary),
        (
            snapshot::backup_path(path),
            snapshot::RecoverySource::Backup,
        ),
        (snapshot::tmp_path(path), snapshot::RecoverySource::Tmp),
    ];
    for (file, source) in candidates {
        let Ok(bytes) = snapshot::read_image(&file) else {
            continue;
        };
        let Ok(cat) = decode_catalog(&bytes) else {
            continue;
        };
        match rebuild(path, cat) {
            Ok((heap, store)) => {
                return Ok(Some(OpenedCatalog {
                    heap,
                    store,
                    identity: snapshot::identity_of(&bytes),
                    source,
                }))
            }
            // Damaged pages under this catalog: try the next source.
            Err(_) => continue,
        }
    }
    Ok(None)
}

/// Materialize a store from a decoded catalog plus its generation file.
fn rebuild(path: &Path, cat: Catalog) -> std::io::Result<(PagedHeap, Store)> {
    let file = PageFile::open(gen_path(path, cat.gen))?;
    let mut heap = PagedHeap {
        path: path.to_path_buf(),
        key: path_key(path),
        file,
        pool: BufferPool::new(POOL_CAP),
        prior_pool_stats: BufferStats::default(),
        dir: cat.dir,
        gen: cat.gen,
        next_page: cat.next_page,
        fill: None,
        live_bytes: cat.live_bytes,
        dead_bytes: cat.dead_bytes,
    };
    let mut store = Store::new();
    for ix in 0..cat.slots {
        let oid = Oid(ix + 1);
        match heap.read_record(oid)? {
            Some(rec) => {
                let mut r = Reader::new(&rec);
                let obj = snapshot::get_object(&mut r).map_err(|e| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("bad record for {oid}: {e}"),
                    )
                })?;
                if !r.is_at_end() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("trailing bytes in record for {oid}"),
                    ));
                }
                store.push_slot(Some(obj));
            }
            None => store.push_slot(None),
        }
    }
    for (name, oid) in cat.roots {
        store.set_root(name, oid);
    }
    store.set_attr_table(cat.attrs);
    store.set_versions(cat.versions);
    *store.cache_mut() = cat.cache;
    Ok((heap, store))
}

impl PagedHeap {
    /// A fresh, empty heap for `path`: generation 0, all pre-existing
    /// generation files removed.
    pub fn create(path: &Path) -> std::io::Result<PagedHeap> {
        remove_stray_gens(path, None);
        let mut file = PageFile::open(gen_path(path, 0))?;
        file.set_len(0)?;
        Ok(PagedHeap {
            path: path.to_path_buf(),
            key: path_key(path),
            file,
            pool: BufferPool::new(POOL_CAP),
            prior_pool_stats: BufferStats::default(),
            dir: BTreeMap::new(),
            gen: 0,
            next_page: 0,
            fill: None,
            live_bytes: 0,
            dead_bytes: 0,
        })
    }

    /// Page-side footprint counters.
    pub fn stats(&self) -> PageStats {
        PageStats {
            gen: self.gen,
            pages: self.next_page,
            dir_entries: self.dir.len() as u64,
            chains: self
                .dir
                .values()
                .filter(|l| matches!(l, Location::Chain { .. }))
                .count() as u64,
            live_bytes: self.live_bytes,
            dead_bytes: self.dead_bytes,
            resident: self.pool.resident() as u64,
        }
    }

    /// Cumulative buffer-pool counters (across compactions).
    pub fn buffer_stats(&self) -> BufferStats {
        let a = self.prior_pool_stats;
        let b = self.pool.stats();
        BufferStats {
            hits: a.hits + b.hits,
            misses: a.misses + b.misses,
            evictions: a.evictions + b.evictions,
            writebacks: a.writebacks + b.writebacks,
        }
    }

    /// `true` when the next checkpoint should rewrite the generation to
    /// reclaim dead space.
    pub fn should_compact(&self) -> bool {
        self.dead_bytes > COMPACT_MIN_DEAD && self.dead_bytes > self.live_bytes
    }

    /// Switch to a fresh generation file: the caller must rewrite every
    /// live record before saving the catalog. The old generation file is
    /// deleted only after the new catalog lands ([`PagedHeap::save_catalog`]).
    pub fn begin_new_generation(&mut self) -> std::io::Result<()> {
        self.gen += 1;
        let mut file = PageFile::open(gen_path(&self.path, self.gen))?;
        file.set_len(0)?;
        self.file = file;
        let retired = self.pool.stats();
        self.prior_pool_stats = BufferStats {
            hits: self.prior_pool_stats.hits + retired.hits,
            misses: self.prior_pool_stats.misses + retired.misses,
            evictions: self.prior_pool_stats.evictions + retired.evictions,
            writebacks: self.prior_pool_stats.writebacks + retired.writebacks,
        };
        self.pool = BufferPool::new(POOL_CAP);
        self.dir.clear();
        self.next_page = 0;
        self.fill = None;
        self.live_bytes = 0;
        self.dead_bytes = 0;
        Ok(())
    }

    /// Drop `oid`'s record from the directory (its bytes become dead
    /// space). A no-op for OIDs without a record.
    pub fn remove_record(&mut self, oid: Oid) {
        if let Some(loc) = self.dir.remove(&oid) {
            let n = loc.len();
            self.live_bytes = self.live_bytes.saturating_sub(n);
            self.dead_bytes += n;
        }
    }

    /// Write (or supersede) `oid`'s record. The bytes land in fresh pages
    /// only; the previous location, if any, becomes dead space.
    pub fn write_record(&mut self, oid: Oid, rec: &[u8]) -> std::io::Result<()> {
        self.remove_record(oid);
        let loc = if rec.len() <= INLINE_MAX {
            failpoint::fail_io("page.write", self.key)?;
            let (page, slot) = self.insert_inline(rec)?;
            Location::Inline {
                page,
                slot,
                len: rec.len() as u32,
            }
        } else {
            failpoint::fail_io("page.chain", self.key)?;
            let first = self.write_chain(rec)?;
            Location::Chain {
                first,
                len: rec.len() as u64,
            }
        };
        self.live_bytes += rec.len() as u64;
        self.dir.insert(oid, loc);
        Ok(())
    }

    fn insert_inline(&mut self, rec: &[u8]) -> std::io::Result<(u64, u16)> {
        if let Some(fid) = self.fill {
            let ix = self.pool.pin(&mut self.file, PageId(fid))?;
            let slot = self.pool.page_mut(ix).insert_record(rec);
            self.pool.unpin(ix);
            if let Some(slot) = slot {
                return Ok((fid, slot));
            }
        }
        let fid = self.next_page;
        self.next_page += 1;
        self.fill = Some(fid);
        let ix = self.pool.pin(&mut self.file, PageId(fid))?;
        let page = self.pool.page_mut(ix);
        page.format();
        let slot = page
            .insert_record(rec)
            .expect("a fresh page holds any inline record");
        self.pool.unpin(ix);
        Ok((fid, slot))
    }

    fn write_chain(&mut self, rec: &[u8]) -> std::io::Result<u64> {
        let npages = rec.len().div_ceil(CHAIN_PAYLOAD) as u64;
        let first = self.next_page;
        self.next_page += npages;
        for (i, chunk) in rec.chunks(CHAIN_PAYLOAD).enumerate() {
            let id = first + i as u64;
            let next = if (i as u64) < npages - 1 {
                id + 1
            } else {
                u64::MAX
            };
            let ix = self.pool.pin(&mut self.file, PageId(id))?;
            let bytes = self.pool.page_mut(ix).bytes_mut();
            bytes.fill(0);
            bytes[..8].copy_from_slice(&next.to_le_bytes());
            bytes[8..8 + chunk.len()].copy_from_slice(chunk);
            self.pool.unpin(ix);
        }
        Ok(first)
    }

    /// Read back `oid`'s record bytes (`None` when the catalog holds no
    /// record — a tombstoned or never-written slot).
    pub fn read_record(&mut self, oid: Oid) -> std::io::Result<Option<Vec<u8>>> {
        let Some(loc) = self.dir.get(&oid).copied() else {
            return Ok(None);
        };
        let bad = |what: String| std::io::Error::new(std::io::ErrorKind::InvalidData, what);
        match loc {
            Location::Inline { page, slot, len } => {
                let ix = self.pool.pin(&mut self.file, PageId(page))?;
                let rec = self.pool.page(ix).record(slot).map(<[u8]>::to_vec);
                self.pool.unpin(ix);
                match rec {
                    Some(r) if r.len() == len as usize => Ok(Some(r)),
                    Some(r) => Err(bad(format!(
                        "record for {oid} is {} bytes, catalog says {len}",
                        r.len()
                    ))),
                    None => Err(bad(format!("missing slotted record for {oid}"))),
                }
            }
            Location::Chain { first, len } => {
                let mut out = Vec::with_capacity(len as usize);
                let mut id = first;
                let mut remaining = len as usize;
                let mut hops = (len as usize).div_ceil(CHAIN_PAYLOAD) + 1;
                while remaining > 0 {
                    hops = hops
                        .checked_sub(1)
                        .ok_or_else(|| bad(format!("overflow chain for {oid} cycles")))?;
                    if id == u64::MAX {
                        return Err(bad(format!("overflow chain for {oid} ends early")));
                    }
                    let ix = self.pool.pin(&mut self.file, PageId(id))?;
                    let bytes = self.pool.page(ix).bytes();
                    let next = u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes"));
                    let take = remaining.min(CHAIN_PAYLOAD);
                    out.extend_from_slice(&bytes[8..8 + take]);
                    self.pool.unpin(ix);
                    remaining -= take;
                    id = next;
                }
                Ok(Some(out))
            }
        }
    }

    /// Write every dirty frame back and fsync the generation file. Resets
    /// the fill page: once the catalog references a page, it is never
    /// appended to again.
    pub fn flush(&mut self) -> std::io::Result<()> {
        failpoint::fail_io("page.flush", self.key)?;
        self.pool.flush_all(&mut self.file)?;
        self.file.sync()?;
        self.fill = None;
        Ok(())
    }

    /// Atomically write the catalog for the current directory plus the
    /// store's small sections; on success, stray generation files (e.g.
    /// the pre-compaction one) are removed.
    pub fn save_catalog(&mut self, store: &Store) -> std::io::Result<ImageIdentity> {
        let bytes = self.catalog_bytes(store);
        let identity = snapshot::write_bytes_atomic(bytes, &self.path)?;
        remove_stray_gens(&self.path, Some(self.gen));
        Ok(identity)
    }

    fn catalog_bytes(&self, store: &Store) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        put_u64(&mut out, self.gen);
        put_u64(&mut out, self.next_page);
        put_u64(&mut out, store.len() as u64);
        put_u64(&mut out, self.dir.len() as u64);
        for (oid, loc) in &self.dir {
            put_u64(&mut out, oid.0);
            match loc {
                Location::Inline { page, slot, len } => {
                    out.push(0);
                    put_u64(&mut out, *page);
                    put_u64(&mut out, *slot as u64);
                    put_u64(&mut out, *len as u64);
                }
                Location::Chain { first, len } => {
                    out.push(1);
                    put_u64(&mut out, *first);
                    put_u64(&mut out, *len);
                }
            }
        }
        put_u64(&mut out, self.live_bytes);
        put_u64(&mut out, self.dead_bytes);
        let roots: Vec<(&str, Oid)> = store.roots().collect();
        put_u64(&mut out, roots.len() as u64);
        for (name, oid) in roots {
            put_str(&mut out, name);
            put_u64(&mut out, oid.0);
        }
        let attrs = store.attr_table();
        put_u64(&mut out, attrs.len() as u64);
        for (oid, kv) in attrs {
            put_u64(&mut out, oid.0);
            put_u64(&mut out, kv.len() as u64);
            for (k, v) in kv {
                put_str(&mut out, k);
                put_i64(&mut out, *v);
            }
        }
        snapshot::put_versions(&mut out, store.versions());
        snapshot::put_cache(&mut out, store.cache());
        let crc = crate::crc::crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Encode one object as its record bytes.
    pub fn encode_record(obj: &Object) -> Vec<u8> {
        let mut rec = Vec::new();
        snapshot::put_object(&mut rec, obj);
        rec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sval::SVal;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("tml_store_paged_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        for suffix in ["", ".bak", ".tmp", ".wal"] {
            let mut q = p.as_os_str().to_os_string();
            q.push(suffix);
            std::fs::remove_file(PathBuf::from(q)).ok();
        }
        remove_stray_gens(&p, None);
        p
    }

    fn store_with(objs: &[Object]) -> Store {
        let mut s = Store::new();
        for o in objs {
            s.alloc(o.clone());
        }
        s
    }

    fn checkpoint_all(heap: &mut PagedHeap, store: &Store) -> ImageIdentity {
        for (oid, obj) in store.iter() {
            heap.write_record(oid, &PagedHeap::encode_record(obj))
                .unwrap();
        }
        heap.flush().unwrap();
        heap.save_catalog(store).unwrap()
    }

    #[test]
    fn catalog_roundtrip_with_inline_and_chained_records() {
        let path = tmp("roundtrip.tyc");
        let mut store = store_with(&[
            Object::Array(vec![SVal::Int(1), SVal::Str("hello".into())]),
            Object::ByteArray(vec![0xab; 3 * PAGE_SIZE]), // overflow chain
            Object::ByteArray(vec![0x11; 16]),
        ]);
        store.set_root("main", Oid(1));
        store.set_attr(Oid(2), "cost", 9);
        let mut heap = PagedHeap::create(&path).unwrap();
        checkpoint_all(&mut heap, &store);
        assert!(is_catalog_file(&path));
        let opened = open_catalog(&path).unwrap().expect("catalog decodes");
        assert_eq!(opened.source, snapshot::RecoverySource::Primary);
        assert_eq!(
            snapshot::to_bytes(&opened.store),
            snapshot::to_bytes(&store),
            "paged roundtrip must be byte-identical"
        );
        let stats = opened.heap.stats();
        assert_eq!(stats.dir_entries, 3);
        assert_eq!(stats.chains, 1);
        assert!(stats.pages >= 4, "inline page + 3-page chain");
    }

    #[test]
    fn superseded_records_become_dead_space_and_compaction_reclaims() {
        let path = tmp("compact.tyc");
        let mut store = store_with(&[Object::ByteArray(vec![0u8; 2048])]);
        let mut heap = PagedHeap::create(&path).unwrap();
        checkpoint_all(&mut heap, &store);
        assert_eq!(heap.stats().dead_bytes, 0);
        // Rewrite the record many times: every version but the last is dead.
        for round in 0..300 {
            *store.get_mut(Oid(1)).unwrap() = Object::ByteArray(vec![round as u8; 2048]);
            heap.write_record(
                Oid(1),
                &PagedHeap::encode_record(store.get(Oid(1)).unwrap()),
            )
            .unwrap();
            heap.flush().unwrap();
            heap.save_catalog(&store).unwrap();
        }
        assert!(heap.should_compact(), "dead space must pile up");
        let old_gen = gen_path(&path, heap.stats().gen);
        heap.begin_new_generation().unwrap();
        checkpoint_all(&mut heap, &store);
        let stats = heap.stats();
        assert_eq!(stats.dead_bytes, 0);
        assert_eq!(stats.gen, 1);
        assert!(!old_gen.exists(), "old generation file deleted");
        let opened = open_catalog(&path).unwrap().expect("compacted catalog");
        assert_eq!(
            snapshot::to_bytes(&opened.store),
            snapshot::to_bytes(&store)
        );
    }

    #[test]
    fn tombstones_and_empty_dirs_survive() {
        let path = tmp("tombstone.tyc");
        let mut store = store_with(&[
            Object::Array(vec![SVal::Int(1)]),
            Object::Array(vec![SVal::Int(2)]),
        ]);
        store.free(Oid(1));
        let mut heap = PagedHeap::create(&path).unwrap();
        checkpoint_all(&mut heap, &store);
        let opened = open_catalog(&path).unwrap().unwrap();
        assert_eq!(opened.store.len(), 2);
        assert_eq!(opened.store.live(), 1);
        assert_eq!(
            snapshot::to_bytes(&opened.store),
            snapshot::to_bytes(&store)
        );
    }

    #[test]
    fn corrupt_catalog_falls_back_to_backup() {
        let path = tmp("fallback.tyc");
        let store = store_with(&[Object::Array(vec![SVal::Int(7)])]);
        let mut heap = PagedHeap::create(&path).unwrap();
        checkpoint_all(&mut heap, &store);
        // A second checkpoint rotates the first catalog to .bak.
        checkpoint_all(&mut heap, &store);
        // Smash the primary catalog.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let opened = open_catalog(&path).unwrap().expect("backup catalog");
        assert_eq!(opened.source, snapshot::RecoverySource::Backup);
        assert_eq!(
            snapshot::to_bytes(&opened.store),
            snapshot::to_bytes(&store)
        );
    }

    #[test]
    fn non_catalog_file_is_reported_as_none() {
        let path = tmp("legacy.tyc");
        let store = store_with(&[Object::Array(vec![SVal::Int(1)])]);
        snapshot::save(&store, &path).unwrap();
        assert!(!is_catalog_file(&path));
        assert!(open_catalog(&path).unwrap().is_none());
    }
}
