//! The durable store: a [`Store`] whose mutations are write-ahead logged,
//! with periodic checkpoints that truncate the log.
//!
//! This is the persistence architecture ROADMAP item 1 called for: the
//! TYSTO3 whole-image snapshot is no longer the unit of durability — it
//! is the *checkpoint*, taken every `checkpoint_every` commits (or on
//! demand), while individual mutations cost only an appended redo record
//! plus a (group-committed) fsync.
//!
//! ## Commit protocol
//!
//! Every mutating method applies the change to the in-memory [`Store`]
//! and appends a redo record carrying the full post-image. [`commit`]
//! appends a `Commit` marker and syncs per the [`SyncPolicy`]. Redo
//! records replay through the *same* store entry points the original
//! mutations used, so version counters advance identically — which is
//! what makes recovery byte-identical (`snapshot::to_bytes` re-serializes
//! the recovered store to exactly the bytes of the lost one).
//!
//! ## Recovery
//!
//! [`DurableStore::open`]: load the checkpoint image through the existing
//! cascade ([`snapshot::load_with_recovery`]), scan the log, and decide:
//!
//! * the loaded image's file identity matches the log header → replay the
//!   committed prefix, resume appending after it;
//! * mismatch, unreadable header, damaged (salvaged) image → the log
//!   cannot be trusted on this base: discard it and take an immediate
//!   checkpoint to heal the on-disk state.
//!
//! The identity check is what makes the checkpoint crash windows safe: a
//! crash *before* the image rename leaves the old image (matching log →
//! replay), a crash *after* the rename but before the log reset leaves
//! the new image (stale log → discard, and every logged mutation is
//! already inside the new image). Either way no committed mutation is
//! lost — the seeded failpoint matrix in `tests/wal_recovery.rs` drives a
//! crash into every site and asserts exactly that.
//!
//! [`commit`]: DurableStore::commit

use crate::gc::{self, GcStats};
use crate::object::Object;
use crate::snapshot::{self, RecoveryReport};
use crate::store::{Store, StoreError};
use crate::sval::SVal;
use crate::wal::{wal_path, SyncPolicy, Wal, WalRecord};
use crate::{failpoint, StoreStats};
use std::path::{Path, PathBuf};
use tml_core::Oid;

/// Tuning for a [`DurableStore`].
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// When commits fsync the log.
    pub sync: SyncPolicy,
    /// Take a checkpoint automatically every this many commits
    /// (0 = only on explicit [`DurableStore::checkpoint`] calls).
    pub checkpoint_every: u64,
}

impl Default for DurableOptions {
    fn default() -> DurableOptions {
        DurableOptions {
            sync: SyncPolicy::Always,
            checkpoint_every: 0,
        }
    }
}

/// What [`DurableStore::open`] did to reconstruct the store.
#[derive(Debug)]
pub struct OpenReport {
    /// How the checkpoint image itself was recovered.
    pub snapshot: RecoveryReport,
    /// Redo records replayed from the log's committed prefix.
    pub redo_records: u64,
    /// Commit markers replayed.
    pub redo_commits: u64,
    /// Log records discarded: the uncommitted/torn suffix, or the whole
    /// log when it was stale for the recovered image.
    pub discarded_records: u64,
    /// The log tail was torn (recovery truncated it).
    pub torn_tail: bool,
    /// The whole log was discarded as stale (its header named a different
    /// checkpoint image than the one recovery loaded).
    pub stale_log: bool,
}

/// A write-ahead-logged [`Store`] bound to an image path.
#[derive(Debug)]
pub struct DurableStore {
    store: Store,
    wal: Wal,
    path: PathBuf,
    opts: DurableOptions,
    commits_since_checkpoint: u64,
    wedged: bool,
}

fn path_key(path: &Path) -> u64 {
    crate::cache::hash_bytes(path.as_os_str().as_encoded_bytes())
}

/// Replay one redo record against a store, through the same entry points
/// the original mutation used (so version counters advance identically).
fn apply(store: &mut Store, rec: &WalRecord) -> Result<(), StoreError> {
    match rec {
        WalRecord::Alloc { oid, obj } => {
            let got = store.alloc(obj.clone());
            debug_assert_eq!(got, *oid, "redo allocation order diverged");
            Ok(())
        }
        WalRecord::Set { oid, obj } => store.set(*oid, obj.clone()),
        WalRecord::Free { oid } => {
            store.free(*oid);
            Ok(())
        }
        WalRecord::SetRoot { name, oid } => {
            store.set_root(name.clone(), *oid);
            Ok(())
        }
        WalRecord::RemoveRoot { name } => {
            store.remove_root(name);
            Ok(())
        }
        WalRecord::SetAttr { oid, key, value } => {
            store.set_attr(*oid, key.clone(), *value);
            Ok(())
        }
        WalRecord::Commit => Ok(()),
    }
}

impl DurableStore {
    /// Create a fresh durable store at `path`: writes an empty checkpoint
    /// image and an empty log.
    pub fn create(path: impl AsRef<Path>, opts: DurableOptions) -> std::io::Result<DurableStore> {
        DurableStore::from_store(Store::new(), path, opts)
    }

    /// Adopt an existing in-memory store, checkpointing it to `path`
    /// immediately so the on-disk state starts consistent.
    pub fn from_store(
        store: Store,
        path: impl AsRef<Path>,
        opts: DurableOptions,
    ) -> std::io::Result<DurableStore> {
        let path = path.as_ref().to_path_buf();
        let identity = snapshot::save_with_identity(&store, &path)?;
        let wal = Wal::create(wal_path(&path), identity)?.with_policy(opts.sync);
        Ok(DurableStore {
            store,
            wal,
            path,
            opts,
            commits_since_checkpoint: 0,
            wedged: false,
        })
    }

    /// Open the durable store at `path`: recover the checkpoint image,
    /// replay the log's committed prefix, and resume.
    pub fn open(
        path: impl AsRef<Path>,
        opts: DurableOptions,
    ) -> std::io::Result<(DurableStore, OpenReport)> {
        let path = path.as_ref().to_path_buf();
        let t0 = if tml_trace::enabled() {
            tml_trace::global().clock().now_ns()
        } else {
            0
        };
        let (mut store, snap_report) = snapshot::load_with_recovery(&path)?;
        let wpath = wal_path(&path);
        let scan = Wal::scan(&wpath)?;
        let loaded_identity = recovered_image_identity(&path, &snap_report);
        let log_usable = scan.exists && scan.base.is_some() && scan.base == loaded_identity;
        let mut report = OpenReport {
            snapshot: snap_report,
            redo_records: 0,
            redo_commits: 0,
            discarded_records: 0,
            torn_tail: scan.torn_tail,
            stale_log: false,
        };
        if log_usable {
            let mut last_lsn = 0;
            for (lsn, rec) in &scan.records[..scan.committed] {
                // Redo is infallible on the base it was logged against; a
                // failure here means the identity check let a wrong base
                // through, which is a bug worth surfacing loudly.
                apply(&mut store, rec).map_err(|e| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("wal redo failed at lsn {lsn}: {e}"),
                    )
                })?;
                report.redo_records += 1;
                if *rec == WalRecord::Commit {
                    report.redo_commits += 1;
                }
                last_lsn = *lsn;
            }
            report.discarded_records = (scan.records.len() - scan.committed) as u64;
            if tml_trace::enabled() {
                tml_trace::count("store.wal.redo_records", report.redo_records);
                tml_trace::count("store.wal.redo_discarded", report.discarded_records);
                let rec = tml_trace::global();
                tml_trace::record(tml_trace::Event::Wal {
                    op: "redo",
                    lsn: last_lsn,
                    bytes: scan.committed_end,
                    records: report.redo_records,
                    micros: rec.clock().now_ns().saturating_sub(t0) / 1_000,
                });
            }
            let wal = Wal::resume(&wpath, &scan)?.with_policy(opts.sync);
            let mut ds = DurableStore {
                store,
                wal,
                path,
                opts,
                commits_since_checkpoint: report.redo_commits,
                wedged: false,
            };
            ds.maybe_auto_checkpoint()?;
            return Ok((ds, report));
        }
        // No usable log: stale for this image, headerless, or absent.
        // Heal by checkpointing the recovered store now — that makes the
        // on-disk state self-consistent again and empties the log.
        report.stale_log = scan.exists && scan.base != loaded_identity;
        report.discarded_records = scan.records.len() as u64;
        if tml_trace::enabled() && scan.exists {
            tml_trace::count("store.wal.redo_discarded", report.discarded_records);
            let rec = tml_trace::global();
            tml_trace::record(tml_trace::Event::Wal {
                op: "discard",
                lsn: scan.next_lsn.saturating_sub(1),
                bytes: scan.file_bytes,
                records: report.discarded_records,
                micros: rec.clock().now_ns().saturating_sub(t0) / 1_000,
            });
        }
        let ds = DurableStore::from_store(store, path, opts)?;
        Ok((ds, report))
    }

    /// The image path this store persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Read view of the underlying store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Escape hatch: mutate the underlying store *without* logging. Any
    /// change made through this view is volatile until the next
    /// checkpoint. Used for transient state (cache warm-up, code-table
    /// relinking) that redo can always re-derive.
    pub fn store_mut_unlogged(&mut self) -> &mut Store {
        &mut self.store
    }

    /// Statistics of the underlying store.
    pub fn stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Log-side totals since open.
    pub fn wal_stats(&self) -> crate::wal::WalStats {
        self.wal.stats()
    }

    /// `true` once an append failed: in-memory and durable state may have
    /// diverged, so further logged mutations are refused. Reopen to heal.
    pub fn is_wedged(&self) -> bool {
        self.wedged
    }

    fn guard(&self) -> std::io::Result<()> {
        if self.wedged {
            return Err(std::io::Error::other(
                "durable store is wedged after an append failure; reopen to recover",
            ));
        }
        Ok(())
    }

    fn log(&mut self, rec: WalRecord) -> std::io::Result<()> {
        match self.wal.append(&rec) {
            Ok(_) => Ok(()),
            Err(e) => {
                self.wedged = true;
                Err(e)
            }
        }
    }

    /// Allocate an object (logged).
    pub fn alloc(&mut self, obj: Object) -> std::io::Result<Oid> {
        self.guard()?;
        let oid = self.store.alloc(obj.clone());
        self.log(WalRecord::Alloc { oid, obj })?;
        Ok(oid)
    }

    /// Overwrite an object (logged).
    pub fn set(&mut self, oid: Oid, obj: Object) -> std::io::Result<()> {
        self.guard()?;
        self.store
            .set(oid, obj.clone())
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        self.log(WalRecord::Set { oid, obj })
    }

    /// Free an object (logged).
    pub fn free(&mut self, oid: Oid) -> std::io::Result<()> {
        self.guard()?;
        self.store.free(oid);
        self.log(WalRecord::Free { oid })
    }

    /// Set a named root (logged).
    pub fn set_root(&mut self, name: &str, oid: Oid) -> std::io::Result<()> {
        self.guard()?;
        self.store.set_root(name.to_string(), oid);
        self.log(WalRecord::SetRoot {
            name: name.to_string(),
            oid,
        })
    }

    /// Remove a named root (logged).
    pub fn remove_root(&mut self, name: &str) -> std::io::Result<()> {
        self.guard()?;
        self.store.remove_root(name);
        self.log(WalRecord::RemoveRoot {
            name: name.to_string(),
        })
    }

    /// Set a derived attribute (logged).
    pub fn set_attr(&mut self, oid: Oid, key: &str, value: i64) -> std::io::Result<()> {
        self.guard()?;
        self.store.set_attr(oid, key.to_string(), value);
        self.log(WalRecord::SetAttr {
            oid,
            key: key.to_string(),
            value,
        })
    }

    /// In-place array store (logged as a full post-image `Set`).
    pub fn array_set(&mut self, oid: Oid, index: i64, value: SVal) -> std::io::Result<()> {
        self.guard()?;
        self.store
            .array_set(oid, index, value)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        let obj = self.store.get(oid).expect("array_set verified oid").clone();
        self.log(WalRecord::Set { oid, obj })
    }

    /// In-place byte store (logged as a full post-image `Set`).
    pub fn bytes_set(&mut self, oid: Oid, index: i64, value: u8) -> std::io::Result<()> {
        self.guard()?;
        self.store
            .bytes_set(oid, index, value)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e))?;
        let obj = self.store.get(oid).expect("bytes_set verified oid").clone();
        self.log(WalRecord::Set { oid, obj })
    }

    /// Garbage-collect through the logged interface: runs [`gc::collect`]
    /// on the in-memory store and logs one `Free` per reclaimed object.
    pub fn collect(&mut self, extra_roots: &[Oid]) -> std::io::Result<GcStats> {
        self.guard()?;
        let live_before: Vec<Oid> = self.store.iter().map(|(oid, _)| oid).collect();
        let stats = gc::collect(&mut self.store, extra_roots);
        for oid in live_before {
            if self.store.get(oid).is_err() {
                self.log(WalRecord::Free { oid })?;
            }
        }
        Ok(stats)
    }

    /// Commit everything logged since the previous commit. Returns `true`
    /// when the commit is durably synced on return (see [`SyncPolicy`]).
    /// May take an automatic checkpoint (per `checkpoint_every`).
    pub fn commit(&mut self) -> std::io::Result<bool> {
        self.guard()?;
        let synced = match self.wal.commit() {
            Ok(s) => s,
            Err(e) => {
                self.wedged = true;
                return Err(e);
            }
        };
        self.commits_since_checkpoint += 1;
        self.maybe_auto_checkpoint()?;
        Ok(synced)
    }

    fn maybe_auto_checkpoint(&mut self) -> std::io::Result<()> {
        if self.opts.checkpoint_every > 0
            && self.commits_since_checkpoint >= self.opts.checkpoint_every
        {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Take a checkpoint: write the whole image (the crash-safe snapshot
    /// protocol, unchanged) and truncate the log. Crash windows:
    ///
    /// * before/inside the image save — the old image survives (or is
    ///   recoverable via its backup/tmp), and its identity still matches
    ///   the untouched log, so recovery replays as if no checkpoint ran;
    /// * after the save, before/inside the log reset — the new image is
    ///   in place and the log is stale for it, so recovery discards the
    ///   log; every logged mutation is already inside the new image.
    pub fn checkpoint(&mut self) -> std::io::Result<()> {
        self.guard()?;
        failpoint::fail_io("wal.checkpoint", path_key(&self.path))?;
        let _s = tml_trace::span!("store.wal.checkpoint");
        let t0 = if tml_trace::enabled() {
            tml_trace::global().clock().now_ns()
        } else {
            0
        };
        // Unsynced log tail first: the image we are about to write must
        // not be *ahead* of the log while the old image is still current.
        self.wal.flush(true)?;
        let identity = snapshot::save_with_identity(&self.store, &self.path)?;
        self.wal.reset(identity)?;
        self.commits_since_checkpoint = 0;
        if tml_trace::enabled() {
            tml_trace::count("store.wal.checkpoints", 1);
            let rec = tml_trace::global();
            tml_trace::record(tml_trace::Event::Wal {
                op: "checkpoint",
                lsn: 0,
                bytes: identity.len,
                records: 0,
                micros: rec.clock().now_ns().saturating_sub(t0) / 1_000,
            });
        }
        Ok(())
    }

    /// Flush and sync the log, then checkpoint. Call before dropping when
    /// the store should land fully consolidated on disk.
    pub fn close(mut self) -> std::io::Result<()> {
        self.checkpoint()
    }
}

/// The identity of the file that `load_with_recovery` decoded, if it
/// decoded one cleanly (salvage sources return `None`: a log must never
/// replay onto a salvaged — partially lost — base).
fn recovered_image_identity(
    path: &Path,
    report: &RecoveryReport,
) -> Option<snapshot::ImageIdentity> {
    use crate::snapshot::RecoverySource as S;
    let src = match report.source {
        S::Primary => path.to_path_buf(),
        S::Backup => snapshot::backup_path(path),
        S::Tmp => snapshot::tmp_path(path),
        S::SalvagedPrimary | S::SalvagedBackup | S::SalvagedTmp => return None,
    };
    snapshot::identity_of_file(src).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::RecoverySource;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("tml_store_durable_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        for suffix in ["", ".bak", ".tmp", ".wal"] {
            let mut q = p.as_os_str().to_os_string();
            q.push(suffix);
            std::fs::remove_file(PathBuf::from(q)).ok();
        }
        p
    }

    fn obj(n: i64) -> Object {
        Object::Array(vec![SVal::Int(n)])
    }

    #[test]
    fn mutations_survive_reopen_without_checkpoint() {
        let path = tmp("basic.tys");
        let mut ds = DurableStore::create(&path, DurableOptions::default()).unwrap();
        let a = ds.alloc(obj(1)).unwrap();
        ds.set_root("main", a).unwrap();
        ds.commit().unwrap();
        let b = ds.alloc(obj(2)).unwrap();
        ds.set(b, obj(20)).unwrap();
        ds.set_attr(b, "cost", 9).unwrap();
        ds.commit().unwrap();
        let expected = snapshot::to_bytes(&ds.store);
        drop(ds); // crash: no close, no checkpoint
        let (back, report) = DurableStore::open(&path, DurableOptions::default()).unwrap();
        assert_eq!(report.snapshot.source, RecoverySource::Primary);
        assert_eq!(report.redo_commits, 2);
        assert!(!report.stale_log);
        assert_eq!(snapshot::to_bytes(&back.store), expected);
        assert_eq!(back.store().root("main"), Some(a));
        assert_eq!(back.store().attr(b, "cost"), Some(9));
    }

    #[test]
    fn uncommitted_suffix_is_discarded_on_reopen() {
        let path = tmp("uncommitted.tys");
        let mut ds = DurableStore::create(&path, DurableOptions::default()).unwrap();
        let a = ds.alloc(obj(1)).unwrap();
        ds.commit().unwrap();
        let committed = snapshot::to_bytes(&ds.store);
        // Logged but never committed; force the bytes to disk so only
        // the missing Commit marker separates them from durability.
        ds.alloc(obj(2)).unwrap();
        ds.free(a).unwrap();
        ds.wal.flush(true).unwrap();
        drop(ds);
        let (back, report) = DurableStore::open(&path, DurableOptions::default()).unwrap();
        assert_eq!(report.redo_commits, 1);
        assert_eq!(report.discarded_records, 2);
        assert_eq!(snapshot::to_bytes(&back.store), committed);
    }

    #[test]
    fn checkpoint_truncates_log_and_reopen_needs_no_redo() {
        let path = tmp("checkpoint.tys");
        let mut ds = DurableStore::create(&path, DurableOptions::default()).unwrap();
        for i in 0..10 {
            ds.alloc(obj(i)).unwrap();
            ds.commit().unwrap();
        }
        ds.checkpoint().unwrap();
        let expected = snapshot::to_bytes(&ds.store);
        let scan = Wal::scan(wal_path(&path)).unwrap();
        assert!(scan.records.is_empty(), "checkpoint emptied the log");
        drop(ds);
        let (back, report) = DurableStore::open(&path, DurableOptions::default()).unwrap();
        assert_eq!(report.redo_records, 0);
        assert_eq!(snapshot::to_bytes(&back.store), expected);
    }

    #[test]
    fn auto_checkpoint_fires_every_n_commits() {
        let path = tmp("auto.tys");
        let opts = DurableOptions {
            sync: SyncPolicy::Always,
            checkpoint_every: 3,
        };
        let mut ds = DurableStore::create(&path, opts).unwrap();
        for i in 0..7 {
            ds.alloc(obj(i)).unwrap();
            ds.commit().unwrap();
        }
        // 7 commits → checkpoints after the 3rd and 6th; one commit since.
        let scan = Wal::scan(wal_path(&path)).unwrap();
        assert_eq!(scan.commits, 1);
        drop(ds);
        let (back, report) = DurableStore::open(&path, opts).unwrap();
        assert_eq!(report.redo_commits, 1);
        assert_eq!(back.store().live(), 7);
    }

    #[test]
    fn stale_log_is_discarded_not_replayed() {
        let path = tmp("stale.tys");
        let mut ds = DurableStore::create(&path, DurableOptions::default()).unwrap();
        let a = ds.alloc(obj(1)).unwrap();
        ds.commit().unwrap();
        drop(ds);
        // Rewrite the image out-of-band (as an older tool might): the log
        // header now names an image that no longer exists.
        let mut s = Store::new();
        s.alloc(obj(99));
        snapshot::save(&s, &path).unwrap();
        let (back, report) = DurableStore::open(&path, DurableOptions::default()).unwrap();
        assert!(report.stale_log);
        assert_eq!(report.redo_records, 0);
        assert_eq!(report.discarded_records, 2);
        assert_eq!(
            back.store().get(a).unwrap(),
            &obj(99),
            "the out-of-band image wins; the stale log never replays onto it"
        );
    }

    #[test]
    fn gc_through_the_log_survives_reopen() {
        let path = tmp("gc.tys");
        let mut ds = DurableStore::create(&path, DurableOptions::default()).unwrap();
        let keep = ds.alloc(obj(1)).unwrap();
        let _garbage = ds.alloc(obj(2)).unwrap();
        let _more = ds.alloc(obj(3)).unwrap();
        ds.set_root("keep", keep).unwrap();
        ds.commit().unwrap();
        let stats = ds.collect(&[]).unwrap();
        assert_eq!(stats.freed, 2);
        ds.commit().unwrap();
        let expected = snapshot::to_bytes(&ds.store);
        drop(ds);
        let (back, _) = DurableStore::open(&path, DurableOptions::default()).unwrap();
        assert_eq!(snapshot::to_bytes(&back.store), expected);
        assert_eq!(back.store().live(), 1);
    }

    #[test]
    fn append_failure_wedges_until_reopen() {
        use crate::failpoint::{Action, FailSpec, ScopedFailpoints};
        let path = tmp("wedged.tys");
        let mut ds = DurableStore::create(&path, DurableOptions::default()).unwrap();
        ds.alloc(obj(1)).unwrap();
        ds.commit().unwrap();
        // Key the spec to this store's log so concurrent tests passing
        // through wal.append are untouched.
        let wal_key = crate::cache::hash_bytes(wal_path(&path).as_os_str().as_encoded_bytes());
        let _fp =
            ScopedFailpoints::new(&[("wal.append", FailSpec::always(Action::Io).for_key(wal_key))]);
        assert!(ds.alloc(obj(2)).is_err());
        assert!(ds.is_wedged());
        assert!(ds.commit().is_err(), "wedged store refuses commits");
        drop(_fp);
        drop(ds);
        let (back, report) = DurableStore::open(&path, DurableOptions::default()).unwrap();
        assert_eq!(report.redo_commits, 1);
        assert_eq!(back.store().live(), 1, "the failed alloc never committed");
    }

    #[test]
    fn cache_contents_survive_checkpoint_and_reopen() {
        use crate::cache::{CacheEntry, CacheKey};
        let path = tmp("cache.tys");
        let mut ds = DurableStore::create(&path, DurableOptions::default()).unwrap();
        let a = ds.alloc(obj(1)).unwrap();
        ds.commit().unwrap();
        let key = CacheKey {
            ptml_hash: 11,
            binding_sig: 22,
        };
        ds.store_mut_unlogged().cache_insert(
            key,
            CacheEntry {
                observed: vec![(a, 0)],
                ptml: vec![1, 2],
                code: vec![3, 4],
                captures: vec![],
                size_before: 10,
                size_after: 4,
                inlined: 1,
                tick: 0,
            },
        );
        // Cache state is unlogged (it is derived data) but the checkpoint
        // image captures it.
        ds.checkpoint().unwrap();
        drop(ds);
        let (mut back, _) = DurableStore::open(&path, DurableOptions::default()).unwrap();
        assert!(back.store_mut_unlogged().cache_lookup(key).is_some());
    }
}
