//! The durable store: a [`Store`] whose mutations are write-ahead logged,
//! with periodic checkpoints onto paged object storage.
//!
//! This is the persistence architecture ROADMAP item 1 called for, now in
//! its paged form: the on-disk image is a small **TYCAT1 catalog**
//! ([`crate::paged`]) addressing object records on slotted pages, so a
//! checkpoint flushes only the records dirtied since the previous one
//! plus one atomic catalog write — not the whole image. Individual
//! mutations still cost only an appended redo record plus a
//! (group-committed) fsync.
//!
//! ## Commit protocol
//!
//! Every mutating method applies the change to the in-memory [`Store`],
//! marks the touched object dirty, and appends a redo record carrying the
//! full post-image. [`commit`] appends a `Commit` marker and syncs per
//! the [`SyncPolicy`]. Redo records replay through the *same* store entry
//! points the original mutations used, so version counters advance
//! identically — which is what makes recovery byte-identical
//! (`snapshot::to_bytes` re-serializes the recovered store to exactly the
//! bytes of the lost one).
//!
//! ## The store-access seam
//!
//! [`DurableStore`] implements [`StoreAccess`], the narrow trait the
//! session, VM host hooks, optimizer and query externs mutate through.
//! The inherent methods keep their `std::io::Result` shape for direct
//! callers; the trait impl carries the same logic with typed
//! [`StoreError`]s, so VM semantics (bounds → TML exception, …) are
//! identical on both backends. The [`StoreAccess::base_mut_unlogged`]
//! escape hatch flags the image as *raw-exposed*: the next checkpoint
//! degrades from a dirty-record flush to a full flush so unlogged
//! mutations (code-table relinking, cache warm-up) still land on disk.
//!
//! ## Recovery
//!
//! [`DurableStore::open`]: reconstruct the store — from the TYCAT1
//! catalog + page file when present ([`paged::open_catalog`]'s
//! primary → backup → tmp cascade), or from a legacy TYSTO whole-image
//! snapshot ([`snapshot::load_with_recovery`]), which is migrated to the
//! paged layout on the spot — then scan the log and decide:
//!
//! * the loaded image's file identity matches the log header → replay the
//!   committed prefix (marking replayed objects dirty so the next
//!   checkpoint persists them), resume appending after it;
//! * mismatch, unreadable header, damaged (salvaged) image → the log
//!   cannot be trusted on this base: discard it and take an immediate
//!   checkpoint to heal the on-disk state.
//!
//! The identity check is what makes the checkpoint crash windows safe: a
//! crash *before* the catalog rename leaves the old catalog (matching log
//! → replay) whose pages are untouched — checkpoints write records into
//! fresh pages only — while a crash *after* the rename but before the log
//! reset leaves the new catalog (stale log → discard, and every logged
//! mutation is already inside it). Either way no committed mutation is
//! lost — the seeded failpoint matrices in `tests/wal_recovery.rs` and
//! `tests/paged_recovery.rs` drive a crash into every site and assert
//! exactly that.
//!
//! [`commit`]: DurableStore::commit

use crate::access::{StoreAccess, TxnStamp};
use crate::buffer::BufferStats;
use crate::cache::{CacheEntry, CacheKey};
use crate::gc::{self, GcStats};
use crate::object::Object;
use crate::paged::{self, PageStats, PagedHeap};
use crate::snapshot::{self, ImageIdentity, RecoveryReport};
use crate::store::{Store, StoreError};
use crate::sval::SVal;
use crate::wal::{wal_path, SyncPolicy, Wal, WalRecord};
use crate::{failpoint, StoreStats};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use tml_core::Oid;

/// Tuning for a [`DurableStore`].
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// When commits fsync the log.
    pub sync: SyncPolicy,
    /// Take a checkpoint automatically every this many commits
    /// (0 = only on explicit [`DurableStore::checkpoint`] calls).
    pub checkpoint_every: u64,
}

impl Default for DurableOptions {
    fn default() -> DurableOptions {
        DurableOptions {
            sync: SyncPolicy::Always,
            checkpoint_every: 0,
        }
    }
}

/// What [`DurableStore::open`] did to reconstruct the store.
#[derive(Debug)]
pub struct OpenReport {
    /// How the checkpoint image itself was recovered.
    pub snapshot: RecoveryReport,
    /// Redo records replayed from the log's committed prefix.
    pub redo_records: u64,
    /// Commit markers replayed.
    pub redo_commits: u64,
    /// Log records discarded: the uncommitted/torn suffix, or the whole
    /// log when it was stale for the recovered image.
    pub discarded_records: u64,
    /// The log tail was torn (recovery truncated it).
    pub torn_tail: bool,
    /// The whole log was discarded as stale (its header named a different
    /// checkpoint image than the one recovery loaded).
    pub stale_log: bool,
    /// The image was a legacy whole-image snapshot, converted to the
    /// paged TYCAT1 layout during this open.
    pub migrated_legacy: bool,
    /// Loser transactions — in flight at the crash, inside the committed
    /// prefix but without a resolution marker — rolled back during
    /// replay.
    pub losers_undone: u64,
    /// Compensating undo steps applied to roll those losers back.
    pub loser_records: u64,
}

/// A write-ahead-logged [`Store`] bound to an image path, checkpointing
/// onto paged object storage.
#[derive(Debug)]
pub struct DurableStore {
    store: Store,
    wal: Wal,
    heap: PagedHeap,
    path: PathBuf,
    opts: DurableOptions,
    commits_since_checkpoint: u64,
    wedged: bool,
    /// Objects mutated (or replayed) since the last successful
    /// checkpoint; exactly these records are flushed by the next one.
    dirty: BTreeSet<Oid>,
    /// The raw store was exposed via [`StoreAccess::base_mut_unlogged`]
    /// (or [`DurableStore::store_mut_unlogged`]): the next checkpoint must
    /// flush every record, not just the dirty set.
    raw_exposed: bool,
    /// A generation rewrite (compaction) began but its catalog never
    /// landed: the next checkpoint must rewrite everything.
    force_full: bool,
    /// Transaction stamp for subsequent logged mutations (the txn layer
    /// sets it around each operation it routes through the seam).
    stamp: Option<TxnStamp>,
    /// Open transactions pinning the log. While pinned, checkpoints are
    /// refused/deferred: truncating the log would durably apply
    /// uncommitted operations with no undo records left to roll them
    /// back. GC is refused for the same reason (it could free objects a
    /// rollback still needs).
    txn_pins: u64,
}

fn path_key(path: &Path) -> u64 {
    crate::cache::hash_bytes(path.as_os_str().as_encoded_bytes())
}

fn io_to_store(e: std::io::Error) -> StoreError {
    StoreError::Io(e.to_string())
}

fn store_to_io(e: StoreError) -> std::io::Error {
    match e {
        StoreError::Io(msg) => std::io::Error::other(msg),
        e => std::io::Error::new(std::io::ErrorKind::InvalidInput, e),
    }
}

/// Replay one redo record against a store, through the same entry points
/// the original mutation used (so version counters advance identically).
fn apply(store: &mut Store, rec: &WalRecord) -> Result<(), StoreError> {
    match rec {
        WalRecord::Alloc { oid, obj } => {
            let got = store.alloc(obj.clone());
            debug_assert_eq!(got, *oid, "redo allocation order diverged");
            Ok(())
        }
        WalRecord::Set { oid, obj } => store.set(*oid, obj.clone()),
        WalRecord::Free { oid } => {
            store.free(*oid);
            Ok(())
        }
        WalRecord::SetRoot { name, oid } => {
            store.set_root(name.clone(), *oid);
            Ok(())
        }
        WalRecord::RemoveRoot { name } => {
            store.remove_root(name);
            Ok(())
        }
        WalRecord::SetAttr { oid, key, value } => {
            store.set_attr(*oid, key.clone(), *value);
            Ok(())
        }
        WalRecord::RemoveAttr { oid, key } => {
            store.remove_attr(*oid, key);
            Ok(())
        }
        WalRecord::Commit => Ok(()),
        // Transaction wrappers: the inner mutation applies identically;
        // winner/loser bookkeeping happens in `replay_committed`.
        WalRecord::TxnOp { op, .. } => apply(store, op),
        WalRecord::TxnCommit { .. } | WalRecord::TxnAbort { .. } => Ok(()),
    }
}

/// The object a redo record touches (for dirty tracking on replay).
fn touched_oid(rec: &WalRecord) -> Option<Oid> {
    match rec {
        WalRecord::Alloc { oid, .. } | WalRecord::Set { oid, .. } | WalRecord::Free { oid } => {
            Some(*oid)
        }
        WalRecord::TxnOp { op, .. } => touched_oid(op),
        _ => None,
    }
}

/// Outcome of a txn-aware replay of a log's committed prefix.
#[derive(Debug, Default)]
struct Replay {
    redo_records: u64,
    redo_commits: u64,
    dirty: BTreeSet<Oid>,
    last_lsn: u64,
    losers: Vec<u64>,
    loser_records: u64,
}

/// Replay the committed prefix of `scan` onto `store`, ARIES-style.
///
/// Forward pass: every record applies through the same entry points the
/// original mutation used. For a forward `TxnOp` the matching undo is
/// computed against the pre-state and pushed on the transaction's undo
/// list; a compensating (`clr`) record instead retires the list's last
/// entry — CLRs are logged in exact reverse undo order at runtime, so a
/// crash mid-rollback resumes where the rollback stopped. `TxnCommit` /
/// `TxnAbort` resolve the transaction.
///
/// After the pass, unresolved (loser) transactions are rolled back by
/// applying their remaining undo lists in reverse — exactly the state a
/// runtime abort would have produced, which is what makes recovery
/// byte-identical to the committed-transaction prefix.
fn replay_committed(store: &mut Store, scan: &crate::wal::LogScan) -> std::io::Result<Replay> {
    let fail = |lsn: u64, e: StoreError| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("wal redo failed at lsn {lsn}: {e}"),
        )
    };
    let mut out = Replay::default();
    let mut active: std::collections::BTreeMap<u64, Vec<WalRecord>> =
        std::collections::BTreeMap::new();
    for (lsn, rec) in &scan.records[..scan.committed] {
        match rec {
            WalRecord::TxnOp { txn, clr, op } => {
                if *clr {
                    apply(store, op).map_err(|e| fail(*lsn, e))?;
                    if let Some(undo) = active.get_mut(txn) {
                        undo.pop();
                    }
                } else {
                    let undo = op.undo_against(store).map_err(|e| fail(*lsn, e))?;
                    apply(store, op).map_err(|e| fail(*lsn, e))?;
                    let list = active.entry(*txn).or_default();
                    if let Some(u) = undo {
                        list.push(u);
                    }
                }
                if let Some(oid) = touched_oid(op) {
                    out.dirty.insert(oid);
                }
            }
            WalRecord::TxnCommit { txn } | WalRecord::TxnAbort { txn } => {
                active.remove(txn);
            }
            _ => {
                apply(store, rec).map_err(|e| fail(*lsn, e))?;
                if let Some(oid) = touched_oid(rec) {
                    out.dirty.insert(oid);
                }
            }
        }
        out.redo_records += 1;
        if *rec == WalRecord::Commit {
            out.redo_commits += 1;
        }
        out.last_lsn = *lsn;
    }
    // Ascending txn id: open transactions hold disjoint locks, so their
    // rollbacks commute and any fixed order is deterministic.
    for (txn, undo) in active {
        for rec in undo.iter().rev() {
            apply(store, rec).map_err(|e| fail(0, e))?;
            if let Some(oid) = touched_oid(rec) {
                out.dirty.insert(oid);
            }
            out.loser_records += 1;
        }
        if tml_trace::enabled() {
            tml_trace::count("txn.recovered_aborts", 1);
            tml_trace::record(tml_trace::Event::Txn {
                op: "recover-abort",
                txn,
                n: undo.len() as u64,
                micros: 0,
            });
        }
        out.losers.push(txn);
    }
    Ok(out)
}

/// `true` when the file at `path` starts with a legacy whole-image magic
/// (TYSTO2/TYSTO3).
fn sniff_legacy(path: &Path) -> bool {
    use std::io::Read;
    let mut magic = [0u8; 5];
    match std::fs::File::open(path) {
        Ok(mut f) => f.read_exact(&mut magic).is_ok() && &magic == b"TYSTO",
        Err(_) => false,
    }
}

impl DurableStore {
    /// Create a fresh durable store at `path`: writes an empty catalog,
    /// an empty page file and an empty log.
    pub fn create(path: impl AsRef<Path>, opts: DurableOptions) -> std::io::Result<DurableStore> {
        DurableStore::from_store(Store::new(), path, opts)
    }

    /// Adopt an existing in-memory store, checkpointing it to `path`
    /// immediately so the on-disk state starts consistent.
    pub fn from_store(
        store: Store,
        path: impl AsRef<Path>,
        opts: DurableOptions,
    ) -> std::io::Result<DurableStore> {
        let path = path.as_ref().to_path_buf();
        let mut heap = PagedHeap::create(&path)?;
        write_all_records(&mut heap, &store)?;
        heap.flush()?;
        let identity = heap.save_catalog(&store)?;
        let wal = Wal::create(wal_path(&path), identity)?.with_policy(opts.sync);
        Ok(DurableStore {
            store,
            wal,
            heap,
            path,
            opts,
            commits_since_checkpoint: 0,
            wedged: false,
            dirty: BTreeSet::new(),
            raw_exposed: false,
            force_full: false,
            stamp: None,
            txn_pins: 0,
        })
    }

    /// Open the durable store at `path`: recover the checkpoint image
    /// (paged catalog, or legacy snapshot — migrated), replay the log's
    /// committed prefix, and resume.
    pub fn open(
        path: impl AsRef<Path>,
        opts: DurableOptions,
    ) -> std::io::Result<(DurableStore, OpenReport)> {
        let path = path.as_ref().to_path_buf();
        let t0 = if tml_trace::enabled() {
            tml_trace::global().clock().now_ns()
        } else {
            0
        };
        // A readable legacy image at the primary path wins over any paged
        // state its siblings may hold: an out-of-band `snapshot::save`
        // rotated the live catalog to `.bak`, and the writer's intent was
        // to replace the image.
        if !sniff_legacy(&path) {
            if let Some(opened) = paged::open_catalog(&path)? {
                return DurableStore::open_paged(opened, path, opts, t0);
            }
        }
        DurableStore::open_legacy(path, opts, t0)
    }

    /// Open from a decoded TYCAT1 catalog + page file.
    fn open_paged(
        opened: paged::OpenedCatalog,
        path: PathBuf,
        opts: DurableOptions,
        t0: u64,
    ) -> std::io::Result<(DurableStore, OpenReport)> {
        let paged::OpenedCatalog {
            heap,
            mut store,
            identity,
            source,
        } = opened;
        let wpath = wal_path(&path);
        let scan = Wal::scan(&wpath)?;
        let log_usable = scan.exists && scan.base == Some(identity);
        let mut report = OpenReport {
            snapshot: RecoveryReport {
                source,
                primary_error: None,
                dropped_objects: 0,
                dropped_roots: 0,
                dropped_sections: false,
            },
            redo_records: 0,
            redo_commits: 0,
            discarded_records: 0,
            torn_tail: scan.torn_tail,
            stale_log: false,
            migrated_legacy: false,
            losers_undone: 0,
            loser_records: 0,
        };
        if log_usable {
            let replay = replay_committed(&mut store, &scan)?;
            report.redo_records = replay.redo_records;
            report.redo_commits = replay.redo_commits;
            report.losers_undone = replay.losers.len() as u64;
            report.loser_records = replay.loser_records;
            report.discarded_records = (scan.records.len() - scan.committed) as u64;
            if tml_trace::enabled() {
                tml_trace::count("store.wal.redo_records", report.redo_records);
                tml_trace::count("store.wal.redo_discarded", report.discarded_records);
                let rec = tml_trace::global();
                tml_trace::record(tml_trace::Event::Wal {
                    op: "redo",
                    lsn: replay.last_lsn,
                    bytes: scan.committed_end,
                    records: report.redo_records,
                    micros: rec.clock().now_ns().saturating_sub(t0) / 1_000,
                });
            }
            let wal = Wal::resume(&wpath, &scan)?.with_policy(opts.sync);
            let mut ds = DurableStore {
                store,
                wal,
                heap,
                path,
                opts,
                commits_since_checkpoint: report.redo_commits,
                wedged: false,
                dirty: replay.dirty,
                raw_exposed: false,
                force_full: false,
                stamp: None,
                txn_pins: 0,
            };
            if report.losers_undone > 0 {
                // Heal: the loser rollback happened in memory only. A
                // checkpoint consolidates it and empties the log, so the
                // unresolved transaction ids cannot collide with ids a
                // restarted transaction manager hands out, and a re-crash
                // before any new mutation recovers from a clean image.
                ds.checkpoint()?;
            } else {
                ds.maybe_auto_checkpoint()?;
            }
            return Ok((ds, report));
        }
        // No usable log: stale for this catalog, headerless, or absent.
        // The pages already hold every record the catalog references, so
        // healing is just a fresh catalog at the primary path (normalizing
        // a backup/tmp source) plus an empty log bound to it.
        report.stale_log = scan.exists && scan.base != Some(identity);
        report.discarded_records = scan.records.len() as u64;
        trace_discard(&scan, report.discarded_records, t0);
        let mut heap = heap;
        let identity = heap.save_catalog(&store)?;
        let wal = Wal::create(&wpath, identity)?.with_policy(opts.sync);
        Ok((
            DurableStore {
                store,
                wal,
                heap,
                path,
                opts,
                commits_since_checkpoint: 0,
                wedged: false,
                dirty: BTreeSet::new(),
                raw_exposed: false,
                force_full: false,
                stamp: None,
                txn_pins: 0,
            },
            report,
        ))
    }

    /// Open from a legacy whole-image snapshot, replay the log against
    /// it, and migrate the result to the paged layout (a full paged
    /// checkpoint with a fresh log).
    fn open_legacy(
        path: PathBuf,
        opts: DurableOptions,
        t0: u64,
    ) -> std::io::Result<(DurableStore, OpenReport)> {
        let (mut store, snap_report) = snapshot::load_with_recovery(&path)?;
        let wpath = wal_path(&path);
        let scan = Wal::scan(&wpath)?;
        let loaded_identity = recovered_image_identity(&path, &snap_report);
        let log_usable = scan.exists && scan.base.is_some() && scan.base == loaded_identity;
        let mut report = OpenReport {
            snapshot: snap_report,
            redo_records: 0,
            redo_commits: 0,
            discarded_records: 0,
            torn_tail: scan.torn_tail,
            stale_log: false,
            migrated_legacy: true,
            losers_undone: 0,
            loser_records: 0,
        };
        if log_usable {
            // Redo is infallible on the base it was logged against; a
            // failure here means the identity check let a wrong base
            // through, which is a bug worth surfacing loudly.
            let replay = replay_committed(&mut store, &scan)?;
            report.redo_records = replay.redo_records;
            report.redo_commits = replay.redo_commits;
            report.losers_undone = replay.losers.len() as u64;
            report.loser_records = replay.loser_records;
            report.discarded_records = (scan.records.len() - scan.committed) as u64;
            if tml_trace::enabled() {
                tml_trace::count("store.wal.redo_records", report.redo_records);
                tml_trace::count("store.wal.redo_discarded", report.discarded_records);
                let rec = tml_trace::global();
                tml_trace::record(tml_trace::Event::Wal {
                    op: "redo",
                    lsn: replay.last_lsn,
                    bytes: scan.committed_end,
                    records: report.redo_records,
                    micros: rec.clock().now_ns().saturating_sub(t0) / 1_000,
                });
            }
        } else {
            report.stale_log = scan.exists && scan.base != loaded_identity;
            report.discarded_records = scan.records.len() as u64;
            trace_discard(&scan, report.discarded_records, t0);
        }
        // Migration: a full paged checkpoint of the replayed store, with a
        // fresh log bound to the new catalog (the replayed records are
        // inside it, so nothing is lost by not resuming the old log).
        let ds = DurableStore::from_store(store, path, opts)?;
        Ok((ds, report))
    }

    /// The image path this store persists to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Read view of the underlying store.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Escape hatch: mutate the underlying store *without* logging. Any
    /// change made through this view is volatile until the next
    /// checkpoint — which degrades to a full flush, because the dirty set
    /// no longer covers what changed. Used for transient state (cache
    /// warm-up, code-table relinking) that redo can always re-derive.
    pub fn store_mut_unlogged(&mut self) -> &mut Store {
        self.raw_exposed = true;
        &mut self.store
    }

    /// Consume the wrapper, keeping the in-memory store (no checkpoint).
    pub fn into_store(self) -> Store {
        self.store
    }

    /// Statistics of the underlying store.
    pub fn stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Log-side totals since open.
    pub fn wal_stats(&self) -> crate::wal::WalStats {
        self.wal.stats()
    }

    /// Page-side footprint of the paged heap.
    pub fn page_stats(&self) -> PageStats {
        self.heap.stats()
    }

    /// Cumulative buffer-pool counters (across compactions).
    pub fn buffer_stats(&self) -> BufferStats {
        self.heap.buffer_stats()
    }

    /// Objects currently dirty (to be flushed by the next checkpoint).
    pub fn dirty_records(&self) -> usize {
        self.dirty.len()
    }

    /// Publish `store.page.*` / `store.buffer.*` gauges to the global
    /// trace recorder (next to [`Store::publish_counters`]).
    pub fn publish_page_counters(&self) {
        if !tml_trace::enabled() {
            return;
        }
        let g = tml_trace::global();
        let p = self.heap.stats();
        g.counter("store.page.gen").set(p.gen);
        g.counter("store.page.pages").set(p.pages);
        g.counter("store.page.records").set(p.dir_entries);
        g.counter("store.page.chains").set(p.chains);
        g.counter("store.page.live_bytes").set(p.live_bytes);
        g.counter("store.page.dead_bytes").set(p.dead_bytes);
        g.counter("store.page.dirty").set(self.dirty.len() as u64);
        let b = self.buffer_stats();
        g.counter("store.buffer.resident").set(p.resident);
        g.counter("store.buffer.hits").set(b.hits);
        g.counter("store.buffer.misses").set(b.misses);
        g.counter("store.buffer.evictions").set(b.evictions);
        g.counter("store.buffer.writebacks").set(b.writebacks);
    }

    /// `true` once an append failed: in-memory and durable state may have
    /// diverged, so further logged mutations are refused. Reopen to heal.
    pub fn is_wedged(&self) -> bool {
        self.wedged
    }

    fn guard(&self) -> std::io::Result<()> {
        if self.wedged {
            return Err(std::io::Error::other(
                "durable store is wedged after an append failure; reopen to recover",
            ));
        }
        Ok(())
    }

    fn log(&mut self, rec: WalRecord) -> std::io::Result<()> {
        // An active transaction stamp wraps the record so recovery can
        // tell winners from losers; unstamped records stay byte-identical
        // to the pre-transaction format.
        let rec = match self.stamp {
            Some(s) => WalRecord::TxnOp {
                txn: s.txn,
                clr: s.clr,
                op: Box::new(rec),
            },
            None => rec,
        };
        match self.wal.append(&rec) {
            Ok(_) => Ok(()),
            Err(e) => {
                self.wedged = true;
                Err(e)
            }
        }
    }

    fn guard_s(&self) -> Result<(), StoreError> {
        self.guard().map_err(io_to_store)
    }

    fn log_s(&mut self, rec: WalRecord) -> Result<(), StoreError> {
        self.log(rec).map_err(io_to_store)
    }

    // -- Logged mutations (typed-error core; the pub inherent methods and
    //    the StoreAccess impl both delegate here) ------------------------

    fn do_alloc(&mut self, obj: Object) -> Result<Oid, StoreError> {
        self.guard_s()?;
        let oid = self.store.alloc(obj.clone());
        self.dirty.insert(oid);
        self.log_s(WalRecord::Alloc { oid, obj })?;
        Ok(oid)
    }

    fn do_set(&mut self, oid: Oid, obj: Object) -> Result<(), StoreError> {
        self.guard_s()?;
        self.store.set(oid, obj.clone())?;
        self.dirty.insert(oid);
        self.log_s(WalRecord::Set { oid, obj })
    }

    fn do_free(&mut self, oid: Oid) -> Result<(), StoreError> {
        self.guard_s()?;
        self.store.free(oid);
        self.dirty.insert(oid);
        self.log_s(WalRecord::Free { oid })
    }

    fn do_set_root(&mut self, name: &str, oid: Oid) -> Result<(), StoreError> {
        self.guard_s()?;
        self.store.set_root(name.to_string(), oid);
        self.log_s(WalRecord::SetRoot {
            name: name.to_string(),
            oid,
        })
    }

    fn do_remove_root(&mut self, name: &str) -> Result<Option<Oid>, StoreError> {
        self.guard_s()?;
        let prev = self.store.remove_root(name);
        self.log_s(WalRecord::RemoveRoot {
            name: name.to_string(),
        })?;
        Ok(prev)
    }

    fn do_set_attr(&mut self, oid: Oid, key: &str, value: i64) -> Result<(), StoreError> {
        self.guard_s()?;
        self.store.set_attr(oid, key.to_string(), value);
        self.log_s(WalRecord::SetAttr {
            oid,
            key: key.to_string(),
            value,
        })
    }

    fn do_remove_attr(&mut self, oid: Oid, key: &str) -> Result<Option<i64>, StoreError> {
        self.guard_s()?;
        let prev = self.store.remove_attr(oid, key);
        self.log_s(WalRecord::RemoveAttr {
            oid,
            key: key.to_string(),
        })?;
        Ok(prev)
    }

    /// Log the full post-image of an in-place mutation (replay's `Set`
    /// bumps the version exactly once, matching the original `get_mut`).
    fn log_post_image(&mut self, oid: Oid) -> Result<(), StoreError> {
        let obj = self.store.get(oid)?.clone();
        self.dirty.insert(oid);
        self.log_s(WalRecord::Set { oid, obj })
    }

    fn do_array_set(&mut self, oid: Oid, index: i64, value: SVal) -> Result<(), StoreError> {
        self.guard_s()?;
        self.store.array_set(oid, index, value)?;
        self.log_post_image(oid)
    }

    fn do_bytes_set(&mut self, oid: Oid, index: i64, value: u8) -> Result<(), StoreError> {
        self.guard_s()?;
        self.store.bytes_set(oid, index, value)?;
        self.log_post_image(oid)
    }

    fn do_mutate(
        &mut self,
        oid: Oid,
        f: &mut dyn FnMut(&mut Object) -> Result<(), StoreError>,
    ) -> Result<(), StoreError> {
        self.guard_s()?;
        let result = f(self.store.get_mut(oid)?);
        // Log the post-image even when the closure reports failure: it ran
        // on the live object, so memory and log must not diverge.
        self.log_post_image(oid)?;
        result
    }

    fn do_collect(&mut self, extra_roots: &[Oid]) -> Result<GcStats, StoreError> {
        self.guard_s()?;
        if self.txn_pins > 0 {
            // GC could reclaim objects an open transaction allocated (not
            // yet reachable from a root) — its rollback would then undo a
            // free'd slot. Collection is an autocommit/quiesced operation.
            return Err(StoreError::Io(
                "garbage collection with open transactions".into(),
            ));
        }
        let live_before: Vec<Oid> = self.store.iter().map(|(oid, _)| oid).collect();
        let stats = gc::collect(&mut self.store, extra_roots);
        for oid in live_before {
            if self.store.get(oid).is_err() {
                self.dirty.insert(oid);
                self.log_s(WalRecord::Free { oid })?;
            }
        }
        Ok(stats)
    }

    // -- Public io-flavored surface (pre-seam callers, CLI, tests) -------

    /// Allocate an object (logged).
    pub fn alloc(&mut self, obj: Object) -> std::io::Result<Oid> {
        self.do_alloc(obj).map_err(store_to_io)
    }

    /// Overwrite an object (logged).
    pub fn set(&mut self, oid: Oid, obj: Object) -> std::io::Result<()> {
        self.do_set(oid, obj).map_err(store_to_io)
    }

    /// Free an object (logged).
    pub fn free(&mut self, oid: Oid) -> std::io::Result<()> {
        self.do_free(oid).map_err(store_to_io)
    }

    /// Set a named root (logged).
    pub fn set_root(&mut self, name: &str, oid: Oid) -> std::io::Result<()> {
        self.do_set_root(name, oid).map_err(store_to_io)
    }

    /// Remove a named root (logged).
    pub fn remove_root(&mut self, name: &str) -> std::io::Result<()> {
        self.do_remove_root(name).map(|_| ()).map_err(store_to_io)
    }

    /// Set a derived attribute (logged).
    pub fn set_attr(&mut self, oid: Oid, key: &str, value: i64) -> std::io::Result<()> {
        self.do_set_attr(oid, key, value).map_err(store_to_io)
    }

    /// In-place array store (logged as a full post-image `Set`).
    pub fn array_set(&mut self, oid: Oid, index: i64, value: SVal) -> std::io::Result<()> {
        self.do_array_set(oid, index, value).map_err(store_to_io)
    }

    /// In-place byte store (logged as a full post-image `Set`).
    pub fn bytes_set(&mut self, oid: Oid, index: i64, value: u8) -> std::io::Result<()> {
        self.do_bytes_set(oid, index, value).map_err(store_to_io)
    }

    /// Garbage-collect through the logged interface: runs [`gc::collect`]
    /// on the in-memory store and logs one `Free` per reclaimed object.
    pub fn collect(&mut self, extra_roots: &[Oid]) -> std::io::Result<GcStats> {
        self.do_collect(extra_roots).map_err(store_to_io)
    }

    /// Commit everything logged since the previous commit. Returns `true`
    /// when the commit is durably synced on return (see [`SyncPolicy`]).
    /// May take an automatic checkpoint (per `checkpoint_every`).
    pub fn commit(&mut self) -> std::io::Result<bool> {
        self.guard()?;
        let synced = match self.wal.commit() {
            Ok(s) => s,
            Err(e) => {
                self.wedged = true;
                return Err(e);
            }
        };
        self.commits_since_checkpoint += 1;
        self.maybe_auto_checkpoint()?;
        Ok(synced)
    }

    fn maybe_auto_checkpoint(&mut self) -> std::io::Result<()> {
        if self.opts.checkpoint_every > 0
            && self.commits_since_checkpoint >= self.opts.checkpoint_every
            // Deferred while transactions are open: truncating the log
            // would durably apply uncommitted ops with no undo records
            // left. `commits_since_checkpoint` keeps accumulating, so the
            // first unpinned commit takes the checkpoint.
            && self.txn_pins == 0
        {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Take a checkpoint: flush the dirty object records into fresh
    /// slotted pages, atomically replace the catalog, and truncate the
    /// log. Crash windows:
    ///
    /// * before/inside the page flush or catalog save — the old catalog
    ///   survives (or is recoverable via its backup/tmp) and its pages
    ///   were never touched (records go to fresh pages only), so its
    ///   identity still matches the untouched log and recovery replays as
    ///   if no checkpoint ran;
    /// * after the save, before/inside the log reset — the new catalog is
    ///   in place and the log is stale for it, so recovery discards the
    ///   log; every logged mutation is already inside the new catalog.
    ///
    /// A failed checkpoint keeps the dirty set, so a retry (or the next
    /// auto-checkpoint) flushes everything still pending.
    pub fn checkpoint(&mut self) -> std::io::Result<()> {
        self.guard()?;
        if self.txn_pins > 0 {
            return Err(std::io::Error::other(
                "checkpoint with open transactions would lose their undo records",
            ));
        }
        failpoint::fail_io("wal.checkpoint", path_key(&self.path))?;
        let _s = tml_trace::span!("store.wal.checkpoint");
        let t0 = if tml_trace::enabled() {
            tml_trace::global().clock().now_ns()
        } else {
            0
        };
        // Unsynced log tail first: the image we are about to write must
        // not be *ahead* of the log while the old image is still current.
        self.wal.flush(true)?;
        let identity = self.flush_pages()?;
        self.wal.reset(identity)?;
        self.dirty.clear();
        self.raw_exposed = false;
        self.commits_since_checkpoint = 0;
        if tml_trace::enabled() {
            tml_trace::count("store.wal.checkpoints", 1);
            let rec = tml_trace::global();
            tml_trace::record(tml_trace::Event::Wal {
                op: "checkpoint",
                lsn: 0,
                bytes: identity.len,
                records: 0,
                micros: rec.clock().now_ns().saturating_sub(t0) / 1_000,
            });
        }
        Ok(())
    }

    /// Write the pending records to fresh pages and save the catalog.
    /// Full flush when the raw store was exposed or a compaction is
    /// pending/triggered; dirty-set flush otherwise.
    fn flush_pages(&mut self) -> std::io::Result<ImageIdentity> {
        if self.heap.should_compact() {
            self.heap.begin_new_generation()?;
            // From here until a catalog lands, the heap directory is
            // incomplete: remember that a retry must also rewrite all.
            self.force_full = true;
        }
        if self.force_full || self.raw_exposed {
            write_all_records(&mut self.heap, &self.store)?;
        } else {
            let (heap, store) = (&mut self.heap, &self.store);
            for &oid in &self.dirty {
                match store.get(oid) {
                    Ok(obj) => {
                        let rec = PagedHeap::encode_record(obj);
                        with_pool_retry(|| heap.write_record(oid, &rec))?;
                    }
                    Err(_) => heap.remove_record(oid),
                }
            }
        }
        let heap = &mut self.heap;
        with_pool_retry(|| heap.flush())?;
        let (heap, store) = (&mut self.heap, &self.store);
        let identity = with_pool_retry(|| heap.save_catalog(store))?;
        self.force_full = false;
        Ok(identity)
    }

    /// Flush and sync the log, then checkpoint. Call before dropping when
    /// the store should land fully consolidated on disk.
    pub fn close(mut self) -> std::io::Result<()> {
        self.checkpoint()
    }
}

/// Write every slot of `store` into the heap (live → record, tombstone
/// or never-allocated → removal).
fn write_all_records(heap: &mut PagedHeap, store: &Store) -> std::io::Result<()> {
    for ix in 0..store.len() {
        let oid = Oid(ix as u64 + 1);
        match store.get(oid) {
            Ok(obj) => {
                let rec = PagedHeap::encode_record(obj);
                with_pool_retry(|| heap.write_record(oid, &rec))?;
            }
            Err(_) => heap.remove_record(oid),
        }
    }
    Ok(())
}

/// Bounded retry for transient buffer-pool exhaustion. The pool reports
/// `WouldBlock` when every frame is pinned; rather than surface that to
/// callers (who have no sensible response mid-commit), back off briefly
/// and retry — pins are short-lived, held only across single-record
/// encode/decode. After the retry budget, the final attempt's error
/// propagates unchanged.
fn with_pool_retry<T>(mut f: impl FnMut() -> std::io::Result<T>) -> std::io::Result<T> {
    const RETRIES: u32 = 8;
    let mut delay_us = 50u64;
    for _ in 0..RETRIES {
        match f() {
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if tml_trace::enabled() {
                    tml_trace::count("store.buffer.would_block", 1);
                }
                std::thread::sleep(std::time::Duration::from_micros(delay_us));
                delay_us = (delay_us * 2).min(5_000);
            }
            r => return r,
        }
    }
    f()
}

fn trace_discard(scan: &crate::wal::LogScan, discarded: u64, t0: u64) {
    if tml_trace::enabled() && scan.exists {
        tml_trace::count("store.wal.redo_discarded", discarded);
        let rec = tml_trace::global();
        tml_trace::record(tml_trace::Event::Wal {
            op: "discard",
            lsn: scan.next_lsn.saturating_sub(1),
            bytes: scan.file_bytes,
            records: discarded,
            micros: rec.clock().now_ns().saturating_sub(t0) / 1_000,
        });
    }
}

impl StoreAccess for DurableStore {
    fn base(&self) -> &Store {
        &self.store
    }

    fn base_mut_unlogged(&mut self) -> &mut Store {
        self.store_mut_unlogged()
    }

    fn alloc(&mut self, obj: Object) -> Result<Oid, StoreError> {
        self.do_alloc(obj)
    }

    fn set(&mut self, oid: Oid, obj: Object) -> Result<(), StoreError> {
        self.do_set(oid, obj)
    }

    fn free_obj(&mut self, oid: Oid) -> Result<(), StoreError> {
        self.do_free(oid)
    }

    fn mutate(
        &mut self,
        oid: Oid,
        f: &mut dyn FnMut(&mut Object) -> Result<(), StoreError>,
    ) -> Result<(), StoreError> {
        self.do_mutate(oid, f)
    }

    fn set_root(&mut self, name: &str, oid: Oid) -> Result<(), StoreError> {
        self.do_set_root(name, oid)
    }

    fn remove_root(&mut self, name: &str) -> Result<Option<Oid>, StoreError> {
        self.do_remove_root(name)
    }

    fn set_attr(&mut self, oid: Oid, key: &str, value: i64) -> Result<(), StoreError> {
        self.do_set_attr(oid, key, value)
    }

    fn remove_attr(&mut self, oid: Oid, key: &str) -> Result<Option<i64>, StoreError> {
        self.do_remove_attr(oid, key)
    }

    fn array_set(&mut self, oid: Oid, index: i64, value: SVal) -> Result<(), StoreError> {
        self.do_array_set(oid, index, value)
    }

    fn bytes_set(&mut self, oid: Oid, index: i64, value: u8) -> Result<(), StoreError> {
        self.do_bytes_set(oid, index, value)
    }

    fn collect(&mut self, extra_roots: &[Oid]) -> Result<GcStats, StoreError> {
        self.do_collect(extra_roots)
    }

    fn commit(&mut self) -> Result<bool, StoreError> {
        DurableStore::commit(self).map_err(io_to_store)
    }

    fn checkpoint(&mut self) -> Result<(), StoreError> {
        DurableStore::checkpoint(self).map_err(io_to_store)
    }

    fn txn_stamp(&mut self, stamp: Option<TxnStamp>) {
        self.stamp = stamp;
    }

    fn txn_marker(&mut self, txn: u64, committed: bool) -> Result<bool, StoreError> {
        // Markers are never themselves wrapped: clear any stamp first,
        // then append and run the normal group-commit path so the plain
        // `Commit` record remains the durability horizon.
        self.stamp = None;
        self.guard_s()?;
        self.log_s(if committed {
            WalRecord::TxnCommit { txn }
        } else {
            WalRecord::TxnAbort { txn }
        })?;
        DurableStore::commit(self).map_err(io_to_store)
    }

    fn txn_pin(&mut self) {
        self.txn_pins += 1;
    }

    fn txn_unpin(&mut self) {
        self.txn_pins = self.txn_pins.saturating_sub(1);
    }

    fn cache_lookup(&mut self, key: CacheKey) -> Option<CacheEntry> {
        // Cache traffic is derived data, fully captured by every catalog
        // save — it does not count as raw exposure.
        self.store.cache_lookup(key)
    }

    fn cache_insert(&mut self, key: CacheKey, entry: CacheEntry) {
        self.store.cache_insert(key, entry)
    }
}

/// The identity of the file that `load_with_recovery` decoded, if it
/// decoded one cleanly (salvage sources return `None`: a log must never
/// replay onto a salvaged — partially lost — base).
fn recovered_image_identity(
    path: &Path,
    report: &RecoveryReport,
) -> Option<snapshot::ImageIdentity> {
    use crate::snapshot::RecoverySource as S;
    let src = match report.source {
        S::Primary => path.to_path_buf(),
        S::Backup => snapshot::backup_path(path),
        S::Tmp => snapshot::tmp_path(path),
        S::SalvagedPrimary | S::SalvagedBackup | S::SalvagedTmp => return None,
    };
    snapshot::identity_of_file(src).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::RecoverySource;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("tml_store_durable_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        for suffix in ["", ".bak", ".tmp", ".wal"] {
            let mut q = p.as_os_str().to_os_string();
            q.push(suffix);
            std::fs::remove_file(PathBuf::from(q)).ok();
        }
        for gen in 0..16 {
            let mut q = p.as_os_str().to_os_string();
            q.push(format!(".p{gen}"));
            std::fs::remove_file(PathBuf::from(q)).ok();
        }
        p
    }

    fn obj(n: i64) -> Object {
        Object::Array(vec![SVal::Int(n)])
    }

    #[test]
    fn mutations_survive_reopen_without_checkpoint() {
        let path = tmp("basic.tys");
        let mut ds = DurableStore::create(&path, DurableOptions::default()).unwrap();
        let a = ds.alloc(obj(1)).unwrap();
        ds.set_root("main", a).unwrap();
        ds.commit().unwrap();
        let b = ds.alloc(obj(2)).unwrap();
        ds.set(b, obj(20)).unwrap();
        ds.set_attr(b, "cost", 9).unwrap();
        ds.commit().unwrap();
        let expected = snapshot::to_bytes(&ds.store);
        drop(ds); // crash: no close, no checkpoint
        let (back, report) = DurableStore::open(&path, DurableOptions::default()).unwrap();
        assert_eq!(report.snapshot.source, RecoverySource::Primary);
        assert_eq!(report.redo_commits, 2);
        assert!(!report.stale_log);
        assert!(!report.migrated_legacy, "created paged, reopened paged");
        assert_eq!(snapshot::to_bytes(&back.store), expected);
        assert_eq!(back.store().root("main"), Some(a));
        assert_eq!(back.store().attr(b, "cost"), Some(9));
    }

    #[test]
    fn uncommitted_suffix_is_discarded_on_reopen() {
        let path = tmp("uncommitted.tys");
        let mut ds = DurableStore::create(&path, DurableOptions::default()).unwrap();
        let a = ds.alloc(obj(1)).unwrap();
        ds.commit().unwrap();
        let committed = snapshot::to_bytes(&ds.store);
        // Logged but never committed; force the bytes to disk so only
        // the missing Commit marker separates them from durability.
        ds.alloc(obj(2)).unwrap();
        ds.free(a).unwrap();
        ds.wal.flush(true).unwrap();
        drop(ds);
        let (back, report) = DurableStore::open(&path, DurableOptions::default()).unwrap();
        assert_eq!(report.redo_commits, 1);
        assert_eq!(report.discarded_records, 2);
        assert_eq!(snapshot::to_bytes(&back.store), committed);
    }

    #[test]
    fn checkpoint_truncates_log_and_reopen_needs_no_redo() {
        let path = tmp("checkpoint.tys");
        let mut ds = DurableStore::create(&path, DurableOptions::default()).unwrap();
        for i in 0..10 {
            ds.alloc(obj(i)).unwrap();
            ds.commit().unwrap();
        }
        ds.checkpoint().unwrap();
        let expected = snapshot::to_bytes(&ds.store);
        let scan = Wal::scan(wal_path(&path)).unwrap();
        assert!(scan.records.is_empty(), "checkpoint emptied the log");
        drop(ds);
        let (back, report) = DurableStore::open(&path, DurableOptions::default()).unwrap();
        assert_eq!(report.redo_records, 0);
        assert_eq!(snapshot::to_bytes(&back.store), expected);
    }

    #[test]
    fn checkpoints_flush_only_the_dirty_records() {
        let path = tmp("dirty.tys");
        let mut ds = DurableStore::create(&path, DurableOptions::default()).unwrap();
        let mut oids = Vec::new();
        for i in 0..50 {
            oids.push(ds.alloc(obj(i)).unwrap());
        }
        ds.commit().unwrap();
        assert_eq!(ds.dirty_records(), 50);
        ds.checkpoint().unwrap();
        assert_eq!(ds.dirty_records(), 0);
        let pages_after_full = ds.page_stats().pages;
        // Touch one object: the next checkpoint rewrites one record.
        ds.set(oids[7], obj(700)).unwrap();
        ds.commit().unwrap();
        assert_eq!(ds.dirty_records(), 1);
        ds.checkpoint().unwrap();
        let stats = ds.page_stats();
        assert_eq!(
            stats.pages,
            pages_after_full + 1,
            "an incremental checkpoint appends one fresh page, not a rewrite"
        );
        let expected = snapshot::to_bytes(&ds.store);
        drop(ds);
        let (back, report) = DurableStore::open(&path, DurableOptions::default()).unwrap();
        assert_eq!(report.redo_records, 0);
        assert_eq!(snapshot::to_bytes(&back.store), expected);
    }

    #[test]
    fn legacy_whole_image_store_is_migrated_on_open() {
        let path = tmp("legacy.tys");
        let mut s = Store::new();
        let a = s.alloc(obj(5));
        s.set_root("main", a);
        snapshot::save(&s, &path).unwrap();
        let expected = snapshot::to_bytes(&s);
        let (back, report) = DurableStore::open(&path, DurableOptions::default()).unwrap();
        assert!(report.migrated_legacy);
        assert_eq!(snapshot::to_bytes(&back.store), expected);
        assert!(paged::is_catalog_file(&path), "image converted to TYCAT1");
        drop(back);
        let (again, report) = DurableStore::open(&path, DurableOptions::default()).unwrap();
        assert!(!report.migrated_legacy, "second open is already paged");
        assert_eq!(snapshot::to_bytes(&again.store), expected);
    }

    #[test]
    fn auto_checkpoint_fires_every_n_commits() {
        let path = tmp("auto.tys");
        let opts = DurableOptions {
            sync: SyncPolicy::Always,
            checkpoint_every: 3,
        };
        let mut ds = DurableStore::create(&path, opts).unwrap();
        for i in 0..7 {
            ds.alloc(obj(i)).unwrap();
            ds.commit().unwrap();
        }
        // 7 commits → checkpoints after the 3rd and 6th; one commit since.
        let scan = Wal::scan(wal_path(&path)).unwrap();
        assert_eq!(scan.commits, 1);
        drop(ds);
        let (back, report) = DurableStore::open(&path, opts).unwrap();
        assert_eq!(report.redo_commits, 1);
        assert_eq!(back.store().live(), 7);
    }

    #[test]
    fn stale_log_is_discarded_not_replayed() {
        let path = tmp("stale.tys");
        let mut ds = DurableStore::create(&path, DurableOptions::default()).unwrap();
        let a = ds.alloc(obj(1)).unwrap();
        ds.commit().unwrap();
        drop(ds);
        // Rewrite the image out-of-band (as an older tool might): the log
        // header now names an image that no longer exists.
        let mut s = Store::new();
        s.alloc(obj(99));
        snapshot::save(&s, &path).unwrap();
        let (back, report) = DurableStore::open(&path, DurableOptions::default()).unwrap();
        assert!(report.stale_log);
        assert_eq!(report.redo_records, 0);
        assert_eq!(report.discarded_records, 2);
        assert_eq!(
            back.store().get(a).unwrap(),
            &obj(99),
            "the out-of-band image wins; the stale log never replays onto it"
        );
    }

    #[test]
    fn gc_through_the_log_survives_reopen() {
        let path = tmp("gc.tys");
        let mut ds = DurableStore::create(&path, DurableOptions::default()).unwrap();
        let keep = ds.alloc(obj(1)).unwrap();
        let _garbage = ds.alloc(obj(2)).unwrap();
        let _more = ds.alloc(obj(3)).unwrap();
        ds.set_root("keep", keep).unwrap();
        ds.commit().unwrap();
        let stats = ds.collect(&[]).unwrap();
        assert_eq!(stats.freed, 2);
        ds.commit().unwrap();
        let expected = snapshot::to_bytes(&ds.store);
        drop(ds);
        let (back, _) = DurableStore::open(&path, DurableOptions::default()).unwrap();
        assert_eq!(snapshot::to_bytes(&back.store), expected);
        assert_eq!(back.store().live(), 1);
    }

    #[test]
    fn append_failure_wedges_until_reopen() {
        use crate::failpoint::{Action, FailSpec, ScopedFailpoints};
        let path = tmp("wedged.tys");
        let mut ds = DurableStore::create(&path, DurableOptions::default()).unwrap();
        ds.alloc(obj(1)).unwrap();
        ds.commit().unwrap();
        // Key the spec to this store's log so concurrent tests passing
        // through wal.append are untouched.
        let wal_key = crate::cache::hash_bytes(wal_path(&path).as_os_str().as_encoded_bytes());
        let _fp =
            ScopedFailpoints::new(&[("wal.append", FailSpec::always(Action::Io).for_key(wal_key))]);
        assert!(ds.alloc(obj(2)).is_err());
        assert!(ds.is_wedged());
        assert!(ds.commit().is_err(), "wedged store refuses commits");
        drop(_fp);
        drop(ds);
        let (back, report) = DurableStore::open(&path, DurableOptions::default()).unwrap();
        assert_eq!(report.redo_commits, 1);
        assert_eq!(back.store().live(), 1, "the failed alloc never committed");
    }

    #[test]
    fn cache_contents_survive_checkpoint_and_reopen() {
        use crate::cache::{CacheEntry, CacheKey};
        let path = tmp("cache.tys");
        let mut ds = DurableStore::create(&path, DurableOptions::default()).unwrap();
        let a = ds.alloc(obj(1)).unwrap();
        ds.commit().unwrap();
        let key = CacheKey {
            ptml_hash: 11,
            binding_sig: 22,
        };
        ds.store_mut_unlogged().cache_insert(
            key,
            CacheEntry {
                observed: vec![(a, 0)],
                ptml: vec![1, 2],
                code: vec![3, 4],
                captures: vec![],
                size_before: 10,
                size_after: 4,
                inlined: 1,
                tick: 0,
            },
        );
        // Cache state is unlogged (it is derived data) but the checkpoint
        // catalog captures it.
        ds.checkpoint().unwrap();
        drop(ds);
        let (mut back, _) = DurableStore::open(&path, DurableOptions::default()).unwrap();
        assert!(back.store_mut_unlogged().cache_lookup(key).is_some());
    }

    #[test]
    fn raw_exposure_degrades_the_next_checkpoint_to_a_full_flush() {
        let mut name_path = tmp("raw.tys");
        let path = std::mem::take(&mut name_path);
        let mut ds = DurableStore::create(&path, DurableOptions::default()).unwrap();
        let a = ds.alloc(obj(1)).unwrap();
        ds.commit().unwrap();
        ds.checkpoint().unwrap();
        // Unlogged mutation through the escape hatch: no WAL record, no
        // dirty mark — only the raw-exposed flag saves it.
        *ds.store_mut_unlogged().get_mut(a).unwrap() = obj(42);
        assert_eq!(ds.dirty_records(), 0);
        ds.checkpoint().unwrap();
        let expected = snapshot::to_bytes(&ds.store);
        drop(ds);
        let (back, _) = DurableStore::open(&path, DurableOptions::default()).unwrap();
        assert_eq!(
            snapshot::to_bytes(&back.store),
            expected,
            "raw-exposed checkpoint captured the unlogged mutation"
        );
        assert_eq!(back.store().get(a).unwrap(), &obj(42));
    }
}
