//! LEB128 variable-length integers, the workhorse of the PTML and snapshot
//! encodings. PTML is deliberately compact — the paper reports that even so,
//! attaching PTML to every compiled function doubles the persistent code
//! size (1.2 MB vs 600 kB for the complete Tycoon system).

/// Append `x` to `out` as unsigned LEB128.
pub fn put_u64(out: &mut Vec<u8>, mut x: u64) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append `x` as zigzag-encoded signed LEB128.
pub fn put_i64(out: &mut Vec<u8>, x: i64) {
    put_u64(out, zigzag(x));
}

/// Append a length-prefixed byte string.
pub fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    put_u64(out, bytes.len() as u64);
    out.extend_from_slice(bytes);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_bytes(out, s.as_bytes());
}

/// Zigzag-encode a signed integer.
pub fn zigzag(x: i64) -> u64 {
    ((x << 1) ^ (x >> 63)) as u64
}

/// Invert [`zigzag`].
pub fn unzigzag(x: u64) -> i64 {
    ((x >> 1) as i64) ^ -((x & 1) as i64)
}

/// Decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended in the middle of a value.
    Truncated,
    /// A varint ran longer than 10 bytes.
    Overlong,
    /// A string was not valid UTF-8.
    BadUtf8,
    /// An unknown tag byte was encountered.
    BadTag(u8),
    /// A reference (prim/var index) was out of range.
    BadIndex(u64),
    /// The input did not start with the expected magic bytes.
    BadMagic,
    /// The image checksum did not match its contents.
    BadCrc {
        /// CRC stored in the trailer.
        stored: u32,
        /// CRC computed over the body.
        computed: u32,
    },
    /// The format version byte is newer than this decoder understands.
    BadVersion(u8),
    /// A length-framed record did not consume exactly its declared size.
    Frame {
        /// Byte offset of the frame start.
        offset: usize,
        /// Declared frame length.
        declared: usize,
        /// Bytes actually consumed by the decoder.
        used: usize,
    },
    /// Nesting exceeded the decoder's depth limit.
    TooDeep {
        /// The limit that was exceeded.
        limit: usize,
    },
    /// A persisted term references a primitive by a name the decoding
    /// context's registry does not know. Carries the name so the loader
    /// can degrade the affected term instead of failing the whole image.
    UnknownPrim(String),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "truncated input"),
            DecodeError::Overlong => write!(f, "overlong varint"),
            DecodeError::BadUtf8 => write!(f, "invalid utf-8 string"),
            DecodeError::BadTag(t) => write!(f, "unknown tag byte {t:#04x}"),
            DecodeError::BadIndex(i) => write!(f, "index {i} out of range"),
            DecodeError::BadMagic => write!(f, "bad magic header"),
            DecodeError::BadCrc { stored, computed } => write!(
                f,
                "checksum mismatch: trailer {stored:#010x}, body {computed:#010x}"
            ),
            DecodeError::BadVersion(v) => write!(f, "unsupported format version {v}"),
            DecodeError::Frame {
                offset,
                declared,
                used,
            } => write!(
                f,
                "bad frame at offset {offset}: declared {declared} bytes, decoder used {used}"
            ),
            DecodeError::TooDeep { limit } => {
                write!(f, "nesting exceeds depth limit {limit}")
            }
            DecodeError::UnknownPrim(name) => {
                write!(f, "unknown primitive {name:?}")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// A cursor over an encoded byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Create a reader at offset zero.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Current offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// `true` if all input has been consumed.
    pub fn is_at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Read one byte.
    pub fn byte(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Read `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        let end = self.pos.checked_add(n).ok_or(DecodeError::Truncated)?;
        if end > self.buf.len() {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Read an unsigned LEB128 value.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        let mut x: u64 = 0;
        let mut shift = 0;
        loop {
            let b = self.byte()?;
            if shift >= 64 {
                return Err(DecodeError::Overlong);
            }
            x |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(x);
            }
            shift += 7;
        }
    }

    /// Read a zigzag-encoded signed value.
    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(unzigzag(self.u64()?))
    }

    /// `true` when all input is consumed (alias of [`Reader::is_at_end`],
    /// pairing with the length-reading `len`).
    pub fn is_empty(&self) -> bool {
        self.is_at_end()
    }

    /// Read a `usize`, failing on 32-bit overflow.
    pub fn len(&mut self) -> Result<usize, DecodeError> {
        let n = self.u64()?;
        usize::try_from(n).map_err(|_| DecodeError::BadIndex(n))
    }

    /// Read a length-prefixed byte string.
    pub fn byte_string(&mut self) -> Result<&'a [u8], DecodeError> {
        let n = self.len()?;
        self.bytes(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, DecodeError> {
        std::str::from_utf8(self.byte_string()?).map_err(|_| DecodeError::BadUtf8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_roundtrip() {
        for x in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            put_u64(&mut buf, x);
            let mut r = Reader::new(&buf);
            assert_eq!(r.u64().unwrap(), x);
            assert!(r.is_at_end());
        }
    }

    #[test]
    fn i64_roundtrip() {
        for x in [0i64, -1, 1, -64, 63, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            put_i64(&mut buf, x);
            let mut r = Reader::new(&buf);
            assert_eq!(r.i64().unwrap(), x);
        }
    }

    #[test]
    fn zigzag_is_bijective_on_samples() {
        for x in [-3i64, -2, -1, 0, 1, 2, 3, i64::MIN, i64::MAX] {
            assert_eq!(unzigzag(zigzag(x)), x);
        }
    }

    #[test]
    fn small_values_are_one_byte() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 100);
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn strings_roundtrip() {
        let mut buf = Vec::new();
        put_str(&mut buf, "complex.x");
        let mut r = Reader::new(&buf);
        assert_eq!(r.str().unwrap(), "complex.x");
    }

    #[test]
    fn truncated_input_detected() {
        let mut buf = Vec::new();
        put_u64(&mut buf, 10_000);
        buf.pop();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u64(), Err(DecodeError::Truncated));
    }

    #[test]
    fn bad_utf8_detected() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, &[0xff, 0xfe]);
        let mut r = Reader::new(&buf);
        assert_eq!(r.str(), Err(DecodeError::BadUtf8));
    }

    #[test]
    fn zigzag_boundary_values() {
        // The extremes map to the top of the unsigned range without
        // wrapping: MIN is all-ones, MAX is all-ones minus one.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(i64::MAX), u64::MAX - 1);
        assert_eq!(zigzag(i64::MIN), u64::MAX);
        assert_eq!(unzigzag(u64::MAX), i64::MIN);
        assert_eq!(unzigzag(u64::MAX - 1), i64::MAX);
        // Encoded form round-trips at exactly the 10-byte varint ceiling.
        for x in [i64::MIN, i64::MAX, i64::MIN + 1, i64::MAX - 1] {
            let mut buf = Vec::new();
            put_i64(&mut buf, x);
            assert_eq!(buf.len(), 10);
            let mut r = Reader::new(&buf);
            assert_eq!(r.i64().unwrap(), x);
            assert!(r.is_at_end());
        }
    }

    #[test]
    fn zero_length_byte_strings_roundtrip() {
        let mut buf = Vec::new();
        put_bytes(&mut buf, &[]);
        put_str(&mut buf, "");
        assert_eq!(buf, [0, 0], "empty payloads are a bare zero length");
        let mut r = Reader::new(&buf);
        assert_eq!(r.byte_string().unwrap(), &[] as &[u8]);
        assert_eq!(r.str().unwrap(), "");
        assert!(r.is_at_end());
    }

    #[test]
    fn truncated_composites_error_at_every_cut() {
        // A composite buffer: varints, a string, a byte string, a zigzag
        // extreme. Every proper prefix must produce an error through the
        // matching read sequence — never a panic, never a bogus success.
        let mut buf = Vec::new();
        put_u64(&mut buf, 300);
        put_str(&mut buf, "geom.abs");
        put_bytes(&mut buf, &[1, 2, 3]);
        put_i64(&mut buf, i64::MIN);
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            let result = r
                .u64()
                .and_then(|_| r.str().map(drop))
                .and_then(|_| r.byte_string().map(drop))
                .and_then(|_| r.i64().map(drop));
            assert_eq!(result, Err(DecodeError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn byte_string_length_exceeding_input_is_truncation_not_panic() {
        // A length prefix far past the end of input.
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::from(u32::MAX));
        let mut r = Reader::new(&buf);
        assert_eq!(r.byte_string(), Err(DecodeError::Truncated));
    }
}
