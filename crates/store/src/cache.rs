//! The persistent reflective-optimization cache.
//!
//! Reflective optimization (`tml-reflect`, paper §4.1) is expensive: it
//! decodes PTML, rebuilds the term against the current R-value bindings,
//! re-runs the optimizer and regenerates code. Its *inputs*, however, are
//! entirely persistent: the PTML blob and the closure's binding record.
//! This module memoizes the result as a derived attribute of the store —
//! "costs, savings, …" generalized to the whole optimization product —
//! so that repeating an optimization against unchanged bindings links the
//! cached code instead of recompiling. The cache is serialized into
//! snapshots ([`crate::snapshot`]) and therefore survives a store
//! save/load cycle: a warm restart re-links optimized code without ever
//! invoking the optimizer.
//!
//! ## Key derivation
//!
//! An entry is keyed by [`CacheKey`]:
//!
//! * `ptml_hash` — FNV-1a content hash of the source PTML blob;
//! * `binding_sig` — a signature of the closure's R-value bindings
//!   (identifier → value, with [`SVal::Ref`] hashed by OID), folded with a
//!   fingerprint of the optimization options in effect.
//!
//! ## Invalidation
//!
//! The key alone cannot witness *content* changes behind a binding (the
//! OID stays the same when the target object is mutated in place). Every
//! entry therefore records the store [version](crate::Store::version) of
//! each object consulted while the optimization ran (`observed`). A lookup
//! revalidates: if any observed object has since been mutated or
//! collected, the entry is dropped and counted as an invalidation.
//!
//! ## Replacement
//!
//! Entries carry a logical LRU tick updated on hit; when the cache is at
//! capacity an insert evicts the least-recently-used entry.

use crate::sval::SVal;
use std::collections::BTreeMap;
use tml_core::Oid;

/// Identity of one reflective-optimization product.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CacheKey {
    /// FNV-1a hash of the source PTML bytes.
    pub ptml_hash: u64,
    /// Signature of the R-value bindings and optimization options.
    pub binding_sig: u64,
}

/// One memoized optimization product.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// Store versions of every object consulted by the optimization, in
    /// ascending OID order. A mismatch at lookup time invalidates the
    /// entry.
    pub observed: Vec<(Oid, u64)>,
    /// The optimized PTML encoding.
    pub ptml: Vec<u8>,
    /// The compiled bytecode segment (opaque to the store; produced and
    /// consumed by the VM's code codec).
    pub code: Vec<u8>,
    /// Residual captures of the optimized procedure: name plus the binding
    /// value observed in the source closure.
    pub captures: Vec<(String, Option<SVal>)>,
    /// Tree size before optimization (derived attribute).
    pub size_before: u64,
    /// Tree size after optimization (derived attribute).
    pub size_after: u64,
    /// Call sites inlined (derived attribute).
    pub inlined: u64,
    /// LRU clock value of the last hit or insert.
    pub(crate) tick: u64,
}

impl CacheEntry {
    /// Create an entry. The LRU tick is assigned on insert.
    pub fn new(
        observed: Vec<(Oid, u64)>,
        ptml: Vec<u8>,
        code: Vec<u8>,
        captures: Vec<(String, Option<SVal>)>,
    ) -> CacheEntry {
        CacheEntry {
            observed,
            ptml,
            code,
            captures,
            size_before: 0,
            size_after: 0,
            inlined: 0,
            tick: 0,
        }
    }

    /// Attach the derived size/inlining attributes (paper §4.1: "costs,
    /// savings, …").
    pub fn with_attrs(mut self, size_before: u64, size_after: u64, inlined: u64) -> CacheEntry {
        self.size_before = size_before;
        self.size_after = size_after;
        self.inlined = inlined;
        self
    }
}

/// Hit/miss counters, reported by `tmlc info` and the E11 benchmark.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that found no usable entry (including invalidations).
    pub misses: u64,
    /// Entries dropped because an observed object changed or died.
    pub invalidations: u64,
    /// Entries evicted by the LRU policy.
    pub evictions: u64,
    /// Entries inserted.
    pub inserts: u64,
}

/// The reflective-optimization cache. Owned by [`crate::Store`]; persisted
/// in snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct OptCache {
    pub(crate) entries: BTreeMap<CacheKey, CacheEntry>,
    pub(crate) cap: usize,
    pub(crate) tick: u64,
    pub(crate) stats: CacheStats,
}

/// Default maximum number of cached optimization products.
pub const DEFAULT_CACHE_CAP: usize = 64;

impl Default for OptCache {
    fn default() -> Self {
        OptCache {
            entries: BTreeMap::new(),
            cap: DEFAULT_CACHE_CAP,
            tick: 0,
            stats: CacheStats::default(),
        }
    }
}

impl OptCache {
    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The LRU capacity.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Change the LRU capacity, evicting down to the new bound.
    pub fn set_cap(&mut self, cap: usize) {
        self.cap = cap.max(1);
        while self.entries.len() > self.cap {
            self.evict_lru();
        }
    }

    /// The counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Drop all entries (counters are kept).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterate over `(key, entry)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&CacheKey, &CacheEntry)> {
        self.entries.iter()
    }

    /// Approximate bytes held by cached PTML and code payloads.
    pub fn byte_size(&self) -> usize {
        self.entries
            .values()
            .map(|e| e.ptml.len() + e.code.len())
            .sum()
    }

    pub(crate) fn evict_lru(&mut self) {
        if let Some(key) = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.tick)
            .map(|(k, _)| *k)
        {
            self.entries.remove(&key);
            self.stats.evictions += 1;
        }
    }
}

/// Incremental FNV-1a hasher used for cache keys. Not collision-resistant
/// against adversaries — the cache is an optimization, validated by the
/// observed-version check — but stable across platforms and runs.
#[derive(Debug, Clone, Copy)]
pub struct SigHasher(u64);

impl Default for SigHasher {
    fn default() -> Self {
        SigHasher::new()
    }
}

impl SigHasher {
    /// Start a hash.
    pub fn new() -> SigHasher {
        SigHasher(0xcbf2_9ce4_8422_2325)
    }

    /// Fold in raw bytes.
    pub fn write(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    /// Fold in a 64-bit word.
    pub fn write_u64(&mut self, x: u64) -> &mut Self {
        self.write(&x.to_le_bytes())
    }

    /// The hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// FNV-1a content hash of a byte blob (PTML).
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = SigHasher::new();
    h.write(bytes);
    h.finish()
}

fn write_sval(h: &mut SigHasher, v: &SVal) {
    match v {
        SVal::Unit => {
            h.write(&[0]);
        }
        SVal::Bool(b) => {
            h.write(&[1, u8::from(*b)]);
        }
        SVal::Int(n) => {
            h.write(&[2]).write_u64(*n as u64);
        }
        SVal::Real(x) => {
            h.write(&[3]).write_u64(x.to_bits());
        }
        SVal::Char(c) => {
            h.write(&[4, *c]);
        }
        SVal::Str(s) => {
            h.write(&[5]).write_u64(s.len() as u64).write(s.as_bytes());
        }
        SVal::Ref(o) => {
            h.write(&[6]).write_u64(o.0);
        }
    }
}

/// Signature of a closure's R-value binding record: identifier → value
/// pairs, with references hashed by OID. Content versions of the referenced
/// objects are *not* part of the signature — they are validated separately
/// through [`CacheEntry::observed`].
pub fn binding_signature(bindings: &[(String, SVal)]) -> u64 {
    let mut h = SigHasher::new();
    h.write_u64(bindings.len() as u64);
    for (name, val) in bindings {
        h.write_u64(name.len() as u64).write(name.as_bytes());
        write_sval(&mut h, val);
    }
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::Object;
    use crate::store::Store;

    fn entry(deps: Vec<(Oid, u64)>) -> CacheEntry {
        CacheEntry {
            observed: deps,
            ptml: vec![1, 2, 3],
            code: vec![4, 5],
            captures: vec![("sqrt".into(), Some(SVal::Ref(Oid(9))))],
            size_before: 10,
            size_after: 4,
            inlined: 2,
            tick: 0,
        }
    }

    #[test]
    fn hash_is_content_sensitive() {
        assert_ne!(hash_bytes(b"abc"), hash_bytes(b"abd"));
        assert_eq!(hash_bytes(b""), hash_bytes(b""));
    }

    #[test]
    fn binding_signature_distinguishes_names_values_and_order() {
        let a = vec![("x".to_string(), SVal::Int(1))];
        let b = vec![("y".to_string(), SVal::Int(1))];
        let c = vec![("x".to_string(), SVal::Int(2))];
        let d = vec![
            ("x".to_string(), SVal::Int(1)),
            ("y".to_string(), SVal::Int(1)),
        ];
        assert_ne!(binding_signature(&a), binding_signature(&b));
        assert_ne!(binding_signature(&a), binding_signature(&c));
        assert_ne!(binding_signature(&a), binding_signature(&d));
        assert_eq!(binding_signature(&a), binding_signature(&a.clone()));
    }

    #[test]
    fn signature_covers_ref_oids() {
        let a = vec![("m".to_string(), SVal::Ref(Oid(3)))];
        let b = vec![("m".to_string(), SVal::Ref(Oid(4)))];
        assert_ne!(binding_signature(&a), binding_signature(&b));
    }

    #[test]
    fn lookup_hit_and_miss() {
        let mut s = Store::new();
        let o = s.alloc(Object::Array(vec![SVal::Int(1)]));
        let key = CacheKey {
            ptml_hash: 1,
            binding_sig: 2,
        };
        assert!(s.cache_lookup(key).is_none());
        s.cache_insert(key, entry(vec![(o, s.version(o))]));
        let hit = s.cache_lookup(key).expect("hit");
        assert_eq!(hit.ptml, vec![1, 2, 3]);
        let st = s.cache_stats();
        assert_eq!((st.hits, st.misses, st.inserts), (1, 1, 1));
    }

    #[test]
    fn mutation_invalidates() {
        let mut s = Store::new();
        let o = s.alloc(Object::Array(vec![SVal::Int(1)]));
        let key = CacheKey {
            ptml_hash: 7,
            binding_sig: 8,
        };
        s.cache_insert(key, entry(vec![(o, s.version(o))]));
        s.array_set(o, 0, SVal::Int(9)).unwrap();
        assert!(s.cache_lookup(key).is_none(), "stale entry must not hit");
        let st = s.cache_stats();
        assert_eq!(st.invalidations, 1);
        assert_eq!(s.cache().len(), 0, "stale entry removed");
    }

    #[test]
    fn collected_object_invalidates() {
        let mut s = Store::new();
        let o = s.alloc(Object::Array(vec![]));
        let key = CacheKey {
            ptml_hash: 1,
            binding_sig: 1,
        };
        s.cache_insert(key, entry(vec![(o, s.version(o))]));
        crate::gc::collect(&mut s, &[]);
        assert!(s.cache_lookup(key).is_none());
    }

    #[test]
    fn lru_eviction() {
        let mut s = Store::new();
        s.cache_mut().set_cap(2);
        let k = |i: u64| CacheKey {
            ptml_hash: i,
            binding_sig: 0,
        };
        s.cache_insert(k(1), entry(vec![]));
        s.cache_insert(k(2), entry(vec![]));
        // Touch entry 1 so entry 2 is the LRU victim.
        assert!(s.cache_lookup(k(1)).is_some());
        s.cache_insert(k(3), entry(vec![]));
        assert!(s.cache_lookup(k(1)).is_some());
        assert!(s.cache_lookup(k(2)).is_none(), "LRU victim evicted");
        assert!(s.cache_lookup(k(3)).is_some());
        assert_eq!(s.cache_stats().evictions, 1);
    }

    #[test]
    fn set_cap_evicts_down() {
        let mut c = OptCache::default();
        for i in 0..10 {
            c.entries.insert(
                CacheKey {
                    ptml_hash: i,
                    binding_sig: 0,
                },
                entry(vec![]),
            );
        }
        c.set_cap(3);
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().evictions, 7);
    }
}
