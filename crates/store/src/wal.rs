//! The write-ahead log: append-only, CRC-framed, LSN-stamped mutation
//! records with group commit.
//!
//! Since PR 6 the store persists incrementally: mutations append redo
//! records to `<image>.wal` and the whole-image snapshot becomes a
//! periodic *checkpoint* that truncates the log ([`crate::durable`]).
//! Recovery loads the checkpoint image (through the existing
//! primary → backup → tmp → salvage cascade) and replays the log's
//! committed prefix.
//!
//! ## File layout
//!
//! The log is laid out in [`PAGE_SIZE`] pages (see [`crate::page`]):
//!
//! ```text
//! page 0         header: magic "TYWAL1", pad u16,
//!                base image length u64 LE, base image CRC-32 u32 LE,
//!                rest zero
//! page 1..       record stream (records span pages freely)
//! ```
//!
//! The header names the **base image identity** — byte length and whole-
//! file CRC of the checkpoint image this log extends. Recovery compares it
//! against the image it actually loaded; a mismatch means the log is stale
//! (it belongs to a previous checkpoint, whose image already subsumes it)
//! and it is discarded, never replayed onto the wrong base.
//!
//! ## Record framing
//!
//! ```text
//! len u32 LE | body | crc32(body) u32 LE      len = body length, > 0
//! body = varint LSN, kind u8, payload
//! ```
//!
//! A zero `len` is never a record: it marks the end of the written stream
//! within the current page. The scan then skips to the next page boundary
//! and continues — see below — so zero padding is unambiguous.
//!
//! ## Group commit and the padding rule
//!
//! Full pages are written to the OS as they fill; the partial tail page
//! lives in memory until a flush. [`Wal::commit`] appends a `Commit`
//! record and then syncs according to the [`SyncPolicy`]: every commit
//! (`Always`), every Nth commit (`GroupCommit`), or never. After every
//! *synced* flush the log advances to a fresh page, leaving zero padding.
//! The point of the padding: **synced bytes are never rewritten**, so a
//! torn rewrite of the tail page can only damage records of the commit
//! group currently in flight, never an already-durable commit. That is
//! the whole crash-safety argument, and the `wal.flush` failpoint tears
//! real tail pages in CI to hold it to account.
//!
//! ## Scanning
//!
//! [`Wal::scan`] walks the stream (through a [`BufferPool`] over the page
//! file), validating each frame's CRC and LSN monotonicity. The committed
//! prefix ends at the last valid `Commit` record; anything between there
//! and the first invalid frame is an uncommitted (or torn) suffix, which
//! recovery discards and appends later overwrite.

use crate::buffer::BufferPool;
use crate::crc::crc32;
use crate::failpoint::{self, Action};
use crate::object::Object;
use crate::page::{Page, PageFile, PageId, PAGE_SIZE};
use crate::snapshot::{self, ImageIdentity};
use crate::store::{Store, StoreError};
use crate::varint::{put_i64, put_str, put_u64, DecodeError, Reader};
use std::path::{Path, PathBuf};
use tml_core::Oid;

const WAL_MAGIC: &[u8; 6] = b"TYWAL1";
/// Upper bound on one record body; larger lengths mark the frame torn.
const MAX_FRAME: u64 = 1 << 28;

const REC_ALLOC: u8 = 0;
const REC_SET: u8 = 1;
const REC_FREE: u8 = 2;
const REC_SET_ROOT: u8 = 3;
const REC_REMOVE_ROOT: u8 = 4;
const REC_SET_ATTR: u8 = 5;
const REC_COMMIT: u8 = 6;
const REC_TXN_OP: u8 = 7;
const REC_TXN_COMMIT: u8 = 8;
const REC_TXN_ABORT: u8 = 9;
const REC_REMOVE_ATTR: u8 = 10;

/// The sibling `<image>.wal` of a snapshot image path.
pub fn wal_path(image: impl AsRef<Path>) -> PathBuf {
    let mut p = image.as_ref().as_os_str().to_os_string();
    p.push(".wal");
    p.into()
}

fn path_key(path: &Path) -> u64 {
    crate::cache::hash_bytes(path.as_os_str().as_encoded_bytes())
}

fn page_ceil(off: u64) -> u64 {
    off.div_ceil(PAGE_SIZE as u64) * PAGE_SIZE as u64
}

/// When the log fsyncs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// fsync on every commit: nothing acknowledged is ever lost.
    Always,
    /// Coalesce: fsync once every N commits. A crash can lose up to the
    /// last N-1 acknowledged-but-unsynced commits — the classic group-
    /// commit throughput trade.
    GroupCommit(u32),
    /// Never fsync (the OS flushes when it pleases). Fastest, weakest.
    Never,
}

/// One logged mutation. `Alloc`/`Set` carry full object post-images in
/// the snapshot encoding, so redo needs no knowledge of the mutation that
/// produced them.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// An object was allocated at `oid`.
    Alloc {
        /// The allocated OID (redo asserts it matches the store's next).
        oid: Oid,
        /// The object as allocated.
        obj: Object,
    },
    /// The object at `oid` was overwritten (post-image).
    Set {
        /// Target OID.
        oid: Oid,
        /// The full object after the mutation.
        obj: Object,
    },
    /// The object at `oid` was freed.
    Free {
        /// Freed OID.
        oid: Oid,
    },
    /// A named root was set.
    SetRoot {
        /// Root name.
        name: String,
        /// Target OID.
        oid: Oid,
    },
    /// A named root was removed.
    RemoveRoot {
        /// Root name.
        name: String,
    },
    /// A derived attribute was set.
    SetAttr {
        /// Target OID.
        oid: Oid,
        /// Attribute key.
        key: String,
        /// Attribute value.
        value: i64,
    },
    /// A derived attribute was removed (the rollback image of `SetAttr`
    /// on a previously absent key).
    RemoveAttr {
        /// Target OID.
        oid: Oid,
        /// Attribute key.
        key: String,
    },
    /// Commit marker: everything since the previous marker is atomic.
    Commit,
    /// A mutation performed inside transaction `txn`. The inner record is
    /// one of the plain mutation kinds above — never another `TxnOp` or a
    /// marker. `clr` flags a *compensating* record: an undo step written
    /// by a runtime rollback, which recovery matches against the
    /// transaction's in-memory undo list (ARIES-style).
    TxnOp {
        /// Owning transaction id.
        txn: u64,
        /// Compensating (rollback) record rather than a forward mutation.
        clr: bool,
        /// The wrapped mutation.
        op: Box<WalRecord>,
    },
    /// Transaction `txn` committed: all of its `TxnOp`s are winners.
    TxnCommit {
        /// Committing transaction id.
        txn: u64,
    },
    /// Transaction `txn` finished rolling back: all of its `TxnOp`s have
    /// matching compensations and the transaction is fully undone.
    TxnAbort {
        /// Aborted transaction id.
        txn: u64,
    },
}

impl WalRecord {
    /// Short tag for diagnostics.
    pub fn kind_name(&self) -> &'static str {
        match self {
            WalRecord::Alloc { .. } => "alloc",
            WalRecord::Set { .. } => "set",
            WalRecord::Free { .. } => "free",
            WalRecord::SetRoot { .. } => "set-root",
            WalRecord::RemoveRoot { .. } => "remove-root",
            WalRecord::SetAttr { .. } => "set-attr",
            WalRecord::RemoveAttr { .. } => "remove-attr",
            WalRecord::Commit => "commit",
            WalRecord::TxnOp { .. } => "txn-op",
            WalRecord::TxnCommit { .. } => "txn-commit",
            WalRecord::TxnAbort { .. } => "txn-abort",
        }
    }

    /// The undo record for applying `self` against the *current* state of
    /// `store` (so it must be computed before the forward mutation).
    ///
    /// `None` means there is nothing to undo: root/attr removals of
    /// absent entries, markers, and `Free` — object frees are forbidden
    /// inside transactions precisely because a tombstone cannot be
    /// resurrected through the logged entry points.
    pub fn undo_against(&self, store: &Store) -> Result<Option<WalRecord>, StoreError> {
        Ok(match self {
            WalRecord::Alloc { oid, .. } => Some(undo_for_alloc(*oid)),
            WalRecord::Set { oid, .. } => Some(undo_for_set(store, *oid)?),
            WalRecord::SetRoot { name, .. } => Some(undo_for_set_root(store, name)),
            WalRecord::RemoveRoot { name } => undo_for_remove_root(store, name),
            WalRecord::SetAttr { oid, key, .. } => Some(undo_for_set_attr(store, *oid, key)),
            WalRecord::RemoveAttr { oid, key } => undo_for_remove_attr(store, *oid, key),
            WalRecord::Free { .. }
            | WalRecord::Commit
            | WalRecord::TxnOp { .. }
            | WalRecord::TxnCommit { .. }
            | WalRecord::TxnAbort { .. } => None,
        })
    }
}

/// Undo for an allocation: free the slot (it becomes a tombstone, exactly
/// as a runtime rollback leaves it).
pub fn undo_for_alloc(oid: Oid) -> WalRecord {
    WalRecord::Free { oid }
}

/// Undo for a whole-object overwrite (or in-place mutation) of `oid`: the
/// full pre-image. Must be captured *before* the mutation.
pub fn undo_for_set(store: &Store, oid: Oid) -> Result<WalRecord, StoreError> {
    Ok(WalRecord::Set {
        oid,
        obj: store.get(oid)?.clone(),
    })
}

/// Undo for setting root `name`: restore the previous binding, or remove
/// the root if it did not exist.
pub fn undo_for_set_root(store: &Store, name: &str) -> WalRecord {
    match store.root(name) {
        Some(prev) => WalRecord::SetRoot {
            name: name.to_string(),
            oid: prev,
        },
        None => WalRecord::RemoveRoot {
            name: name.to_string(),
        },
    }
}

/// Undo for removing root `name`: restore the previous binding, nothing
/// if the root was already absent.
pub fn undo_for_remove_root(store: &Store, name: &str) -> Option<WalRecord> {
    store.root(name).map(|prev| WalRecord::SetRoot {
        name: name.to_string(),
        oid: prev,
    })
}

/// Undo for setting attribute `key` on `oid`: restore the previous value,
/// or remove the attribute if it was absent.
pub fn undo_for_set_attr(store: &Store, oid: Oid, key: &str) -> WalRecord {
    match store.attr(oid, key) {
        Some(prev) => WalRecord::SetAttr {
            oid,
            key: key.to_string(),
            value: prev,
        },
        None => WalRecord::RemoveAttr {
            oid,
            key: key.to_string(),
        },
    }
}

/// Undo for removing attribute `key` on `oid`: restore the previous
/// value, nothing if it was already absent.
pub fn undo_for_remove_attr(store: &Store, oid: Oid, key: &str) -> Option<WalRecord> {
    store.attr(oid, key).map(|prev| WalRecord::SetAttr {
        oid,
        key: key.to_string(),
        value: prev,
    })
}

fn encode_op(body: &mut Vec<u8>, rec: &WalRecord) {
    match rec {
        WalRecord::Alloc { oid, obj } => {
            body.push(REC_ALLOC);
            put_u64(body, oid.0);
            snapshot::put_object(body, obj);
        }
        WalRecord::Set { oid, obj } => {
            body.push(REC_SET);
            put_u64(body, oid.0);
            snapshot::put_object(body, obj);
        }
        WalRecord::Free { oid } => {
            body.push(REC_FREE);
            put_u64(body, oid.0);
        }
        WalRecord::SetRoot { name, oid } => {
            body.push(REC_SET_ROOT);
            put_str(body, name);
            put_u64(body, oid.0);
        }
        WalRecord::RemoveRoot { name } => {
            body.push(REC_REMOVE_ROOT);
            put_str(body, name);
        }
        WalRecord::SetAttr { oid, key, value } => {
            body.push(REC_SET_ATTR);
            put_u64(body, oid.0);
            put_str(body, key);
            put_i64(body, *value);
        }
        WalRecord::RemoveAttr { oid, key } => {
            body.push(REC_REMOVE_ATTR);
            put_u64(body, oid.0);
            put_str(body, key);
        }
        WalRecord::Commit => body.push(REC_COMMIT),
        WalRecord::TxnOp { txn, clr, op } => {
            body.push(REC_TXN_OP);
            put_u64(body, *txn);
            body.push(u8::from(*clr));
            encode_op(body, op);
        }
        WalRecord::TxnCommit { txn } => {
            body.push(REC_TXN_COMMIT);
            put_u64(body, *txn);
        }
        WalRecord::TxnAbort { txn } => {
            body.push(REC_TXN_ABORT);
            put_u64(body, *txn);
        }
    }
}

fn encode_body(lsn: u64, rec: &WalRecord) -> Vec<u8> {
    let mut body = Vec::new();
    put_u64(&mut body, lsn);
    encode_op(&mut body, rec);
    body
}

/// Decode one record. `top` is false inside a `TxnOp` wrapper, where only
/// plain mutation kinds are legal — nesting and markers are rejected, so
/// adversarial bytes cannot recurse unboundedly.
fn decode_op(r: &mut Reader, top: bool) -> Result<WalRecord, DecodeError> {
    let tag = r.byte()?;
    if !top
        && matches!(
            tag,
            REC_COMMIT | REC_TXN_OP | REC_TXN_COMMIT | REC_TXN_ABORT
        )
    {
        return Err(DecodeError::BadTag(tag));
    }
    Ok(match tag {
        REC_ALLOC => WalRecord::Alloc {
            oid: Oid(r.u64()?),
            obj: snapshot::get_object(r)?,
        },
        REC_SET => WalRecord::Set {
            oid: Oid(r.u64()?),
            obj: snapshot::get_object(r)?,
        },
        REC_FREE => WalRecord::Free { oid: Oid(r.u64()?) },
        REC_SET_ROOT => WalRecord::SetRoot {
            name: r.str()?.to_string(),
            oid: Oid(r.u64()?),
        },
        REC_REMOVE_ROOT => WalRecord::RemoveRoot {
            name: r.str()?.to_string(),
        },
        REC_SET_ATTR => WalRecord::SetAttr {
            oid: Oid(r.u64()?),
            key: r.str()?.to_string(),
            value: r.i64()?,
        },
        REC_REMOVE_ATTR => WalRecord::RemoveAttr {
            oid: Oid(r.u64()?),
            key: r.str()?.to_string(),
        },
        REC_COMMIT => WalRecord::Commit,
        REC_TXN_OP => WalRecord::TxnOp {
            txn: r.u64()?,
            clr: r.byte()? != 0,
            op: Box::new(decode_op(r, false)?),
        },
        REC_TXN_COMMIT => WalRecord::TxnCommit { txn: r.u64()? },
        REC_TXN_ABORT => WalRecord::TxnAbort { txn: r.u64()? },
        t => return Err(DecodeError::BadTag(t)),
    })
}

fn decode_body(body: &[u8]) -> Result<(u64, WalRecord), DecodeError> {
    let mut r = Reader::new(body);
    let lsn = r.u64()?;
    let rec = decode_op(&mut r, true)?;
    if !r.is_at_end() {
        return Err(DecodeError::Truncated);
    }
    Ok((lsn, rec))
}

fn frame(lsn: u64, rec: &WalRecord) -> Vec<u8> {
    let body = encode_body(lsn, rec);
    let mut out = Vec::with_capacity(body.len() + 8);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    out.extend_from_slice(&crc32(&body).to_le_bytes());
    out
}

fn header_page(base: ImageIdentity) -> Page {
    let mut p = Page::new();
    let b = p.bytes_mut();
    b[..6].copy_from_slice(WAL_MAGIC);
    b[8..16].copy_from_slice(&base.len.to_le_bytes());
    b[16..20].copy_from_slice(&base.crc.to_le_bytes());
    p
}

fn parse_header(page: &Page) -> Option<ImageIdentity> {
    let b = page.bytes();
    if &b[..6] != WAL_MAGIC {
        return None;
    }
    Some(ImageIdentity {
        len: u64::from_le_bytes(b[8..16].try_into().ok()?),
        crc: u32::from_le_bytes(b[16..20].try_into().ok()?),
    })
}

/// The result of walking a log file: every decodable record, where the
/// committed prefix ends, and what state the tail was in.
#[derive(Debug)]
pub struct LogScan {
    /// Whether a log file existed at all.
    pub exists: bool,
    /// The base image identity from the header; `None` when the header is
    /// missing or unreadable (the log is then unusable).
    pub base: Option<ImageIdentity>,
    /// All validly framed records, in LSN order.
    pub records: Vec<(u64, WalRecord)>,
    /// Number of leading `records` that are covered by a `Commit` marker
    /// (the redo set; the marker itself is included in the count).
    pub committed: usize,
    /// File offset one past the last committed record's frame.
    pub committed_end: u64,
    /// The LSN to stamp on the next appended record.
    pub next_lsn: u64,
    /// `Commit` markers seen in the committed prefix.
    pub commits: u64,
    /// The stream ended on garbage (bad CRC, bad frame, non-zero padding)
    /// rather than clean zeros or EOF. Recovery truncates this tail;
    /// `tmlc fsck` reports it.
    pub torn_tail: bool,
    /// Total log file size in bytes.
    pub file_bytes: u64,
}

impl LogScan {
    fn empty() -> LogScan {
        LogScan {
            exists: false,
            base: None,
            records: Vec::new(),
            committed: 0,
            committed_end: PAGE_SIZE as u64,
            next_lsn: 1,
            commits: 0,
            torn_tail: false,
            file_bytes: 0,
        }
    }
}

/// Walk the record stream. `stream` is the file contents from page 1 on,
/// zero-padded to a page multiple. Never panics, whatever the bytes.
fn scan_stream(stream: &[u8], out: &mut LogScan) {
    let page = PAGE_SIZE as u64;
    let mut off = 0u64;
    let mut last_lsn = 0u64;
    loop {
        let at = off as usize;
        if at + 4 > stream.len() {
            break; // clean end at EOF
        }
        let len = u64::from(u32::from_le_bytes(stream[at..at + 4].try_into().unwrap()));
        if len == 0 {
            // Zeros: padding up to the next page boundary, or the end of
            // the stream. A zero length at a page start is the end (fresh
            // pages always begin with a record frame).
            if off.is_multiple_of(page) {
                if stream[at..].iter().any(|&b| b != 0) {
                    out.torn_tail = true;
                }
                break;
            }
            let next = page_ceil(off + 1);
            let pad_end = (next as usize).min(stream.len());
            if stream[at..pad_end].iter().any(|&b| b != 0) {
                out.torn_tail = true;
                break;
            }
            if next as usize >= stream.len() {
                break;
            }
            off = next;
            continue;
        }
        if len > MAX_FRAME || at + 4 + len as usize + 4 > stream.len() {
            out.torn_tail = true;
            break;
        }
        let body = &stream[at + 4..at + 4 + len as usize];
        let stored = u32::from_le_bytes(
            stream[at + 4 + len as usize..at + 8 + len as usize]
                .try_into()
                .unwrap(),
        );
        if stored != crc32(body) {
            out.torn_tail = true;
            break;
        }
        let Ok((lsn, rec)) = decode_body(body) else {
            out.torn_tail = true;
            break;
        };
        if lsn <= last_lsn {
            out.torn_tail = true;
            break;
        }
        last_lsn = lsn;
        off += 4 + len + 4;
        let is_commit = rec == WalRecord::Commit;
        out.records.push((lsn, rec));
        if is_commit {
            out.committed = out.records.len();
            out.committed_end = PAGE_SIZE as u64 + off;
            out.commits += 1;
        }
    }
    out.next_lsn = out
        .records
        .get(out.committed.wrapping_sub(1))
        .map_or(1, |(lsn, _)| lsn + 1);
}

/// Running totals the log reports to `tmlc info` via trace gauges.
#[derive(Debug, Clone, Copy, Default)]
pub struct WalStats {
    /// Records appended (commit markers included).
    pub appends: u64,
    /// Bytes of framed records appended.
    pub append_bytes: u64,
    /// Commit markers appended.
    pub commits: u64,
    /// Tail-page flushes.
    pub flushes: u64,
    /// fsyncs issued.
    pub syncs: u64,
}

/// An open write-ahead log positioned for appending.
#[derive(Debug)]
pub struct Wal {
    file: PageFile,
    key: u64,
    policy: SyncPolicy,
    /// File offset where the next appended byte lands.
    end: u64,
    /// In-memory image of the (partial) tail page.
    cur: Page,
    next_lsn: u64,
    unsynced_commits: u32,
    stats: WalStats,
}

impl Wal {
    /// Create (or reset) the log at `path`, recording `base` as the
    /// checkpoint image identity it extends. Truncates any previous
    /// contents; syncs the header before returning.
    pub fn create(path: impl AsRef<Path>, base: ImageIdentity) -> std::io::Result<Wal> {
        let path = path.as_ref();
        let key = path_key(path);
        let mut file = PageFile::open(path)?;
        file.set_len(0)?;
        file.write_page(PageId(0), &header_page(base))?;
        file.sync()?;
        Ok(Wal {
            file,
            key,
            policy: SyncPolicy::Always,
            end: PAGE_SIZE as u64,
            cur: Page::new(),
            next_lsn: 1,
            unsynced_commits: 0,
            stats: WalStats::default(),
        })
    }

    /// Reopen the log for appending after a [`Wal::scan`]: truncates the
    /// uncommitted/torn suffix and positions at a fresh page past the
    /// committed prefix.
    pub fn resume(path: impl AsRef<Path>, scan: &LogScan) -> std::io::Result<Wal> {
        let path = path.as_ref();
        let key = path_key(path);
        let mut file = PageFile::open(path)?;
        // Drop the discarded suffix physically so the next scan is clean;
        // appends resume on the next page boundary (never rewriting a
        // synced byte), with the gap reading back as zero padding.
        file.set_len(scan.committed_end)?;
        file.sync()?;
        Ok(Wal {
            file,
            key,
            policy: SyncPolicy::Always,
            end: page_ceil(scan.committed_end),
            cur: Page::new(),
            next_lsn: scan.next_lsn,
            unsynced_commits: 0,
            stats: WalStats::default(),
        })
    }

    /// Set the commit sync policy.
    pub fn with_policy(mut self, policy: SyncPolicy) -> Wal {
        self.policy = policy;
        self
    }

    /// Walk the log at `path`. Missing file → an empty scan with
    /// `exists: false`. IO errors reading the file do propagate; corrupt
    /// *contents* never error and never panic — they end the scan.
    pub fn scan(path: impl AsRef<Path>) -> std::io::Result<LogScan> {
        let path = path.as_ref();
        let mut out = LogScan::empty();
        if !path.exists() {
            return Ok(out);
        }
        out.exists = true;
        let mut file = PageFile::open(path)?;
        out.file_bytes = file.len()?;
        let npages = file.npages()?;
        // Read through a small buffer pool: the scan is the log's bulk
        // read path, and the pool's pin/eviction discipline is exactly
        // what the multi-session server will lean on.
        let mut pool = BufferPool::new(8);
        let mut read_page = |file: &mut PageFile, ix: u64| -> std::io::Result<Vec<u8>> {
            let f = pool.pin(file, PageId(ix))?;
            let bytes = pool.page(f).bytes().to_vec();
            pool.unpin(f);
            Ok(bytes)
        };
        if npages == 0 {
            return Ok(out);
        }
        let hdr = Page::from_bytes(&read_page(&mut file, 0)?);
        out.base = parse_header(&hdr);
        if out.base.is_none() {
            // No trustworthy header: nothing in the stream can be used.
            out.torn_tail = out.file_bytes > 0;
            return Ok(out);
        }
        let mut stream = Vec::with_capacity(((npages.max(1) - 1) as usize) * PAGE_SIZE);
        for ix in 1..npages {
            stream.extend_from_slice(&read_page(&mut file, ix)?);
        }
        scan_stream(&stream, &mut out);
        if tml_trace::enabled() {
            tml_trace::count("store.wal.scans", 1);
            tml_trace::count("store.wal.scan_bytes", out.file_bytes);
        }
        Ok(out)
    }

    /// The LSN the next appended record will carry.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// File offset of the next appended byte (header page included).
    pub fn end_offset(&self) -> u64 {
        self.end
    }

    /// Totals since this handle was opened.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Append one record. Full pages stream to the OS as they fill; the
    /// record is *not* durable until a synced flush (see [`Wal::commit`]).
    /// Returns the record's LSN.
    pub fn append(&mut self, rec: &WalRecord) -> std::io::Result<u64> {
        failpoint::fail_io("wal.append", self.key)?;
        // Appends are too hot for span events; they feed the latency
        // histogram directly (and only when tracing is on).
        let t0 = if tml_trace::enabled() {
            tml_trace::global().clock().now_ns()
        } else {
            0
        };
        let lsn = self.next_lsn;
        let bytes = frame(lsn, rec);
        let mut rest: &[u8] = &bytes;
        while !rest.is_empty() {
            let off = (self.end % PAGE_SIZE as u64) as usize;
            let n = (PAGE_SIZE - off).min(rest.len());
            self.cur.bytes_mut()[off..off + n].copy_from_slice(&rest[..n]);
            rest = &rest[n..];
            self.end += n as u64;
            if self.end.is_multiple_of(PAGE_SIZE as u64) {
                // Page filled: push it to the OS and start a fresh one.
                let id = PageId(self.end / PAGE_SIZE as u64 - 1);
                self.file.write_page(id, &self.cur)?;
                self.cur = Page::new();
            }
        }
        self.next_lsn += 1;
        self.stats.appends += 1;
        self.stats.append_bytes += bytes.len() as u64;
        if tml_trace::enabled() {
            tml_trace::count("store.wal.appends", 1);
            tml_trace::count("store.wal.append_bytes", bytes.len() as u64);
            let rec = tml_trace::global();
            rec.record_ns("store.wal.append", rec.clock().now_ns().saturating_sub(t0));
        }
        Ok(lsn)
    }

    /// Append a `Commit` marker and sync according to policy. Returns
    /// `true` when the commit is durable on return (synced), `false` when
    /// it rides a later group-commit flush.
    pub fn commit(&mut self) -> std::io::Result<bool> {
        self.append(&WalRecord::Commit)?;
        self.stats.commits += 1;
        self.unsynced_commits += 1;
        if tml_trace::enabled() {
            tml_trace::count("store.wal.commits", 1);
        }
        let sync = match self.policy {
            SyncPolicy::Always => true,
            SyncPolicy::GroupCommit(n) => self.unsynced_commits >= n.max(1),
            SyncPolicy::Never => false,
        };
        if sync {
            let _s = tml_trace::span!("store.wal.commit_flush");
            self.flush(true)?;
            Ok(true)
        } else if self.policy == SyncPolicy::Never {
            // Push bytes to the OS without paying for an fsync.
            self.flush(false)?;
            Ok(false)
        } else {
            Ok(false)
        }
    }

    /// Write the partial tail page to the OS and optionally fsync. After
    /// a synced flush the log advances to a fresh page (the padding rule:
    /// synced bytes are never rewritten).
    ///
    /// The `wal.flush` failpoint injects real torn writes here: the page
    /// image that reaches the disk is truncated or bit-flipped while the
    /// in-memory state stays intact, exactly like a kernel tearing a
    /// write under power loss.
    pub fn flush(&mut self, sync: bool) -> std::io::Result<()> {
        let t0 = if tml_trace::enabled() {
            tml_trace::global().clock().now_ns()
        } else {
            0
        };
        let tail = (self.end % PAGE_SIZE as u64) as usize;
        if tail != 0 {
            let id = PageId(self.end / PAGE_SIZE as u64);
            match failpoint::check("wal.flush", self.key) {
                Some((Action::Io, _)) => {
                    return Err(std::io::Error::other(
                        "failpoint wal.flush: injected IO error",
                    ));
                }
                Some((action, seed)) => {
                    let mut bytes = self.cur.bytes()[..].to_vec();
                    failpoint::apply_corruption(action, seed, &mut bytes);
                    self.file.write_page_prefix(id, &bytes)?;
                }
                None => self.file.write_page(id, &self.cur)?,
            }
        }
        self.stats.flushes += 1;
        if tml_trace::enabled() {
            tml_trace::count("store.wal.flushes", 1);
        }
        if sync {
            self.file.sync()?;
            self.stats.syncs += 1;
            let group = u64::from(self.unsynced_commits);
            self.unsynced_commits = 0;
            if tail != 0 {
                // Advance to a fresh page; the tail of the synced page
                // stays zero on disk and scans as padding.
                self.end = page_ceil(self.end);
                self.cur = Page::new();
            }
            if tml_trace::enabled() {
                tml_trace::count("store.wal.syncs", 1);
                let rec = tml_trace::global();
                tml_trace::record(tml_trace::Event::Wal {
                    op: "flush",
                    lsn: self.next_lsn.saturating_sub(1),
                    bytes: self.end,
                    records: group,
                    micros: rec.clock().now_ns().saturating_sub(t0) / 1_000,
                });
            }
        }
        Ok(())
    }

    /// Truncate everything and restart the log over a new checkpoint
    /// image. Any crash window inside the reset leaves an invalid or
    /// empty header, which recovery treats as "no log" — correct, because
    /// the checkpoint image already contains every logged mutation.
    pub fn reset(&mut self, base: ImageIdentity) -> std::io::Result<()> {
        self.file.set_len(0)?;
        self.file.write_page(PageId(0), &header_page(base))?;
        self.file.sync()?;
        self.end = PAGE_SIZE as u64;
        self.cur = Page::new();
        self.next_lsn = 1;
        self.unsynced_commits = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sval::SVal;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("tml_store_wal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(name);
        std::fs::remove_file(&p).ok();
        p
    }

    fn base() -> ImageIdentity {
        ImageIdentity { len: 123, crc: 456 }
    }

    fn obj(n: i64) -> Object {
        Object::Array(vec![SVal::Int(n)])
    }

    #[test]
    fn record_bodies_roundtrip() {
        let recs = [
            WalRecord::Alloc {
                oid: Oid(3),
                obj: obj(7),
            },
            WalRecord::Set {
                oid: Oid(9),
                obj: Object::ByteArray(vec![1, 2, 3]),
            },
            WalRecord::Free { oid: Oid(2) },
            WalRecord::SetRoot {
                name: "main".into(),
                oid: Oid(5),
            },
            WalRecord::RemoveRoot { name: "old".into() },
            WalRecord::SetAttr {
                oid: Oid(4),
                key: "cost".into(),
                value: -17,
            },
            WalRecord::RemoveAttr {
                oid: Oid(4),
                key: "cost".into(),
            },
            WalRecord::Commit,
            WalRecord::TxnOp {
                txn: 12,
                clr: false,
                op: Box::new(WalRecord::Set {
                    oid: Oid(9),
                    obj: obj(3),
                }),
            },
            WalRecord::TxnOp {
                txn: 12,
                clr: true,
                op: Box::new(WalRecord::RemoveRoot { name: "r".into() }),
            },
            WalRecord::TxnCommit { txn: 12 },
            WalRecord::TxnAbort { txn: 13 },
        ];
        for (i, rec) in recs.iter().enumerate() {
            let body = encode_body(i as u64 + 1, rec);
            let (lsn, back) = decode_body(&body).unwrap();
            assert_eq!(lsn, i as u64 + 1);
            assert_eq!(&back, rec);
        }
    }

    #[test]
    fn nested_txn_wrappers_are_rejected() {
        // A TxnOp may only wrap a plain mutation: markers and further
        // wrappers are illegal bytes, not recursion fuel.
        for inner in [
            WalRecord::Commit,
            WalRecord::TxnCommit { txn: 1 },
            WalRecord::TxnOp {
                txn: 1,
                clr: false,
                op: Box::new(WalRecord::Free { oid: Oid(1) }),
            },
        ] {
            let bad = WalRecord::TxnOp {
                txn: 2,
                clr: false,
                op: Box::new(inner),
            };
            let body = encode_body(1, &bad);
            assert!(matches!(decode_body(&body), Err(DecodeError::BadTag(_))));
        }
    }

    #[test]
    fn undo_records_invert_their_forward_ops() {
        use crate::store::Store;
        let mut s = Store::new();
        let a = s.alloc(obj(1));
        s.set_root("r", a);
        s.set_attr(a, "cost", 5);

        // Set: undo is the full pre-image.
        let fwd = WalRecord::Set {
            oid: a,
            obj: obj(2),
        };
        let undo = fwd.undo_against(&s).unwrap().unwrap();
        assert_eq!(
            undo,
            WalRecord::Set {
                oid: a,
                obj: obj(1)
            }
        );

        // SetRoot over an existing binding restores it; over a fresh name
        // it removes the root.
        let fwd = WalRecord::SetRoot {
            name: "r".into(),
            oid: Oid(99),
        };
        assert_eq!(
            fwd.undo_against(&s).unwrap().unwrap(),
            WalRecord::SetRoot {
                name: "r".into(),
                oid: a
            }
        );
        let fwd = WalRecord::SetRoot {
            name: "fresh".into(),
            oid: Oid(99),
        };
        assert_eq!(
            fwd.undo_against(&s).unwrap().unwrap(),
            WalRecord::RemoveRoot {
                name: "fresh".into()
            }
        );

        // Attr set/remove mirror the root rules.
        let fwd = WalRecord::SetAttr {
            oid: a,
            key: "cost".into(),
            value: 9,
        };
        assert_eq!(
            fwd.undo_against(&s).unwrap().unwrap(),
            WalRecord::SetAttr {
                oid: a,
                key: "cost".into(),
                value: 5
            }
        );
        let fwd = WalRecord::SetAttr {
            oid: a,
            key: "new".into(),
            value: 9,
        };
        assert_eq!(
            fwd.undo_against(&s).unwrap().unwrap(),
            WalRecord::RemoveAttr {
                oid: a,
                key: "new".into()
            }
        );
        let fwd = WalRecord::RemoveAttr {
            oid: a,
            key: "absent".into(),
        };
        assert_eq!(fwd.undo_against(&s).unwrap(), None);

        // Alloc undoes to a tombstoning free; frees themselves have no
        // undo (they are banned inside transactions).
        let fwd = WalRecord::Alloc {
            oid: Oid(7),
            obj: obj(0),
        };
        assert_eq!(
            fwd.undo_against(&s).unwrap().unwrap(),
            WalRecord::Free { oid: Oid(7) }
        );
        assert_eq!(WalRecord::Free { oid: a }.undo_against(&s).unwrap(), None);
    }

    #[test]
    fn append_scan_roundtrip_with_commit_prefix() {
        let path = tmp("roundtrip.wal");
        let mut wal = Wal::create(&path, base()).unwrap();
        wal.append(&WalRecord::Alloc {
            oid: Oid(1),
            obj: obj(1),
        })
        .unwrap();
        wal.append(&WalRecord::SetRoot {
            name: "r".into(),
            oid: Oid(1),
        })
        .unwrap();
        assert!(wal.commit().unwrap());
        // Uncommitted suffix: appended but never committed.
        wal.append(&WalRecord::Free { oid: Oid(1) }).unwrap();
        wal.flush(true).unwrap();
        let scan = Wal::scan(&path).unwrap();
        assert_eq!(scan.base, Some(base()));
        assert_eq!(scan.records.len(), 4);
        assert_eq!(scan.committed, 3, "prefix ends at the commit marker");
        assert_eq!(scan.commits, 1);
        assert!(!scan.torn_tail);
        assert_eq!(scan.next_lsn, 4);
    }

    #[test]
    fn large_records_span_pages() {
        let path = tmp("span.wal");
        let mut wal = Wal::create(&path, base()).unwrap();
        let big = Object::ByteArray((0..3 * PAGE_SIZE).map(|i| i as u8).collect());
        for i in 0..4 {
            wal.append(&WalRecord::Set {
                oid: Oid(i),
                obj: big.clone(),
            })
            .unwrap();
            wal.commit().unwrap();
        }
        let scan = Wal::scan(&path).unwrap();
        assert_eq!(scan.committed, 8);
        assert!(!scan.torn_tail);
        let back = scan
            .records
            .iter()
            .find_map(|(_, r)| match r {
                WalRecord::Set { oid, obj } if *oid == Oid(2) => Some(obj.clone()),
                _ => None,
            })
            .unwrap();
        assert_eq!(back, big);
    }

    #[test]
    fn resume_continues_after_committed_prefix() {
        let path = tmp("resume.wal");
        let mut wal = Wal::create(&path, base()).unwrap();
        wal.append(&WalRecord::Alloc {
            oid: Oid(1),
            obj: obj(1),
        })
        .unwrap();
        wal.commit().unwrap();
        drop(wal);
        let scan = Wal::scan(&path).unwrap();
        let mut wal = Wal::resume(&path, &scan).unwrap();
        assert_eq!(wal.next_lsn(), scan.next_lsn);
        wal.append(&WalRecord::SetRoot {
            name: "r".into(),
            oid: Oid(1),
        })
        .unwrap();
        wal.commit().unwrap();
        let scan2 = Wal::scan(&path).unwrap();
        assert_eq!(scan2.committed, 4);
        assert_eq!(scan2.commits, 2);
        assert!(!scan2.torn_tail);
    }

    #[test]
    fn torn_tail_is_detected_and_resume_truncates_it() {
        let path = tmp("torn.wal");
        let mut wal = Wal::create(&path, base()).unwrap();
        wal.append(&WalRecord::Alloc {
            oid: Oid(1),
            obj: obj(1),
        })
        .unwrap();
        wal.commit().unwrap();
        let committed_len = std::fs::metadata(&path).unwrap().len();
        drop(wal);
        // A torn append: frame header promising more bytes than exist.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        // The committed page was padded; garbage starts on the next page.
        f.write_all(&vec![
            0u8;
            (page_ceil(committed_len) - committed_len) as usize
        ])
        .unwrap();
        f.write_all(&500u32.to_le_bytes()).unwrap();
        f.write_all(&[0xab; 20]).unwrap();
        drop(f);
        let scan = Wal::scan(&path).unwrap();
        assert!(scan.torn_tail);
        assert_eq!(scan.committed, 2, "committed prefix unaffected");
        let mut wal = Wal::resume(&path, &scan).unwrap();
        wal.append(&WalRecord::Free { oid: Oid(1) }).unwrap();
        wal.commit().unwrap();
        let scan2 = Wal::scan(&path).unwrap();
        assert!(!scan2.torn_tail, "resume truncated the torn tail");
        assert_eq!(scan2.committed, 4);
    }

    #[test]
    fn group_commit_syncs_every_nth() {
        let path = tmp("group.wal");
        let mut wal = Wal::create(&path, base())
            .unwrap()
            .with_policy(SyncPolicy::GroupCommit(3));
        let mut synced = Vec::new();
        for i in 0..7 {
            wal.append(&WalRecord::Free { oid: Oid(i) }).unwrap();
            synced.push(wal.commit().unwrap());
        }
        assert_eq!(
            synced,
            vec![false, false, true, false, false, true, false],
            "every third commit syncs"
        );
        assert_eq!(wal.stats().syncs, 2);
        assert_eq!(wal.stats().commits, 7);
    }

    #[test]
    fn reset_truncates_and_rewrites_header() {
        let path = tmp("reset.wal");
        let mut wal = Wal::create(&path, base()).unwrap();
        for i in 0..10 {
            wal.append(&WalRecord::Free { oid: Oid(i) }).unwrap();
            wal.commit().unwrap();
        }
        let new_base = ImageIdentity { len: 777, crc: 888 };
        wal.reset(new_base).unwrap();
        let scan = Wal::scan(&path).unwrap();
        assert_eq!(scan.base, Some(new_base));
        assert!(scan.records.is_empty());
        assert_eq!(scan.file_bytes, PAGE_SIZE as u64);
        assert_eq!(wal.next_lsn(), 1);
    }

    #[test]
    fn scan_of_missing_or_headerless_file_is_sane() {
        let missing = tmp("missing.wal");
        let scan = Wal::scan(&missing).unwrap();
        assert!(!scan.exists);
        assert!(scan.base.is_none());
        let garbage = tmp("garbage.wal");
        std::fs::write(&garbage, b"not a wal at all").unwrap();
        let scan = Wal::scan(&garbage).unwrap();
        assert!(scan.exists);
        assert!(scan.base.is_none());
        assert!(scan.torn_tail);
    }

    #[test]
    fn every_byte_corruption_of_a_segment_never_panics() {
        // The corruption sweep the snapshot format gets, applied to a log
        // segment: flip every byte, truncate at every length. The scan
        // must never panic and the committed prefix must never exceed
        // what the intact log held.
        let path = tmp("sweep.wal");
        let mut wal = Wal::create(&path, base()).unwrap();
        for i in 0..6 {
            wal.append(&WalRecord::Alloc {
                oid: Oid(i + 1),
                obj: obj(i as i64),
            })
            .unwrap();
            if i % 2 == 1 {
                wal.commit().unwrap();
            }
        }
        wal.flush(true).unwrap();
        drop(wal);
        let pristine = std::fs::read(&path).unwrap();
        let full = Wal::scan(&path).unwrap();
        let sweep = tmp("sweep_victim.wal");
        for pos in 0..pristine.len() {
            let mut bytes = pristine.clone();
            bytes[pos] ^= 0xff;
            std::fs::write(&sweep, &bytes).unwrap();
            let scan = Wal::scan(&sweep).unwrap();
            assert!(
                scan.committed <= full.committed,
                "flip at {pos} grew the committed prefix"
            );
        }
        for cut in 0..pristine.len() {
            std::fs::write(&sweep, &pristine[..cut]).unwrap();
            let scan = Wal::scan(&sweep).unwrap();
            assert!(scan.committed <= full.committed);
        }
    }
}
