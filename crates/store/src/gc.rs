//! Mark-and-sweep garbage collection over the object store.
//!
//! Roots are the store's named roots plus any extra OIDs the embedder
//! supplies (a session's global binding environment, values held by a
//! running machine). Reachability follows every reference an object can
//! hold — including **OID literals embedded in PTML blobs**, since
//! persistent code may mention persistent data directly (paper §2.1: TML
//! terms "may contain … object identifiers which denote arbitrarily
//! complex objects in the persistent Tycoon object store").
//!
//! Unreachable slots are tombstoned, never reused or compacted, so OIDs
//! held outside the store stay valid.

use crate::object::Object;
use crate::ptml::scan_oids;
use crate::store::Store;
use crate::sval::SVal;
use tml_core::Oid;

/// Result of a collection.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GcStats {
    /// Live objects before the collection.
    pub before: usize,
    /// Live objects after the collection.
    pub after: usize,
    /// Objects tombstoned.
    pub freed: usize,
    /// Approximate bytes reclaimed.
    pub bytes_freed: usize,
    /// Optimization-cache entries dropped because an object they observed
    /// was collected.
    pub cache_dropped: usize,
}

fn mark_sval(v: &SVal, pending: &mut Vec<Oid>) {
    if let SVal::Ref(o) = v {
        pending.push(*o);
    }
}

fn mark_object(obj: &Object, pending: &mut Vec<Oid>) {
    match obj {
        Object::Array(vs) | Object::Vector(vs) | Object::Tuple(vs) => {
            for v in vs {
                mark_sval(v, pending);
            }
        }
        Object::ByteArray(_) => {}
        Object::Closure(c) => {
            for v in &c.env {
                mark_sval(v, pending);
            }
            for (_, v) in &c.bindings {
                mark_sval(v, pending);
            }
            if let Some(p) = c.ptml {
                pending.push(p);
            }
        }
        Object::Ptml(bytes) => {
            // Code references data: OID literals keep their targets alive.
            if let Ok(oids) = scan_oids(bytes) {
                pending.extend(oids);
            }
        }
        Object::Module(m) => {
            for v in m.exports.values() {
                mark_sval(v, pending);
            }
        }
        Object::Relation(r) => {
            for row in &r.rows {
                for v in row {
                    mark_sval(v, pending);
                }
            }
        }
        Object::Index(ix) => pending.push(ix.relation),
    }
}

/// Every OID an object refers to (env/binding/export/row values, PTML
/// attachments and embedded OID literals, index→relation edges) — the
/// same edge set the mark phase traverses, exposed for integrity checks
/// (`tmlc fsck`).
pub fn object_refs(obj: &Object) -> Vec<Oid> {
    let mut out = Vec::new();
    mark_object(obj, &mut out);
    out
}

/// Collect garbage. `extra_roots` are additional roots beyond the store's
/// named roots (e.g. a session's global bindings).
pub fn collect(store: &mut Store, extra_roots: &[Oid]) -> GcStats {
    let _s = tml_trace::span!("store.gc.collect");
    let tracing = tml_trace::enabled();
    let before = store.live();
    let nslots = store.len();
    let mut marked = vec![false; nslots + 1]; // index by oid (1-based)
    let mut pending: Vec<Oid> = store.roots().map(|(_, o)| o).collect();
    pending.extend_from_slice(extra_roots);

    let t_mark = std::time::Instant::now();
    while let Some(oid) = pending.pop() {
        let ix = oid.0 as usize;
        if oid.is_null() || ix > nslots || marked[ix] {
            continue;
        }
        marked[ix] = true;
        if let Ok(obj) = store.get(oid) {
            mark_object(obj, &mut pending);
        }
    }
    if tracing {
        let us = t_mark.elapsed().as_micros() as u64;
        tml_trace::global().record_ns("store.gc.mark", us.saturating_mul(1_000));
        tml_trace::record(tml_trace::Event::GcPhase {
            phase: "mark",
            micros: us,
            count: marked.iter().filter(|&&m| m).count() as u64,
            bytes: 0,
        });
    }

    let t_sweep = std::time::Instant::now();
    let mut freed = 0;
    let mut bytes_freed = 0;
    #[allow(clippy::needless_range_loop)] // oid-indexed, not slice iteration
    for ix in 1..=nslots {
        if marked[ix] {
            continue;
        }
        let oid = Oid(ix as u64);
        if let Ok(obj) = store.get(oid) {
            bytes_freed += obj.byte_size();
            freed += 1;
            store.free(oid);
        }
    }
    if tracing {
        let us = t_sweep.elapsed().as_micros() as u64;
        tml_trace::global().record_ns("store.gc.sweep", us.saturating_mul(1_000));
        tml_trace::record(tml_trace::Event::GcPhase {
            phase: "sweep",
            micros: us,
            count: freed as u64,
            bytes: bytes_freed as u64,
        });
    }
    // Cached optimization products are derived state, not roots: entries
    // that observed a collected object are dropped eagerly (a later lookup
    // would invalidate them anyway via the version check).
    let t_cache = std::time::Instant::now();
    let cache_dropped = store.cache_sweep();
    if tracing {
        tml_trace::record(tml_trace::Event::GcPhase {
            phase: "cache-sweep",
            micros: t_cache.elapsed().as_micros() as u64,
            count: cache_dropped as u64,
            bytes: 0,
        });
        tml_trace::count("store.gc.runs", 1);
        tml_trace::count("store.gc.freed", freed as u64);
        tml_trace::count("store.gc.bytes_freed", bytes_freed as u64);
        tml_trace::count("store.gc.micros", t_mark.elapsed().as_micros() as u64);
    }
    GcStats {
        before,
        after: store.live(),
        freed,
        bytes_freed,
        cache_dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::{ClosureObj, ModuleObj, Relation};
    use crate::store::StoreError;

    #[test]
    fn unrooted_objects_are_collected() {
        let mut s = Store::new();
        let kept = s.alloc(Object::Array(vec![SVal::Int(1)]));
        let dead = s.alloc(Object::Array(vec![SVal::Int(2)]));
        s.set_root("kept", kept);
        let stats = collect(&mut s, &[]);
        assert_eq!(stats.freed, 1);
        assert!(s.get(kept).is_ok());
        assert!(matches!(s.get(dead), Err(StoreError::Dangling(_))));
    }

    #[test]
    fn references_keep_objects_alive_transitively() {
        let mut s = Store::new();
        let inner = s.alloc(Object::Array(vec![SVal::Int(9)]));
        let middle = s.alloc(Object::Tuple(vec![SVal::Ref(inner)]));
        let outer = s.alloc(Object::Array(vec![SVal::Ref(middle)]));
        s.set_root("outer", outer);
        let stats = collect(&mut s, &[]);
        assert_eq!(stats.freed, 0);
        assert!(s.get(inner).is_ok());
    }

    #[test]
    fn extra_roots_are_respected() {
        let mut s = Store::new();
        let a = s.alloc(Object::Array(vec![]));
        let b = s.alloc(Object::Array(vec![]));
        let stats = collect(&mut s, &[a]);
        assert_eq!(stats.freed, 1);
        assert!(s.get(a).is_ok());
        assert!(s.get(b).is_err());
    }

    #[test]
    fn closures_keep_env_bindings_and_ptml() {
        let mut s = Store::new();
        let env_obj = s.alloc(Object::Array(vec![]));
        let bind_obj = s.alloc(Object::Array(vec![]));
        let ptml = s.alloc(Object::Ptml(crate::ptml::encode_app(
            &tml_core::Ctx::new(),
            &tml_core::term::App::new(tml_core::term::Value::Lit(tml_core::Lit::Int(1)), vec![]),
        )));
        let clo = s.alloc(Object::Closure(ClosureObj {
            code: 0,
            env: vec![SVal::Ref(env_obj)],
            bindings: vec![("g".into(), SVal::Ref(bind_obj))],
            ptml: Some(ptml),
        }));
        s.set_root("f", clo);
        let stats = collect(&mut s, &[]);
        assert_eq!(stats.freed, 0);
    }

    #[test]
    fn ptml_embedded_oids_keep_data_alive() {
        let mut s = Store::new();
        let data = s.alloc(Object::Array(vec![SVal::Int(5)]));
        // A program embedding <oid data> as a literal.
        let ctx = tml_core::Ctx::new();
        let halt = ctx.prims.lookup("halt").unwrap();
        let app = tml_core::term::App::new(
            tml_core::term::Value::Prim(halt),
            vec![tml_core::term::Value::Lit(tml_core::Lit::Oid(data))],
        );
        let bytes = crate::ptml::encode_app(&ctx, &app);
        let ptml = s.alloc(Object::Ptml(bytes));
        s.set_root("code", ptml);
        let stats = collect(&mut s, &[]);
        assert_eq!(stats.freed, 0, "PTML literal must keep its target alive");
        assert!(s.get(data).is_ok());
    }

    #[test]
    fn indexes_keep_their_relation() {
        let mut s = Store::new();
        let rel = s.alloc(Object::Relation(Relation::new(vec!["id".into()])));
        let ix = s.alloc(Object::Index(crate::object::IndexObj {
            relation: rel,
            column: 0,
            entries: Default::default(),
        }));
        s.set_root("ix", ix);
        collect(&mut s, &[]);
        assert!(s.get(rel).is_ok());
    }

    #[test]
    fn oids_stay_stable_across_collection_and_snapshot() {
        let mut s = Store::new();
        let _dead = s.alloc(Object::Array(vec![]));
        let live = s.alloc(Object::Module(ModuleObj::default()));
        s.set_root("m", live);
        collect(&mut s, &[]);
        let bytes = crate::snapshot::to_bytes(&s);
        let loaded = crate::snapshot::from_bytes(&bytes).unwrap();
        assert_eq!(loaded.root("m"), Some(live));
        assert!(loaded.get(live).is_ok());
        assert!(loaded.get(Oid(1)).is_err(), "tombstone persists");
        assert_eq!(loaded.live(), 1);
        assert_eq!(loaded.len(), 2);
    }

    #[test]
    fn attrs_of_dead_objects_are_dropped() {
        let mut s = Store::new();
        let dead = s.alloc(Object::Array(vec![]));
        s.set_attr(dead, "cost", 3);
        collect(&mut s, &[]);
        assert_eq!(s.attr(dead, "cost"), None);
    }

    #[test]
    fn cycles_are_collected() {
        // Two arrays referencing each other, unreachable from roots.
        let mut s = Store::new();
        let a = s.alloc(Object::Array(vec![SVal::Unit]));
        let b = s.alloc(Object::Array(vec![SVal::Ref(a)]));
        s.array_set(a, 0, SVal::Ref(b)).unwrap();
        let stats = collect(&mut s, &[]);
        assert_eq!(stats.freed, 2);
    }
}
