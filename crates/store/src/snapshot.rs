//! Whole-store persistence: snapshot a [`Store`] to bytes (or a file) and
//! load it back.
//!
//! The snapshot contains every object, the named roots and the derived
//! attribute cache. Closure objects keep their PTML references and R-value
//! bindings; their transient code-table indices are preserved verbatim and
//! must be relinked (recompiled from PTML) by `tml-reflect` after loading —
//! exactly the paper's architecture, where the persistent encoding of the
//! code is the TML tree, not the machine code.
//!
//! ## The TYSTO3 image format
//!
//! The image *is* the database, so since PR 4 the on-disk format is
//! self-validating:
//!
//! ```text
//! magic "TYSTO3"                                  6 bytes
//! slot count                                      varint
//! per slot: 0            (tombstone)              1 byte
//!        or 1, frame-len, object bytes            framed record
//! roots    : count, (name, oid)*
//! attrs    : count, (oid, count, (key, i64)*)*
//! versions : count, u64*
//! cache    : cap, stats, count, entry*
//! crc32    : IEEE CRC-32 of everything above      4 bytes LE
//! ```
//!
//! The per-object frame length lets [`salvage_bytes`] skip an unreadable
//! record and keep going; the CRC trailer rejects torn or bit-rotted
//! images before any object is trusted. Legacy `TYSTO2` images (no CRC,
//! no framing) are still decoded.
//!
//! [`save`] is crash-safe: write to `<path>.tmp`, fsync, rotate the
//! previous image to `<path>.bak`, then atomically rename. A crash at any
//! point leaves either the old image at `path` or at `path.bak`, which
//! [`load_with_recovery`] falls back to.

use crate::cache::{hash_bytes, CacheEntry, CacheKey, CacheStats, OptCache};
use crate::crc::crc32;
use crate::failpoint;
use crate::object::{ClosureObj, IndexKey, IndexObj, ModuleObj, Object, Relation};
use crate::store::Store;
use crate::sval::SVal;
use crate::varint::{put_bytes, put_i64, put_str, put_u64, DecodeError, Reader};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;
use tml_core::Oid;

const MAGIC_V2: &[u8; 6] = b"TYSTO2";
const MAGIC_V3: &[u8; 6] = b"TYSTO3";

const OBJ_ARRAY: u8 = 0;
const OBJ_VECTOR: u8 = 1;
const OBJ_BYTEARRAY: u8 = 2;
const OBJ_TUPLE: u8 = 3;
const OBJ_CLOSURE: u8 = 4;
const OBJ_PTML: u8 = 5;
const OBJ_MODULE: u8 = 6;
const OBJ_RELATION: u8 = 7;
const OBJ_INDEX: u8 = 8;

const VAL_UNIT: u8 = 0;
const VAL_BOOL: u8 = 1;
const VAL_INT: u8 = 2;
const VAL_REAL: u8 = 3;
const VAL_CHAR: u8 = 4;
const VAL_STR: u8 = 5;
const VAL_REF: u8 = 6;

const KEY_BOOL: u8 = 0;
const KEY_INT: u8 = 1;
const KEY_CHAR: u8 = 2;
const KEY_STR: u8 = 3;

/// Serialize the store to TYSTO3 bytes (framed objects, CRC trailer).
pub fn to_bytes(store: &Store) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC_V3);
    put_u64(&mut out, store.len() as u64);
    let mut frame = Vec::new();
    for slot in store.slots() {
        match slot {
            Some(obj) => {
                out.push(1);
                frame.clear();
                put_object(&mut frame, obj);
                put_u64(&mut out, frame.len() as u64);
                out.extend_from_slice(&frame);
            }
            // Tombstoned slot: OIDs are stable, so dead slots persist too.
            None => out.push(0),
        }
    }
    let roots: Vec<(&str, Oid)> = store.roots().collect();
    put_u64(&mut out, roots.len() as u64);
    for (name, oid) in roots {
        put_str(&mut out, name);
        put_u64(&mut out, oid.0);
    }
    let attrs = store.attr_table();
    put_u64(&mut out, attrs.len() as u64);
    for (oid, kv) in attrs {
        put_u64(&mut out, oid.0);
        put_u64(&mut out, kv.len() as u64);
        for (k, v) in kv {
            put_str(&mut out, k);
            put_i64(&mut out, *v);
        }
    }
    put_versions(&mut out, store.versions());
    put_cache(&mut out, store.cache());
    let crc = crc32(&out);
    out.extend_from_slice(&crc.to_le_bytes());
    if tml_trace::enabled() {
        tml_trace::count("store.snapshot.write_bytes", out.len() as u64);
        tml_trace::record(tml_trace::Event::SnapshotIo {
            dir: "write",
            bytes: out.len() as u64,
            objects: store.live() as u64,
        });
    }
    out
}

/// Deserialize a store from bytes. Accepts the current TYSTO3 format
/// (CRC-validated, framed) and legacy TYSTO2 images.
pub fn from_bytes(bytes: &[u8]) -> Result<Store, DecodeError> {
    let store = match image_format(bytes)? {
        3 => {
            // Validate the trailer before trusting a single byte of body.
            let body_len = bytes.len().checked_sub(4).ok_or(DecodeError::Truncated)?;
            if body_len < MAGIC_V3.len() {
                return Err(DecodeError::Truncated);
            }
            let stored = u32::from_le_bytes(
                bytes[body_len..]
                    .try_into()
                    .map_err(|_| DecodeError::Truncated)?,
            );
            let computed = crc32(&bytes[..body_len]);
            if stored != computed {
                return Err(DecodeError::BadCrc { stored, computed });
            }
            decode_body(&bytes[..body_len], true)?
        }
        _ => decode_body(bytes, false)?,
    };
    if tml_trace::enabled() {
        tml_trace::count("store.snapshot.read_bytes", bytes.len() as u64);
        tml_trace::record(tml_trace::Event::SnapshotIo {
            dir: "read",
            bytes: bytes.len() as u64,
            objects: store.live() as u64,
        });
    }
    Ok(store)
}

/// Identify the image format version from the magic (2 or 3).
fn image_format(bytes: &[u8]) -> Result<u8, DecodeError> {
    let magic = bytes.get(..MAGIC_V3.len()).ok_or(DecodeError::Truncated)?;
    if magic == MAGIC_V3 {
        Ok(3)
    } else if magic == MAGIC_V2 {
        Ok(2)
    } else if magic.starts_with(b"TYSTO") {
        // A future (or corrupt) version byte: report it distinctly.
        Err(DecodeError::BadVersion(magic[5].wrapping_sub(b'0')))
    } else {
        Err(DecodeError::BadMagic)
    }
}

/// Decode the image body (everything except the TYSTO3 CRC trailer, which
/// the caller has already verified and stripped).
fn decode_body(bytes: &[u8], framed: bool) -> Result<Store, DecodeError> {
    let mut r = Reader::new(bytes);
    r.bytes(MAGIC_V3.len())?; // magic validated by image_format
    let mut store = Store::new();
    let nobjs = r.len()?;
    for _ in 0..nobjs {
        match r.byte()? {
            0 => store.push_slot(None),
            1 => {
                let declared = if framed { r.len()? } else { 0 };
                let offset = r.position();
                let obj = get_object(&mut r)?;
                let used = r.position() - offset;
                if framed && used != declared {
                    return Err(DecodeError::Frame {
                        offset,
                        declared,
                        used,
                    });
                }
                store.push_slot(Some(obj));
            }
            t => return Err(DecodeError::BadTag(t)),
        }
    }
    let nroots = r.len()?;
    for _ in 0..nroots {
        let name = r.str()?.to_string();
        let oid = Oid(r.u64()?);
        store.set_root(name, oid);
    }
    let nattrs = r.len()?;
    let mut attrs: BTreeMap<Oid, BTreeMap<String, i64>> = BTreeMap::new();
    for _ in 0..nattrs {
        let oid = Oid(r.u64()?);
        let nkv = r.len()?;
        let mut kv = BTreeMap::new();
        for _ in 0..nkv {
            let k = r.str()?.to_string();
            let v = r.i64()?;
            kv.insert(k, v);
        }
        attrs.insert(oid, kv);
    }
    store.set_attr_table(attrs);
    // Legacy images (pre version/cache sections) end right after the
    // attribute table; `set_versions` pads with zeros and the cache stays
    // empty.
    if !r.is_at_end() {
        let versions = get_versions(&mut r)?;
        store.set_versions(versions);
        *store.cache_mut() = get_cache(&mut r)?;
        if !r.is_at_end() {
            return Err(DecodeError::Truncated);
        }
    }
    Ok(store)
}

pub(crate) fn put_versions(out: &mut Vec<u8>, versions: &[u64]) {
    put_u64(out, versions.len() as u64);
    for &v in versions {
        put_u64(out, v);
    }
}

pub(crate) fn get_versions(r: &mut Reader<'_>) -> Result<Vec<u64>, DecodeError> {
    let n = r.len()?;
    let mut versions = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        versions.push(r.u64()?);
    }
    Ok(versions)
}

pub(crate) fn put_cache(out: &mut Vec<u8>, cache: &OptCache) {
    put_u64(out, cache.cap() as u64);
    let stats = cache.stats();
    put_u64(out, stats.hits);
    put_u64(out, stats.misses);
    put_u64(out, stats.invalidations);
    put_u64(out, stats.evictions);
    put_u64(out, stats.inserts);
    put_u64(out, cache.len() as u64);
    for (key, e) in cache.iter() {
        put_u64(out, key.ptml_hash);
        put_u64(out, key.binding_sig);
        put_u64(out, e.observed.len() as u64);
        for (oid, ver) in &e.observed {
            put_u64(out, oid.0);
            put_u64(out, *ver);
        }
        put_bytes(out, &e.ptml);
        put_bytes(out, &e.code);
        put_u64(out, e.captures.len() as u64);
        for (name, fallback) in &e.captures {
            put_str(out, name);
            match fallback {
                Some(v) => {
                    out.push(1);
                    put_sval(out, v);
                }
                None => out.push(0),
            }
        }
        put_u64(out, e.size_before);
        put_u64(out, e.size_after);
        put_u64(out, e.inlined);
    }
}

pub(crate) fn get_cache(r: &mut Reader<'_>) -> Result<OptCache, DecodeError> {
    let mut cache = OptCache::default();
    let cap = r.len()?.max(1);
    let stats = CacheStats {
        hits: r.u64()?,
        misses: r.u64()?,
        invalidations: r.u64()?,
        evictions: r.u64()?,
        inserts: r.u64()?,
    };
    let nentries = r.len()?;
    let mut entries = BTreeMap::new();
    // Insertion order of a BTreeMap iteration is key order, so assigning
    // ticks sequentially keeps encode(decode(x)) == encode(x).
    for tick in 0..nentries {
        let key = CacheKey {
            ptml_hash: r.u64()?,
            binding_sig: r.u64()?,
        };
        let nobs = r.len()?;
        let mut observed = Vec::with_capacity(nobs.min(4096));
        for _ in 0..nobs {
            let oid = Oid(r.u64()?);
            let ver = r.u64()?;
            observed.push((oid, ver));
        }
        let ptml = r.byte_string()?.to_vec();
        let code = r.byte_string()?.to_vec();
        let ncaps = r.len()?;
        let mut captures = Vec::with_capacity(ncaps.min(1024));
        for _ in 0..ncaps {
            let name = r.str()?.to_string();
            let fallback = if r.byte()? != 0 {
                Some(get_sval(r)?)
            } else {
                None
            };
            captures.push((name, fallback));
        }
        let size_before = r.u64()?;
        let size_after = r.u64()?;
        let inlined = r.u64()?;
        entries.insert(
            key,
            CacheEntry {
                observed,
                ptml,
                code,
                captures,
                size_before,
                size_after,
                inlined,
                tick: tick as u64,
            },
        );
    }
    cache.tick = nentries as u64;
    cache.entries = entries;
    cache.stats = stats;
    cache.set_cap(cap);
    Ok(cache)
}

/// The sibling `<path>.tmp` the atomic save protocol writes before the
/// final rename. Public so recovery tooling (`tmlc fsck`) can inspect it.
pub fn tmp_path(path: impl AsRef<Path>) -> std::path::PathBuf {
    let path = path.as_ref();
    let mut p = path.as_os_str().to_os_string();
    p.push(".tmp");
    p.into()
}

/// The rolling backup of the previous good image.
pub fn backup_path(path: impl AsRef<Path>) -> std::path::PathBuf {
    let mut p = path.as_ref().as_os_str().to_os_string();
    p.push(".bak");
    p.into()
}

fn path_key(path: &Path) -> u64 {
    hash_bytes(path.as_os_str().as_encoded_bytes())
}

/// Identity of an on-disk image: whole-file byte length plus the CRC-32
/// of every file byte (trailer included). The WAL header records the
/// identity of the checkpoint image it extends, so recovery can tell a
/// log that belongs to the current image from a stale pre-checkpoint one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImageIdentity {
    /// File length in bytes.
    pub len: u64,
    /// CRC-32 (IEEE) over all file bytes.
    pub crc: u32,
}

/// Identity of an image byte buffer (what the saved file will contain).
pub fn identity_of(bytes: &[u8]) -> ImageIdentity {
    ImageIdentity {
        len: bytes.len() as u64,
        crc: crc32(bytes),
    }
}

/// Identity of the image file currently at `path`.
pub fn identity_of_file(path: impl AsRef<Path>) -> std::io::Result<ImageIdentity> {
    let bytes = std::fs::read(path)?;
    Ok(identity_of(&bytes))
}

/// Save the store to a file, crash-safely.
///
/// Protocol: serialize, write to `<path>.tmp`, fsync the temp file, rotate
/// any existing image to `<path>.bak`, then atomically rename the temp
/// file over `path` (and best-effort fsync the directory). A crash at any
/// step leaves a good image at `path`, at `path.bak`, or — in the window
/// between the backup rotation and the final rename — complete at
/// `<path>.tmp`, all of which [`load_with_recovery`] knows to try; it
/// never leaves a half-written image at `path` itself.
pub fn save(store: &Store, path: impl AsRef<Path>) -> std::io::Result<()> {
    save_with_identity(store, path).map(|_| ())
}

/// [`save`], additionally reporting the identity of the bytes written.
/// The durable store's checkpoint records this identity in the WAL header
/// without re-reading the file it just wrote.
pub fn save_with_identity(store: &Store, path: impl AsRef<Path>) -> std::io::Result<ImageIdentity> {
    let _s = tml_trace::span!("store.snapshot.save");
    let path = path.as_ref();
    let bytes = to_bytes(store);
    write_bytes_atomic(bytes, path)
}

/// The crash-safe atomic write protocol, shared by the whole-image
/// snapshot and the paged catalog: corrupt-injection on the bytes, write
/// to `<path>.tmp`, fsync, rotate any existing file to `<path>.bak`,
/// rename, best-effort directory fsync. Every step carries the
/// `snapshot.save.*` failpoint sites keyed by the destination path.
pub(crate) fn write_bytes_atomic(
    mut bytes: Vec<u8>,
    path: &Path,
) -> std::io::Result<ImageIdentity> {
    let key = path_key(path);
    if failpoint::armed() {
        // A torn or bit-rotted write: the image lands corrupt on disk even
        // though every syscall "succeeds".
        failpoint::corrupt("snapshot.save.bytes", key, &mut bytes);
    }
    let identity = identity_of(&bytes);
    let tmp = tmp_path(path);
    failpoint::fail_io("snapshot.save.write", key)?;
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(&bytes)?;
    failpoint::fail_io("snapshot.save.fsync", key)?;
    f.sync_all()?;
    drop(f);
    if path.exists() {
        failpoint::fail_io("snapshot.save.backup", key)?;
        std::fs::rename(path, backup_path(path))?;
    }
    // The crash window the old `std::fs::write` left open: between here
    // and the rename the new image exists only at `<path>.tmp` (complete
    // and fsynced — recovery uses it as a salvage source) while the
    // previous good image is intact at `<path>.bak`.
    failpoint::fail_io("snapshot.save.rename", key)?;
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        // Durability of the rename itself; not all platforms/filesystems
        // support fsync on directories, so failure is tolerated — but no
        // longer silently: a failed directory fsync means the rename may
        // not survive a power cut, which operators need to see.
        let synced = failpoint::fail_io("snapshot.save.dirsync", key)
            .and_then(|()| std::fs::File::open(dir))
            .and_then(|d| d.sync_all());
        if let Err(e) = synced {
            if tml_trace::enabled() {
                tml_trace::count("store.snapshot.dirsync_failures", 1);
                tml_trace::record(tml_trace::Event::DurabilityRisk {
                    site: "snapshot.save.dirsync",
                    detail: e.to_string(),
                });
            }
        }
    }
    Ok(identity)
}

/// Load a store from a file. Fails on any corruption; see
/// [`load_with_recovery`] for the fallback path.
pub fn load(path: impl AsRef<Path>) -> std::io::Result<Store> {
    let path = path.as_ref();
    let bytes = read_image(path)?;
    from_bytes(&bytes).map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
}

pub(crate) fn read_image(path: &Path) -> std::io::Result<Vec<u8>> {
    let key = path_key(path);
    failpoint::fail_io("snapshot.load.read", key)?;
    let mut bytes = std::fs::read(path)?;
    if failpoint::armed() {
        failpoint::corrupt("snapshot.load.bytes", key, &mut bytes);
    }
    Ok(bytes)
}

/// Where [`load_with_recovery`] found a loadable image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoverySource {
    /// The primary image decoded cleanly.
    Primary,
    /// The primary was unreadable; the rolling `.bak` decoded cleanly.
    Backup,
    /// Neither primary nor backup decoded, but an interrupted save left a
    /// complete, CRC-valid image at `<path>.tmp` (crash between the backup
    /// rotation and the final rename).
    Tmp,
    /// Readable objects were salvaged out of the damaged primary image.
    SalvagedPrimary,
    /// Readable objects were salvaged out of the damaged backup image.
    SalvagedBackup,
    /// Readable objects were salvaged out of a damaged `<path>.tmp`.
    SalvagedTmp,
}

impl RecoverySource {
    /// Stable lower-case name for reports and trace events.
    pub fn name(self) -> &'static str {
        match self {
            RecoverySource::Primary => "primary",
            RecoverySource::Backup => "backup",
            RecoverySource::Tmp => "tmp",
            RecoverySource::SalvagedPrimary => "salvaged-primary",
            RecoverySource::SalvagedBackup => "salvaged-backup",
            RecoverySource::SalvagedTmp => "salvaged-tmp",
        }
    }
}

/// What [`load_with_recovery`] had to do to produce a store.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Which image ultimately yielded the store.
    pub source: RecoverySource,
    /// Why the primary image was rejected (`None` when it loaded cleanly).
    pub primary_error: Option<DecodeError>,
    /// Objects dropped during salvage (0 outside the salvage paths).
    pub dropped_objects: u64,
    /// Roots dropped because their target object was dropped.
    pub dropped_roots: u64,
    /// Whether the trailing version/cache sections were lost in salvage.
    pub dropped_sections: bool,
}

impl RecoveryReport {
    fn clean() -> RecoveryReport {
        RecoveryReport {
            source: RecoverySource::Primary,
            primary_error: None,
            dropped_objects: 0,
            dropped_roots: 0,
            dropped_sections: false,
        }
    }
}

/// Load a store, falling back to the rolling backup, a complete save-time
/// temp file, and then to object salvage when the image is damaged.
///
/// The cascade: decode `path`; on corruption decode `path.bak`; then
/// decode `<path>.tmp` (a crash between `save`'s backup rotation and its
/// final rename leaves the *newest* image complete and fsynced there, with
/// nothing at `path`); failing all three, salvage readable framed objects
/// out of the primary, the backup, then the temp file. Every degradation
/// is reported in the [`RecoveryReport`] and recorded on the trace
/// (`Event::Recovery` plus counters). An `Err` means no image yielded
/// anything loadable.
pub fn load_with_recovery(path: impl AsRef<Path>) -> std::io::Result<(Store, RecoveryReport)> {
    let _s = tml_trace::span!("store.snapshot.load");
    let t0 = if tml_trace::enabled() {
        tml_trace::global().clock().now_ns()
    } else {
        0
    };
    let path = path.as_ref();
    let primary = read_image(path);
    let primary_err = match &primary {
        Ok(bytes) => match from_bytes(bytes) {
            Ok(store) => return Ok((store, RecoveryReport::clean())),
            Err(e) => Some(e),
        },
        Err(_) => None,
    };
    let bak = backup_path(path);
    let backup = read_image(&bak);
    let tmp = read_image(&tmp_path(path));
    for (bytes, source) in [
        (&backup, RecoverySource::Backup),
        (&tmp, RecoverySource::Tmp),
    ] {
        if let Ok(bytes) = bytes {
            if let Ok(store) = from_bytes(bytes) {
                let report = RecoveryReport {
                    source,
                    primary_error: primary_err.clone(),
                    dropped_objects: 0,
                    dropped_roots: 0,
                    dropped_sections: false,
                };
                record_recovery(&report, t0);
                return Ok((store, report));
            }
        }
    }
    for (bytes, source) in [
        (&primary, RecoverySource::SalvagedPrimary),
        (&backup, RecoverySource::SalvagedBackup),
        (&tmp, RecoverySource::SalvagedTmp),
    ] {
        if let Ok(bytes) = bytes {
            if let Some((store, mut report)) = salvage_bytes(bytes) {
                report.source = source;
                report.primary_error = primary_err.clone();
                record_recovery(&report, t0);
                return Ok((store, report));
            }
        }
    }
    match primary {
        Err(e) => Err(e),
        Ok(_) => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            match primary_err {
                Some(e) => format!("image unrecoverable: {e}"),
                None => "image unrecoverable".to_string(),
            },
        )),
    }
}

fn record_recovery(report: &RecoveryReport, start_ns: u64) {
    if tml_trace::enabled() {
        tml_trace::count("store.snapshot.recoveries", 1);
        tml_trace::count("store.snapshot.salvage_dropped", report.dropped_objects);
        let rec = tml_trace::global();
        tml_trace::record(tml_trace::Event::Recovery {
            source: report.source.name(),
            dropped_objects: report.dropped_objects,
            dropped_roots: report.dropped_roots,
            dropped_sections: report.dropped_sections,
            micros: rec.clock().now_ns().saturating_sub(start_ns) / 1_000,
        });
    }
}

/// Salvage readable objects out of a damaged TYSTO3 image.
///
/// The per-object frame lengths let the scan skip an unreadable record
/// (the slot becomes a tombstone, so surviving OIDs stay stable) and keep
/// going. Roots pointing at dropped slots are dropped too, so the salvaged
/// store never hands out a root that dangles. The version/cache sections
/// are kept only if they decode cleanly — losing them costs re-derivation,
/// never correctness. Returns `None` when the image is not TYSTO3 or holds
/// nothing salvageable (legacy TYSTO2 has no framing to resynchronize on).
pub fn salvage_bytes(bytes: &[u8]) -> Option<(Store, RecoveryReport)> {
    if image_format(bytes) != Ok(3) {
        return None;
    }
    // Ignore the CRC (it is expected to be broken) but strip the trailer
    // when present so it is not mistaken for body bytes.
    let body = if bytes.len() >= MAGIC_V3.len() + 4 {
        &bytes[..bytes.len() - 4]
    } else {
        return None;
    };
    let mut r = Reader::new(body);
    r.bytes(MAGIC_V3.len()).ok()?;
    let nobjs = r.len().ok()?;
    let mut store = Store::new();
    let mut dropped_objects = 0u64;
    let mut truncated = false;
    for _ in 0..nobjs {
        if truncated {
            store.push_slot(None);
            continue;
        }
        match r.byte() {
            Ok(0) => store.push_slot(None),
            Ok(1) => {
                let Ok(declared) = r.len() else {
                    truncated = true;
                    dropped_objects += 1;
                    store.push_slot(None);
                    continue;
                };
                let Ok(frame) = r.bytes(declared) else {
                    // Frame extends past the readable bytes: everything
                    // from here on is gone.
                    truncated = true;
                    dropped_objects += 1;
                    store.push_slot(None);
                    continue;
                };
                // Decode strictly inside the frame so damage cannot bleed
                // into neighbouring records.
                let mut fr = Reader::new(frame);
                match get_object(&mut fr) {
                    Ok(obj) if fr.is_at_end() => store.push_slot(Some(obj)),
                    _ => {
                        dropped_objects += 1;
                        store.push_slot(None);
                    }
                }
            }
            _ => {
                truncated = true;
                store.push_slot(None);
            }
        }
    }
    let mut dropped_roots = 0u64;
    let mut dropped_sections = truncated;
    if !truncated {
        // Trailing sections decode all-or-nothing: a partial root table is
        // worse than none.
        dropped_sections = !salvage_tail(&mut r, &mut store);
    }
    // Well-formedness: no root may dangle into a dropped slot.
    let dangling: Vec<String> = store
        .roots()
        .filter(|(_, oid)| store.get(*oid).is_err())
        .map(|(name, _)| name.to_string())
        .collect();
    for name in dangling {
        store.remove_root(&name);
        dropped_roots += 1;
    }
    if store.live() == 0 && store.roots().next().is_none() {
        return None;
    }
    Some((
        store,
        RecoveryReport {
            source: RecoverySource::SalvagedPrimary,
            primary_error: None,
            dropped_objects,
            dropped_roots,
            dropped_sections,
        },
    ))
}

/// Try to decode the roots/attrs/versions/cache tail during salvage.
/// Returns `false` (leaving the store's tail state empty) on any error.
fn salvage_tail(r: &mut Reader<'_>, store: &mut Store) -> bool {
    let mut attempt = || -> Result<(), DecodeError> {
        let nroots = r.len()?;
        let mut roots = Vec::with_capacity(nroots.min(1024));
        for _ in 0..nroots {
            let name = r.str()?.to_string();
            let oid = Oid(r.u64()?);
            roots.push((name, oid));
        }
        let nattrs = r.len()?;
        let mut attrs: BTreeMap<Oid, BTreeMap<String, i64>> = BTreeMap::new();
        for _ in 0..nattrs {
            let oid = Oid(r.u64()?);
            let nkv = r.len()?;
            let mut kv = BTreeMap::new();
            for _ in 0..nkv {
                let k = r.str()?.to_string();
                let v = r.i64()?;
                kv.insert(k, v);
            }
            attrs.insert(oid, kv);
        }
        let versions = get_versions(r)?;
        let cache = get_cache(r)?;
        if !r.is_at_end() {
            return Err(DecodeError::Truncated);
        }
        for (name, oid) in roots {
            store.set_root(name, oid);
        }
        store.set_attr_table(attrs);
        store.set_versions(versions);
        *store.cache_mut() = cache;
        Ok(())
    };
    attempt().is_ok()
}

/// Encode one [`SVal`] in the snapshot's value format. Public because the
/// VM's code codec reuses it for constant pools.
pub fn put_sval(out: &mut Vec<u8>, v: &SVal) {
    match v {
        SVal::Unit => out.push(VAL_UNIT),
        SVal::Bool(b) => {
            out.push(VAL_BOOL);
            out.push(u8::from(*b));
        }
        SVal::Int(n) => {
            out.push(VAL_INT);
            put_i64(out, *n);
        }
        SVal::Real(x) => {
            out.push(VAL_REAL);
            out.extend_from_slice(&x.to_le_bytes());
        }
        SVal::Char(c) => {
            out.push(VAL_CHAR);
            out.push(*c);
        }
        SVal::Str(s) => {
            out.push(VAL_STR);
            put_str(out, s);
        }
        SVal::Ref(o) => {
            out.push(VAL_REF);
            put_u64(out, o.0);
        }
    }
}

/// Decode one [`SVal`] written by [`put_sval`].
pub fn get_sval(r: &mut Reader<'_>) -> Result<SVal, DecodeError> {
    Ok(match r.byte()? {
        VAL_UNIT => SVal::Unit,
        VAL_BOOL => SVal::Bool(r.byte()? != 0),
        VAL_INT => SVal::Int(r.i64()?),
        VAL_REAL => {
            let raw: [u8; 8] = r.bytes(8)?.try_into().map_err(|_| DecodeError::Truncated)?;
            SVal::Real(f64::from_le_bytes(raw))
        }
        VAL_CHAR => SVal::Char(r.byte()?),
        VAL_STR => SVal::Str(r.str()?.into()),
        VAL_REF => SVal::Ref(Oid(r.u64()?)),
        t => return Err(DecodeError::BadTag(t)),
    })
}

fn put_svals(out: &mut Vec<u8>, vs: &[SVal]) {
    put_u64(out, vs.len() as u64);
    for v in vs {
        put_sval(out, v);
    }
}

fn get_svals(r: &mut Reader<'_>) -> Result<Vec<SVal>, DecodeError> {
    let n = r.len()?;
    let mut vs = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        vs.push(get_sval(r)?);
    }
    Ok(vs)
}

/// Encode one heap object in the snapshot's record format. `pub(crate)`
/// because WAL records carry object post-images in the same encoding.
pub(crate) fn put_object(out: &mut Vec<u8>, obj: &Object) {
    match obj {
        Object::Array(v) => {
            out.push(OBJ_ARRAY);
            put_svals(out, v);
        }
        Object::Vector(v) => {
            out.push(OBJ_VECTOR);
            put_svals(out, v);
        }
        Object::ByteArray(b) => {
            out.push(OBJ_BYTEARRAY);
            put_u64(out, b.len() as u64);
            out.extend_from_slice(b);
        }
        Object::Tuple(v) => {
            out.push(OBJ_TUPLE);
            put_svals(out, v);
        }
        Object::Closure(c) => {
            out.push(OBJ_CLOSURE);
            put_u64(out, u64::from(c.code));
            put_svals(out, &c.env);
            put_u64(out, c.bindings.len() as u64);
            for (name, val) in &c.bindings {
                put_str(out, name);
                put_sval(out, val);
            }
            match c.ptml {
                Some(o) => {
                    out.push(1);
                    put_u64(out, o.0);
                }
                None => out.push(0),
            }
        }
        Object::Ptml(b) => {
            out.push(OBJ_PTML);
            put_u64(out, b.len() as u64);
            out.extend_from_slice(b);
        }
        Object::Module(m) => {
            out.push(OBJ_MODULE);
            put_str(out, &m.name);
            put_u64(out, m.exports.len() as u64);
            for (name, val) in &m.exports {
                put_str(out, name);
                put_sval(out, val);
            }
        }
        Object::Relation(rel) => {
            out.push(OBJ_RELATION);
            put_u64(out, rel.schema.len() as u64);
            for c in &rel.schema {
                put_str(out, c);
            }
            put_u64(out, rel.rows.len() as u64);
            for row in &rel.rows {
                for v in row {
                    put_sval(out, v);
                }
            }
        }
        Object::Index(ix) => {
            out.push(OBJ_INDEX);
            put_u64(out, ix.relation.0);
            put_u64(out, ix.column as u64);
            put_u64(out, ix.entries.len() as u64);
            for (key, rows) in &ix.entries {
                put_key(out, key);
                put_u64(out, rows.len() as u64);
                for &row in rows {
                    put_u64(out, row as u64);
                }
            }
        }
    }
}

fn put_key(out: &mut Vec<u8>, key: &IndexKey) {
    match key {
        IndexKey::Bool(b) => {
            out.push(KEY_BOOL);
            out.push(u8::from(*b));
        }
        IndexKey::Int(n) => {
            out.push(KEY_INT);
            put_i64(out, *n);
        }
        IndexKey::Char(c) => {
            out.push(KEY_CHAR);
            out.push(*c);
        }
        IndexKey::Str(s) => {
            out.push(KEY_STR);
            put_str(out, s);
        }
    }
}

fn get_key(r: &mut Reader<'_>) -> Result<IndexKey, DecodeError> {
    Ok(match r.byte()? {
        KEY_BOOL => IndexKey::Bool(r.byte()? != 0),
        KEY_INT => IndexKey::Int(r.i64()?),
        KEY_CHAR => IndexKey::Char(r.byte()?),
        KEY_STR => IndexKey::Str(r.str()?.to_string()),
        t => return Err(DecodeError::BadTag(t)),
    })
}

/// Decode one heap object written by [`put_object`].
pub(crate) fn get_object(r: &mut Reader<'_>) -> Result<Object, DecodeError> {
    Ok(match r.byte()? {
        OBJ_ARRAY => Object::Array(get_svals(r)?),
        OBJ_VECTOR => Object::Vector(get_svals(r)?),
        OBJ_BYTEARRAY => {
            let n = r.len()?;
            Object::ByteArray(r.bytes(n)?.to_vec())
        }
        OBJ_TUPLE => Object::Tuple(get_svals(r)?),
        OBJ_CLOSURE => {
            let code = u32::try_from(r.u64()?).map_err(|_| DecodeError::Overlong)?;
            let env = get_svals(r)?;
            let nbind = r.len()?;
            let mut bindings = Vec::with_capacity(nbind.min(1024));
            for _ in 0..nbind {
                let name = r.str()?.to_string();
                let val = get_sval(r)?;
                bindings.push((name, val));
            }
            let ptml = if r.byte()? != 0 {
                Some(Oid(r.u64()?))
            } else {
                None
            };
            Object::Closure(ClosureObj {
                code,
                env,
                bindings,
                ptml,
            })
        }
        OBJ_PTML => {
            let n = r.len()?;
            Object::Ptml(r.bytes(n)?.to_vec())
        }
        OBJ_MODULE => {
            let name = r.str()?.to_string();
            let n = r.len()?;
            let mut exports = BTreeMap::new();
            for _ in 0..n {
                let k = r.str()?.to_string();
                let v = get_sval(r)?;
                exports.insert(k, v);
            }
            Object::Module(ModuleObj { name, exports })
        }
        OBJ_RELATION => {
            let ncols = r.len()?;
            let mut schema = Vec::with_capacity(ncols.min(256));
            for _ in 0..ncols {
                schema.push(r.str()?.to_string());
            }
            let nrows = r.len()?;
            let mut rows = Vec::with_capacity(nrows.min(4096));
            for _ in 0..nrows {
                let mut row = Vec::with_capacity(ncols);
                for _ in 0..ncols {
                    row.push(get_sval(r)?);
                }
                rows.push(row);
            }
            Object::Relation(Relation { schema, rows })
        }
        OBJ_INDEX => {
            let relation = Oid(r.u64()?);
            let column = r.len()?;
            let nkeys = r.len()?;
            let mut entries = BTreeMap::new();
            for _ in 0..nkeys {
                let key = get_key(r)?;
                let nrows = r.len()?;
                let mut rows = Vec::with_capacity(nrows.min(4096));
                for _ in 0..nrows {
                    rows.push(r.len()?);
                }
                entries.insert(key, rows);
            }
            Object::Index(IndexObj {
                relation,
                column,
                entries,
            })
        }
        t => return Err(DecodeError::BadTag(t)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> Store {
        let mut s = Store::new();
        let arr = s.alloc(Object::Array(vec![SVal::Int(1), SVal::from("two")]));
        s.alloc(Object::Vector(vec![SVal::Real(1.5), SVal::Unit]));
        s.alloc(Object::ByteArray(vec![1, 2, 3]));
        let ptml = s.alloc(Object::Ptml(vec![9, 9, 9]));
        s.alloc(Object::Closure(ClosureObj {
            code: 7,
            env: vec![SVal::Ref(arr)],
            bindings: vec![
                ("complex".into(), SVal::Ref(arr)),
                ("sqrt".into(), SVal::Int(0)),
            ],
            ptml: Some(ptml),
        }));
        let mut m = ModuleObj {
            name: "complex".into(),
            exports: BTreeMap::new(),
        };
        m.exports.insert("x".into(), SVal::Ref(arr));
        s.alloc(Object::Module(m));
        let mut rel = Relation::new(vec!["id".into(), "name".into()]);
        rel.insert(vec![SVal::Int(1), SVal::from("ada")]);
        rel.insert(vec![SVal::Int(2), SVal::from("bob")]);
        let rel_oid = s.alloc(Object::Relation(rel));
        let mut ix = IndexObj {
            relation: rel_oid,
            column: 0,
            entries: BTreeMap::new(),
        };
        ix.entries.insert(IndexKey::Int(1), vec![0]);
        ix.entries.insert(IndexKey::Int(2), vec![1]);
        s.alloc(Object::Index(ix));
        s.alloc(Object::Tuple(vec![SVal::Char(b'x'), SVal::Bool(true)]));
        s.set_root("main", arr);
        s.set_root("db", rel_oid);
        s.set_attr(ptml, "cost", 42);
        s.set_attr(ptml, "savings", -3);
        s
    }

    #[test]
    fn zero_length_payloads_roundtrip() {
        // Empty byte arrays, PTML blobs, arrays and strings exercise the
        // zero-length varint payload paths.
        let mut s = Store::new();
        let ba = s.alloc(Object::ByteArray(Vec::new()));
        let ptml = s.alloc(Object::Ptml(Vec::new()));
        let arr = s.alloc(Object::Array(vec![SVal::from("")]));
        s.set_root("b", ba);
        let bytes = to_bytes(&s);
        let loaded = from_bytes(&bytes).unwrap();
        assert_eq!(loaded.get(ba).unwrap(), &Object::ByteArray(Vec::new()));
        assert_eq!(loaded.get(ptml).unwrap(), &Object::Ptml(Vec::new()));
        assert_eq!(
            loaded.get(arr).unwrap(),
            &Object::Array(vec![SVal::from("")])
        );
        assert_eq!(loaded.root("b"), Some(ba));
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let s = sample_store();
        let bytes = to_bytes(&s);
        let loaded = from_bytes(&bytes).unwrap();
        assert_eq!(loaded.len(), s.len());
        for ((_, a), (_, b)) in s.iter().zip(loaded.iter()) {
            assert_eq!(a, b);
        }
        assert_eq!(loaded.root("main"), s.root("main"));
        assert_eq!(loaded.root("db"), s.root("db"));
        assert_eq!(loaded.attr(Oid(4), "cost"), Some(42));
        assert_eq!(loaded.attr(Oid(4), "savings"), Some(-3));
    }

    #[test]
    fn file_roundtrip() {
        let s = sample_store();
        let dir = std::env::temp_dir().join("tml_store_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.tys");
        save(&s, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.len(), s.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_store_roundtrips() {
        let s = Store::new();
        let loaded = from_bytes(&to_bytes(&s)).unwrap();
        assert!(loaded.is_empty());
    }

    #[test]
    fn corrupt_magic_rejected() {
        assert!(matches!(from_bytes(b"NOTAST0"), Err(DecodeError::BadMagic)));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = to_bytes(&sample_store());
        for cut in [bytes.len() - 1, bytes.len() / 2, 7] {
            assert!(from_bytes(&bytes[..cut]).is_err(), "cut {cut} accepted");
        }
    }

    #[test]
    fn versions_and_cache_roundtrip() {
        let mut s = sample_store();
        s.get_mut(Oid(1)).unwrap(); // bump a version
        s.get_mut(Oid(1)).unwrap();
        s.get_mut(Oid(3)).unwrap();
        let key = CacheKey {
            ptml_hash: 0xfeed,
            binding_sig: 0xbeef,
        };
        s.cache_insert(
            key,
            CacheEntry {
                observed: vec![(Oid(1), 2), (Oid(4), 0)],
                ptml: vec![7, 7],
                code: vec![1, 2, 3, 4],
                captures: vec![
                    ("real.sqrt".into(), Some(SVal::Ref(Oid(5)))),
                    ("k".into(), None),
                ],
                size_before: 40,
                size_after: 12,
                inlined: 3,
                tick: 0,
            },
        );
        let _ = s.cache_lookup(key); // accumulate some stats
        let loaded = from_bytes(&to_bytes(&s)).unwrap();
        assert_eq!(loaded.version(Oid(1)), 2);
        assert_eq!(loaded.version(Oid(3)), 1);
        assert_eq!(loaded.version(Oid(2)), 0);
        assert_eq!(loaded.cache().len(), 1);
        assert_eq!(loaded.cache_stats(), s.cache_stats());
        let (k, e) = loaded.cache().iter().next().unwrap();
        assert_eq!(*k, key);
        assert_eq!(e.ptml, vec![7, 7]);
        assert_eq!(e.code, vec![1, 2, 3, 4]);
        assert_eq!(e.captures.len(), 2);
        assert_eq!(e.observed, vec![(Oid(1), 2), (Oid(4), 0)]);
        // A hit against the reloaded store still validates.
        let mut loaded = loaded;
        assert!(loaded.cache_lookup(key).is_some());
    }

    #[test]
    fn reencode_is_byte_identical_with_cache_sections() {
        let mut s = sample_store();
        s.cache_insert(
            CacheKey {
                ptml_hash: 1,
                binding_sig: 2,
            },
            CacheEntry {
                observed: vec![(Oid(1), 0)],
                ptml: vec![1],
                code: vec![2],
                captures: vec![],
                size_before: 1,
                size_after: 1,
                inlined: 0,
                tick: 0,
            },
        );
        let bytes = to_bytes(&s);
        let reencoded = to_bytes(&from_bytes(&bytes).unwrap());
        assert_eq!(bytes, reencoded);
    }

    #[test]
    fn legacy_image_without_sections_loads() {
        // A minimal pre-cache TYSTO2 image: magic, zero objects, zero
        // roots, zero attributes, then EOF (the old end of format). No
        // framing, no CRC — the legacy decode path must still accept it.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V2);
        put_u64(&mut bytes, 0);
        put_u64(&mut bytes, 0);
        put_u64(&mut bytes, 0);
        let s = from_bytes(&bytes).unwrap();
        assert!(s.is_empty());
        assert!(s.cache().is_empty());
    }

    #[test]
    fn legacy_image_with_objects_loads() {
        // A TYSTO2 image carrying one unframed object record.
        let mut bytes = Vec::new();
        bytes.extend_from_slice(MAGIC_V2);
        put_u64(&mut bytes, 1);
        bytes.push(1); // live slot, no frame length in v2
        put_object(&mut bytes, &Object::ByteArray(vec![4, 5, 6]));
        put_u64(&mut bytes, 0); // roots
        put_u64(&mut bytes, 0); // attrs
        let s = from_bytes(&bytes).unwrap();
        assert_eq!(s.get(Oid(1)).unwrap(), &Object::ByteArray(vec![4, 5, 6]));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = to_bytes(&sample_store());
        bytes.push(0xff);
        // Extra bytes shift the CRC trailer, so the checksum catches it.
        assert!(matches!(
            from_bytes(&bytes),
            Err(DecodeError::BadCrc { .. })
        ));
    }

    #[test]
    fn current_format_is_v3_with_valid_crc() {
        let bytes = to_bytes(&sample_store());
        assert_eq!(&bytes[..6], MAGIC_V3);
        let body = &bytes[..bytes.len() - 4];
        let stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().unwrap());
        assert_eq!(stored, crc32(body));
    }

    #[test]
    fn unknown_future_version_reported_distinctly() {
        assert!(matches!(
            from_bytes(b"TYSTO9xxxx"),
            Err(DecodeError::BadVersion(9))
        ));
    }

    #[test]
    fn every_bit_flip_is_detected() {
        // With the CRC trailer, *any* single-bit flip anywhere in the image
        // (including the trailer itself) must be rejected.
        let bytes = to_bytes(&sample_store());
        for pos in 0..bytes.len() {
            let mut m = bytes.clone();
            m[pos] ^= 0x01;
            assert!(from_bytes(&m).is_err(), "flip at {pos} accepted");
        }
    }

    #[test]
    fn save_is_atomic_and_rotates_backup() {
        let dir = std::env::temp_dir().join("tml_store_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("world.tys");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(backup_path(&path)).ok();
        let s1 = sample_store();
        save(&s1, &path).unwrap();
        assert!(path.exists());
        assert!(!backup_path(&path).exists(), "no backup on first save");
        let mut s2 = sample_store();
        s2.set_root("extra", Oid(1));
        save(&s2, &path).unwrap();
        assert!(backup_path(&path).exists(), "second save rotates backup");
        assert_eq!(load(&path).unwrap().root("extra"), Some(Oid(1)));
        let bak = from_bytes(&std::fs::read(backup_path(&path)).unwrap()).unwrap();
        assert_eq!(bak.root("extra"), None, "backup is the previous image");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(backup_path(&path)).ok();
    }

    #[test]
    fn crash_between_write_and_rename_leaves_previous_image_loadable() {
        use crate::failpoint::{Action, FailSpec, ScopedFailpoints};
        let dir = std::env::temp_dir().join("tml_store_crash_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("world.tys");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(backup_path(&path)).ok();
        let good = sample_store();
        save(&good, &path).unwrap();
        let mut newer = sample_store();
        newer.set_root("newer", Oid(2));
        {
            // Simulate a crash after the temp file is durable but before
            // the final rename, for this path only.
            let _fp = ScopedFailpoints::new(&[(
                "snapshot.save.rename",
                FailSpec::always(Action::Io).for_key(super::path_key(&path)),
            )]);
            let err = save(&newer, &path).unwrap_err();
            assert!(err.to_string().contains("failpoint"));
        }
        // The new image never reached `path`; the previous good one is at
        // the backup location (rotation happened before the crash).
        let (recovered, report) = load_with_recovery(&path).unwrap();
        assert_eq!(report.source, RecoverySource::Backup);
        assert_eq!(recovered.len(), good.len());
        assert_eq!(recovered.root("newer"), None);
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(backup_path(&path)).ok();
        std::fs::remove_file(super::tmp_path(&path)).ok();
    }

    #[test]
    fn crash_on_first_save_rename_recovers_from_tmp() {
        use crate::failpoint::{Action, FailSpec, ScopedFailpoints};
        let dir = std::env::temp_dir().join("tml_store_tmp_recovery_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("world.tys");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(backup_path(&path)).ok();
        std::fs::remove_file(tmp_path(&path)).ok();
        let s = sample_store();
        {
            // First-ever save: there is no previous image and no backup, so
            // a crash before the final rename leaves the *only* copy of the
            // data complete at `<path>.tmp`.
            let _fp = ScopedFailpoints::new(&[(
                "snapshot.save.rename",
                FailSpec::always(Action::Io).for_key(super::path_key(&path)),
            )]);
            assert!(save(&s, &path).is_err());
        }
        assert!(!path.exists());
        let (recovered, report) = load_with_recovery(&path).unwrap();
        assert_eq!(report.source, RecoverySource::Tmp);
        assert_eq!(to_bytes(&recovered), to_bytes(&s), "tmp image is complete");
        std::fs::remove_file(tmp_path(&path)).ok();
    }

    #[test]
    fn damaged_tmp_is_salvaged_when_nothing_else_loads() {
        let dir = std::env::temp_dir().join("tml_store_tmp_salvage_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("world.tys");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(backup_path(&path)).ok();
        let s = sample_store();
        let mut bytes = to_bytes(&s);
        // Only a torn tmp file exists: primary and backup are gone, and the
        // tmp lost its tail (CRC and the late sections).
        bytes.truncate(bytes.len() - 10);
        std::fs::write(tmp_path(&path), &bytes).unwrap();
        let (recovered, report) = load_with_recovery(&path).unwrap();
        assert_eq!(report.source, RecoverySource::SalvagedTmp);
        assert!(recovered.live() > 0);
        std::fs::remove_file(tmp_path(&path)).ok();
    }

    #[test]
    fn dir_fsync_failure_is_survivable_and_traced() {
        use crate::failpoint::{Action, FailSpec, ScopedFailpoints};
        let dir = std::env::temp_dir().join("tml_store_dirsync_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("world.tys");
        let s = sample_store();
        tml_trace::global().set_enabled(true);
        {
            let _fp = ScopedFailpoints::new(&[(
                "snapshot.save.dirsync",
                FailSpec::always(Action::Io).for_key(super::path_key(&path)),
            )]);
            // The data and the rename both succeeded; only the directory
            // fsync failed. That is a durability risk, not an error.
            save(&s, &path).unwrap();
        }
        tml_trace::global().set_enabled(false);
        assert_eq!(load(&path).unwrap().len(), s.len());
        let risk = tml_trace::global().events().into_iter().any(|e| {
            matches!(
                e.event,
                tml_trace::Event::DurabilityRisk {
                    site: "snapshot.save.dirsync",
                    ..
                }
            )
        });
        assert!(risk, "dir-fsync failure must be visible on the trace");
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(backup_path(&path)).ok();
    }

    #[test]
    fn recovery_falls_back_to_backup_on_corrupt_primary() {
        let dir = std::env::temp_dir().join("tml_store_recovery_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("world.tys");
        let s = sample_store();
        save(&s, &path).unwrap();
        save(&s, &path).unwrap(); // creates the .bak
                                  // Corrupt the primary in place.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (recovered, report) = load_with_recovery(&path).unwrap();
        assert_eq!(report.source, RecoverySource::Backup);
        assert!(matches!(
            report.primary_error,
            Some(DecodeError::BadCrc { .. })
        ));
        assert_eq!(recovered.len(), s.len());
        std::fs::remove_file(&path).ok();
        std::fs::remove_file(backup_path(&path)).ok();
    }

    #[test]
    fn salvage_drops_damaged_objects_and_dangling_roots() {
        let s = sample_store();
        let bytes = to_bytes(&s);
        // Find the frame of the first object (Oid 1, the "main" root's
        // array) and smash a byte inside it.
        let mut r = Reader::new(&bytes);
        r.bytes(MAGIC_V3.len()).unwrap();
        r.len().unwrap(); // slot count
        assert_eq!(r.byte().unwrap(), 1);
        let _flen = r.len().unwrap();
        let frame_start = r.position();
        let mut m = bytes.clone();
        // Invalid object tag at the start of the frame.
        m[frame_start] = 0xfe;
        let (salvaged, report) = salvage_bytes(&m).unwrap();
        assert_eq!(report.dropped_objects, 1);
        assert!(salvaged.get(Oid(1)).is_err(), "damaged object dropped");
        assert!(salvaged.get(Oid(2)).is_ok(), "later objects survive");
        assert_eq!(
            salvaged.root("main"),
            None,
            "root into the dropped object is dropped"
        );
        assert_eq!(salvaged.root("db"), s.root("db"), "other roots survive");
        assert!(!report.dropped_sections, "tail sections still decode");
    }

    #[test]
    fn salvage_of_truncated_image_keeps_prefix_objects() {
        let s = sample_store();
        let bytes = to_bytes(&s);
        // Cut the image roughly in half: early objects salvage, the rest
        // (and the tail sections) are gone.
        let (salvaged, report) = salvage_bytes(&bytes[..bytes.len() / 2]).unwrap();
        assert!(salvaged.get(Oid(1)).is_ok(), "first object survives");
        assert!(report.dropped_objects > 0 || report.dropped_sections);
        assert_eq!(salvaged.len(), s.len(), "OID space keeps its size");
    }
}
